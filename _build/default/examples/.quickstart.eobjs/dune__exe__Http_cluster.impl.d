examples/http_cluster.ml: Asp Extnet Format Planp_jit Printf
