examples/mpeg_multipoint.ml: Asp Extnet Format List Printf
