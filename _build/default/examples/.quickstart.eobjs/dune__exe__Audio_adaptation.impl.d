examples/audio_adaptation.ml: Asp List Printf String
