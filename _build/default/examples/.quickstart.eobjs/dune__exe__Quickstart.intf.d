examples/quickstart.mli:
