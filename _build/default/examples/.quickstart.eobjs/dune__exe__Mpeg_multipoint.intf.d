examples/mpeg_multipoint.mli:
