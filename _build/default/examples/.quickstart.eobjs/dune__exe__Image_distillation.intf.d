examples/image_distillation.mli:
