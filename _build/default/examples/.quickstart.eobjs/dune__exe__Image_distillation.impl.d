examples/image_distillation.ml: Asp Extnet Format Printf
