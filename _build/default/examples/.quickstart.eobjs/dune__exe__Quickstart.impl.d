examples/quickstart.ml: Extnet Format
