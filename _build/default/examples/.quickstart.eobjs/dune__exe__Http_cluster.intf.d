examples/http_cluster.mli:
