examples/fault_tolerance.ml: Asp Extnet Format Printf
