examples/audio_adaptation.mli:
