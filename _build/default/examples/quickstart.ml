(* Quickstart: write an ASP, verify it, load it on a router, watch it
   rewrite traffic — the whole public API in one small scenario.

   Topology:   alice ----- router ----- bob
   The ASP redirects every TCP packet bound for bob's port 8080 to port 80,
   and prints what it saw. Run with:  dune exec examples/quickstart.exe *)

let asp =
  {|-- Redirect port 8080 to port 80 and log the translation.
val fromPort : int = 8080
val toPort : int = 80

channel network(ps : int, ss : unit, p : ip*tcp*blob) is
  let
    val iph : ip = #1 p
    val tcph : tcp = #2 p
    val body : blob = #3 p
  in
    if tcpDst(tcph) = fromPort then
      (println("redirect #" ^ itos(ps) ^ " for " ^ htos(ipDst(iph)));
       OnRemote(network, (iph, tcpDstSet(tcph, toPort), body));
       (ps + 1, ss))
    else
      (OnRemote(network, p); (ps, ss))
  end
|}

let () =
  (* 1. Static checks: the program must pass all four safety analyses. *)
  (match Extnet.verify_source asp with
  | Ok report ->
      Format.printf "--- verifier ---@.%a@.@." Extnet.Verifier.pp report
  | Error message -> failwith message);

  (* 2. Build the network. *)
  let topo = Extnet.Topology.create () in
  let alice = Extnet.Topology.add_host topo "alice" "10.0.0.1" in
  let router = Extnet.Topology.add_host topo "router" "10.0.0.254" in
  let bob = Extnet.Topology.add_host topo "bob" "10.0.0.2" in
  ignore (Extnet.Topology.connect topo alice router);
  ignore (Extnet.Topology.connect topo router bob);
  Extnet.Topology.compute_routes topo;

  (* 3. Load the ASP on the router (JIT backend by default). *)
  let program = Extnet.load_exn router ~source:asp () in

  (* 4. Bob serves port 80; alice talks to port 8080. *)
  let served = ref 0 in
  Extnet.Node.on_tcp bob ~port:80 (fun _bob packet ->
      incr served;
      Format.printf "bob:80 got %a@." Extnet.Packet.pp packet);
  for i = 1 to 3 do
    Extnet.Engine.schedule (Extnet.Topology.engine topo)
      ~at:(float_of_int i) (fun () ->
        Extnet.Node.send_tcp alice
          ~dst:(Extnet.Node.addr bob)
          ~src_port:(5000 + i) ~dst_port:8080
          (Extnet.Payload.of_string "hello"))
  done;
  Extnet.Topology.run topo;

  (* 5. Inspect results: the ASP counted redirects in its protocol state. *)
  (match Extnet.runtime_of router with
  | Some rt -> Format.printf "--- router ASP log ---@.%s@." (Extnet.Runtime.output rt)
  | None -> ());
  Format.printf "redirected=%s served=%d@."
    (Extnet.Value.to_string (Extnet.Runtime.proto_state program))
    !served;
  assert (!served = 3)
