(* Fault-tolerant HTTP cluster (the paper's §5 future work, implemented).

   A health monitor on the gateway host probes the physical servers; when
   one crashes mid-run, the failover gateway ASP reroutes new connections
   to the survivor via its "health" control channel. Compare with the
   plain Fig. 2 gateway, where half of all new connections keep hitting
   the dead machine. Run:  dune exec examples/fault_tolerance.exe *)

let () =
  (* The failover ASP also passes the verifier. *)
  (match
     Extnet.verify_source
       (Asp.Http_asp.failover_gateway_program ~vip:"10.3.0.100"
          ~servers:("10.3.0.1", "10.3.0.2") ())
   with
  | Ok report ->
      Format.printf "--- failover gateway ASP verification ---@.%a@.@."
        Extnet.Verifier.pp report
  | Error message -> failwith message);

  Printf.printf "server0 crashes at t=10s; 30s run, 24 client processes\n\n%!";
  let show label (r : Asp.Http_ft.result) =
    Printf.printf "%-22s healthy: %6.1f replies/s   after crash: %6.1f replies/s\n"
      label r.Asp.Http_ft.before_kill_rate r.Asp.Http_ft.after_kill_rate;
    Printf.printf "%-22s health flips: %d, client retries: %d, served=(%d,%d)\n\n%!"
      "" r.Asp.Http_ft.monitor_transitions r.Asp.Http_ft.stalled_retries
      (fst r.Asp.Http_ft.server_loads)
      (snd r.Asp.Http_ft.server_loads)
  in
  show "failover gateway:" (Asp.Http_ft.run (Asp.Http_ft.default_config ()));
  show "plain gateway:"
    (Asp.Http_ft.run (Asp.Http_ft.default_config ~failover:false ()));
  print_endline
    "the failover ASP keeps the cluster near single-server throughput;\n\
     the plain gateway keeps sending new connections into the void."
