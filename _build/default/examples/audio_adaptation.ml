(* Audio broadcasting with in-router bandwidth adaptation (paper 3.1).

   Reproduces the Fig. 5 scenario at reduced length and prints the Fig. 6
   bandwidth timeline plus the Fig. 7 silent-period comparison. Run:
     dune exec examples/audio_adaptation.exe *)

let bar kbps =
  (* 1 char per 4 kB/s, like a sideways strip chart. *)
  String.make (int_of_float (kbps /. 4.0)) '#'

let () =
  print_endline "=== with adaptation ASPs in the router and client ===";
  let adapt = Asp.Audio_experiment.run (Asp.Audio_experiment.quick_config ()) in
  List.iter
    (fun (t, kbps) -> Printf.printf "t=%5.1fs %7.1f kB/s %s\n" t kbps (bar kbps))
    adapt.Asp.Audio_experiment.series;
  let s16, m16, m8 = adapt.Asp.Audio_experiment.wire_quality_counts in
  Printf.printf
    "frames: sent=%d received=%d (16-bit stereo %d / 16-bit mono %d / 8-bit mono %d on the wire)\n"
    adapt.Asp.Audio_experiment.frames_sent
    adapt.Asp.Audio_experiment.frames_received s16 m16 m8;
  Printf.printf "silent periods: %d   drops: %d\n\n"
    adapt.Asp.Audio_experiment.silent_periods
    adapt.Asp.Audio_experiment.segment_drops;

  print_endline "=== without adaptation ===";
  let raw =
    Asp.Audio_experiment.run (Asp.Audio_experiment.quick_config ~adapt:false ())
  in
  Printf.printf "frames: sent=%d received=%d\n"
    raw.Asp.Audio_experiment.frames_sent raw.Asp.Audio_experiment.frames_received;
  Printf.printf "silent periods: %d   drops: %d\n"
    raw.Asp.Audio_experiment.silent_periods
    raw.Asp.Audio_experiment.segment_drops;

  Printf.printf
    "\nadaptation removed %d silent periods (paper Fig. 7: fewer gaps with adaptation)\n"
    (raw.Asp.Audio_experiment.silent_periods
    - adapt.Asp.Audio_experiment.silent_periods)
