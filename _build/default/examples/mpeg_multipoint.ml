(* Point-to-point to multipoint MPEG delivery (paper 3.3).

   Three clients on one segment request the same movie; the monitor ASP
   tracks the server's connections and later clients capture the existing
   stream instead of opening new ones. Run:
     dune exec examples/mpeg_multipoint.exe *)

let show label (r : Asp.Mpeg_experiment.result) =
  Printf.printf "%s\n" label;
  Printf.printf "  server connections opened: %d\n" r.Asp.Mpeg_experiment.server_streams;
  Printf.printf "  server frames sent:        %d\n" r.Asp.Mpeg_experiment.server_frames_sent;
  List.iteri
    (fun i (frames, shared) ->
      Printf.printf "  client %d: %3d frames (%s)\n" (i + 1) frames
        (match shared with
        | Some true -> "joined the existing stream"
        | Some false -> "opened its own connection"
        | None -> "never started"))
    (List.combine r.Asp.Mpeg_experiment.client_frames
       r.Asp.Mpeg_experiment.clients_shared);
  Printf.printf "  video bytes on the client segment: %d KB\n\n"
    (r.Asp.Mpeg_experiment.segment_video_bytes / 1024)

let () =
  (* The monitor ASP passes the verifier; show it, as a router would check
     it before accepting the download. *)
  (match
     Extnet.verify_source (Asp.Mpeg_asp.monitor_program ~server:"10.6.0.1" ())
   with
  | Ok report -> Format.printf "--- monitor ASP verification ---@.%a@.@." Extnet.Verifier.pp report
  | Error message -> failwith message);

  let with_asps = Asp.Mpeg_experiment.run (Asp.Mpeg_experiment.default_config ()) in
  show "=== with the monitor and capture ASPs ===" with_asps;
  let baseline =
    Asp.Mpeg_experiment.run (Asp.Mpeg_experiment.default_config ~with_asps:false ())
  in
  show "=== unmodified point-to-point ===" baseline;
  Printf.printf
    "the ASPs served %d clients from %d connection(s); the baseline needed %d\n"
    (List.length with_asps.Asp.Mpeg_experiment.client_frames)
    with_asps.Asp.Mpeg_experiment.server_streams
    baseline.Asp.Mpeg_experiment.server_streams
