(* An extensible HTTP server with load balancing (paper 3.2).

   Builds the three-machine cluster, loads the Fig. 2 gateway ASP, replays
   the synthetic trace, and compares against a single server — a condensed
   Fig. 8. Run:  dune exec examples/http_cluster.exe *)

let () =
  (* Show the gateway ASP being verified first — the program a cluster
     administrator would download into the gateway. *)
  let source =
    Asp.Http_asp.gateway_program ~vip:"10.3.0.100"
      ~servers:("10.3.0.1", "10.3.0.2") ()
  in
  print_endline "--- the gateway ASP (paper Fig. 2) passes verification ---";
  (match Extnet.verify_source source with
  | Ok report -> Format.printf "%a@.@." Extnet.Verifier.pp report
  | Error message -> failwith message);

  let config =
    { Asp.Http_experiment.default_config with duration = 15.0; warmup = 5.0 }
  in
  let run setup workers =
    let point = Asp.Http_experiment.run_point config setup ~workers in
    Printf.printf "%-34s workers=%2d  %7.1f replies/s (mean response %.1f ms)\n%!"
      (Asp.Http_experiment.setup_name setup)
      workers point.Asp.Http_experiment.replies_per_s
      point.Asp.Http_experiment.mean_response_ms;
    point.Asp.Http_experiment.replies_per_s
  in
  let single = run Asp.Http_experiment.Single 32 in
  let cluster =
    run (Asp.Http_experiment.Asp_gateway Planp_jit.Backends.jit) 48
  in
  Printf.printf
    "\ncluster/single = %.2fx (paper: the ASP cluster serves 1.75x a single server)\n"
    (cluster /. single)
