(* Image distillation over a slow link (the paper's §5 medium-term goal,
   implemented).

   A mobile client fetches images through a router whose downstream link is
   a 128 kb/s modem. The distilling ASP shrinks images in the router,
   trading fidelity for latency — neither endpoint changes. Run:
     dune exec examples/image_distillation.exe *)

let () =
  (match Extnet.verify_source (Asp.Image_asp.router_program ~slow_iface:1 ()) with
  | Ok report ->
      Format.printf "--- distilling router ASP verification ---@.%a@.@."
        Extnet.Verifier.pp report
  | Error message -> failwith message);

  Printf.printf "%d-pixel 8-bit images over a 128 kb/s modem link:\n\n" (64 * 64);
  let show label (r : Asp.Image_asp.result) =
    Printf.printf
      "%-16s %2d images, %6.1f ms/image, %6.0f bytes/image, fidelity RMS %4.1f/255\n"
      label r.Asp.Image_asp.images
      (r.Asp.Image_asp.latency_s *. 1000.0)
      r.Asp.Image_asp.bytes_per_image r.Asp.Image_asp.fidelity_rms
  in
  let distilled = Asp.Image_asp.run_experiment ~distill:true () in
  let raw = Asp.Image_asp.run_experiment ~distill:false () in
  show "with ASP:" distilled;
  show "without:" raw;
  Printf.printf "\nspeedup %.1fx, %.0fx fewer bytes, at a fidelity cost.\n"
    (raw.Asp.Image_asp.latency_s /. distilled.Asp.Image_asp.latency_s)
    (raw.Asp.Image_asp.bytes_per_image /. distilled.Asp.Image_asp.bytes_per_image);
  (* A faster link distills less: adaptivity check on a 512 kb/s link. *)
  let fast = Asp.Image_asp.run_experiment ~link_bps:512e3 ~distill:true () in
  Printf.printf
    "on a 512 kb/s link the same ASP distills once instead of twice:\n";
  show "512 kb/s + ASP:" fast
