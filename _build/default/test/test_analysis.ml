(* Tests for the safety verifier (paper §2.1): local/global termination,
   guaranteed delivery, safe duplication. *)

module Ast = Planp.Ast
module Parser = Planp.Parser
module Local = Planp_analysis.Local_termination
module Global = Planp_analysis.Global_termination
module Delivery = Planp_analysis.Delivery
module Duplication = Planp_analysis.Duplication
module Verifier = Planp_analysis.Verifier
module Call_graph = Planp_analysis.Call_graph

let () = Planp_runtime.Prims.install ()
let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let parse = Parser.parse

let forwarder =
  parse
    "channel network(ps : int, ss : int, p : ip*tcp*blob) is\n\
     (OnRemote(network, p); (ps, ss))"

let flood =
  parse
    "channel flood(ps : unit, ss : unit, p : ip*blob) is\n\
     (OnNeighbor(flood, p); (ps, ss))"

let guarded_gateway =
  parse
    (Asp.Http_asp.gateway_program ~vip:"10.3.0.100"
       ~servers:("10.3.0.1", "10.3.0.2") ())

let unguarded_rewriter =
  parse
    "channel network(ps : int, ss : int, p : ip*tcp*blob) is\n\
     if ps mod 2 = 0 then\n\
       (OnRemote(network, (ipDestSet(#1 p, 10.0.0.1), #2 p, #3 p)); (ps + 1, ss))\n\
     else\n\
       (OnRemote(network, (ipDestSet(#1 p, 10.0.0.2), #2 p, #3 p)); (ps + 1, ss))"

(* ---------- call graph ---------- *)

let call_graph_finds_emissions () =
  let emissions = Call_graph.channel_emissions guarded_gateway in
  match emissions with
  | [ (_, ems) ] ->
      check "four OnRemote sites" 4 (List.length ems);
      checkb "all target network" true
        (List.for_all
           (fun e -> e.Call_graph.em_target = "network")
           ems)
  | _ -> Alcotest.fail "one channel expected"

let call_graph_expands_functions () =
  let program =
    parse
      "fun fwd(q : ip*tcp*blob) : unit = OnRemote(network, q)\n\
       channel network(ps : int, ss : int, p : ip*tcp*blob) is (fwd(p); (ps, ss))"
  in
  match Call_graph.channel_emissions program with
  | [ (_, [ emission ]) ] ->
      checkb "found through function" true
        (emission.Call_graph.em_target = "network")
  | _ -> Alcotest.fail "emission inside function not found"

(* ---------- local termination ---------- *)

let local_ok () =
  let report = Local.analyze guarded_gateway in
  checkb "ok" true report.Local.ok;
  check "functions" 1 report.Local.function_count;
  check "depth" 1 report.Local.max_call_depth

let local_depth () =
  let program =
    parse
      "fun a(n : int) : int = n + 1\n\
       fun b(n : int) : int = a(a(n))\n\
       fun c(n : int) : int = b(n) + a(n)\n\
       val x : int = c(1)"
  in
  let report = Local.analyze program in
  checkb "ok" true report.Local.ok;
  check "depth 3" 3 report.Local.max_call_depth

let local_detects_handmade_recursion () =
  (* The parser+type checker cannot produce recursion, but a hand-built AST
     can; the analysis is defence in depth. *)
  let loc = Planp.Loc.dummy in
  let body = Ast.mk loc (Ast.Call ("f", [ Ast.mk loc (Ast.Int 1) ])) in
  let program =
    [ Ast.Dfun
        { Ast.fun_name = "f"; params = [ ("n", Planp.Ptype.Tint) ];
          ret_type = Planp.Ptype.Tint; fun_body = body; fun_loc = loc } ]
  in
  let report = Local.analyze program in
  checkb "recursion caught" false report.Local.ok

(* ---------- global termination ---------- *)

let global_accepts_forwarder () =
  match (Global.analyze forwarder).Global.verdict with
  | Global.Proved -> ()
  | Global.Rejected reason -> Alcotest.failf "rejected forwarder: %s" reason

let global_accepts_guarded_gateway () =
  match (Global.analyze guarded_gateway).Global.verdict with
  | Global.Proved -> ()
  | Global.Rejected reason -> Alcotest.failf "rejected gateway: %s" reason

let global_rejects_unguarded_rewriter () =
  match (Global.analyze unguarded_rewriter).Global.verdict with
  | Global.Rejected _ -> ()
  | Global.Proved -> Alcotest.fail "unguarded destination ping-pong accepted"

let global_rejects_flood () =
  match (Global.analyze flood).Global.verdict with
  | Global.Rejected _ -> ()
  | Global.Proved -> Alcotest.fail "flooding loop accepted"

let global_rejects_unknown_destination () =
  let program =
    parse
      "channel network(ps : host, ss : int, p : ip*tcp*blob) is\n\
       (OnRemote(network, (ipDestSet(#1 p, ps), #2 p, #3 p)); (ps, ss))"
  in
  (* destination comes from mutable protocol state: unresolvable *)
  match (Global.analyze program).Global.verdict with
  | Global.Rejected _ -> ()
  | Global.Proved -> Alcotest.fail "unknown destination accepted"

let global_counts_states () =
  let report = Global.analyze guarded_gateway in
  checkb "states explored" true (report.Global.states_explored >= 1);
  checkb "transitions" true (report.Global.transitions >= 1)

let global_accepts_reply_swap () =
  (* Reply to sender: dst := original source. Terminates: the reply's
     processing can only re-reply toward a fixed destination. *)
  let program =
    parse
      "channel network(ps : int, ss : int, p : ip*udp*blob) is\n\
       (OnRemote(network, (ipDestSet(ipSrcSet(#1 p, ipDst(#1 p)), ipSrc(#1 p)), #2 p, #3 p));\n\
        (ps, ss))"
  in
  (* src<->dst swap forever = dst alternates between S0 and D0: a cycle with
     changing destination — correctly rejected as a potential ping-pong. *)
  match (Global.analyze program).Global.verdict with
  | Global.Rejected _ -> ()
  | Global.Proved -> Alcotest.fail "infinite reply ping-pong accepted"

(* ---------- delivery ---------- *)

let funs_of program = Call_graph.fun_bodies program

let delivery_ok_cases () =
  checkb "forwarder" true (Delivery.analyze forwarder).Delivery.ok;
  checkb "gateway" true (Delivery.analyze guarded_gateway).Delivery.ok;
  checkb "audio router" true
    (Delivery.analyze (parse (Asp.Audio_asp.router_program ~iface:1 ()))).Delivery.ok;
  checkb "mpeg monitor" true
    (Delivery.analyze (parse (Asp.Mpeg_asp.monitor_program ~server:"10.0.0.1" ()))).Delivery.ok

let delivery_missing_branch () =
  let program =
    parse
      "channel network(ps : int, ss : int, p : ip*tcp*blob) is\n\
       if tcpDst(#2 p) = 80 then (OnRemote(network, p); (ps, ss)) else (ps, ss)"
  in
  let report = Delivery.analyze program in
  checkb "rejected" false report.Delivery.ok;
  check "one failure" 1 (List.length report.Delivery.failures)

let delivery_escaping_exception () =
  let program =
    parse
      "exception E\n\
       channel network(ps : int, ss : int, p : ip*tcp*blob) is\n\
       (if tcpDst(#2 p) = 80 then raise E else ();\n\
        OnRemote(network, p); (ps, ss))"
  in
  checkb "escape rejected" false (Delivery.analyze program).Delivery.ok

let delivery_handler_aware () =
  (* raise inside try whose handler emits: every path still delivers *)
  let program =
    parse
      "exception E\n\
       channel network(ps : int, ss : int, p : ip*tcp*blob) is\n\
       try (if tcpDst(#2 p) = 80 then raise E else OnRemote(network, p); (ps, ss))\n\
       handle E => (deliver(p); (ps, ss)) end"
  in
  checkb "handler emission counts" true (Delivery.analyze program).Delivery.ok

let delivery_div_literal () =
  let funs = funs_of [] in
  Alcotest.(check (list string))
    "literal divisor raises nothing" []
    (Delivery.may_raise ~funs (Parser.parse_expr "x mod 2"));
  Alcotest.(check (list string))
    "variable divisor may raise" [ "DivByZero" ]
    (Delivery.may_raise ~funs (Parser.parse_expr "x mod y"))

let delivery_must_emit_through_functions () =
  let program =
    parse
      "fun fwd(q : ip*tcp*blob) : unit = OnRemote(network, q)\n\
       channel network(ps : int, ss : int, p : ip*tcp*blob) is (fwd(p); (ps, ss))"
  in
  checkb "function emission" true (Delivery.analyze program).Delivery.ok

(* ---------- duplication ---------- *)

let dup_single_ok () =
  checkb "forwarder linear" true (Duplication.analyze forwarder).Duplication.ok

let dup_acyclic_double_ok () =
  (* Two emissions per path, but the targets emit nothing: a bounded tree. *)
  let program =
    parse
      "channel sink(ps : int, ss : int, p : ip*udp*blob) is (deliver(p); (ps, ss))\n\
       channel network(ps : int, ss : int, p : ip*udp*blob) is\n\
       (OnRemote(sink, p); OnRemote(sink, p); (ps, ss))"
  in
  let report = Duplication.analyze program in
  checkb "copies flagged" true (List.assoc "network" report.Duplication.copies);
  checkb "but acyclic is safe" true report.Duplication.ok

let dup_cyclic_copy_rejected () =
  let program =
    parse
      "channel network(ps : int, ss : int, p : ip*udp*blob) is\n\
       (OnRemote(network, p); OnRemote(network, p); (ps, ss))"
  in
  checkb "exponential rejected" false (Duplication.analyze program).Duplication.ok

let dup_onneighbor_counts_double () =
  let funs = funs_of [] in
  check "OnNeighbor weighs 2" 2
    (Duplication.max_emissions ~funs (Parser.parse_expr "OnNeighbor(network, p)"));
  check "branches take max" 1
    (Duplication.max_emissions ~funs
       (Parser.parse_expr
          "if b then OnRemote(network, p) else OnRemote(network, q)"))

let dup_flood_rejected () =
  let report = Duplication.analyze flood in
  checkb "flood rejected" false report.Duplication.ok;
  checkb "iterations reported" true (report.Duplication.iterations >= 1)

(* ---------- combined verifier ---------- *)

let verifier_passes_bundled_asps () =
  List.iter
    (fun (name, source) ->
      let report = Verifier.verify (parse source) in
      if not (Verifier.passes report) then
        Alcotest.failf "%s failed: %s" name
          (Option.value ~default:"?" (Verifier.first_failure report)))
    [
      ("audio router", Asp.Audio_asp.router_program ~iface:1 ());
      ("audio client", Asp.Audio_asp.client_program ());
      ( "http gateway",
        Asp.Http_asp.gateway_program ~vip:"10.3.0.100"
          ~servers:("10.3.0.1", "10.3.0.2") () );
      ("mpeg monitor", Asp.Mpeg_asp.monitor_program ~server:"10.6.0.1" ());
      ("mpeg capture", Asp.Mpeg_asp.capture_program ());
    ]

let verifier_gate () =
  let checked source =
    Planp.Typecheck.check_exn ~prims:Planp_runtime.Prim.type_lookup (parse source)
  in
  let flood_source =
    "channel flood(ps : unit, ss : unit, p : ip*blob) is\n\
     (OnNeighbor(flood, p); (ps, ss))"
  in
  (match Verifier.gate () (checked flood_source) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "gate admitted the flood");
  match Verifier.gate ~authenticated:true () (checked flood_source) with
  | Ok () -> ()
  | Error message -> Alcotest.failf "authenticated bypass failed: %s" message

let verifier_first_failure_order () =
  let report = Verifier.verify flood in
  match Verifier.first_failure report with
  | Some message ->
      checkb "mentions termination or flooding" true
        (String.length message > 0)
  | None -> Alcotest.fail "flood must fail"

let () =
  Alcotest.run "planp-analysis"
    [
      ( "call-graph",
        [
          Alcotest.test_case "finds emissions" `Quick call_graph_finds_emissions;
          Alcotest.test_case "expands functions" `Quick call_graph_expands_functions;
        ] );
      ( "local-termination",
        [
          Alcotest.test_case "ok" `Quick local_ok;
          Alcotest.test_case "depth" `Quick local_depth;
          Alcotest.test_case "hand-made recursion" `Quick
            local_detects_handmade_recursion;
        ] );
      ( "global-termination",
        [
          Alcotest.test_case "accepts forwarder" `Quick global_accepts_forwarder;
          Alcotest.test_case "accepts guarded gateway" `Quick
            global_accepts_guarded_gateway;
          Alcotest.test_case "rejects unguarded rewriter" `Quick
            global_rejects_unguarded_rewriter;
          Alcotest.test_case "rejects flood" `Quick global_rejects_flood;
          Alcotest.test_case "rejects unknown destination" `Quick
            global_rejects_unknown_destination;
          Alcotest.test_case "counts states" `Quick global_counts_states;
          Alcotest.test_case "reply ping-pong" `Quick global_accepts_reply_swap;
        ] );
      ( "delivery",
        [
          Alcotest.test_case "ok cases" `Quick delivery_ok_cases;
          Alcotest.test_case "missing branch" `Quick delivery_missing_branch;
          Alcotest.test_case "escaping exception" `Quick delivery_escaping_exception;
          Alcotest.test_case "handler aware" `Quick delivery_handler_aware;
          Alcotest.test_case "literal divisor" `Quick delivery_div_literal;
          Alcotest.test_case "through functions" `Quick
            delivery_must_emit_through_functions;
        ] );
      ( "duplication",
        [
          Alcotest.test_case "single ok" `Quick dup_single_ok;
          Alcotest.test_case "acyclic double ok" `Quick dup_acyclic_double_ok;
          Alcotest.test_case "cyclic copy rejected" `Quick dup_cyclic_copy_rejected;
          Alcotest.test_case "OnNeighbor counts double" `Quick
            dup_onneighbor_counts_double;
          Alcotest.test_case "flood rejected" `Quick dup_flood_rejected;
        ] );
      ( "verifier",
        [
          Alcotest.test_case "passes bundled ASPs" `Quick verifier_passes_bundled_asps;
          Alcotest.test_case "gate" `Quick verifier_gate;
          Alcotest.test_case "first failure" `Quick verifier_first_failure_order;
        ] );
    ]
