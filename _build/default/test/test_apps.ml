(* Tests for the application layer: workload generators and the pieces of
   the three experiments (audio, HTTP, MPEG). *)

module Rng = Asp.Rng
module Loadgen = Asp.Loadgen
module Http_app = Asp.Http_app
module Audio_app = Asp.Audio_app
module Mpeg_app = Asp.Mpeg_app
module Node = Netsim.Node
module Topology = Netsim.Topology
module Payload = Netsim.Payload

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ---------- rng ---------- *)

let rng_deterministic () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check (float 0.0)) "same stream" (Rng.float a) (Rng.float b)
  done

let rng_bounds () =
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 1000 do
    let n = Rng.int rng 10 in
    checkb "in range" true (n >= 0 && n < 10)
  done

let rng_zipf_skew () =
  let rng = Rng.create ~seed:11 in
  let counts = Array.make 101 0 in
  for _ = 1 to 10_000 do
    let rank = Rng.zipf rng ~n:100 ~alpha:1.0 in
    counts.(rank) <- counts.(rank) + 1
  done;
  checkb "rank 1 most popular" true (counts.(1) > counts.(10));
  checkb "rank 10 beats rank 90" true (counts.(10) > counts.(90));
  checkb "rank 1 a large share" true (counts.(1) > 1000)

let rng_exponential_mean () =
  let rng = Rng.create ~seed:5 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng ~mean:2.0
  done;
  let mean = !sum /. float_of_int n in
  checkb "mean close to 2" true (mean > 1.8 && mean < 2.2)

(* ---------- loadgen ---------- *)

let loadgen_rate () =
  let topo = Topology.create () in
  let a = Topology.add_host topo "a" "10.0.0.1" in
  let b = Topology.add_host topo "b" "10.0.0.2" in
  ignore (Topology.connect topo ~bandwidth_bps:100e6 a b);
  Topology.compute_routes topo;
  let gen =
    Loadgen.start ~packet_size:1000 a ~dst:(Node.addr b)
      ~schedule:[ (0.0, 100.0) ] ~until:10.0 ()
  in
  Topology.run topo;
  (* 100 kB/s for 10 s at 1000 B per packet = ~1000 packets *)
  checkb "about 1000 packets" true
    (abs (Loadgen.packets_sent gen - 1000) <= 2);
  check "bytes" (Loadgen.packets_sent gen * 1000) (Loadgen.bytes_sent gen)

let loadgen_schedule_steps () =
  let topo = Topology.create () in
  let a = Topology.add_host topo "a" "10.0.0.1" in
  let b = Topology.add_host topo "b" "10.0.0.2" in
  ignore (Topology.connect topo ~bandwidth_bps:100e6 a b);
  Topology.compute_routes topo;
  let gen =
    Loadgen.start ~packet_size:1000 a ~dst:(Node.addr b)
      ~schedule:[ (0.0, 0.0); (5.0, 100.0) ]
      ~until:10.0 ()
  in
  Topology.run topo;
  (* paused for 5 s, then 100 kB/s for 5 s *)
  checkb "about 500 packets" true (abs (Loadgen.packets_sent gen - 500) <= 2)

(* ---------- http ---------- *)

let http_file_sizes_deterministic () =
  check "same twice" (Http_app.file_size 17) (Http_app.file_size 17);
  checkb "bounded" true
    (List.for_all
       (fun i ->
         let s = Http_app.file_size i in
         s >= 256 && s <= 262_144)
       (List.init 500 Fun.id))

let http_trace () =
  let trace = Http_app.Trace.generate ~requests:100 ~files:10 ~seed:1 () in
  check "remaining" 100 (Http_app.Trace.remaining trace);
  let pulled = List.init 100 (fun _ -> Option.get (Http_app.Trace.pull trace)) in
  checkb "ids in range" true (List.for_all (fun i -> i >= 1 && i <= 10) pulled);
  checkb "exhausted" true (Option.is_none (Http_app.Trace.pull trace))

let http_trace_file_roundtrip () =
  let trace = Http_app.Trace.generate ~requests:50 ~files:7 ~seed:9 () in
  let original = List.init 50 (fun _ -> Option.get (Http_app.Trace.pull trace)) in
  let trace2 = Http_app.Trace.generate ~requests:50 ~files:7 ~seed:9 () in
  let path = Filename.temp_file "trace" ".txt" in
  Http_app.Trace.save trace2 path;
  let loaded = Http_app.Trace.load path in
  Sys.remove path;
  check "count survives" 50 (Http_app.Trace.remaining loaded);
  let replayed = List.init 50 (fun _ -> Option.get (Http_app.Trace.pull loaded)) in
  Alcotest.(check (list int)) "same ids in order" original replayed

let http_end_to_end_small () =
  let topo = Topology.create () in
  let server_node = Topology.add_host topo "server" "10.0.0.1" in
  let client_node = Topology.add_host topo "client" "10.0.0.2" in
  ignore (Topology.connect topo ~bandwidth_bps:100e6 server_node client_node);
  Topology.compute_routes topo;
  let server = Http_app.Server.start server_node () in
  let trace = Http_app.Trace.generate ~requests:20 ~files:5 ~seed:2 () in
  let client =
    Http_app.Client.start ~warmup:0.0 client_node ~server:(Node.addr server_node)
      ~workers:2 ~trace ()
  in
  Topology.run_until topo ~stop:30.0;
  check "all 20 requests served" 20 (Http_app.Server.requests_served server);
  check "all 20 responses completed" 20 (Http_app.Client.completed client);
  check "nothing in flight" 0 (Http_app.Client.in_flight client);
  checkb "responses took time" true (Http_app.Client.mean_response_time client > 0.0)

let http_gateway_balances () =
  (* Native gateway splits a stream of distinct connections ~evenly. *)
  let topo = Topology.create () in
  let gw = Topology.add_host topo "gw" "10.3.0.254" in
  let s0 = Topology.add_host topo "s0" "10.3.0.1" in
  let s1 = Topology.add_host topo "s1" "10.3.0.2" in
  let client = Topology.add_host topo "c" "10.4.0.1" in
  let seg = Topology.segment topo ~bandwidth_bps:100e6 () in
  ignore (Topology.attach topo seg gw);
  ignore (Topology.attach topo seg s0);
  ignore (Topology.attach topo seg s1);
  ignore (Topology.connect topo gw client);
  Topology.compute_routes topo;
  let vip = Netsim.Addr.of_string "10.3.0.100" in
  Netsim.Routing.set_default (Node.routing client)
    (Some { Netsim.Routing.ifindex = 0; next_hop = Some (Node.addr gw) });
  let counter =
    Asp.Http_asp.install_native_gateway gw ~vip
      ~servers:(Node.addr s0, Node.addr s1) ()
  in
  let hits0 = ref 0 and hits1 = ref 0 in
  Node.on_tcp s0 ~port:80 (fun _ _ -> incr hits0);
  Node.on_tcp s1 ~port:80 (fun _ _ -> incr hits1);
  for i = 1 to 10 do
    Node.send_tcp client ~dst:vip ~src_port:(1000 + i) ~dst_port:80
      (Payload.of_string "GET")
  done;
  Topology.run topo;
  check "all rewritten" 10 !counter;
  check "s0 share" 5 !hits0;
  check "s1 share" 5 !hits1

let http_gateway_connection_affinity () =
  (* Same client port twice -> same physical server, via the table. *)
  let topo = Topology.create () in
  let gw = Topology.add_host topo "gw" "10.3.0.254" in
  let s0 = Topology.add_host topo "s0" "10.3.0.1" in
  let s1 = Topology.add_host topo "s1" "10.3.0.2" in
  let client = Topology.add_host topo "c" "10.4.0.1" in
  let seg = Topology.segment topo ~bandwidth_bps:100e6 () in
  ignore (Topology.attach topo seg gw);
  ignore (Topology.attach topo seg s0);
  ignore (Topology.attach topo seg s1);
  ignore (Topology.connect topo gw client);
  Topology.compute_routes topo;
  let vip = Netsim.Addr.of_string "10.3.0.100" in
  Netsim.Routing.set_default (Node.routing client)
    (Some { Netsim.Routing.ifindex = 0; next_hop = Some (Node.addr gw) });
  (* Use the PLAN-P gateway here: exercises the hash-table path. *)
  ignore
    (Extnet.load_exn gw
       ~source:
         (Asp.Http_asp.gateway_program ~vip:"10.3.0.100"
            ~servers:("10.3.0.1", "10.3.0.2") ())
       ());
  let hits0 = ref 0 and hits1 = ref 0 in
  Node.on_tcp s0 ~port:80 (fun _ _ -> incr hits0);
  Node.on_tcp s1 ~port:80 (fun _ _ -> incr hits1);
  (* three packets of one connection, then one of another *)
  for _ = 1 to 3 do
    Node.send_tcp client ~dst:vip ~src_port:7777 ~dst_port:80
      (Payload.of_string "x")
  done;
  Node.send_tcp client ~dst:vip ~src_port:8888 ~dst_port:80
    (Payload.of_string "y");
  Topology.run topo;
  check "total" 4 (!hits0 + !hits1);
  checkb "affinity: one server got all three" true
    ((!hits0 = 3 && !hits1 = 1) || (!hits0 = 1 && !hits1 = 3))

(* ---------- audio app ---------- *)

let audio_client_counts_gaps () =
  let topo = Topology.create () in
  let src = Topology.add_host topo "src" "10.0.0.1" in
  let dst = Topology.add_host topo "dst" "10.0.0.2" in
  ignore (Topology.connect topo ~bandwidth_bps:100e6 src dst);
  Topology.compute_routes topo;
  let client = Audio_app.Client.attach dst () in
  let source = Audio_app.Source.start src ~until:2.0 () in
  Topology.run_until topo ~stop:3.0;
  let sent = Audio_app.Source.frames_sent source in
  check "all received" sent (Audio_app.Client.frames_received client);
  let periods, silent =
    Audio_app.Client.silent_periods client ~frames_expected:sent
  in
  check "no gaps" 0 periods;
  check "no silent frames" 0 silent;
  (* pretend 10 more frames were expected: one trailing gap *)
  let periods, silent =
    Audio_app.Client.silent_periods client ~frames_expected:(sent + 10)
  in
  check "one trailing gap" 1 periods;
  check "ten silent" 10 silent

(* ---------- mpeg app ---------- *)

let mpeg_setup_codec () =
  let setup = { Mpeg_app.file_id = 9; total_frames = 360 } in
  (match Mpeg_app.decode_setup (Mpeg_app.encode_setup setup) with
  | Some decoded ->
      check "file" 9 decoded.Mpeg_app.file_id;
      check "frames" 360 decoded.Mpeg_app.total_frames
  | None -> Alcotest.fail "setup roundtrip");
  checkb "rejects junk" true
    (Option.is_none (Mpeg_app.decode_setup (Payload.of_string "nope")))

let mpeg_direct_streaming () =
  let topo = Topology.create () in
  let server_node = Topology.add_host topo "server" "10.0.0.1" in
  let client_node = Topology.add_host topo "client" "10.0.0.2" in
  ignore (Topology.connect topo ~bandwidth_bps:100e6 server_node client_node);
  Topology.compute_routes topo;
  let server = Mpeg_app.Server.start server_node ~movie_frames:48 () in
  (* no monitor deployed: the client must fall back to a direct PLAY *)
  let client =
    Mpeg_app.Client.start client_node ~server:(Node.addr server_node)
      ~monitor:(Netsim.Addr.of_string "10.0.0.99")
      ~file:3 ~at:0.1 ()
  in
  Topology.run_until topo ~stop:10.0;
  check "one stream" 1 (Mpeg_app.Server.streams_opened server);
  check "all frames" 48 (Mpeg_app.Client.frames_received client);
  Alcotest.(check (option bool)) "went direct" (Some false)
    (Mpeg_app.Client.used_existing client);
  (match Mpeg_app.Client.setup_received client with
  | Some setup -> check "setup frames" 48 setup.Mpeg_app.total_frames
  | None -> Alcotest.fail "no setup received")

let mpeg_gop_sizes () =
  check "I" 12000 (Mpeg_app.frame_size Mpeg_app.I_frame);
  check "gop length" 9 (Array.length Mpeg_app.gop_pattern);
  checkb "starts with I" true (Mpeg_app.gop_pattern.(0) = Mpeg_app.I_frame)

(* ---------- ASP source generators ---------- *)

let asp_sources_check () =
  List.iter
    (fun (name, source) ->
      match Extnet.check_source source with
      | Ok _ -> ()
      | Error message -> Alcotest.failf "%s: %s" name message)
    [
      ("audio router", Asp.Audio_asp.router_program ~iface:0 ());
      ("audio router alt policy",
        Asp.Audio_asp.router_program
          ~policy:{ Asp.Audio_asp.mono16_above = 1; mono8_above = 2 }
          ~iface:3 ());
      ("audio client", Asp.Audio_asp.client_program ());
      ("http gateway",
        Asp.Http_asp.gateway_program ~vip:"1.2.3.4" ~servers:("5.6.7.8", "9.10.11.12") ());
      ("mpeg monitor", Asp.Mpeg_asp.monitor_program ~server:"1.2.3.4" ());
      ("mpeg capture", Asp.Mpeg_asp.capture_program ());
    ]

let asp_line_counts () =
  (* The paper's Fig. 3 reports 28-161 lines; ours are the same order. *)
  List.iter
    (fun (name, source, low, high) ->
      let lines = Planp.Ast.line_count source in
      if lines < low || lines > high then
        Alcotest.failf "%s: %d lines outside [%d, %d]" name lines low high)
    [
      ("audio router", Asp.Audio_asp.router_program ~iface:0 (), 15, 80);
      ("audio client", Asp.Audio_asp.client_program (), 10, 40);
      ( "http gateway",
        Asp.Http_asp.gateway_program ~vip:"1.2.3.4" ~servers:("5.6.7.8", "9.9.9.9") (),
        20, 100 );
      ("mpeg monitor", Asp.Mpeg_asp.monitor_program ~server:"1.2.3.4" (), 30, 170);
      ("mpeg capture", Asp.Mpeg_asp.capture_program (), 10, 60);
    ]

let () =
  Alcotest.run "asp-apps"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick rng_deterministic;
          Alcotest.test_case "bounds" `Quick rng_bounds;
          Alcotest.test_case "zipf skew" `Quick rng_zipf_skew;
          Alcotest.test_case "exponential mean" `Quick rng_exponential_mean;
        ] );
      ( "loadgen",
        [
          Alcotest.test_case "rate" `Quick loadgen_rate;
          Alcotest.test_case "schedule steps" `Quick loadgen_schedule_steps;
        ] );
      ( "http",
        [
          Alcotest.test_case "file sizes" `Quick http_file_sizes_deterministic;
          Alcotest.test_case "trace" `Quick http_trace;
          Alcotest.test_case "trace file roundtrip" `Quick http_trace_file_roundtrip;
          Alcotest.test_case "end to end" `Quick http_end_to_end_small;
          Alcotest.test_case "gateway balances" `Quick http_gateway_balances;
          Alcotest.test_case "connection affinity" `Quick
            http_gateway_connection_affinity;
        ] );
      ( "audio",
        [ Alcotest.test_case "client counts gaps" `Quick audio_client_counts_gaps ] );
      ( "mpeg",
        [
          Alcotest.test_case "setup codec" `Quick mpeg_setup_codec;
          Alcotest.test_case "direct streaming" `Quick mpeg_direct_streaming;
          Alcotest.test_case "gop sizes" `Quick mpeg_gop_sizes;
        ] );
      ( "asp-sources",
        [
          Alcotest.test_case "type check" `Quick asp_sources_check;
          Alcotest.test_case "line counts" `Quick asp_line_counts;
        ] );
    ]
