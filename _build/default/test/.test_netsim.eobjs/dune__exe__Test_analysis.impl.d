test/test_analysis.ml: Alcotest Asp List Option Planp Planp_analysis Planp_runtime String
