test/test_planp_runtime.ml: Alcotest Char Hashtbl List Netsim Option Planp Planp_runtime
