test/test_planp_lang.ml: Alcotest Asp Format Fun List Option Planp Planp_runtime Printf String
