test/test_netsim.ml: Alcotest Array List Netsim Option String
