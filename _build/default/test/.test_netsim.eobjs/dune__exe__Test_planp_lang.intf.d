test/test_planp_lang.mli:
