test/test_extensions.ml: Alcotest Asp Extnet Float List Netsim Option Planp_runtime Printf
