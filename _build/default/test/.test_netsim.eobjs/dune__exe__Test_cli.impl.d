test/test_cli.ml: Alcotest Filename List Planp Printf String Sys
