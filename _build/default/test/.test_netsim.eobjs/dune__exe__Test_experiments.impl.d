test/test_experiments.ml: Alcotest Asp Extnet Float List Netsim Planp_jit Planp_runtime
