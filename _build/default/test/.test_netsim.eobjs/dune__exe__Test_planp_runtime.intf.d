test/test_planp_runtime.mli:
