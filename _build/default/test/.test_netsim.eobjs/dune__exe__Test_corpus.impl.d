test/test_corpus.ml: Alcotest Extnet Filename Hashtbl List Netsim Planp_jit Planp_runtime Printf String
