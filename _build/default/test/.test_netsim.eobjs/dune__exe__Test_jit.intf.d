test/test_jit.mli:
