test/test_apps.ml: Alcotest Array Asp Extnet Filename Fun List Netsim Option Planp Sys
