test/test_jit.ml: Alcotest Array Asp Buffer Hashtbl List Netsim Option Planp Planp_jit Planp_runtime Printf String
