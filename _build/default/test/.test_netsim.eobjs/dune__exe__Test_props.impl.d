test/test_props.ml: Alcotest Array Asp Bytes Char Extnet Float List Netsim Planp Planp_analysis Planp_jit Planp_runtime Printf QCheck QCheck_alcotest String
