(* Unit tests for the PLAN-P front end: lexer, parser, types, type checker,
   pretty printer. *)

module Token = Planp.Token
module Lexer = Planp.Lexer
module Parser = Planp.Parser
module Ast = Planp.Ast
module Ptype = Planp.Ptype
module Typecheck = Planp.Typecheck

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

let tokens source = List.map fst (Lexer.tokenize source)

(* ---------- lexer ---------- *)

let lex_basic () =
  match tokens "val x : int = 1 + 2" with
  | [ Token.KW_val; Token.IDENT "x"; Token.COLON; Token.IDENT "int"; Token.EQ;
      Token.INT 1; Token.PLUS; Token.INT 2; Token.EOF ] ->
      ()
  | _ -> Alcotest.fail "unexpected token stream"

let lex_counts_eof () =
  (* the previous test pattern-matched 9 tokens but checked 8: EOF included *)
  check "eof included" 9 (List.length (tokens "val x : int = 1 + 2"))

let lex_host_literal () =
  match tokens "131.254.60.81" with
  | [ Token.HOST h; Token.EOF ] ->
      check "packed" ((131 lsl 24) lor (254 lsl 16) lor (60 lsl 8) lor 81) h
  | _ -> Alcotest.fail "host literal not lexed"

let lex_comments () =
  check "line comment" 1 (List.length (tokens "-- nothing here\n"));
  check "block comment" 1 (List.length (tokens "(* hi (* nested *) bye *)"));
  check "code after comment" 2 (List.length (tokens "-- c\nx"))

let lex_strings_chars () =
  (match tokens {|"a\nb"|} with
  | [ Token.STRING "a\nb"; Token.EOF ] -> ()
  | _ -> Alcotest.fail "string escape");
  match tokens "'P'" with
  | [ Token.CHAR 'P'; Token.EOF ] -> ()
  | _ -> Alcotest.fail "char literal"

let lex_operators () =
  match tokens "<> <= >= => = < >" with
  | [ Token.NE; Token.LE; Token.GE; Token.DARROW; Token.EQ; Token.LT;
      Token.GT; Token.EOF ] ->
      ()
  | _ -> Alcotest.fail "operators"

let lex_proj () =
  match tokens "#3" with
  | [ Token.PROJ 3; Token.EOF ] -> ()
  | _ -> Alcotest.fail "projection"

let lex_errors () =
  let fails source =
    match Lexer.tokenize source with
    | exception Lexer.Error _ -> ()
    | _ -> Alcotest.failf "lexer accepted %S" source
  in
  fails "\"unterminated";
  fails "'x";
  fails "''";
  fails "1.2.3.999";
  fails "@";
  fails "#x"

(* ---------- parser ---------- *)

let parse_expr_desc source = (Parser.parse_expr source).Ast.desc

let parser_precedence () =
  (match parse_expr_desc "1 + 2 * 3" with
  | Ast.Binop (Ast.Add, _, { Ast.desc = Ast.Binop (Ast.Mul, _, _); _ }) -> ()
  | _ -> Alcotest.fail "mul binds tighter than add");
  (match parse_expr_desc "a orelse b andalso c" with
  | Ast.Binop (Ast.Or, _, { Ast.desc = Ast.Binop (Ast.And, _, _); _ }) -> ()
  | _ -> Alcotest.fail "andalso binds tighter than orelse");
  match parse_expr_desc "1 + 2 = 3" with
  | Ast.Binop (Ast.Eq, { Ast.desc = Ast.Binop (Ast.Add, _, _); _ }, _) -> ()
  | _ -> Alcotest.fail "arith binds tighter than comparison"

let parser_tuple_vs_seq () =
  (match parse_expr_desc "(1, 2, 3)" with
  | Ast.Tuple [ _; _; _ ] -> ()
  | _ -> Alcotest.fail "tuple");
  (match parse_expr_desc "(f(); g(); 3)" with
  | Ast.Seq (_, { Ast.desc = Ast.Seq (_, _); _ }) -> ()
  | _ -> Alcotest.fail "sequence");
  match parse_expr_desc "(1)" with
  | Ast.Int 1 -> ()
  | _ -> Alcotest.fail "grouping"

let parser_let () =
  match parse_expr_desc "let val x : int = 1 val y : int = 2 in x + y end" with
  | Ast.Let ([ b1; b2 ], _) ->
      checks "x" "x" b1.Ast.bind_name;
      checks "y" "y" b2.Ast.bind_name
  | _ -> Alcotest.fail "let bindings"

let parser_try () =
  match parse_expr_desc "try f() handle A => 1, B => 2 end" with
  | Ast.Try (_, [ ("A", _); ("B", _) ]) -> ()
  | _ -> Alcotest.fail "try handlers"

let parser_onremote () =
  match parse_expr_desc "OnRemote(network, p)" with
  | Ast.On_remote ("network", { Ast.desc = Ast.Var "p"; _ }) -> ()
  | _ -> Alcotest.fail "OnRemote"

let parser_projection_chain () =
  match parse_expr_desc "#1 #2 p" with
  | Ast.Proj (1, { Ast.desc = Ast.Proj (2, _); _ }) -> ()
  | _ -> Alcotest.fail "nested projection"

let parser_types () =
  checkb "tuple type" true
    (Ptype.equal
       (Parser.parse_type "ip*tcp*blob")
       (Ptype.Ttuple [ Ptype.Tip; Ptype.Ttcp; Ptype.Tblob ]));
  checkb "hash type" true
    (Ptype.equal
       (Parser.parse_type "(host*int, int) hash_table")
       (Ptype.Thash (Ptype.Ttuple [ Ptype.Thost; Ptype.Tint ], Ptype.Tint)));
  checkb "grouping" true
    (Ptype.equal (Parser.parse_type "(int)") Ptype.Tint)

let parser_channel () =
  let program =
    Parser.parse
      {|channel network(ps : int, ss : unit, p : ip*tcp*blob)
        initstate () is (OnRemote(network, p); (ps, ss))|}
  in
  match Ast.channels program with
  | [ chan ] ->
      checks "name" "network" chan.Ast.chan_name;
      checkb "initstate" true (Option.is_some chan.Ast.initstate);
      checkb "packet type" true (Ptype.is_packet chan.Ast.pkt_type)
  | _ -> Alcotest.fail "channel parse"

let parser_errors () =
  let fails source =
    match Parser.parse source with
    | exception Parser.Error _ -> ()
    | exception Lexer.Error _ -> ()
    | _ -> Alcotest.failf "parser accepted %S" source
  in
  fails "val";
  fails "val x = 1";  (* missing type annotation *)
  fails "channel c(ps : int) is ()";  (* channels need three params *)
  fails "let in x end";  (* empty binding list *)
  fails "if x then y";  (* missing else *)
  fails "fun f(x : int) = x";  (* missing return type *)
  fails "val x : int = (1, )";
  fails "val x : (int) hash_table = mkTable(4)"  (* hash needs two args *)

(* ---------- pretty printer ---------- *)

let pretty_roundtrip_sources =
  [
    Asp.Audio_asp.router_program ~iface:1 ();
    Asp.Audio_asp.client_program ();
    Asp.Http_asp.gateway_program ~vip:"10.3.0.100"
      ~servers:("10.3.0.1", "10.3.0.2") ();
    Asp.Mpeg_asp.monitor_program ~server:"10.6.0.1" ();
    Asp.Mpeg_asp.capture_program ();
  ]

(* Strip locations by structural comparison of the printable form. *)
let pretty_roundtrip () =
  List.iter
    (fun source ->
      let ast = Parser.parse source in
      let printed = Planp.Pretty.program_to_string ast in
      let reparsed =
        try Parser.parse printed
        with Parser.Error (m, loc) ->
          Alcotest.failf "reparse failed: %s at %s\n%s" m
            (Planp.Loc.to_string loc) printed
      in
      let printed_again = Planp.Pretty.program_to_string reparsed in
      checks "fixed point" printed printed_again)
    pretty_roundtrip_sources

(* ---------- type checker ---------- *)

let prims =
  Planp_runtime.Prims.install ();
  Planp_runtime.Prim.type_lookup

let accepts source =
  match Typecheck.check ~prims (Parser.parse source) with
  | Ok _ -> ()
  | Error e ->
      Alcotest.failf "rejected: %s (%s)"
        (Format.asprintf "%a" Typecheck.pp_error e)
        source

let rejects ?substring source =
  match Typecheck.check ~prims (Parser.parse source) with
  | Ok _ -> Alcotest.failf "accepted: %s" source
  | Error e -> (
      match substring with
      | None -> ()
      | Some sub ->
          let message = e.Typecheck.message in
          if
            not
              (List.exists
                 (fun i -> String.length sub <= String.length message - i
                           && String.sub message i (String.length sub) = sub)
                 (List.init (String.length message) Fun.id))
          then Alcotest.failf "error %S does not mention %S" message sub)

let simple_channel body =
  Printf.sprintf
    "channel network(ps : int, ss : int, p : ip*tcp*blob) is %s" body

let tc_good_programs () =
  accepts "val x : int = 1 + 2 * 3";
  accepts "val s : string = itos(42) ^ \"!\"";
  accepts "fun double(n : int) : int = n + n  val x : int = double(21)";
  accepts (simple_channel "(OnRemote(network, p); (ps + 1, ss))");
  accepts
    "exception E\n\
     channel network(ps : int, ss : int, p : ip*udp*blob) is\n\
     try (OnRemote(network, p); (ps, ss)) handle E => (deliver(p); (ps, ss)) end";
  accepts
    "protostate (host, int) hash_table = mkTable(4)\n\
     channel network(ps : (host, int) hash_table, ss : int, p : ip*tcp*blob) is\n\
     (tblSet(ps, ipSrc(#1 p), 1); OnRemote(network, p); (ps, ss))"

let tc_unbound_and_shadowing () =
  rejects ~substring:"unbound" "val x : int = y";
  rejects ~substring:"unknown" "val x : int = notAPrim(1)";
  (* let shadows outward-in *)
  accepts "val x : int = let val x : string = \"s\" val y : int = strlen(x) in y end"

let tc_type_mismatches () =
  rejects ~substring:"expected" "val x : int = true";
  rejects "val x : int = 1 + \"s\"";
  rejects ~substring:"different types" "val b : bool = 1 = \"s\"";
  rejects ~substring:"equality" "val b : bool = stob(\"a\") = stob(\"b\")";
  rejects ~substring:"ordering" "val b : bool = true < false";
  rejects ~substring:"condition" "val x : int = if 1 then 2 else 3";
  rejects ~substring:"branches" "val x : int = if true then 2 else \"s\""

let tc_sequences () =
  rejects ~substring:"discards" (simple_channel "(1 + 1; (ps, ss))");
  accepts (simple_channel "(print(\"x\"); OnRemote(network, p); (ps, ss))")

let tc_channels () =
  rejects ~substring:"must return"
    "channel network(ps : int, ss : int, p : ip*tcp*blob) is (OnRemote(network, p); ps)";
  rejects ~substring:"headed by ip"
    "channel network(ps : int, ss : int, p : int*int) is (ps, ss)";
  rejects ~substring:"duplicate overload"
    "channel network(ps : int, ss : int, p : ip*tcp*blob) is (OnRemote(network, p); (ps, ss))\n\
     channel network(ps : int, ss : int, p : ip*tcp*blob) is (OnRemote(network, p); (ps, ss))";
  rejects ~substring:"disagrees"
    "channel network(ps : int, ss : int, p : ip*tcp*blob) is (OnRemote(network, p); (ps, ss))\n\
     channel network(ps : bool, ss : int, p : ip*udp*blob) is (OnRemote(network, p); (ps, ss))";
  (* overloads with distinct packet types are fine *)
  accepts
    "channel network(ps : int, ss : int, p : ip*tcp*char*int) is (OnRemote(network, p); (ps, ss))\n\
     channel network(ps : int, ss : int, p : ip*tcp*char*bool) is (OnRemote(network, p); (ps, ss))"

let tc_onremote () =
  rejects ~substring:"unknown channel"
    (simple_channel "(OnRemote(nowhere, p); (ps, ss))");
  rejects ~substring:"not a packet"
    (simple_channel "(OnRemote(network, 1 + 1); (ps, ss))");
  (* user channel with matching overload *)
  accepts
    "channel extra(ps : int, ss : int, p : ip*udp*int) is (deliver(p); (ps, ss))\n\
     channel network(ps : int, ss : int, p : ip*udp*blob) is\n\
     (OnRemote(extra, (#1 p, #2 p, 42)); (ps, ss))";
  rejects ~substring:"no overload"
    "channel extra(ps : int, ss : int, p : ip*udp*int) is (deliver(p); (ps, ss))\n\
     channel network(ps : int, ss : int, p : ip*udp*blob) is\n\
     (OnRemote(extra, (#1 p, #2 p, true)); (ps, ss))"

let tc_exceptions () =
  rejects ~substring:"undeclared" "val x : int = try 1 handle Nope => 2 end";
  rejects ~substring:"undeclared"
    (simple_channel "(raise Nope; (ps, ss))");
  (* a body raising on every path is rejected for channels *)
  rejects ~substring:"every path"
    "exception E\nchannel network(ps : int, ss : int, p : ip*tcp*blob) is raise E";
  (* raise adapts to any expected type in one branch *)
  accepts
    "exception E\nfun f(b : bool) : int = if b then 1 else raise E"

let tc_functions () =
  (* recursion is impossible: the function is not in scope in its own body *)
  rejects ~substring:"unknown" "fun f(n : int) : int = f(n)";
  rejects ~substring:"unknown" "fun f(n : int) : int = g(n)\nfun g(n : int) : int = n";
  rejects ~substring:"expects 2"
    "fun add(a : int, b : int) : int = a + b\nval x : int = add(1)";
  rejects ~substring:"duplicate function"
    "fun f(n : int) : int = n\nfun f(n : int) : int = n"

let tc_protostate () =
  rejects ~substring:"multiple protostate"
    "protostate int = 0\nprotostate int = 1";
  rejects ~substring:"explicit protostate"
    "channel network(ps : (int, int) hash_table, ss : int, p : ip*tcp*blob) is (deliver(p); (ps, ss))";
  rejects ~substring:"initializer"
    "protostate int = true";
  accepts
    "protostate host*int = (0.0.0.0, 0)\n\
     channel network(ps : host*int, ss : int, p : ip*udp*blob) is (deliver(p); (ps, ss))"

let tc_initstate () =
  rejects ~substring:"needs an initstate"
    "channel network(ps : int, ss : (int, int) hash_table, p : ip*tcp*blob) is (deliver(p); (ps, ss))";
  accepts
    "channel network(ps : int, ss : (int, int) hash_table, p : ip*tcp*blob)\n\
     initstate mkTable(8) is (deliver(p); (ps, ss))"

let tc_table_typing () =
  rejects ~substring:"does not match"
    "channel network(ps : int, ss : (int, int) hash_table, p : ip*tcp*blob)\n\
     initstate mkTable(8) is (tblSet(ss, true, 1); deliver(p); (ps, ss))";
  rejects ~substring:"does not match"
    "channel network(ps : int, ss : (int, int) hash_table, p : ip*tcp*blob)\n\
     initstate mkTable(8) is (tblSet(ss, 1, true); deliver(p); (ps, ss))"

let tc_paper_fragment () =
  (* A faithful transcription of the paper's Fig. 2 fragment (completed). *)
  accepts
    {|
fun getSetS(src : host, dst : host, port : int,
            ss : (host*int, int) hash_table, ps : int) : int =
  let
    val key : host*int = (src, port)
  in
    if tblMem(ss, key) then tblGet(ss, key, 0)
    else
      let val chosen : int = ps mod 2 in
        (tblSet(ss, key, chosen); chosen)
      end
  end

channel network(ps : int, ss : (host*int, int) hash_table, p : ip*tcp*blob)
initstate mkTable(256) is
  let
    val iph : ip = #1 p
    val tcph : tcp = #2 p
    val body : blob = #3 p
  in
    if tcpDst(tcph) = 80 then
      let
        val con : int = getSetS(ipSrc(iph), ipDst(iph), tcpSrc(tcph), ss, ps)
      in
        if con = 0 then
          (OnRemote(network, (ipDestSet(iph, 131.254.60.81), tcph, body));
           (con, ss))
        else
          (OnRemote(network, (ipDestSet(iph, 131.254.60.109), tcph, body));
           (con, ss))
      end
    else
      (OnRemote(network, p); (ps, ss))
  end
|}

let tc_line_count () =
  check "counts code lines" 2 (Ast.line_count "val x : int = 1\n-- comment\n\nval y : int = 2")

let () =
  Alcotest.run "planp-lang"
    [
      ( "lexer",
        [
          Alcotest.test_case "basic" `Quick lex_counts_eof;
          Alcotest.test_case "token kinds" `Quick lex_basic;
          Alcotest.test_case "host literal" `Quick lex_host_literal;
          Alcotest.test_case "comments" `Quick lex_comments;
          Alcotest.test_case "strings and chars" `Quick lex_strings_chars;
          Alcotest.test_case "operators" `Quick lex_operators;
          Alcotest.test_case "projection" `Quick lex_proj;
          Alcotest.test_case "errors" `Quick lex_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "precedence" `Quick parser_precedence;
          Alcotest.test_case "tuple vs sequence" `Quick parser_tuple_vs_seq;
          Alcotest.test_case "let" `Quick parser_let;
          Alcotest.test_case "try" `Quick parser_try;
          Alcotest.test_case "OnRemote" `Quick parser_onremote;
          Alcotest.test_case "projection chain" `Quick parser_projection_chain;
          Alcotest.test_case "types" `Quick parser_types;
          Alcotest.test_case "channel" `Quick parser_channel;
          Alcotest.test_case "errors" `Quick parser_errors;
        ] );
      ( "pretty",
        [ Alcotest.test_case "roundtrip on bundled ASPs" `Quick pretty_roundtrip ] );
      ( "typecheck",
        [
          Alcotest.test_case "good programs" `Quick tc_good_programs;
          Alcotest.test_case "unbound/shadowing" `Quick tc_unbound_and_shadowing;
          Alcotest.test_case "type mismatches" `Quick tc_type_mismatches;
          Alcotest.test_case "sequences" `Quick tc_sequences;
          Alcotest.test_case "channels" `Quick tc_channels;
          Alcotest.test_case "OnRemote" `Quick tc_onremote;
          Alcotest.test_case "exceptions" `Quick tc_exceptions;
          Alcotest.test_case "functions" `Quick tc_functions;
          Alcotest.test_case "protostate" `Quick tc_protostate;
          Alcotest.test_case "initstate" `Quick tc_initstate;
          Alcotest.test_case "table typing" `Quick tc_table_typing;
          Alcotest.test_case "paper Fig. 2 fragment" `Quick tc_paper_fragment;
          Alcotest.test_case "line count" `Quick tc_line_count;
        ] );
    ]
