(* The worked-program corpus (examples/programs/*.planp): every program
   parses, type checks, gets the expected verifier verdict, and behaves as
   its header comment promises, on all three backends. *)

module Runtime = Planp_runtime.Runtime
module Value = Planp_runtime.Value
module Node = Netsim.Node
module Packet = Netsim.Packet
module Payload = Netsim.Payload

let () = Planp_runtime.Prims.install ()
let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)
let corpus_dir = "../examples/programs"

let read name =
  let path = Filename.concat corpus_dir name in
  let ic = open_in_bin path in
  let source = really_input_string ic (in_channel_length ic) in
  close_in ic;
  source

(* (file, expected to pass the verifier?) *)
let corpus =
  [
    ("forwarder.planp", true);
    ("port_redirect.planp", true);
    ("nat.planp", true);
    ("rate_limiter.planp", true);
    ("mirror_tap.planp", true);
    ("hop_recorder.planp", true);
    ("overloaded_commands.planp", true);
    ("neighbor_announce.planp", true);
    ("firewall.planp", false);  (* drops packets: delivery rejects *)
    ("echo_responder.planp", false);  (* 7->7 would loop: true positive *)
  ]

let corpus_checks_and_verdicts () =
  List.iter
    (fun (file, expected_pass) ->
      let source = read file in
      match Extnet.verify_source source with
      | Error message -> Alcotest.failf "%s: front end: %s" file message
      | Ok report ->
          Alcotest.(check bool)
            (file ^ " verdict") expected_pass
            (Extnet.Verifier.passes report))
    corpus

(* A loopback runtime per backend, for behavioural runs. *)
let runtimes_for source =
  List.map
    (fun backend ->
      let engine = Netsim.Engine.create () in
      let node =
        Node.create engine ~name:"n" ~addr:(Netsim.Addr.of_string "10.0.0.99")
      in
      ignore (Node.add_iface node ~name:"if0" (fun ~l2_dst:_ _ -> true));
      let rt = Runtime.attach node in
      ignore (Runtime.install_exn rt ~backend ~source ());
      (backend.Planp_runtime.Backend.backend_name, rt))
    (Planp_jit.Backends.all ())

let proto_int rt =
  match Runtime.proto_state (List.hd (Runtime.installed_programs rt)) with
  | Value.Vint n -> n
  | v -> Alcotest.failf "protocol state not an int: %s" (Value.to_string v)

let forwarder_counts () =
  List.iter
    (fun (name, rt) ->
      for _ = 1 to 5 do
        Runtime.inject rt
          (Packet.tcp ~src:1 ~dst:2 ~src_port:1 ~dst_port:80 Payload.empty)
      done;
      check (name ^ ": counted") 5 (proto_int rt);
      check (name ^ ": handled") 5 (Runtime.stats rt).Runtime.handled)
    (runtimes_for (read "forwarder.planp"))

(* Run the program on a 3-node line and report what the far end receives. *)
let through_router source packets =
  let topo = Netsim.Topology.create () in
  let a = Netsim.Topology.add_host topo "a" "192.168.1.10" in
  let r = Netsim.Topology.add_host topo "r" "10.0.0.254" in
  let b = Netsim.Topology.add_host topo "b" "10.0.0.2" in
  ignore (Netsim.Topology.connect topo a r);
  ignore (Netsim.Topology.connect topo r b);
  Netsim.Topology.compute_routes topo;
  ignore (Extnet.load_exn r ~source ());
  let seen = ref [] in
  Node.on_tcp_default b (fun _ p -> seen := p :: !seen);
  Node.on_udp_default b (fun _ p -> seen := p :: !seen);
  List.iter (fun packet -> Node.originate a packet) (packets a b);
  Netsim.Topology.run topo;
  List.rev !seen

let port_redirect_behaviour () =
  let received =
    through_router (read "port_redirect.planp") (fun a b ->
        [
          Packet.tcp ~src:(Node.addr a) ~dst:(Node.addr b) ~src_port:5000
            ~dst_port:8080 (Payload.of_string "x");
          Packet.tcp ~src:(Node.addr a) ~dst:(Node.addr b) ~src_port:5001
            ~dst_port:443 (Payload.of_string "y");
        ])
  in
  match received with
  | [ first; second ] ->
      (match first.Packet.l4 with
      | Packet.Tcp h -> check "8080 rewritten to 80" 80 h.Packet.tcp_dst
      | _ -> Alcotest.fail "tcp expected");
      (match second.Packet.l4 with
      | Packet.Tcp h -> check "443 untouched" 443 h.Packet.tcp_dst
      | _ -> Alcotest.fail "tcp expected")
  | l -> Alcotest.failf "expected 2 deliveries, got %d" (List.length l)

let nat_behaviour () =
  let received =
    through_router (read "nat.planp") (fun a b ->
        [ Packet.udp ~src:(Node.addr a) ~dst:(Node.addr b) ~src_port:1
            ~dst_port:2 Payload.empty ])
  in
  match received with
  | [ packet ] ->
      checks "source rewritten to the public address" "198.51.100.1"
        (Netsim.Addr.to_string packet.Packet.src)
  | l -> Alcotest.failf "expected 1 delivery, got %d" (List.length l)

let rate_limiter_behaviour () =
  (* On a loopback runtime: after the allowance, packets are delivered
     locally rather than forwarded — observable via node counters. *)
  List.iter
    (fun (name, rt) ->
      let node = Runtime.node rt in
      for i = 1 to 110 do
        Runtime.inject rt
          (Packet.udp ~src:3 ~dst:4 ~src_port:i ~dst_port:9 Payload.empty)
      done;
      (* 100 forwarded (no route on the bare node: dropped_no_route), 10
         delivered locally (no handler: unclaimed). *)
      check (name ^ ": forwarded allowance") 100
        (Node.counters node).Node.dropped_no_route;
      check (name ^ ": excess delivered locally") 10
        (Node.counters node).Node.dropped_unclaimed)
    (runtimes_for (read "rate_limiter.planp"))

let mirror_tap_behaviour () =
  List.iter
    (fun (name, rt) ->
      let node = Runtime.node rt in
      let tapped = ref 0 in
      Node.on_tcp node ~port:25 (fun _ _ -> incr tapped);
      Runtime.inject rt
        (Packet.tcp ~src:1 ~dst:2 ~src_port:9 ~dst_port:25 Payload.empty);
      Runtime.inject rt
        (Packet.tcp ~src:1 ~dst:2 ~src_port:9 ~dst_port:80 Payload.empty);
      check (name ^ ": monitored packet tapped") 1 !tapped;
      (* both packets also forwarded (no route on bare node) *)
      check (name ^ ": both forwarded") 2 (Node.counters node).Node.dropped_no_route)
    (runtimes_for (read "mirror_tap.planp"))

let hop_recorder_behaviour () =
  List.iter
    (fun (name, rt) ->
      List.iter
        (fun ttl ->
          Runtime.inject rt
            (Packet.udp ~ttl ~src:1 ~dst:2 ~src_port:1 ~dst_port:9 Payload.empty))
        [ 64; 64; 32 ];
      let program = List.hd (Runtime.installed_programs rt) in
      match Runtime.channel_state program "network" 0 with
      | Some (Value.Vtable table) ->
          checkb (name ^ ": ttl 64 seen twice") true
            (Value.equal (Hashtbl.find table (Value.Vint 64)) (Value.Vint 2));
          checkb (name ^ ": ttl 32 seen once") true
            (Value.equal (Hashtbl.find table (Value.Vint 32)) (Value.Vint 1))
      | _ -> Alcotest.fail "table state expected")
    (runtimes_for (read "hop_recorder.planp"))

let overloaded_commands_behaviour () =
  List.iter
    (fun (name, rt) ->
      let send bytes =
        let w = Payload.Writer.create () in
        List.iter (Payload.Writer.u8 w) bytes;
        Runtime.inject rt
          (Packet.tcp ~src:1 ~dst:2 ~src_port:1 ~dst_port:2
             (Payload.Writer.finish w))
      in
      send [ 1; 0; 0; 0; 7 ];  (* CmdA with argument 7 *)
      send [ 2; 1 ];  (* CmdB true *)
      checks (name ^ ": dispatch by shape") "CmdA: 7\nCmdB: " (Runtime.output rt))
    (runtimes_for (read "overloaded_commands.planp"))

let neighbor_announce_behaviour () =
  (* A hub with three spokes: injecting an announcement at the hub reaches
     every neighbor exactly once. *)
  let topo = Netsim.Topology.create () in
  let hub = Netsim.Topology.add_host topo "hub" "10.0.0.254" in
  let spokes =
    List.init 3 (fun i ->
        let s = Netsim.Topology.add_host topo (Printf.sprintf "s%d" i)
            (Printf.sprintf "10.0.0.%d" (i + 1)) in
        ignore (Netsim.Topology.connect topo hub s);
        s)
  in
  Netsim.Topology.compute_routes topo;
  let source = read "neighbor_announce.planp" in
  (* every node runs the program: the hub floods, spokes hear *)
  List.iter (fun node -> ignore (Extnet.load_exn node ~source ()))
    (hub :: spokes);
  let w = Payload.Writer.create () in
  Payload.Writer.u16 w 5;
  Payload.Writer.string w "hello";
  (* ifindex -1: locally originated, so OnNeighbor floods every interface *)
  Node.receive hub ~ifindex:(-1) ~l2_dst:None
    (Packet.udp ~chan_tag:"announce" ~src:(Node.addr hub) ~dst:(Node.addr hub)
       ~src_port:0 ~dst_port:0 (Payload.Writer.finish w));
  Netsim.Topology.run topo;
  List.iter
    (fun spoke ->
      match Extnet.runtime_of spoke with
      | Some rt ->
          checks
            (Node.name spoke ^ " heard it")
            "announcement: hello\n" (Runtime.output rt)
      | None -> Alcotest.fail "runtime missing")
    spokes

let firewall_requires_authentication () =
  let source = read "firewall.planp" in
  let engine = Netsim.Engine.create () in
  let node = Node.create engine ~name:"fw" ~addr:(Netsim.Addr.of_string "10.0.0.1") in
  ignore (Node.add_iface node ~name:"if0" (fun ~l2_dst:_ _ -> true));
  (match Extnet.load node ~source () with
  | Error message ->
      checkb "verifier names delivery" true
        (String.length message > 0)
  | Ok _ -> Alcotest.fail "unverified firewall admitted");
  match Extnet.load ~admission:Extnet.Authenticated node ~source () with
  | Ok _ -> ()
  | Error message -> Alcotest.failf "authenticated load failed: %s" message

let () =
  Alcotest.run "corpus"
    [
      ( "programs",
        [
          Alcotest.test_case "all check; expected verdicts" `Quick
            corpus_checks_and_verdicts;
          Alcotest.test_case "forwarder counts" `Quick forwarder_counts;
          Alcotest.test_case "port redirect" `Quick port_redirect_behaviour;
          Alcotest.test_case "nat" `Quick nat_behaviour;
          Alcotest.test_case "rate limiter" `Quick rate_limiter_behaviour;
          Alcotest.test_case "mirror tap" `Quick mirror_tap_behaviour;
          Alcotest.test_case "hop recorder" `Quick hop_recorder_behaviour;
          Alcotest.test_case "overloaded commands" `Quick
            overloaded_commands_behaviour;
          Alcotest.test_case "neighbor announce" `Quick
            neighbor_announce_behaviour;
          Alcotest.test_case "firewall needs authentication" `Quick
            firewall_requires_authentication;
        ] );
    ]
