(** Fault tolerance for the HTTP cluster — the paper's §5 "enrich the HTTP
    cluster server experiment with fault-tolerance capabilities", built on
    {!Http_asp.failover_gateway_program}.

    A health monitor runs on the gateway host: it probes both physical
    servers with tiny direct HTTP requests; consecutive missed probes mark
    a server down through the gateway ASP's [health] channel, and a
    successful probe marks it back up. The experiment crashes a server
    mid-run and compares throughput with and without the failover ASP. *)

module Monitor : sig
  type t

  (** [start gateway_node ~servers ()] begins probing.

      @param period probe interval, seconds (default 0.5)
      @param misses consecutive losses before marking down (default 2) *)
  val start :
    ?period:float ->
    ?misses:int ->
    ?probe_port:int ->
    Netsim.Node.t ->
    servers:Netsim.Addr.t * Netsim.Addr.t ->
    until:float ->
    unit ->
    t

  (** [state t] is the current (server0 up, server1 up) belief. *)
  val state : t -> bool * bool

  (** [transitions t] — how many up/down flips were signalled. *)
  val transitions : t -> int
end

type config = {
  failover : bool;  (** failover ASP vs the plain gateway ASP *)
  duration : float;
  kill_at : float;  (** when server0 crashes *)
  recover_at : float option;  (** when (if ever) server0 comes back *)
  workers : int;
  backend : Planp_runtime.Backend.t;
}

val default_config : ?failover:bool -> unit -> config

type result = {
  before_kill_rate : float;  (** replies/s in the healthy phase *)
  after_kill_rate : float;  (** replies/s once the server is dead *)
  monitor_transitions : int;
  server_loads : int * int;
  stalled_retries : int;  (** client-side request retries (stall signal) *)
}

val run : config -> result
