module Node = Netsim.Node
module Engine = Netsim.Engine

type t = {
  node : Node.t;
  dst : Netsim.Addr.t;
  port : int;
  packet_size : int;
  schedule : (float * float) list;  (* (time, kB/s), sorted *)
  until : float;
  mutable packets : int;
  mutable bytes : int;
}

(* Rate (bytes/s) in force at [time], and when it next changes. *)
let rate_at t time =
  let rec go current next_change = function
    | [] -> (current, next_change)
    | (at, kbps) :: rest ->
        if at <= time then go (kbps *. 1000.0) next_change rest
        else (current, Float.min next_change at)
  in
  go 0.0 infinity t.schedule

let rec tick t () =
  let engine = Node.engine t.node in
  let now = Engine.now engine in
  if now < t.until then begin
    let rate, next_change = rate_at t now in
    if rate <= 0.0 then begin
      (* Paused: wake up at the next schedule step. *)
      if next_change < infinity && next_change < t.until then
        Engine.schedule engine ~at:next_change (tick t)
    end
    else begin
      Node.send_udp t.node ~dst:t.dst ~src_port:t.port ~dst_port:t.port
        (Netsim.Payload.fill t.packet_size 0xAA);
      t.packets <- t.packets + 1;
      t.bytes <- t.bytes + t.packet_size;
      let interval = float_of_int t.packet_size /. rate in
      let next = Float.min (now +. interval) next_change in
      Engine.schedule engine ~at:next (tick t)
    end
  end

let start ?(packet_size = 1024) ?(port = 9) node ~dst ~schedule ~until () =
  let sorted = List.sort (fun (a, _) (b, _) -> Float.compare a b) schedule in
  let t =
    { node; dst; port; packet_size; schedule = sorted; until; packets = 0;
      bytes = 0 }
  in
  let first = match sorted with (at, _) :: _ -> at | [] -> 0.0 in
  Engine.schedule (Node.engine node) ~at:first (tick t);
  t

let packets_sent t = t.packets
let bytes_sent t = t.bytes
