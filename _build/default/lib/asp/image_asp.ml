module Node = Netsim.Node
module Engine = Netsim.Engine
module Packet = Netsim.Packet
module Payload = Netsim.Payload
module Image = Planp_runtime.Image

let image_port = 8898

let router_program ?(port = image_port) ?(one_below = 100) ?(two_below = 20)
    ~slow_iface () =
  Printf.sprintf
    {|-- Image distillation for a slow downstream link (paper 5).
-- Image responses crossing the slow interface are distilled in the
-- router: the thinner the pipe, the more aggressive the distillation.
val imagePort : int = %d
val slowIface : int = %d
val oneBelow : int = %d
val twoBelow : int = %d

fun levels(capacity : int) : int =
  if capacity < twoBelow then 2 else
  if capacity < oneBelow then 1 else 0

channel network(ps : int, ss : int, p : ip*udp*blob) is
  let
    val iph : ip = #1 p
    val udph : udp = #2 p
    val body : blob = #3 p
  in
    if udpSrc(udph) = imagePort andalso isImage(body) then
      try
        let
          val n : int = levels(linkCapacity(slowIface))
        in
          (OnRemote(network, (iph, udph, imgDistill(body, n)));
           (ps + n, ss))
        end
      handle BadImage =>
        (OnRemote(network, p); (ps, ss))
      end
    else
      (OnRemote(network, p); (ps, ss))
  end
|}
    port slow_iface one_below two_below

module Server = struct
  type t = { node : Node.t; port : int; size : int; mutable served : int }

  let on_request t node (packet : Packet.t) =
    match packet.Packet.l4 with
    | Packet.Udp { Packet.udp_src; _ }
      when Payload.length packet.Packet.body >= 4 ->
        let image_id = Payload.get_u32 packet.Packet.body 0 in
        t.served <- t.served + 1;
        let image = Image.synth ~width:t.size ~height:t.size ~seed:image_id in
        Node.send_udp node ~dst:packet.Packet.src ~src_port:t.port
          ~dst_port:udp_src (Image.encode image)
    | Packet.Udp _ | Packet.Tcp _ | Packet.Raw -> ()

  let start ?(port = image_port) ?(size = 64) node () =
    let t = { node; port; size; served = 0 } in
    Node.on_udp node ~port (on_request t);
    t

  let images_served t = t.served
end

module Client = struct
  type t = {
    node : Node.t;
    server : Netsim.Addr.t;
    port : int;
    count : int;
    size : int;
    mutable next_id : int;
    mutable requested_at : float;
    mutable got : int;
    mutable latency_sum : float;
    mutable bytes_sum : int;
    mutable fidelity_sum : float;
  }

  let request t =
    let writer = Payload.Writer.create () in
    Payload.Writer.u32 writer t.next_id;
    t.requested_at <- Engine.now (Node.engine t.node);
    Node.send_udp t.node ~dst:t.server ~src_port:(41000 + t.next_id)
      ~dst_port:t.port
      (Payload.Writer.finish writer)

  let on_image t node (packet : Packet.t) =
    ignore node;
    match Image.decode packet.Packet.body with
    | None -> ()
    | Some image ->
        let now = Engine.now (Node.engine t.node) in
        t.got <- t.got + 1;
        t.latency_sum <- t.latency_sum +. (now -. t.requested_at);
        t.bytes_sum <- t.bytes_sum + Payload.length packet.Packet.body;
        let original =
          Image.synth ~width:t.size ~height:t.size ~seed:t.next_id
        in
        t.fidelity_sum <- t.fidelity_sum +. Image.rms_error original image;
        t.next_id <- t.next_id + 1;
        if t.next_id < t.count then request t

  let start ?(port = image_port) node ~server ~count ~at () =
    let t =
      {
        node;
        server;
        port;
        count;
        size = 64;
        next_id = 0;
        requested_at = 0.0;
        got = 0;
        latency_sum = 0.0;
        bytes_sum = 0;
        fidelity_sum = 0.0;
      }
    in
    Node.on_udp_default node (on_image t);
    Engine.schedule (Node.engine node) ~at (fun () -> request t);
    t

  let received t = t.got

  let mean_latency t =
    if t.got = 0 then 0.0 else t.latency_sum /. float_of_int t.got

  let mean_bytes t =
    if t.got = 0 then 0.0 else float_of_int t.bytes_sum /. float_of_int t.got

  let mean_fidelity_error t =
    if t.got = 0 then 0.0 else t.fidelity_sum /. float_of_int t.got
end

type result = {
  latency_s : float;
  bytes_per_image : float;
  fidelity_rms : float;
  images : int;
}

let run_experiment ?(link_bps = 128e3) ?(count = 20)
    ?(backend = Planp_jit.Backends.jit) ~distill () =
  let topo = Netsim.Topology.create () in
  let server_node = Netsim.Topology.add_host topo "image-server" "10.8.0.1" in
  let router = Netsim.Topology.add_host topo "router" "10.8.0.254" in
  let client_node = Netsim.Topology.add_host topo "mobile-client" "10.9.0.1" in
  ignore
    (Netsim.Topology.connect topo ~name:"backbone" ~bandwidth_bps:100e6
       ~latency:0.001 server_node router);
  ignore
    (Netsim.Topology.connect topo ~name:"modem" ~bandwidth_bps:link_bps
       ~latency:0.02 router client_node);
  Netsim.Topology.compute_routes topo;
  let server = Server.start server_node () in
  let client =
    Client.start client_node ~server:(Node.addr server_node) ~count ~at:0.1 ()
  in
  if distill then begin
    let rt = Planp_runtime.Runtime.attach router in
    (* The modem is the router's second interface (index 1). *)
    ignore
      (Planp_runtime.Runtime.install_exn rt ~backend ~name:"image-distiller"
         ~source:(router_program ~slow_iface:1 ()) ())
  end;
  Netsim.Topology.run_until topo ~stop:(float_of_int count *. 2.0);
  ignore (Server.images_served server);
  {
    latency_s = Client.mean_latency client;
    bytes_per_image = Client.mean_bytes client;
    fidelity_rms = Client.mean_fidelity_error client;
    images = Client.received client;
  }
