(** Image distillation over low-bandwidth links — the paper's §5 medium-term
    goal ("adaptation of data traffic such as images ... over low bandwidth
    networks. One possible solution is the integration of image
    distillation support into PLAN-P").

    The router ASP watches image responses (UDP from the image server's
    port) about to cross a slow interface and distills them — halving
    resolution and depth per level — proportionally to the interface's
    capacity. The client receives a smaller, lower-fidelity image sooner;
    neither the server nor the client changes. *)

(** Default UDP port the image server answers from. *)
val image_port : int

(** [router_program ~slow_iface ()] generates the distilling router ASP.
    Levels by capacity of [slow_iface]: below [two_below] kB/s distill
    twice, below [one_below] once, otherwise pass through. Defaults
    (20/100 kB/s) suit modem-to-LAN gateways. *)
val router_program :
  ?port:int -> ?one_below:int -> ?two_below:int -> slow_iface:int -> unit -> string

module Server : sig
  type t

  (** [start node ()] answers requests (u32 image id) on {!image_port} with
      a synthesized 8-bit image of [size]×[size] pixels (default 64). *)
  val start : ?port:int -> ?size:int -> Netsim.Node.t -> unit -> t

  val images_served : t -> int
end

module Client : sig
  type t

  (** [start node ~server ~count ()] requests [count] images sequentially
      (the next request goes out when the previous image arrives). *)
  val start :
    ?port:int ->
    Netsim.Node.t ->
    server:Netsim.Addr.t ->
    count:int ->
    at:float ->
    unit ->
    t

  val received : t -> int

  (** [mean_latency t] — request-to-image seconds over received images. *)
  val mean_latency : t -> float

  (** [mean_bytes t] — average image size as received. *)
  val mean_bytes : t -> float

  (** [mean_fidelity_error t] — average RMS error versus the full-quality
      original (0 when undistilled). *)
  val mean_fidelity_error : t -> float
end

type result = {
  latency_s : float;
  bytes_per_image : float;
  fidelity_rms : float;
  images : int;
}

(** [run_experiment ~distill ()] fetches images across a slow access link
    (default 128 kb/s) with or without the distilling ASP on the router. *)
val run_experiment :
  ?link_bps:float ->
  ?count:int ->
  ?backend:Planp_runtime.Backend.t ->
  distill:bool ->
  unit ->
  result
