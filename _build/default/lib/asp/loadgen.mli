(** Cross-traffic generator — the "load generator" of the paper's Fig. 5.

    Sends UDP packets at a piecewise-constant byte rate following a
    schedule, so benches can reproduce the stepped loads of Fig. 6 (no
    load, then heavy at 100 s, medium at 220 s, light at 340 s). *)

type t

(** [start node ~dst ~schedule ~until ()] begins generating.

    @param schedule [(start_time, kbytes_per_second)] steps, sorted by time;
      rate 0 pauses the generator
    @param packet_size payload bytes per packet (default 1024)
    @param port destination UDP port (default 9) *)
val start :
  ?packet_size:int ->
  ?port:int ->
  Netsim.Node.t ->
  dst:Netsim.Addr.t ->
  schedule:(float * float) list ->
  until:float ->
  unit ->
  t

(** [packets_sent t] — generated so far. *)
val packets_sent : t -> int

val bytes_sent : t -> int
