module Node = Netsim.Node
module Engine = Netsim.Engine
module Audio_frame = Planp_runtime.Audio_frame

let audio_port = 5004
let group = Netsim.Addr.of_string "224.5.5.5"
let samples_per_frame frame_ms = int_of_float (44100.0 *. frame_ms /. 1000.0)

module Source = struct
  type t = {
    node : Node.t;
    grp : Netsim.Addr.t;
    port : int;
    frame_interval : float;
    frames : int;  (* samples per frame *)
    until : float;
    mutable seq : int;
  }

  let rec tick t () =
    let engine = Node.engine t.node in
    let now = Engine.now engine in
    if now < t.until then begin
      let frame =
        Audio_frame.synth ~seq:t.seq ~frames:t.frames ~phase:(t.seq * t.frames)
      in
      Node.send_udp t.node ~dst:t.grp ~src_port:audio_port ~dst_port:t.port
        (Audio_frame.encode frame);
      t.seq <- t.seq + 1;
      Engine.schedule engine ~at:(now +. t.frame_interval) (tick t)
    end

  let start ?(group = group) ?(port = audio_port) ?(frame_ms = 20.0) node
      ~until () =
    let t =
      {
        node;
        grp = group;
        port;
        frame_interval = frame_ms /. 1000.0;
        frames = samples_per_frame frame_ms;
        until;
        seq = 0;
      }
    in
    Engine.schedule (Node.engine node) ~at:0.0 (tick t);
    t

  let frames_sent t = t.seq
end

module Client = struct
  type t = {
    node : Node.t;
    frame_interval : float;
    buffer : float;
    stat : Netsim.Flowstat.t;
    mutable received : int;
    mutable q_stereo16 : int;
    mutable q_mono16 : int;
    mutable q_mono8 : int;
    arrivals : (int, float) Hashtbl.t;  (* seq -> arrival time *)
    mutable first_send_estimate : float option;
    mutable series : Netsim.Flowstat.Series.s option;
  }

  let on_packet t _node (packet : Netsim.Packet.t) =
    let now = Engine.now (Node.engine t.node) in
    match Audio_frame.decode packet.Netsim.Packet.body with
    | None -> ()
    | Some frame ->
        t.received <- t.received + 1;
        Netsim.Flowstat.record t.stat ~now (Netsim.Packet.wire_size packet);
        (match frame.Audio_frame.quality with
        | Audio_frame.Stereo16 -> t.q_stereo16 <- t.q_stereo16 + 1
        | Audio_frame.Mono16 -> t.q_mono16 <- t.q_mono16 + 1
        | Audio_frame.Mono8 -> t.q_mono8 <- t.q_mono8 + 1);
        let seq = frame.Audio_frame.seq in
        if not (Hashtbl.mem t.arrivals seq) then Hashtbl.add t.arrivals seq now;
        (* Estimate the stream epoch from the earliest (arrival − seq·T). *)
        let epoch = now -. (float_of_int seq *. t.frame_interval) in
        (match t.first_send_estimate with
        | None -> t.first_send_estimate <- Some epoch
        | Some current ->
            if epoch < current then t.first_send_estimate <- Some epoch)

  let attach ?(group = group) ?(port = audio_port) ?(frame_ms = 20.0)
      ?(buffer_ms = 150.0) node () =
    let t =
      {
        node;
        frame_interval = frame_ms /. 1000.0;
        buffer = buffer_ms /. 1000.0;
        stat = Netsim.Flowstat.create ();
        received = 0;
        q_stereo16 = 0;
        q_mono16 = 0;
        q_mono8 = 0;
        arrivals = Hashtbl.create 4096;
        first_send_estimate = None;
        series = None;
      }
    in
    Node.join_group node group;
    Node.on_udp node ~port (on_packet t);
    t

  let frames_received t = t.received
  let quality_counts t = (t.q_stereo16, t.q_mono16, t.q_mono8)

  let received_rate_series t ~period ~until =
    t.series <-
      Some (Netsim.Flowstat.Series.attach (Node.engine t.node) t.stat ~period ~until)

  let series_points t =
    match t.series with
    | Some series ->
        (* Convert bits/s to kB/s, the paper's Fig. 6 unit. *)
        List.map
          (fun (time, bps) -> (time, bps /. 8.0 /. 1000.0))
          (Netsim.Flowstat.Series.points series)
    | None -> []

  let silent_periods t ~frames_expected =
    let epoch = Option.value ~default:0.0 t.first_send_estimate in
    let silent_frames = ref 0 in
    let periods = ref 0 in
    let in_gap = ref false in
    for seq = 0 to frames_expected - 1 do
      let deadline = epoch +. t.buffer +. (float_of_int seq *. t.frame_interval) in
      let ok =
        match Hashtbl.find_opt t.arrivals seq with
        | Some arrival -> arrival <= deadline
        | None -> false
      in
      if ok then in_gap := false
      else begin
        incr silent_frames;
        if not !in_gap then begin
          incr periods;
          in_gap := true
        end
      end
    done;
    (!periods, !silent_frames)
end
