(** Deterministic pseudo-random numbers (the xorshift64-star generator).

    Experiments must be reproducible run to run, so nothing in this library
    touches [Random]; every workload generator owns a seeded [Rng.t]. *)

type t

val create : seed:int -> t

(** [int rng bound] is uniform in [0, bound). @raise Invalid_argument when
    [bound <= 0]. *)
val int : t -> int -> int

(** [float rng] is uniform in [0, 1). *)
val float : t -> float

(** [exponential rng ~mean] samples an exponential distribution. *)
val exponential : t -> mean:float -> float

(** [zipf rng ~n ~alpha] samples ranks 1..n with probability ∝ 1/rank^alpha
    (inverse-CDF over a precomputed table is the caller's job; this uses
    rejection-free cumulative search and is O(log n)). *)
val zipf : t -> n:int -> alpha:float -> int

(** [lognormal rng ~mu ~sigma] — heavy-tailed sizes. *)
val lognormal : t -> mu:float -> sigma:float -> float
