(** The audio broadcasting application (paper §3.1): an unmodified
    CD-quality broadcaster and a playback client.

    The source multicasts {!Planp_runtime.Audio_frame} packets; the client
    reconstructs a playback timeline and counts *silent periods* — maximal
    runs of frames missing at their playback deadline — the metric of the
    paper's Fig. 7. *)

(** Default UDP port of the audio stream. *)
val audio_port : int

(** Default multicast group (224.5.5.5). *)
val group : Netsim.Addr.t

module Source : sig
  type t

  (** [start node ~until ()] broadcasts 20 ms 44.1 kHz stereo frames
      (50 frames/s, 176.4 kB/s on the wire) to [group]:[audio_port]. *)
  val start :
    ?group:Netsim.Addr.t ->
    ?port:int ->
    ?frame_ms:float ->
    Netsim.Node.t ->
    until:float ->
    unit ->
    t

  val frames_sent : t -> int
end

module Client : sig
  type t

  (** [attach node ()] joins the group and listens. Playback of frame [i]
      is due [buffer_ms] after the stream start (default 150 ms — enough to
      ride out a full drop-tail queue, so only losses cause silence); a
      frame not yet received when due plays as silence. *)
  val attach :
    ?group:Netsim.Addr.t ->
    ?port:int ->
    ?frame_ms:float ->
    ?buffer_ms:float ->
    Netsim.Node.t ->
    unit ->
    t

  val frames_received : t -> int

  (** [quality_counts t] is [(stereo16, mono16, mono8)] frame counts. *)
  val quality_counts : t -> int * int * int

  (** [received_rate_series t ~period ~until] must be called right after
      {!attach} (it arms a sampler): [(time, kB/s)] of audio arriving at the
      client — the series of Fig. 6. *)
  val received_rate_series :
    t -> period:float -> until:float -> unit

  val series_points : t -> (float * float) list

  (** [silent_periods t ~frames_expected] — evaluated after the run:
      the number of maximal runs of missed playback deadlines (Fig. 7) and
      the total count of silent frames. *)
  val silent_periods : t -> frames_expected:int -> int * int
end
