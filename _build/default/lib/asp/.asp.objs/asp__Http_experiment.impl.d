lib/asp/http_experiment.ml: Fun Http_app Http_asp List Netsim Planp_runtime Printf
