lib/asp/mpeg_app.mli: Netsim
