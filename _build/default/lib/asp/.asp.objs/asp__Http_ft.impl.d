lib/asp/http_ft.ml: Array Hashtbl Http_app Http_asp Http_experiment Int List Netsim Planp_jit Planp_runtime Printf
