lib/asp/http_app.ml: Hashtbl Int List Netsim Printf Queue Rng String
