lib/asp/loadgen.mli: Netsim
