lib/asp/mpeg_app.ml: Array Char Netsim
