lib/asp/audio_asp.mli:
