lib/asp/image_asp.mli: Netsim Planp_runtime
