lib/asp/audio_app.mli: Netsim
