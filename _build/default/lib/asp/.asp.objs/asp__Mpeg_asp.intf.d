lib/asp/mpeg_asp.mli:
