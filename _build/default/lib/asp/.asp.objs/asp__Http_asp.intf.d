lib/asp/http_asp.mli: Netsim
