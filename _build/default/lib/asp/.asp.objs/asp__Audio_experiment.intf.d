lib/asp/audio_experiment.mli: Audio_asp Planp_runtime
