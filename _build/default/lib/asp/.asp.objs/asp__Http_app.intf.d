lib/asp/http_app.mli: Netsim
