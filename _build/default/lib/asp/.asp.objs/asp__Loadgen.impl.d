lib/asp/loadgen.ml: Float List Netsim
