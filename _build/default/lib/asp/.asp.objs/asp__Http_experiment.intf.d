lib/asp/http_experiment.mli: Http_asp Planp_runtime
