lib/asp/image_asp.ml: Netsim Planp_jit Planp_runtime Printf
