lib/asp/http_ft.mli: Netsim Planp_runtime
