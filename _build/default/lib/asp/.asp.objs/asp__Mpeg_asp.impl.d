lib/asp/mpeg_asp.ml: Mpeg_app Printf
