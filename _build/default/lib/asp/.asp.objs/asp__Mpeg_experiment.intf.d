lib/asp/mpeg_experiment.mli: Planp_runtime
