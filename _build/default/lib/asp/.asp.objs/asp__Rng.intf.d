lib/asp/rng.mli:
