lib/asp/audio_asp.ml: Audio_app Printf
