lib/asp/mpeg_experiment.ml: List Mpeg_app Mpeg_asp Netsim Planp_jit Planp_runtime Printf
