lib/asp/audio_app.ml: Hashtbl List Netsim Option Planp_runtime
