lib/asp/rng.ml: Array Float Int64
