lib/asp/http_asp.ml: Hashtbl Netsim Printf
