lib/asp/audio_experiment.ml: Audio_app Audio_asp List Loadgen Netsim Planp_jit Planp_runtime
