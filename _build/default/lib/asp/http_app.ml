module Node = Netsim.Node
module Engine = Netsim.Engine
module Packet = Netsim.Packet
module Payload = Netsim.Payload

(* Deterministic per-file size: a hash of the id seeds a one-shot
   log-normal draw. Median 4 KB, heavy tail capped at 256 KB. *)
let file_size file_id =
  let rng = Rng.create ~seed:((file_id * 2654435761) lor 1) in
  let size = Rng.lognormal rng ~mu:(log 4000.0) ~sigma:1.0 in
  Int.max 256 (Int.min 262_144 (int_of_float size))

module Trace = struct
  type t = { mutable ids : int list; mutable count : int }

  let generate ?(alpha = 0.9) ~requests ~files ~seed () =
    let rng = Rng.create ~seed in
    let ids = List.init requests (fun _ -> Rng.zipf rng ~n:files ~alpha) in
    { ids; count = requests }

  let pull trace =
    match trace.ids with
    | [] -> None
    | id :: rest ->
        trace.ids <- rest;
        trace.count <- trace.count - 1;
        Some id

  let remaining trace = trace.count

  let save trace path =
    let oc = open_out path in
    List.iter (fun id -> output_string oc (string_of_int id ^ "\n")) trace.ids;
    close_out oc

  let load path =
    let ic = open_in path in
    let ids = ref [] in
    (try
       while true do
         let line = String.trim (input_line ic) in
         if line <> "" then
           match int_of_string_opt line with
           | Some id -> ids := id :: !ids
           | None -> failwith (Printf.sprintf "Trace.load: bad line %S" line)
       done
     with End_of_file -> close_in ic);
    let ids = List.rev !ids in
    { ids; count = List.length ids }
end

(* ---------- server ---------- *)

module Server = struct
  type request = { req_client : Netsim.Addr.t; req_port : int; req_file : int }

  type t = {
    node : Node.t;
    port : int;
    workers : int;
    setup_time : float;
    per_byte : float;
    stream_rate : float;
    mss : int;
    mutable busy : int;
    queue : request Queue.t;
    mutable served : int;
    mutable down : bool;
  }

  let parse_request (packet : Packet.t) =
    match packet.Packet.l4 with
    | Packet.Tcp { Packet.tcp_src; _ }
      when Payload.length packet.Packet.body >= 4 ->
        Some
          {
            req_client = packet.Packet.src;
            req_port = tcp_src;
            req_file = Payload.get_u32 packet.Packet.body 0;
          }
    | Packet.Tcp _ | Packet.Udp _ | Packet.Raw -> None

  (* Stream the response as paced MSS segments. The worker process was
     already freed when service (parse + disk) completed; the network
     transfer proceeds asynchronously, as sendfile-style output would. *)
  let rec stream t request ~remaining ~seq =
    let engine = Node.engine t.node in
    let chunk = Int.min t.mss remaining in
    Node.send_tcp t.node ~dst:request.req_client ~src_port:t.port
      ~dst_port:request.req_port ~seq (Payload.fill chunk 0x55);
    let remaining = remaining - chunk in
    if remaining > 0 then begin
      let interval = float_of_int ((chunk + 40) * 8) /. t.stream_rate in
      Engine.schedule_after engine ~delay:interval (fun () ->
          stream t request ~remaining ~seq:(seq + 1))
    end
    else t.served <- t.served + 1

  and dispatch t =
    if t.busy < t.workers && not (Queue.is_empty t.queue) then begin
      let request = Queue.pop t.queue in
      t.busy <- t.busy + 1;
      let size = file_size request.req_file in
      let service = t.setup_time +. (float_of_int size *. t.per_byte) in
      Engine.schedule_after (Node.engine t.node) ~delay:service (fun () ->
          t.busy <- t.busy - 1;
          stream t request ~remaining:size ~seq:0;
          dispatch t);
      dispatch t
    end

  let on_request t _node packet =
    if not t.down then
      match parse_request packet with
      | Some request ->
          Queue.push request t.queue;
          dispatch t
      | None -> ()

  let start ?(port = 80) ?(workers = 8) ?(setup_time = 0.010)
      ?(per_byte = 1.0 /. 5.0e6) ?(stream_rate = 4e6) ?(mss = 1460) node () =
    let t =
      {
        node;
        port;
        workers;
        setup_time;
        per_byte;
        stream_rate;
        mss;
        busy = 0;
        queue = Queue.create ();
        served = 0;
        down = false;
      }
    in
    Node.on_tcp node ~port (on_request t);
    t

  let requests_served t = t.served
  let queue_depth t = Queue.length t.queue

  (* Crash / recover the server process (fault-injection): while down,
     requests are silently ignored, like a host that stopped answering. *)
  let set_down t flag = t.down <- flag
  let is_down t = t.down
end

(* ---------- client ---------- *)

module Client = struct
  type pending = { expect : int; mutable got : int; issued_at : float }

  type t = {
    node : Node.t;
    server : Netsim.Addr.t;
    port : int;
    warmup : float;
    retry_timeout : float;
    trace : Trace.t;
    pending : (int, pending) Hashtbl.t;  (* our port -> state *)
    mutable next_port : int;
    mutable done_count : int;
    mutable retries : int;
    mutable response_time_sum : float;
    response_times : Netsim.Summary.t;
    mutable flying : int;
  }

  let rec issue t =
    match Trace.pull t.trace with
    | None -> ()
    | Some file_id -> issue_file t file_id

  (* Issue one request; if the response stalls (a segment was dropped and
     this model has no TCP retransmission), give up on the connection and
     retry the file on a fresh port — a crude but bounded stand-in for
     TCP reliability. *)
  and issue_file t file_id =
    let port = t.next_port in
    t.next_port <- t.next_port + 1;
    let engine = Node.engine t.node in
    let now = Engine.now engine in
    Hashtbl.replace t.pending port
      { expect = file_size file_id; got = 0; issued_at = now };
    t.flying <- t.flying + 1;
    let writer = Payload.Writer.create () in
    Payload.Writer.u32 writer file_id;
    Node.send_tcp t.node ~dst:t.server ~src_port:port ~dst_port:t.port
      (Payload.Writer.finish writer);
    Engine.schedule_after engine ~delay:t.retry_timeout (fun () ->
        match Hashtbl.find_opt t.pending port with
        | Some pending when pending.got < pending.expect ->
            Hashtbl.remove t.pending port;
            t.flying <- t.flying - 1;
            t.retries <- t.retries + 1;
            issue_file t file_id
        | Some _ | None -> ())

  and on_response t _node (packet : Packet.t) =
    match packet.Packet.l4 with
    | Packet.Tcp { Packet.tcp_dst; _ } -> (
        match Hashtbl.find_opt t.pending tcp_dst with
        | None -> ()
        | Some pending ->
            pending.got <- pending.got + Payload.length packet.Packet.body;
            if pending.got >= pending.expect then begin
              Hashtbl.remove t.pending tcp_dst;
              t.flying <- t.flying - 1;
              let now = Engine.now (Node.engine t.node) in
              if now >= t.warmup then begin
                t.done_count <- t.done_count + 1;
                t.response_time_sum <-
                  t.response_time_sum +. (now -. pending.issued_at);
                Netsim.Summary.add t.response_times (now -. pending.issued_at)
              end;
              issue t
            end)
    | Packet.Udp _ | Packet.Raw -> ()

  let start ?(port = 80) ?(warmup = 5.0) ?(retry_timeout = 2.0) node ~server
      ~workers ~trace () =
    let t =
      {
        node;
        server;
        port;
        warmup;
        retry_timeout;
        trace;
        pending = Hashtbl.create 64;
        next_port = 10000;
        done_count = 0;
        retries = 0;
        response_time_sum = 0.0;
        response_times = Netsim.Summary.create ();
        flying = 0;
      }
    in
    (* Responses arrive on fresh ephemeral ports: catch them all. *)
    Node.on_tcp_default node (on_response t);
    for _ = 1 to workers do
      issue t
    done;
    t

  let completed t = t.done_count
  let in_flight t = t.flying
  let retries t = t.retries
  let response_times t = t.response_times

  let mean_response_time t =
    if t.done_count = 0 then 0.0
    else t.response_time_sum /. float_of_int t.done_count
end
