(** The HTTP application of §3.2: an Apache-like multi-process server and
    closed-loop trace-replaying clients.

    Protocol model: a request is one TCP packet to port 80 carrying a file
    id; the response is the file streamed back as MSS-sized TCP segments
    from port 80 to the requesting port. A request occupies one of the
    server's worker processes for a setup time plus a size-proportional
    disk/CPU time, then the response streams at the per-connection rate.

    The workload substitutes the paper's replayed IRISA trace (80 000
    accesses): Zipf-popular files with log-normal sizes, deterministic per
    seed. *)

(** [file_size file_id] — the catalog, shared by servers and clients:
    log-normal-ish sizes (median 4 KB), deterministic in [file_id]. *)
val file_size : int -> int

(** Shared trace of file ids. *)
module Trace : sig
  type t

  (** [generate ~requests ~files ~seed ()] draws [requests] Zipf(0.9)
      samples over [files] files. *)
  val generate : ?alpha:float -> requests:int -> files:int -> seed:int -> unit -> t

  (** [pull trace] is the next file id; [None] when exhausted. *)
  val pull : t -> int option

  val remaining : t -> int

  (** [save trace path] / [load path] — one decimal file id per line, the
    format of the paper-era access logs after URL interning; lets users
    replay their own traces instead of the synthetic one.
    @raise Sys_error on IO failure, [Failure] on a malformed line. *)
  val save : t -> string -> unit

  val load : string -> t
end

module Server : sig
  type t

  (** [start node ()] serves port 80.

      @param workers Apache child processes (default 8)
      @param setup_time per-request fixed cost, seconds (default 10 ms)
      @param per_byte disk/CPU seconds per response byte (default 1/5MB)
      @param stream_rate response pacing, bits/s (default 4 Mb/s — below
        the clients' access links, since the model has no TCP congestion
        control) *)
  val start :
    ?port:int ->
    ?workers:int ->
    ?setup_time:float ->
    ?per_byte:float ->
    ?stream_rate:float ->
    ?mss:int ->
    Netsim.Node.t ->
    unit ->
    t

  val requests_served : t -> int
  val queue_depth : t -> int

  (** [set_down t true] crashes the server process: requests are silently
      ignored until [set_down t false] (fault injection for the
      fault-tolerance experiment). *)
  val set_down : t -> bool -> unit

  val is_down : t -> bool
end

module Client : sig
  type t

  (** [start node ~server ~workers ~trace ()] runs [workers] closed-loop
      request generators against [server] (a virtual or physical address),
      drawing file ids from the shared [trace]. Completions before
      [warmup] are not counted. A response stalled for [retry_timeout]
      seconds is abandoned and the file re-requested on a fresh port. *)
  val start :
    ?port:int ->
    ?warmup:float ->
    ?retry_timeout:float ->
    Netsim.Node.t ->
    server:Netsim.Addr.t ->
    workers:int ->
    trace:Trace.t ->
    unit ->
    t

  (** [completed t] — responses fully received after warmup. *)
  val completed : t -> int

  val in_flight : t -> int

  (** [mean_response_time t] over counted completions, seconds. *)
  val mean_response_time : t -> float

  (** [retries t] — abandoned-and-reissued requests (loss indicator). *)
  val retries : t -> int

  (** [response_times t] — the full distribution of counted completions. *)
  val response_times : t -> Netsim.Summary.t
end
