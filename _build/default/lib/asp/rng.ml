type t = { mutable state : int64; mutable zipf_cache : (int * float * float array) option }

let create ~seed =
  let state = Int64.of_int (if seed = 0 then 0x9E3779B9 else seed) in
  { state; zipf_cache = None }

(* xorshift64* — fast, well-distributed, deterministic across platforms. *)
let next rng =
  let open Int64 in
  let x = rng.state in
  let x = logxor x (shift_left x 13) in
  let x = logxor x (shift_right_logical x 7) in
  let x = logxor x (shift_left x 17) in
  rng.state <- x;
  mul x 0x2545F4914F6CDD1DL

let float rng =
  let bits = Int64.shift_right_logical (next rng) 11 in
  Int64.to_float bits /. 9007199254740992.0 (* 2^53 *)

let int rng bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  int_of_float (float rng *. float_of_int bound)

let exponential rng ~mean =
  let u = Float.max 1e-12 (float rng) in
  -.mean *. log u

let zipf rng ~n ~alpha =
  let cumulative =
    match rng.zipf_cache with
    | Some (cached_n, cached_alpha, table) when cached_n = n && cached_alpha = alpha
      ->
        table
    | Some _ | None ->
        let table = Array.make n 0.0 in
        let acc = ref 0.0 in
        for rank = 1 to n do
          acc := !acc +. (1.0 /. Float.pow (float_of_int rank) alpha);
          table.(rank - 1) <- !acc
        done;
        let total = !acc in
        Array.iteri (fun i v -> table.(i) <- v /. total) table;
        rng.zipf_cache <- Some (n, alpha, table);
        table
  in
  let u = float rng in
  (* binary search for the first index with cumulative >= u *)
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cumulative.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo + 1

let lognormal rng ~mu ~sigma =
  (* Box-Muller on two uniforms. *)
  let u1 = Float.max 1e-12 (float rng) in
  let u2 = float rng in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  exp (mu +. (sigma *. z))
