module Payload = Netsim.Payload

type t = { width : int; height : int; depth : int; pixels : int array }

let valid_depth = function 8 | 4 | 2 -> true | _ -> false

let pixel_bytes ~width ~height ~depth = (width * height * depth + 7) / 8

let encoded_size t = 6 + pixel_bytes ~width:t.width ~height:t.height ~depth:t.depth

let encode t =
  if not (valid_depth t.depth) then invalid_arg "Image.encode: bad depth";
  if Array.length t.pixels <> t.width * t.height then
    invalid_arg "Image.encode: pixel count mismatch";
  let writer = Payload.Writer.create () in
  Payload.Writer.u8 writer (Char.code 'I');
  Payload.Writer.u8 writer t.depth;
  Payload.Writer.u16 writer t.width;
  Payload.Writer.u16 writer t.height;
  let per_byte = 8 / t.depth in
  let mask = (1 lsl t.depth) - 1 in
  let count = t.width * t.height in
  let byte = ref 0 in
  let filled = ref 0 in
  for i = 0 to count - 1 do
    byte := (!byte lsl t.depth) lor (t.pixels.(i) land mask);
    incr filled;
    if !filled = per_byte then begin
      Payload.Writer.u8 writer !byte;
      byte := 0;
      filled := 0
    end
  done;
  if !filled > 0 then
    Payload.Writer.u8 writer (!byte lsl (t.depth * (per_byte - !filled)));
  Payload.Writer.finish writer

let decode payload =
  if Payload.length payload < 6 then None
  else if Payload.get_u8 payload 0 <> Char.code 'I' then None
  else
    let depth = Payload.get_u8 payload 1 in
    let width = Payload.get_u16 payload 2 in
    let height = Payload.get_u16 payload 4 in
    if not (valid_depth depth) || width = 0 || height = 0 then None
    else if Payload.length payload <> 6 + pixel_bytes ~width ~height ~depth then
      None
    else begin
      let count = width * height in
      let pixels = Array.make count 0 in
      let per_byte = 8 / depth in
      let mask = (1 lsl depth) - 1 in
      for i = 0 to count - 1 do
        let byte = Payload.get_u8 payload (6 + (i / per_byte)) in
        let slot = per_byte - 1 - (i mod per_byte) in
        pixels.(i) <- (byte lsr (slot * depth)) land mask
      done;
      Some { width; height; depth; pixels }
    end

let distill t =
  if t.width <= 1 && t.height <= 1 && t.depth <= 2 then t
  else begin
    let width = Int.max 1 (t.width / 2) in
    let height = Int.max 1 (t.height / 2) in
    let depth = Int.max 2 (t.depth / 2) in
    let pixels = Array.make (width * height) 0 in
    let get x y =
      let x = Int.min x (t.width - 1) and y = Int.min y (t.height - 1) in
      t.pixels.((y * t.width) + x)
    in
    (* 2x2 box filter in the source depth, then requantize. *)
    let shift = t.depth - depth in
    for y = 0 to height - 1 do
      for x = 0 to width - 1 do
        let sum =
          get (2 * x) (2 * y)
          + get ((2 * x) + 1) (2 * y)
          + get (2 * x) ((2 * y) + 1)
          + get ((2 * x) + 1) ((2 * y) + 1)
        in
        pixels.((y * width) + x) <- (sum / 4) lsr shift
      done
    done;
    { width; height; depth; pixels }
  end

let rec distill_n t n = if n <= 0 then t else distill_n (distill t) (n - 1)

let synth ~width ~height ~seed =
  if width <= 0 || height <= 0 then invalid_arg "Image.synth: empty image";
  let pixels = Array.make (width * height) 0 in
  for y = 0 to height - 1 do
    for x = 0 to width - 1 do
      let gradient = 255 * (x + y) / (width + height) in
      let texture = (x * 31 + y * 17 + seed * 7919) mod 64 in
      pixels.((y * width) + x) <- Int.min 255 ((gradient + texture) / 2 * 2)
    done
  done;
  { width; height; depth = 8; pixels }

(* Sample [b] at [a]'s resolution, both scaled to 8-bit range. *)
let rms_error a b =
  let to8 depth v = v lsl (8 - depth) in
  let acc = ref 0.0 in
  for y = 0 to a.height - 1 do
    for x = 0 to a.width - 1 do
      let bx = x * b.width / a.width and by = y * b.height / a.height in
      let va = to8 a.depth a.pixels.((y * a.width) + x) in
      let vb = to8 b.depth b.pixels.((by * b.width) + bx) in
      let d = float_of_int (va - vb) in
      acc := !acc +. (d *. d)
    done
  done;
  sqrt (!acc /. float_of_int (a.width * a.height))

let equal a b =
  a.width = b.width && a.height = b.height && a.depth = b.depth
  && a.pixels = b.pixels

let pp fmt t =
  Format.fprintf fmt "<image %dx%d @%dbit, %dB>" t.width t.height t.depth
    (encoded_size t)
