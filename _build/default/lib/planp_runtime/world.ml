type target = Remote | Neighbor

type t = {
  now : unit -> float;
  node_addr : unit -> int;
  iface_load_bps : int -> float;
  iface_capacity_bps : int -> float;
  incoming_iface : int;
  emit : target -> chan:string -> Value.t -> unit;
  deliver : Value.t -> unit;
  print : string -> unit;
}

let dummy () =
  let prints = ref [] in
  let emissions = ref [] in
  let world =
    {
      now = (fun () -> 0.0);
      node_addr = (fun () -> 0);
      iface_load_bps = (fun _ -> 0.0);
      iface_capacity_bps = (fun _ -> 0.0);
      incoming_iface = -1;
      emit =
        (fun target ~chan value ->
          emissions := (target, chan, value) :: !emissions);
      deliver = (fun _ -> ());
      print = (fun s -> prints := s :: !prints);
    }
  in
  ( world,
    (fun () -> List.rev !prints),
    fun () -> List.rev !emissions )
