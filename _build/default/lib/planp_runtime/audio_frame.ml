module Payload = Netsim.Payload

type quality = Stereo16 | Mono16 | Mono8

let quality_code = function Stereo16 -> 0 | Mono16 -> 1 | Mono8 -> 2

let quality_of_code = function
  | 0 -> Some Stereo16
  | 1 -> Some Mono16
  | 2 -> Some Mono8
  | _ -> None

let degraded_from a b = quality_code a >= quality_code b

type t = { seq : int; quality : quality; samples : int array }

let frame_count t =
  match t.quality with
  | Stereo16 -> Array.length t.samples / 2
  | Mono16 | Mono8 -> Array.length t.samples

let bytes_per_frame = function Stereo16 -> 4 | Mono16 -> 2 | Mono8 -> 1

let clamp16 v = if v > 32767 then 32767 else if v < -32768 then -32768 else v
let clamp8 v = if v > 127 then 127 else if v < -128 then -128 else v

let encode t =
  let writer = Payload.Writer.create () in
  Payload.Writer.u32 writer t.seq;
  Payload.Writer.u8 writer (quality_code t.quality);
  Payload.Writer.u16 writer (frame_count t);
  (match t.quality with
  | Stereo16 | Mono16 ->
      Array.iter
        (fun sample -> Payload.Writer.u16 writer (clamp16 sample land 0xffff))
        t.samples
  | Mono8 ->
      Array.iter
        (fun sample -> Payload.Writer.u8 writer (clamp8 sample land 0xff))
        t.samples);
  Payload.Writer.finish writer

let sign16 raw = if raw land 0x8000 <> 0 then raw - 0x10000 else raw
let sign8 raw = if raw land 0x80 <> 0 then raw - 0x100 else raw

let decode payload =
  if Payload.length payload < 7 then None
  else
    let reader = Payload.Reader.create payload in
    let seq = Payload.Reader.u32 reader in
    let code = Payload.Reader.u8 reader in
    let frames = Payload.Reader.u16 reader in
    match quality_of_code code with
    | None -> None
    | Some quality ->
        let sample_count =
          match quality with Stereo16 -> 2 * frames | Mono16 | Mono8 -> frames
        in
        let expected_bytes =
          match quality with
          | Stereo16 | Mono16 -> 2 * sample_count
          | Mono8 -> sample_count
        in
        if Payload.Reader.remaining reader <> expected_bytes then None
        else begin
          let samples = Array.make sample_count 0 in
          (match quality with
          | Stereo16 | Mono16 ->
              for i = 0 to sample_count - 1 do
                samples.(i) <- sign16 (Payload.Reader.u16 reader)
              done
          | Mono8 ->
              for i = 0 to sample_count - 1 do
                samples.(i) <- sign8 (Payload.Reader.u8 reader)
              done);
          Some { seq; quality; samples }
        end

let to_mono16 t =
  match t.quality with
  | Stereo16 ->
      let frames = frame_count t in
      let mono = Array.make frames 0 in
      for i = 0 to frames - 1 do
        mono.(i) <- (t.samples.(2 * i) + t.samples.((2 * i) + 1)) / 2
      done;
      { t with quality = Mono16; samples = mono }
  | Mono16 -> t
  | Mono8 ->
      { t with quality = Mono16; samples = Array.map (fun s -> s lsl 8) t.samples }

let to_mono8 t =
  let mono = to_mono16 t in
  match t.quality with
  | Mono8 -> t
  | Stereo16 | Mono16 ->
      {
        mono with
        quality = Mono8;
        samples = Array.map (fun s -> clamp8 (s asr 8)) mono.samples;
      }

let degrade t target =
  if not (degraded_from target t.quality) then t
  else
    match target with
    | Stereo16 -> t
    | Mono16 -> to_mono16 t
    | Mono8 -> to_mono8 t

let restore t =
  match t.quality with
  | Stereo16 -> t
  | Mono16 | Mono8 ->
      let mono = to_mono16 t in
      let frames = Array.length mono.samples in
      let stereo = Array.make (2 * frames) 0 in
      for i = 0 to frames - 1 do
        stereo.(2 * i) <- mono.samples.(i);
        stereo.((2 * i) + 1) <- mono.samples.(i)
      done;
      { t with quality = Stereo16; samples = stereo }

(* Integer sine-ish oscillator: a second-order resonator would drift in
   integer arithmetic, so use a triangle wave with a slow wobble — fully
   deterministic and exercises the full 16-bit range. *)
let synth ~seq ~frames ~phase =
  let samples = Array.make (2 * frames) 0 in
  for i = 0 to frames - 1 do
    let x = (phase + i) mod 200 in
    let tri = if x < 100 then (x * 600) - 30000 else ((200 - x) * 600) - 30000 in
    let wobble = ((phase + i) mod 37) * 100 in
    samples.(2 * i) <- clamp16 (tri + wobble);
    samples.((2 * i) + 1) <- clamp16 (tri - wobble)
  done;
  { seq; quality = Stereo16; samples }

let rms_error a b =
  let ra = restore a and rb = restore b in
  let n = Int.min (Array.length ra.samples) (Array.length rb.samples) in
  if n = 0 then 0.0
  else begin
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      let d = float_of_int (ra.samples.(i) - rb.samples.(i)) in
      acc := !acc +. (d *. d)
    done;
    sqrt (!acc /. float_of_int n)
  end

let equal a b = a.seq = b.seq && a.quality = b.quality && a.samples = b.samples

let quality_name = function
  | Stereo16 -> "16-bit stereo"
  | Mono16 -> "16-bit mono"
  | Mono8 -> "8-bit mono"

let pp fmt t =
  Format.fprintf fmt "<audio seq=%d %s frames=%d>" t.seq (quality_name t.quality)
    (frame_count t)
