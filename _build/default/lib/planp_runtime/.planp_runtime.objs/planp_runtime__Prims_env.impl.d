lib/planp_runtime/prims_env.ml: List Planp Prim Value World
