lib/planp_runtime/interp.ml: Backend Hashtbl List Map Planp Prim Printf String Value World
