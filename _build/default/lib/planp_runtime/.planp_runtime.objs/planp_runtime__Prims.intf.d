lib/planp_runtime/prims.mli:
