lib/planp_runtime/prims_env.mli:
