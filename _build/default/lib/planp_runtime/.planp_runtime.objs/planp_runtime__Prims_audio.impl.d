lib/planp_runtime/prims_audio.ml: Audio_frame List Netsim Planp Prim Value
