lib/planp_runtime/runtime.ml: Backend Buffer Format Interp List Netsim Option Pkt_codec Planp Prim Prims Printf String Value World
