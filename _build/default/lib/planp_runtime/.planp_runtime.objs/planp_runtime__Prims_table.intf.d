lib/planp_runtime/prims_table.mli:
