lib/planp_runtime/runtime.mli: Backend Netsim Planp Value
