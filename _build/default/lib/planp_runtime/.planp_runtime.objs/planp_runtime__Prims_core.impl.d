lib/planp_runtime/prims_core.ml: Char Int List Netsim Planp Prim Printf String Value World
