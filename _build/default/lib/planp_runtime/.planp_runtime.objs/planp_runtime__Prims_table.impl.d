lib/planp_runtime/prims_table.ml: Hashtbl Int List Planp Prim Printf Value
