lib/planp_runtime/backend.mli: Planp Value World
