lib/planp_runtime/interp.mli: Backend Map Planp Value World
