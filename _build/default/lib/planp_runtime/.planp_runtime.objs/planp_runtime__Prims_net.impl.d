lib/planp_runtime/prims_net.ml: List Netsim Planp Prim Printf Value World
