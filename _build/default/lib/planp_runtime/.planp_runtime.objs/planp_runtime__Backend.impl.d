lib/planp_runtime/backend.ml: Planp Value World
