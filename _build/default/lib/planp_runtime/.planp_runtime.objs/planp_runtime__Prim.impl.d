lib/planp_runtime/prim.ml: Hashtbl List Option Planp Printf String Value World
