lib/planp_runtime/value.mli: Format Hashtbl Netsim Planp
