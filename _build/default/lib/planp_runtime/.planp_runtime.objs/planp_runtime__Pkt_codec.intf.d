lib/planp_runtime/pkt_codec.mli: Netsim Planp Value
