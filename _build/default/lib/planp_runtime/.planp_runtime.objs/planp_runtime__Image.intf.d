lib/planp_runtime/image.mli: Format Netsim
