lib/planp_runtime/prims.ml: Prims_audio Prims_core Prims_env Prims_image Prims_net Prims_table
