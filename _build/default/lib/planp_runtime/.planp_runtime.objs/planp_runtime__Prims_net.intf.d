lib/planp_runtime/prims_net.mli:
