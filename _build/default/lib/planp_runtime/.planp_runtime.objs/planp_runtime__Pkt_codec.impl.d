lib/planp_runtime/pkt_codec.ml: Char List Netsim Option Planp String Value
