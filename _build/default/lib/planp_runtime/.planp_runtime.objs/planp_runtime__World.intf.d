lib/planp_runtime/world.mli: Value
