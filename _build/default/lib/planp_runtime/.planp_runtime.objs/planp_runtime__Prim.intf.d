lib/planp_runtime/prim.mli: Planp Value World
