lib/planp_runtime/prims_image.mli:
