lib/planp_runtime/world.ml: List Value
