lib/planp_runtime/audio_frame.mli: Format Netsim
