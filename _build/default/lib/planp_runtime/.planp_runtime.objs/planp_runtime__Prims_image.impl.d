lib/planp_runtime/prims_image.ml: Image List Option Planp Prim Value
