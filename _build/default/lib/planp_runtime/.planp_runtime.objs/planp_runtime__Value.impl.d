lib/planp_runtime/value.ml: Char Format Hashtbl Int List Netsim Planp Printf String
