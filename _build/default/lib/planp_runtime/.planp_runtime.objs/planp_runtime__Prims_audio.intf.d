lib/planp_runtime/prims_audio.mli:
