lib/planp_runtime/image.ml: Array Char Format Int Netsim
