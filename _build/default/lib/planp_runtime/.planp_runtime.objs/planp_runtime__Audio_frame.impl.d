lib/planp_runtime/audio_frame.ml: Array Format Int Netsim
