lib/planp_runtime/prims_core.mli:
