let installed = ref false

let install () =
  if not !installed then begin
    installed := true;
    Prims_core.install ();
    Prims_net.install ();
    Prims_table.install ();
    Prims_env.install ();
    Prims_audio.install ();
    Prims_image.install ()
  end
