(** PCM audio frames — the payload format of the audio broadcasting
    experiment (§3.1) and of the audio primitives.

    A frame holds a sequence number, a quality level and PCM samples:

    - {!Stereo16}: interleaved left/right signed 16-bit samples
      (CD quality, 176.4 kB/s at 44.1 kHz — the paper's "176kb/s");
    - {!Mono16}: signed 16-bit mono (88.2 kB/s);
    - {!Mono8}: signed 8-bit mono (44.1 kB/s).

    Wire layout: [u32 seq ; u8 quality ; u16 sample-frames ; samples], with
    16-bit samples big-endian two's complement. *)

type quality = Stereo16 | Mono16 | Mono8

val quality_code : quality -> int

val quality_of_code : int -> quality option

(** [degraded_from a b] holds when [a] is at most as good as [b]. *)
val degraded_from : quality -> quality -> bool

type t = {
  seq : int;
  quality : quality;
  samples : int array;
      (** [Stereo16]: interleaved L,R (length [2 * frame_count]); mono:
          one sample per frame. 16-bit range or 8-bit range per quality. *)
}

(** [frame_count t] is the number of sample frames (per-channel samples). *)
val frame_count : t -> int

(** [bytes_per_frame quality] is 4, 2 or 1. *)
val bytes_per_frame : quality -> int

val encode : t -> Netsim.Payload.t

val decode : Netsim.Payload.t -> t option

(** [degrade t quality] converts downward (averaging channels, truncating
    to 8 bits). Requesting a better-or-equal quality returns [t]. *)
val degrade : t -> quality -> t

(** [restore t] re-expands to [Stereo16] layout (duplicating the mono
    channel, shifting 8-bit samples up); the information lost by
    degradation is not recovered, only the format. *)
val restore : t -> t

(** [synth ~seq ~frames ~phase] generates a deterministic sine-like test
    signal at [Stereo16]; [phase] seeds the oscillator so successive frames
    are continuous. *)
val synth : seq:int -> frames:int -> phase:int -> t

(** Root-mean-square error between the [Stereo16] restorations of two
    frames, used by tests to check degradation monotonicity. *)
val rms_error : t -> t -> float

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
