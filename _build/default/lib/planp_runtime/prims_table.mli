(** Hash-table primitives ([mkTable], [tblGet], [tblSet], ...).

    Tables are mutable and keyed by equality-type values; the type functions
    reject non-equality key types. Installed by {!Prims.install}. *)

val install : unit -> unit
