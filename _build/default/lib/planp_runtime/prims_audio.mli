(** Audio primitives over {!Audio_frame} blobs: [audioSeq], [audioQuality],
    [audioFrames], [audioDegrade], [audioRestore], [audioBytes].

    Blobs that do not decode as audio frames raise the PLAN-P exception
    [BadAudio]. Installed by {!Prims.install}. *)

val install : unit -> unit
