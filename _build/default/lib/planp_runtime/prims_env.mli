(** Node-environment primitives: [linkLoad], [linkCapacity] (kB/s, the
    paper's Fig. 6 units), [thisIface], [timeMs].

    Installed by {!Prims.install}. *)

val install : unit -> unit
