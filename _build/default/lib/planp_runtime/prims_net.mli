(** Network primitives: header accessors/updaters and local delivery.

    Installed by {!Prims.install}. *)

val install : unit -> unit
