(** What a running PLAN-P program may observe and do on its node.

    A [World.t] is built per packet invocation by {!Runtime} and threaded
    through whichever backend executes the channel body. Pure evaluation in
    tests uses {!dummy}. *)

type target =
  | Remote  (** [OnRemote]: route toward the packet's IP destination *)
  | Neighbor  (** [OnNeighbor]: flood link-level neighbors (except inbound) *)

type t = {
  now : unit -> float;  (** simulated seconds *)
  node_addr : unit -> int;
  iface_load_bps : int -> float;
  iface_capacity_bps : int -> float;
  incoming_iface : int;  (** -1 for locally originated invocations *)
  emit : target -> chan:string -> Value.t -> unit;
  deliver : Value.t -> unit;  (** hand to the local application *)
  print : string -> unit;
}

(** [dummy ()] records prints and emissions instead of performing them. *)
val dummy :
  unit -> t * (unit -> string list) * (unit -> (target * string * Value.t) list)
