(** One-call installation of the complete primitive library.

    [install ()] is idempotent and must run before type checking or
    executing programs; {!Runtime.install} and the CLI call it for you. *)

val install : unit -> unit
