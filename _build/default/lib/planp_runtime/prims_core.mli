(** Core primitives: printing, conversions, string/char/int utilities.

    Installed by {!Prims.install}. *)

val install : unit -> unit
