(** Raster images and distillation — the paper's §5 "integration of image
    distillation support into PLAN-P" for adapting image traffic to
    low-bandwidth links.

    A grayscale raster with power-of-two friendly distillation: one
    distillation step halves both dimensions (2x2 box filter) and halves
    the pixel depth (8 → 4 → 2 bits), cutting the encoded size roughly by
    a factor of 8.

    Wire layout: [u8 'I' ; u8 depth ; u16 width ; u16 height ; pixels],
    pixels row-major, packed big-endian within bytes for depths < 8. *)

type t = {
  width : int;
  height : int;
  depth : int;  (** bits per pixel: 8, 4 or 2 *)
  pixels : int array;  (** row-major, each in [0, 2^depth) *)
}

val encode : t -> Netsim.Payload.t

val decode : Netsim.Payload.t -> t option

(** [encoded_size t] without building the payload. *)
val encoded_size : t -> int

(** [distill t] — one step: half resolution, half depth (floor 2 bits).
    Distilling a 1-pixel 2-bit image is the identity. *)
val distill : t -> t

(** [distill_n t n] applies [distill] [n] times. *)
val distill_n : t -> int -> t

(** [synth ~width ~height ~seed] generates a deterministic 8-bit test
    image (smooth gradients + seeded texture). *)
val synth : width:int -> height:int -> seed:int -> t

(** [rms_error a b] — root-mean-square pixel error after scaling both to
    [a]'s dimensions and 8-bit range; quantifies distillation loss. *)
val rms_error : t -> t -> float

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
