(** Conversion between {!Netsim.Packet.t} and typed PLAN-P packet values.

    A channel's packet type is a tuple [ip * transport? * payload-components].
    The payload components describe a binary layout of the packet body:

    - [char], [bool]: 1 byte;
    - [int], [host]: 4 bytes big-endian;
    - [string]: 2-byte length prefix + bytes;
    - [blob]: all remaining bytes (hence only valid as the last component).

    Decoding succeeds only when the body matches the layout *exactly* — this
    is what disambiguates the paper's overloaded channels (Fig. 4): an
    [ip*tcp*char*int] channel accepts 5-byte bodies, [ip*tcp*char*bool]
    2-byte bodies. *)

(** [decode pkt_type packet] is the packet value, or [None] when the packet
    does not have the declared shape. *)
val decode : Planp.Ptype.t -> Netsim.Packet.t -> Value.t option

(** [encode ~chan value] rebuilds a wire packet from a packet value. Packets
    for the distinguished [network] channel travel untagged; other channels
    tag the packet with the channel name.
    @raise Value.Runtime_error if [value] is not a packet tuple. *)
val encode : chan:string -> Value.t -> Netsim.Packet.t

(** [matches pkt_type packet] tests decodability without building values. *)
val matches : Planp.Ptype.t -> Netsim.Packet.t -> bool

(** [layout_ok pkt_type] checks the static well-formedness used by the type
    checker's clients: [blob] only in last position, payload components
    scalar. *)
val layout_ok : Planp.Ptype.t -> bool
