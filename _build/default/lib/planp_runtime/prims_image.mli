(** Image primitives over {!Image} blobs: [imgWidth], [imgHeight],
    [imgDepth], [imgBytes], [imgDistill], [isImage].

    Blobs that do not decode as images raise the built-in PLAN-P exception
    [BadImage] (except [isImage], which tests). Installed by
    {!Prims.install}. *)

val install : unit -> unit
