module Ast = Planp.Ast

type report = {
  ok : bool;
  reason : string option;
  function_count : int;
  max_call_depth : int;
}

(* Collect the user functions called from an expression (direct calls only). *)
let direct_calls funs expr =
  let acc = ref [] in
  let rec walk (expr : Ast.expr) =
    match expr.Ast.desc with
    | Ast.Call (name, args) ->
        List.iter walk args;
        if Hashtbl.mem funs name then acc := name :: !acc
    | Ast.Int _ | Ast.Bool _ | Ast.String _ | Ast.Char _ | Ast.Unit
    | Ast.Host _ | Ast.Var _ | Ast.Raise _ ->
        ()
    | Ast.Tuple components -> List.iter walk components
    | Ast.Proj (_, operand) | Ast.Unop (_, operand) -> walk operand
    | Ast.Let (bindings, body) ->
        List.iter (fun { Ast.bind_expr; _ } -> walk bind_expr) bindings;
        walk body
    | Ast.If (a, b, c) ->
        walk a;
        walk b;
        walk c
    | Ast.Binop (_, a, b) | Ast.Seq (a, b) ->
        walk a;
        walk b
    | Ast.On_remote (_, packet) | Ast.On_neighbor (_, packet) -> walk packet
    | Ast.Try (body, handlers) ->
        walk body;
        List.iter (fun (_, handler) -> walk handler) handlers
  in
  walk expr;
  !acc

exception Cycle of string

let analyze program =
  let funs = Call_graph.fun_bodies program in
  let function_count = Hashtbl.length funs in
  (* Depth-first search over the function call graph; White/Grey/Black
     coloring detects cycles, and the recursion returns call depth. *)
  let color = Hashtbl.create 16 in
  let rec depth_of name =
    match Hashtbl.find_opt color name with
    | Some `Done depth -> depth
    | Some `Active -> raise (Cycle name)
    | None -> (
        match Hashtbl.find_opt funs name with
        | None -> 0 (* primitive *)
        | Some f ->
            Hashtbl.replace color name `Active;
            let callees = direct_calls funs f.Ast.fun_body in
            let depth =
              1 + List.fold_left (fun acc callee -> Int.max acc (depth_of callee)) 0 callees
            in
            Hashtbl.replace color name (`Done depth);
            depth)
  in
  try
    let max_call_depth =
      Hashtbl.fold (fun name _ acc -> Int.max acc (depth_of name)) funs 0
    in
    let body_depth =
      List.fold_left
        (fun acc chan ->
          List.fold_left
            (fun acc callee -> Int.max acc (depth_of callee))
            acc
            (direct_calls funs chan.Ast.body))
        0 (Ast.channels program)
    in
    { ok = true; reason = None; function_count;
      max_call_depth = Int.max max_call_depth body_depth }
  with Cycle name ->
    {
      ok = false;
      reason = Some (Printf.sprintf "function %s is (mutually) recursive" name);
      function_count;
      max_call_depth = 0;
    }
