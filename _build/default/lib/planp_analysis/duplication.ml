module Ast = Planp.Ast

type report = {
  ok : bool;
  reason : string option;
  copies : (string * bool) list;
  iterations : int;
}

(* Maximum number of packets emitted along any single execution path.
   [hmap] gives, for each exception with a handler in scope, the emission
   count of its handler. *)
let rec max_in ~funs hmap (expr : Ast.expr) =
  match expr.Ast.desc with
  | Ast.Int _ | Ast.Bool _ | Ast.String _ | Ast.Char _ | Ast.Unit | Ast.Host _
  | Ast.Var _ ->
      0
  | Ast.Raise exn_name -> (
      match List.assoc_opt exn_name hmap with Some count -> count | None -> 0)
  | Ast.On_remote (_, packet) -> 1 + max_in ~funs hmap packet
  | Ast.On_neighbor (_, packet) ->
      (* Replicated on every neighbor link: at least two copies. *)
      2 + max_in ~funs hmap packet
  | Ast.Call (name, args) -> (
      let from_args =
        List.fold_left (fun acc arg -> acc + max_in ~funs hmap arg) 0 args
      in
      from_args
      +
      match Hashtbl.find_opt funs name with
      | Some f -> max_in ~funs [] f.Ast.fun_body
      | None -> 0)
  | Ast.Tuple components ->
      List.fold_left
        (fun acc component -> acc + max_in ~funs hmap component)
        0 components
  | Ast.Proj (_, operand) | Ast.Unop (_, operand) -> max_in ~funs hmap operand
  | Ast.Let (bindings, body) ->
      List.fold_left
        (fun acc { Ast.bind_expr; _ } -> acc + max_in ~funs hmap bind_expr)
        (max_in ~funs hmap body) bindings
  | Ast.If (cond, then_branch, else_branch) ->
      max_in ~funs hmap cond
      + Int.max (max_in ~funs hmap then_branch) (max_in ~funs hmap else_branch)
  | Ast.Binop (_, left, right) | Ast.Seq (left, right) ->
      max_in ~funs hmap left + max_in ~funs hmap right
  | Ast.Try (body, handlers) ->
      let hmap' =
        List.map
          (fun (exn_name, handler) -> (exn_name, max_in ~funs hmap handler))
          handlers
        @ hmap
      in
      max_in ~funs hmap' body

let max_emissions ~funs expr = max_in ~funs [] expr

let analyze program =
  let funs = Call_graph.fun_bodies program in
  let chans = Array.of_list (Ast.channels program) in
  let chan_count = Array.length chans in
  let emissions =
    Array.map (fun chan -> Call_graph.emissions ~funs chan.Ast.body) chans
  in
  let per_path = Array.map (fun chan -> max_emissions ~funs chan.Ast.body) chans in
  let indices_of_name name =
    List.filter
      (fun i -> String.equal chans.(i).Ast.chan_name name)
      (List.init chan_count Fun.id)
  in
  (* Boolean fix-point: copies.(i) = per-path bound >= 2, or emits to a
     copying channel. *)
  let copies = Array.map (fun bound -> bound >= 2) per_path in
  let iterations = ref 0 in
  let changed = ref true in
  while !changed do
    incr iterations;
    changed := false;
    for i = 0 to chan_count - 1 do
      if not copies.(i) then
        let flips =
          List.exists
            (fun emission ->
              List.exists
                (fun j -> copies.(j))
                (indices_of_name emission.Call_graph.em_target))
            emissions.(i)
        in
        if flips then begin
          copies.(i) <- true;
          changed := true
        end
    done
  done;
  (* A copying channel on an emission-graph cycle multiplies packets each
     time around: exponential. Detect with a DFS from every channel. *)
  let adjacency =
    Array.map
      (fun ems ->
        List.concat_map
          (fun emission -> indices_of_name emission.Call_graph.em_target)
          ems)
      emissions
  in
  let on_cycle i =
    (* Is [i] reachable from itself? *)
    let visited = Array.make chan_count false in
    let rec reachable current =
      List.exists
        (fun next ->
          next = i
          ||
          if visited.(next) then false
          else begin
            visited.(next) <- true;
            reachable next
          end)
        adjacency.(current)
    in
    reachable i
  in
  let offender = ref None in
  for i = 0 to chan_count - 1 do
    if !offender = None && copies.(i) && on_cycle i then offender := Some i
  done;
  let copies_list =
    List.init chan_count (fun i -> (chans.(i).Ast.chan_name, copies.(i)))
  in
  match !offender with
  | Some i ->
      {
        ok = false;
        reason =
          Some
            (Printf.sprintf
               "channel %s duplicates packets and lies on an emission cycle \
                (potentially exponential duplication)"
               chans.(i).Ast.chan_name);
        copies = copies_list;
        iterations = !iterations;
      }
  | None -> { ok = true; reason = None; copies = copies_list; iterations = !iterations }
