(** Guaranteed packet delivery (paper §2.1): assuming the network itself is
    reliable, every packet a channel treats is forwarded or delivered.

    Two obligations per channel:

    - no PLAN-P exception can escape the body (user [raise]s and the
      built-in exceptions of partial primitives — division, [chr],
      bounds-checked accessors, audio decoding — must all be handled);
    - every execution path performs at least one [OnRemote], [OnNeighbor]
      or [deliver].

    The must-emit analysis is handler-aware: a [raise] inside a [try] whose
    handler emits counts as emitting. *)

type report = {
  ok : bool;
  failures : (string * string) list;
      (** (channel name, reason) for each failing channel *)
}

val analyze : Planp.Ast.program -> report

(** [may_raise expr ~funs] is the set of exception names that can escape
    [expr] (exposed for tests). *)
val may_raise :
  funs:(string, Planp.Ast.fundef) Hashtbl.t ->
  Planp.Ast.expr ->
  string list

(** [must_emit expr ~funs] — every path emits or delivers (exposed for
    tests). *)
val must_emit :
  funs:(string, Planp.Ast.fundef) Hashtbl.t -> Planp.Ast.expr -> bool
