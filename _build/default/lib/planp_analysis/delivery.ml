module Ast = Planp.Ast

type report = { ok : bool; failures : (string * string) list }

module Names = Set.Make (String)

(* Exceptions the partial primitives can raise (kept in sync with the
   planp_runtime primitive library). *)
let prim_exceptions = function
  | "chr" -> [ "BadChar" ]
  | "strget" | "substr" | "blobByte" | "blobU32" | "blobSub" ->
      [ "OutOfBounds" ]
  | "audioSeq" | "audioQuality" | "audioFrames" | "audioDegrade"
  | "audioRestore" ->
      [ "BadAudio" ]
  | "imgWidth" | "imgHeight" | "imgDepth" | "imgBytes" | "imgDistill" ->
      [ "BadImage" ]
  | _ -> []

let rec may_raise_set ~funs (expr : Ast.expr) =
  match expr.Ast.desc with
  | Ast.Int _ | Ast.Bool _ | Ast.String _ | Ast.Char _ | Ast.Unit | Ast.Host _
  | Ast.Var _ ->
      Names.empty
  | Ast.Raise exn_name -> Names.singleton exn_name
  | Ast.Call (name, args) ->
      let from_args =
        List.fold_left
          (fun acc arg -> Names.union acc (may_raise_set ~funs arg))
          Names.empty args
      in
      let own =
        match Hashtbl.find_opt funs name with
        | Some f -> may_raise_set ~funs f.Ast.fun_body
        | None -> Names.of_list (prim_exceptions name)
      in
      Names.union from_args own
  | Ast.Tuple components ->
      List.fold_left
        (fun acc component -> Names.union acc (may_raise_set ~funs component))
        Names.empty components
  | Ast.Proj (_, operand) | Ast.Unop (_, operand) -> may_raise_set ~funs operand
  | Ast.Let (bindings, body) ->
      List.fold_left
        (fun acc { Ast.bind_expr; _ } ->
          Names.union acc (may_raise_set ~funs bind_expr))
        (may_raise_set ~funs body) bindings
  | Ast.If (a, b, c) ->
      Names.union (may_raise_set ~funs a)
        (Names.union (may_raise_set ~funs b) (may_raise_set ~funs c))
  | Ast.Binop ((Ast.Div | Ast.Mod), a, b) ->
      let operands = Names.union (may_raise_set ~funs a) (may_raise_set ~funs b) in
      (* Division by a nonzero literal cannot raise. *)
      (match b.Ast.desc with
      | Ast.Int n when n <> 0 -> operands
      | _ -> Names.add "DivByZero" operands)
  | Ast.Binop (_, a, b) | Ast.Seq (a, b) ->
      Names.union (may_raise_set ~funs a) (may_raise_set ~funs b)
  | Ast.On_remote (_, packet) | Ast.On_neighbor (_, packet) ->
      may_raise_set ~funs packet
  | Ast.Try (body, handlers) ->
      let handled = Names.of_list (List.map fst handlers) in
      let from_body = Names.diff (may_raise_set ~funs body) handled in
      List.fold_left
        (fun acc (_, handler) -> Names.union acc (may_raise_set ~funs handler))
        from_body handlers

let may_raise ~funs expr = Names.elements (may_raise_set ~funs expr)

(* Handler-aware must-emit. [hmap] maps exception names in handler scope to
   whether their handler (transitively) emits. *)
let rec must_emit_in ~funs hmap (expr : Ast.expr) =
  match expr.Ast.desc with
  | Ast.Int _ | Ast.Bool _ | Ast.String _ | Ast.Char _ | Ast.Unit | Ast.Host _
  | Ast.Var _ ->
      false
  | Ast.Raise exn_name -> (
      match List.assoc_opt exn_name hmap with
      | Some handler_emits -> handler_emits
      | None -> false)
  | Ast.On_remote _ | Ast.On_neighbor _ -> true
  | Ast.Call ("deliver", _) -> true
  | Ast.Call (name, args) -> (
      List.exists (must_emit_in ~funs hmap) args
      ||
      match Hashtbl.find_opt funs name with
      | Some f -> must_emit_in ~funs [] f.Ast.fun_body
      | None -> false)
  | Ast.Tuple components -> List.exists (must_emit_in ~funs hmap) components
  | Ast.Proj (_, operand) | Ast.Unop (_, operand) ->
      must_emit_in ~funs hmap operand
  | Ast.Let (bindings, body) ->
      List.exists
        (fun { Ast.bind_expr; _ } -> must_emit_in ~funs hmap bind_expr)
        bindings
      || must_emit_in ~funs hmap body
  | Ast.If (cond, then_branch, else_branch) ->
      must_emit_in ~funs hmap cond
      || (must_emit_in ~funs hmap then_branch
         && must_emit_in ~funs hmap else_branch)
  | Ast.Binop ((Ast.And | Ast.Or), left, _right) ->
      (* The right operand may be skipped by short-circuiting. *)
      must_emit_in ~funs hmap left
  | Ast.Binop (_, left, right) ->
      must_emit_in ~funs hmap left || must_emit_in ~funs hmap right
  | Ast.Seq (left, right) ->
      must_emit_in ~funs hmap left || must_emit_in ~funs hmap right
  | Ast.Try (body, handlers) ->
      let hmap' =
        List.map
          (fun (exn_name, handler) ->
            (exn_name, must_emit_in ~funs hmap handler))
          handlers
        @ hmap
      in
      must_emit_in ~funs hmap' body

let must_emit ~funs expr = must_emit_in ~funs [] expr

let analyze program =
  let funs = Call_graph.fun_bodies program in
  let failures =
    List.filter_map
      (fun chan ->
        let escaping = may_raise ~funs chan.Ast.body in
        if escaping <> [] then
          Some
            ( chan.Ast.chan_name,
              Printf.sprintf "exception(s) %s may escape"
                (String.concat ", " escaping) )
        else if not (must_emit ~funs chan.Ast.body) then
          Some
            ( chan.Ast.chan_name,
              "some execution path neither forwards nor delivers the packet" )
        else None)
      (Ast.channels program)
  in
  { ok = failures = []; failures }
