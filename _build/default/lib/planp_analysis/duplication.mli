(** Safe (linear) packet duplication (paper §2.1), "proved using a standard
    fix-point induction".

    Per channel, a path-sensitive count bounds how many packets one
    invocation can emit ([OnNeighbor] counts as 2: it replicates onto every
    neighbor link). The fix-point then propagates a boolean [copies] flag:
    a channel copies if some path emits two or more packets, or emits to a
    copying channel. Duplication is exponential — and the program rejected —
    exactly when a copying channel lies on a cycle of the channel emission
    graph; acyclic copying is a bounded tree. The number of fix-point
    iterations (paper: at most [2^c]) is reported. *)

type report = {
  ok : bool;
  reason : string option;
  copies : (string * bool) list;  (** per-channel copying flag *)
  iterations : int;
}

val analyze : Planp.Ast.program -> report

(** [max_emissions ~funs expr] — the per-path emission bound (for tests). *)
val max_emissions :
  funs:(string, Planp.Ast.fundef) Hashtbl.t -> Planp.Ast.expr -> int
