module Ast = Planp.Ast

type kind = Remote | Neighbor

type emission = {
  em_target : string;
  em_kind : kind;
  em_packet : Ast.expr;
  em_loc : Planp.Loc.t;
}

let fun_bodies program =
  let table = Hashtbl.create 16 in
  List.iter
    (function
      | Ast.Dfun f -> Hashtbl.replace table f.Ast.fun_name f
      | Ast.Dval _ | Ast.Dexception _ | Ast.Dprotostate _ | Ast.Dchannel _ -> ())
    program;
  table

let emissions ~funs expr =
  (* Functions are non-recursive, so expansion terminates; visit each call
     site rather than memoizing (programs are ~100 lines). *)
  let acc = ref [] in
  let rec walk (expr : Ast.expr) =
    match expr.Ast.desc with
    | Ast.Int _ | Ast.Bool _ | Ast.String _ | Ast.Char _ | Ast.Unit
    | Ast.Host _ | Ast.Var _ | Ast.Raise _ ->
        ()
    | Ast.Call (name, args) ->
        List.iter walk args;
        (match Hashtbl.find_opt funs name with
        | Some f -> walk f.Ast.fun_body
        | None -> ())
    | Ast.Tuple components -> List.iter walk components
    | Ast.Proj (_, operand) | Ast.Unop (_, operand) -> walk operand
    | Ast.Let (bindings, body) ->
        List.iter (fun { Ast.bind_expr; _ } -> walk bind_expr) bindings;
        walk body
    | Ast.If (cond, then_branch, else_branch) ->
        walk cond;
        walk then_branch;
        walk else_branch
    | Ast.Binop (_, left, right) | Ast.Seq (left, right) ->
        walk left;
        walk right
    | Ast.On_remote (chan, packet) ->
        walk packet;
        acc :=
          { em_target = chan; em_kind = Remote; em_packet = packet;
            em_loc = expr.Ast.loc }
          :: !acc
    | Ast.On_neighbor (chan, packet) ->
        walk packet;
        acc :=
          { em_target = chan; em_kind = Neighbor; em_packet = packet;
            em_loc = expr.Ast.loc }
          :: !acc
    | Ast.Try (body, handlers) ->
        walk body;
        List.iter (fun (_, handler) -> walk handler) handlers
  in
  walk expr;
  List.rev !acc

let channel_emissions program =
  let funs = fun_bodies program in
  List.map
    (fun chan -> (chan, emissions ~funs chan.Ast.body))
    (Ast.channels program)

let targets_of program name =
  List.filter
    (fun chan -> String.equal chan.Ast.chan_name name)
    (Ast.channels program)
