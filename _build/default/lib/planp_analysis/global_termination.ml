module Ast = Planp.Ast

type verdict = Proved | Rejected of string

type report = {
  verdict : verdict;
  states_explored : int;
  transitions : int;
}

(* Abstract addresses, symbolic in the incoming packet's header. *)
type haddr =
  | Sym_dst  (* the incoming packet's destination *)
  | Sym_src  (* the incoming packet's source *)
  | Lit of int
  | This  (* the executing node *)
  | Top

(* Abstract values an expression can denote, as far as headers travel. *)
type aval =
  | Apkt  (* the channel's packet parameter *)
  | Aip of haddr * haddr  (* an ip header: (src, dst) *)
  | Ahost of haddr
  | Aother

(* Path conditions on the incoming packet's destination, harvested from
   [ipDst(iph) = <literal>] tests: a gateway that only rewrites packets
   addressed to its virtual address cannot re-rewrite the rewritten ones. *)
type guard = Must_be of int | Must_not_be of int

(* An emission template: how the emitted packet's header relates to the
   incoming one, and under which destination guards the emission runs. *)
type template = {
  t_target : string;
  t_kind : Call_graph.kind;
  t_dst : haddr;
  t_src : haddr;
  t_guards : guard list;
}

let rec abstract_expr funs env (expr : Ast.expr) : aval =
  match expr.Ast.desc with
  | Ast.Host h -> Ahost (Lit h)
  | Ast.Var name -> (
      match List.assoc_opt name env with Some v -> v | None -> Aother)
  | Ast.Proj (1, operand) -> (
      match abstract_expr funs env operand with
      | Apkt -> Aip (Sym_src, Sym_dst)
      | Aip _ | Ahost _ | Aother -> Aother)
  | Ast.Proj (_, _) -> Aother
  | Ast.Call ("thisHost", []) -> Ahost This
  | Ast.Call ("ipSrc", [ arg ]) -> (
      match abstract_expr funs env arg with
      | Aip (src, _) -> Ahost src
      | Apkt | Ahost _ | Aother -> Ahost Top)
  | Ast.Call ("ipDst", [ arg ]) -> (
      match abstract_expr funs env arg with
      | Aip (_, dst) -> Ahost dst
      | Apkt | Ahost _ | Aother -> Ahost Top)
  | Ast.Call ("ipDestSet", [ ip; host ]) -> (
      let new_dst =
        match abstract_expr funs env host with Ahost h -> h | _ -> Top
      in
      match abstract_expr funs env ip with
      | Aip (src, _) -> Aip (src, new_dst)
      | Apkt | Ahost _ | Aother -> Aip (Top, new_dst))
  | Ast.Call ("ipSrcSet", [ ip; host ]) -> (
      let new_src =
        match abstract_expr funs env host with Ahost h -> h | _ -> Top
      in
      match abstract_expr funs env ip with
      | Aip (_, dst) -> Aip (new_src, dst)
      | Apkt | Ahost _ | Aother -> Aip (new_src, Top))
  | Ast.Call (name, args) -> (
      match Hashtbl.find_opt funs name with
      | Some f when List.length f.Ast.params = List.length args ->
          let bound =
            List.map2
              (fun (param, _ty) arg -> (param, abstract_expr funs env arg))
              f.Ast.params args
          in
          abstract_expr funs (bound @ env) f.Ast.fun_body
      | Some _ | None -> Aother)
  | Ast.Let (bindings, body) ->
      let env =
        List.fold_left
          (fun env { Ast.bind_name; bind_expr; _ } ->
            (bind_name, abstract_expr funs env bind_expr) :: env)
          env bindings
      in
      abstract_expr funs env body
  | Ast.If (_, then_branch, else_branch) ->
      let a = abstract_expr funs env then_branch in
      let b = abstract_expr funs env else_branch in
      if a = b then a else Aother
  | Ast.Tuple _ | Ast.Int _ | Ast.Bool _ | Ast.String _ | Ast.Char _
  | Ast.Unit | Ast.Binop _ | Ast.Unop _ | Ast.Seq _ | Ast.On_remote _
  | Ast.On_neighbor _ | Ast.Raise _ | Ast.Try _ ->
      Aother

(* Header of an emitted packet expression. *)
let packet_header funs env (packet : Ast.expr) =
  match packet.Ast.desc with
  | Ast.Tuple (ip :: _) -> (
      match abstract_expr funs env ip with
      | Aip (src, dst) -> (src, dst)
      | Apkt | Ahost _ | Aother -> (Top, Top))
  | _ -> (
      match abstract_expr funs env packet with
      | Apkt -> (Sym_src, Sym_dst) (* forwarding the packet unchanged *)
      | Aip (src, dst) -> (src, dst)
      | Ahost _ | Aother -> (Top, Top))

(* Harvest destination guards from a condition: [ipDst(iph) = literal]
   tests (either operand order), combined through andalso/orelse/not. The
   result is (guards known to hold in the then branch, guards known to hold
   in the else branch). *)
let rec dst_guards funs env (cond : Ast.expr) =
  match cond.Ast.desc with
  | Ast.Binop (op, left, right) when op = Ast.Eq || op = Ast.Ne -> (
      let classify e =
        match abstract_expr funs env e with
        | Ahost Sym_dst -> `Dst
        | Ahost (Lit a) -> `Lit a
        | Apkt | Aip _ | Ahost _ | Aother -> `Other
      in
      let lit =
        match (classify left, classify right) with
        | `Dst, `Lit a | `Lit a, `Dst -> Some a
        | _ -> None
      in
      match lit with
      | Some a when op = Ast.Eq -> ([ Must_be a ], [ Must_not_be a ])
      | Some a -> ([ Must_not_be a ], [ Must_be a ])
      | None -> ([], []))
  | Ast.Binop (Ast.And, left, right) ->
      (* Both conjuncts hold in the then branch; either may have failed in
         the else branch. *)
      let then_l, _ = dst_guards funs env left in
      let then_r, _ = dst_guards funs env right in
      (then_l @ then_r, [])
  | Ast.Binop (Ast.Or, left, right) ->
      let _, else_l = dst_guards funs env left in
      let _, else_r = dst_guards funs env right in
      ([], else_l @ else_r)
  | Ast.Unop (Ast.Not, operand) ->
      let then_g, else_g = dst_guards funs env operand in
      (else_g, then_g)
  | _ -> ([], [])

(* Collect emission templates of a channel body, keeping abstract bindings
   and destination guards in scope while walking. *)
let templates_of_channel ?(global_env = []) funs (chan : Ast.channel) =
  let acc = ref [] in
  let rec walk env guards (expr : Ast.expr) =
    match expr.Ast.desc with
    | Ast.Int _ | Ast.Bool _ | Ast.String _ | Ast.Char _ | Ast.Unit
    | Ast.Host _ | Ast.Var _ | Ast.Raise _ ->
        ()
    | Ast.Call (name, args) -> (
        List.iter (walk env guards) args;
        match Hashtbl.find_opt funs name with
        | Some f when List.length f.Ast.params = List.length args ->
            let bound =
              List.map2
                (fun (param, _ty) arg -> (param, abstract_expr funs env arg))
                f.Ast.params args
            in
            walk (bound @ env) guards f.Ast.fun_body
        | Some _ | None -> ())
    | Ast.Tuple components -> List.iter (walk env guards) components
    | Ast.Proj (_, operand) | Ast.Unop (_, operand) -> walk env guards operand
    | Ast.Let (bindings, body) ->
        let env =
          List.fold_left
            (fun env { Ast.bind_name; bind_expr; _ } ->
              walk env guards bind_expr;
              (bind_name, abstract_expr funs env bind_expr) :: env)
            env bindings
        in
        walk env guards body
    | Ast.If (cond, then_branch, else_branch) ->
        walk env guards cond;
        let then_guards, else_guards = dst_guards funs env cond in
        walk env (then_guards @ guards) then_branch;
        walk env (else_guards @ guards) else_branch
    | Ast.Binop (_, a, b) | Ast.Seq (a, b) ->
        walk env guards a;
        walk env guards b
    | Ast.On_remote (target, packet) ->
        walk env guards packet;
        let t_src, t_dst = packet_header funs env packet in
        acc :=
          { t_target = target; t_kind = Call_graph.Remote; t_src; t_dst;
            t_guards = guards }
          :: !acc
    | Ast.On_neighbor (target, packet) ->
        walk env guards packet;
        let t_src, t_dst = packet_header funs env packet in
        acc :=
          { t_target = target; t_kind = Call_graph.Neighbor; t_src; t_dst;
            t_guards = guards }
          :: !acc
    | Ast.Try (body, handlers) ->
        walk env guards body;
        List.iter (fun (_, handler) -> walk env guards handler) handlers
  in
  walk ((chan.Ast.pkt_name, Apkt) :: global_env) [] chan.Ast.body;
  List.rev !acc

(* Concrete-side addresses of explored states. *)
type caddr = C_dst0 | C_src0 | C_lit of int | C_this | C_top

let subst ~src ~dst = function
  | Sym_dst -> dst
  | Sym_src -> src
  | Lit a -> C_lit a
  | This -> C_this
  | Top -> C_top

let caddr_name = function
  | C_dst0 -> "the original destination"
  | C_src0 -> "the original source"
  | C_lit a ->
      Printf.sprintf "%d.%d.%d.%d" ((a lsr 24) land 0xff) ((a lsr 16) land 0xff)
        ((a lsr 8) land 0xff) (a land 0xff)
  | C_this -> "this node"
  | C_top -> "an unknown address"

type state = { st_chan : int; st_src : caddr; st_dst : caddr }

(* Can a packet whose (abstract) destination is [dst] satisfy the guard?
   Symbolic destinations can be anything; only literal-vs-literal conflicts
   are definite. *)
let guard_feasible dst = function
  | Must_be a -> (
      match dst with C_lit b -> a = b | C_dst0 | C_src0 | C_this | C_top -> true)
  | Must_not_be a -> (
      match dst with C_lit b -> a <> b | C_dst0 | C_src0 | C_this | C_top -> true)

exception Reject of string

(* A cycle is benign iff all its edges are OnRemote and all its states share
   one routable destination: then every hop strictly approaches that
   destination under acyclic routing. *)
let classify_cycle ~kinds ~dsts ~chan_name =
  let all_remote = List.for_all (fun k -> k = Call_graph.Remote) kinds in
  let routable = function C_dst0 | C_src0 | C_lit _ -> true | C_this | C_top -> false in
  let single_routable_dst =
    match dsts with
    | [] -> true
    | d :: rest -> routable d && List.for_all (fun x -> x = d) rest
  in
  if not all_remote then
    raise
      (Reject
         (Printf.sprintf "potential flooding loop through channel %s" chan_name))
  else if not single_routable_dst then
    let shown =
      match dsts with d :: _ -> caddr_name d | [] -> "an unknown address"
    in
    raise
      (Reject
         (Printf.sprintf
            "potential packet cycle through channel %s (destination %s does \
             not stay fixed along the cycle)"
            chan_name shown))

let analyze program =
  let funs = Call_graph.fun_bodies program in
  (* Global values abstract once (no packet in scope, so Apkt never arises
     in their initializers). *)
  let global_env =
    List.fold_left
      (fun env decl ->
        match decl with
        | Ast.Dval ({ Ast.bind_name; bind_expr; _ }, _) ->
            (bind_name, abstract_expr funs env bind_expr) :: env
        | Ast.Dfun _ | Ast.Dexception _ | Ast.Dprotostate _ | Ast.Dchannel _ ->
            env)
      [] program
  in
  let chans = Array.of_list (Ast.channels program) in
  let chan_count = Array.length chans in
  let templates = Array.map (templates_of_channel ~global_env funs) chans in
  let indices_of_name name =
    let matching = ref [] in
    for i = chan_count - 1 downto 0 do
      if String.equal chans.(i).Ast.chan_name name then matching := i :: !matching
    done;
    !matching
  in
  let states_explored = ref 0 in
  let transitions = ref 0 in
  let visited = Hashtbl.create 64 in
  (* stack: (state, kind-of-edge-that-entered-it) list, most recent first. *)
  let rec explore stack state =
    if not (Hashtbl.mem visited state) then begin
      Hashtbl.add visited state ();
      incr states_explored;
      List.iter
        (fun template ->
          if List.for_all (guard_feasible state.st_dst) template.t_guards then begin
          incr transitions;
          let next_src = subst ~src:state.st_src ~dst:state.st_dst template.t_src in
          let next_dst = subst ~src:state.st_src ~dst:state.st_dst template.t_dst in
          if next_dst = C_top then
            raise
              (Reject
                 (Printf.sprintf
                    "channel %s emits to a destination the analysis cannot resolve"
                    chans.(state.st_chan).Ast.chan_name));
          List.iter
            (fun target_index ->
              let next =
                { st_chan = target_index; st_src = next_src; st_dst = next_dst }
              in
              (* Scan the stack for [next]; collect the cycle's edge kinds
                 and state destinations on the way. The closing edge and the
                 entering edges of states above [next] form the cycle. *)
              let rec scan kinds dsts = function
                | [] -> None
                | (st, entering) :: rest ->
                    if st = next then Some (kinds, st.st_dst :: dsts)
                    else scan (entering :: kinds) (st.st_dst :: dsts) rest
              in
              match scan [ template.t_kind ] [ next_dst ] stack with
              | Some (kinds, dsts) ->
                  classify_cycle ~kinds ~dsts
                    ~chan_name:chans.(next.st_chan).Ast.chan_name
              | None -> explore ((next, template.t_kind) :: stack) next)
            (indices_of_name template.t_target)
          end)
        templates.(state.st_chan)
    end
  in
  try
    for i = 0 to chan_count - 1 do
      let init = { st_chan = i; st_src = C_src0; st_dst = C_dst0 } in
      explore [ (init, Call_graph.Remote) ] init
    done;
    {
      verdict = Proved;
      states_explored = !states_explored;
      transitions = !transitions;
    }
  with Reject reason ->
    {
      verdict = Rejected reason;
      states_explored = !states_explored;
      transitions = !transitions;
    }
