lib/planp_analysis/call_graph.mli: Hashtbl Planp
