lib/planp_analysis/call_graph.ml: Hashtbl List Planp String
