lib/planp_analysis/delivery.ml: Call_graph Hashtbl List Planp Printf Set String
