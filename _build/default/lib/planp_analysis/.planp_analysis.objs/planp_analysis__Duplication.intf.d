lib/planp_analysis/duplication.mli: Hashtbl Planp
