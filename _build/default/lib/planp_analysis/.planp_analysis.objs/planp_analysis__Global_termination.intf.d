lib/planp_analysis/global_termination.mli: Planp
