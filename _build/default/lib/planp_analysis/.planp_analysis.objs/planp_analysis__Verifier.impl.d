lib/planp_analysis/verifier.ml: Delivery Duplication Format Global_termination List Local_termination Option Planp Printf
