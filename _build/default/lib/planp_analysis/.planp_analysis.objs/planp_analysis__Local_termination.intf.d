lib/planp_analysis/local_termination.mli: Planp
