lib/planp_analysis/duplication.ml: Array Call_graph Fun Hashtbl Int List Planp Printf String
