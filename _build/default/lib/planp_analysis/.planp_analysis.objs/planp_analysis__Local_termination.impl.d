lib/planp_analysis/local_termination.ml: Call_graph Hashtbl Int List Planp Printf
