lib/planp_analysis/delivery.mli: Hashtbl Planp
