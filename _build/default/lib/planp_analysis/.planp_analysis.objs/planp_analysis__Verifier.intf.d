lib/planp_analysis/verifier.mli: Delivery Duplication Format Global_termination Local_termination Planp
