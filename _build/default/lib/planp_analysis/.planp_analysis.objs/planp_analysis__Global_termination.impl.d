lib/planp_analysis/global_termination.ml: Array Call_graph Hashtbl List Planp Printf String
