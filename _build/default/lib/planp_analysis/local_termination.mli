(** Local termination (paper §2.1): "PLAN-P programs, by construction, are
    guaranteed to locally terminate. This is a direct result of restricting
    the language to not allow recursion or unbounded loops."

    The language has no loop construct and the type checker scopes functions
    so they cannot see themselves; this analysis independently re-validates
    both facts (defence in depth — e.g. against hand-built ASTs) and reports
    the function call-graph depth. *)

type report = {
  ok : bool;
  reason : string option;  (** populated when [ok = false] *)
  function_count : int;
  max_call_depth : int;  (** longest chain of nested user-function calls *)
}

val analyze : Planp.Ast.program -> report
