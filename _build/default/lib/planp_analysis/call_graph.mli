(** Emission structure of a program: which channels can send packets to
    which, through [OnRemote]/[OnNeighbor], including emissions buried in
    function bodies. The substrate of the global-termination and
    duplication analyses. *)

type kind = Remote | Neighbor

type emission = {
  em_target : string;  (** target channel name ([network] included) *)
  em_kind : kind;
  em_packet : Planp.Ast.expr;  (** the packet expression *)
  em_loc : Planp.Loc.t;
}

(** [fun_bodies program] maps function names to bodies. *)
val fun_bodies : Planp.Ast.program -> (string, Planp.Ast.fundef) Hashtbl.t

(** [emissions expr ~funs] lists every emission that *may* execute when
    [expr] runs (path-insensitive union), expanding user-function calls. *)
val emissions :
  funs:(string, Planp.Ast.fundef) Hashtbl.t ->
  Planp.Ast.expr ->
  emission list

(** [channel_emissions program] pairs each channel with its possible
    emissions. *)
val channel_emissions :
  Planp.Ast.program -> (Planp.Ast.channel * emission list) list

(** [targets_of program name] lists the channels an emission to [name] can
    reach: the overloads of [name], or every [network] channel when [name]
    is the network channel. *)
val targets_of : Planp.Ast.program -> string -> Planp.Ast.channel list
