(** Global termination (paper §2.1): prove packets cannot cycle in the
    network, assuming IP routing tables are acyclic.

    The analysis abstracts a travelling packet as a state
    [(channel, source, destination)] with addresses drawn from
    {original-dst, original-src, literal, this-node, unknown} and explores
    the state graph induced by the program's emissions ("exhaustive state
    exploration", with the paper's [r·d·2^d] bound reported as
    [states_explored]).

    A cycle in the state graph is benign when every edge is [OnRemote] and
    every state shares one concrete destination: under acyclic routing each
    hop strictly approaches that destination, so the recursion bottoms out.
    Any other cycle — flooding ([OnNeighbor]), destination ping-pong, or
    self-addressed loops — is rejected, as is any emission whose
    destination cannot be resolved ([unknown]). Conservative by design;
    the paper's escape hatch for legitimate rejects is authentication. *)

type verdict = Proved | Rejected of string

type report = {
  verdict : verdict;
  states_explored : int;
  transitions : int;
}

val analyze : Planp.Ast.program -> report
