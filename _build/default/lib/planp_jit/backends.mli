(** Backend selection and code-generation timing. *)

(** [all ()] is [interp; jit; bytecode]. *)
val all : unit -> Planp_runtime.Backend.t list

val interp : Planp_runtime.Backend.t

(** The full JIT: compile-time constant folding ({!Fold}) followed by
    run-time specialization ({!Specialize}) — both halves of the paper's
    partial evaluation. *)
val jit : Planp_runtime.Backend.t

(** Specialization without the folding pass, for the ablation bench. *)
val jit_nofold : Planp_runtime.Backend.t

val bytecode : Planp_runtime.Backend.t
val by_name : string -> Planp_runtime.Backend.t option

(** [codegen_time_ms backend checked ~globals ~repeats] compiles the program
    [repeats] times and returns the mean wall-clock milliseconds per
    compilation — the measurement of the paper's Fig. 3. *)
val codegen_time_ms :
  Planp_runtime.Backend.t ->
  Planp.Typecheck.checked ->
  globals:(string * Planp_runtime.Value.t) list ->
  repeats:int ->
  float
