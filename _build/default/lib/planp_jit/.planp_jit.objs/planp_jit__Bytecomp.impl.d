lib/planp_jit/bytecomp.ml: Array Bytecode Hashtbl List Planp Planp_runtime Printf Vm
