lib/planp_jit/bytecode.ml: Array Format List Planp Planp_runtime Printf String
