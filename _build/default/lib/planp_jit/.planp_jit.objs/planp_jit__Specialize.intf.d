lib/planp_jit/specialize.mli: Planp Planp_runtime
