lib/planp_jit/fold.mli: Planp Planp_runtime
