lib/planp_jit/specialize.ml: Array Hashtbl Int List Planp Planp_runtime Printf
