lib/planp_jit/backends.mli: Planp Planp_runtime
