lib/planp_jit/vm.mli: Bytecode Planp_runtime
