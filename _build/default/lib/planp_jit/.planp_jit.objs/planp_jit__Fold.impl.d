lib/planp_jit/fold.ml: Char Int List Option Planp Planp_runtime String
