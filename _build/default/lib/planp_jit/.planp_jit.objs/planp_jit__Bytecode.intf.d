lib/planp_jit/bytecode.mli: Format Planp Planp_runtime
