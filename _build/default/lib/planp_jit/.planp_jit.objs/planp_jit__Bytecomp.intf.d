lib/planp_jit/bytecomp.mli: Bytecode Planp Planp_runtime
