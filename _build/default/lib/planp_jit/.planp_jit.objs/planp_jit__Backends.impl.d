lib/planp_jit/backends.ml: Bytecomp Fold List Planp_runtime Specialize String Unix
