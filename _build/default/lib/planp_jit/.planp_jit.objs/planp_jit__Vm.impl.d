lib/planp_jit/vm.ml: Array Bytecode Int List Option Planp Planp_runtime
