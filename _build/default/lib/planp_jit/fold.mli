(** Compile-time constant folding — the static half of partial evaluation
    (the paper's Tempo performed both compile-time and run-time
    specialization; {!Specialize} is the run-time half, this pass the
    compile-time half).

    With the program's global constants as static input, [program] folds:

    - arithmetic/comparison/boolean/string operators over literals
      (faithfully raising... no: a literal division by zero is left in
      place so the run-time exception semantics are preserved);
    - [if] over a literal condition (pruning the dead branch);
    - short-circuit operators with a literal left side;
    - projections of literal tuples;
    - pure primitives over literal arguments ([itos], [min], [charPos], ...);
    - [let]-bound literals (substituted when the binding becomes literal).

    Folding preserves semantics for verified programs; the [jit] backend
    applies it before specialization, and the ablation benchmark
    quantifies what it buys. *)

(** [expr ~globals e] folds one expression. [globals] supplies literal
    values for free variables. *)
val expr :
  globals:(string * Planp_runtime.Value.t) list ->
  Planp.Ast.expr ->
  Planp.Ast.expr

(** [program checked ~globals] folds every function body, initializer and
    channel body. *)
val program :
  Planp.Typecheck.checked ->
  globals:(string * Planp_runtime.Value.t) list ->
  Planp.Typecheck.checked

(** [count_nodes e] — AST size, for measuring how much folding removed. *)
val count_nodes : Planp.Ast.expr -> int
