(** AST → bytecode compiler.

    Emits one {!Bytecode.func} per user function plus one per channel
    (channels are functions of three parameters returning the state pair).
    Globals are embedded as constants; primitives are interned into the
    unit's constant pool. *)

type compiled_unit = {
  unit_ : Bytecode.unit_;
  channel_fns : (Planp.Ast.channel * int) list;
      (** function index of each channel body *)
}

val compile_program :
  Planp.Typecheck.checked ->
  globals:(string * Planp_runtime.Value.t) list ->
  compiled_unit

(** The bytecode interpreter as a runtime backend. *)
val backend : Planp_runtime.Backend.t

(** [compile_expr ~globals ~params expr] builds a single-function unit (for
    tests and microbenchmarks); run it with {!Vm.call} at [fn = 0]. *)
val compile_expr :
  globals:(string * Planp_runtime.Value.t) list ->
  params:string list ->
  Planp.Ast.expr ->
  Bytecode.unit_
