type t = {
  queue : (unit -> unit) Heap.t;
  mutable clock : float;
  mutable processed : int;
}

let create () = { queue = Heap.create (); clock = 0.0; processed = 0 }
let now engine = engine.clock

let schedule engine ~at thunk =
  if at < engine.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule: time %g is before now (%g)" at
         engine.clock);
  Heap.add engine.queue ~time:at thunk

let schedule_after engine ~delay thunk =
  if delay < 0.0 then invalid_arg "Engine.schedule_after: negative delay";
  Heap.add engine.queue ~time:(engine.clock +. delay) thunk

let default_limit = 100_000_000

let step engine =
  match Heap.pop engine.queue with
  | None -> false
  | Some (time, thunk) ->
      engine.clock <- time;
      engine.processed <- engine.processed + 1;
      thunk ();
      true

let run ?(limit = default_limit) engine =
  let fired = ref 0 in
  while step engine do
    incr fired;
    if !fired > limit then invalid_arg "Engine.run: event limit exceeded"
  done

let run_until ?(limit = default_limit) engine ~stop =
  let fired = ref 0 in
  let continue = ref true in
  while !continue do
    match Heap.peek_time engine.queue with
    | Some time when time <= stop ->
        ignore (step engine);
        incr fired;
        if !fired > limit then invalid_arg "Engine.run_until: event limit exceeded"
    | Some _ | None -> continue := false
  done;
  if stop > engine.clock then engine.clock <- stop

let pending engine = Heap.size engine.queue
let events_processed engine = engine.processed
