type t = string

let empty = ""
let of_string s = s
let to_string p = p
let of_bytes b = Bytes.to_string b
let length = String.length

let check p off width op =
  if off < 0 || off + width > String.length p then
    invalid_arg
      (Printf.sprintf "Payload.%s: offset %d (width %d) out of bounds (len %d)"
         op off width (String.length p))

let get_u8 p off =
  check p off 1 "get_u8";
  Char.code p.[off]

let get_u16 p off =
  check p off 2 "get_u16";
  (Char.code p.[off] lsl 8) lor Char.code p.[off + 1]

let get_u32 p off =
  check p off 4 "get_u32";
  (Char.code p.[off] lsl 24)
  lor (Char.code p.[off + 1] lsl 16)
  lor (Char.code p.[off + 2] lsl 8)
  lor Char.code p.[off + 3]

let sub p ~pos ~len =
  check p pos len "sub";
  String.sub p pos len

let concat parts = String.concat "" parts
let equal = String.equal
let fill len byte = String.make len (Char.chr (byte land 0xff))

let pp fmt p =
  let n = String.length p in
  let shown = min n 16 in
  Format.fprintf fmt "payload[%d:" n;
  for i = 0 to shown - 1 do
    Format.fprintf fmt " %02x" (Char.code p.[i])
  done;
  if shown < n then Format.fprintf fmt " ...";
  Format.fprintf fmt "]"

module Writer = struct
  type w = Buffer.t

  let create () = Buffer.create 64
  let u8 w v = Buffer.add_char w (Char.chr (v land 0xff))

  let u16 w v =
    u8 w (v lsr 8);
    u8 w v

  let u32 w v =
    u8 w (v lsr 24);
    u8 w (v lsr 16);
    u8 w (v lsr 8);
    u8 w v

  let string = Buffer.add_string
  let raw w p = Buffer.add_string w p
  let finish = Buffer.contents
end

module Reader = struct
  type r = { data : t; mutable pos : int }

  let create data = { data; pos = 0 }

  let u8 r =
    let v = get_u8 r.data r.pos in
    r.pos <- r.pos + 1;
    v

  let u16 r =
    let v = get_u16 r.data r.pos in
    r.pos <- r.pos + 2;
    v

  let u32 r =
    let v = get_u32 r.data r.pos in
    r.pos <- r.pos + 4;
    v

  let string r len =
    let s = sub r.data ~pos:r.pos ~len in
    r.pos <- r.pos + len;
    s

  let remaining r = String.length r.data - r.pos
  let rest r = string r (remaining r)
end
