(** Packet payloads: immutable byte strings with bounds-checked big-endian
    accessors and cursor-style readers/writers.

    Application data (audio frames, HTTP requests, MPEG frames) is serialized
    into payloads so that PLAN-P blob primitives operate on real bytes, as in
    the paper's kernel implementation. *)

type t

val empty : t
val of_string : string -> t
val to_string : t -> string
val of_bytes : bytes -> t
val length : t -> int

(** [get_u8 payload off] reads one byte.
    @raise Invalid_argument when out of bounds (all accessors). *)
val get_u8 : t -> int -> int

val get_u16 : t -> int -> int
val get_u32 : t -> int -> int

(** [sub payload ~pos ~len] extracts a slice. *)
val sub : t -> pos:int -> len:int -> t

val concat : t list -> t
val equal : t -> t -> bool

(** [fill len byte] is a payload of [len] copies of [byte]; used to model
    opaque data of a given size. *)
val fill : int -> int -> t

val pp : Format.formatter -> t -> unit

(** Sequential writer. *)
module Writer : sig
  type w

  val create : unit -> w
  val u8 : w -> int -> unit
  val u16 : w -> int -> unit
  val u32 : w -> int -> unit
  val string : w -> string -> unit

  (** [raw w payload] appends an existing payload. *)
  val raw : w -> t -> unit

  val finish : w -> t
end

(** Sequential reader. *)
module Reader : sig
  type r

  val create : t -> r
  val u8 : r -> int
  val u16 : r -> int
  val u32 : r -> int

  (** [string r len] reads [len] raw bytes. *)
  val string : r -> int -> string

  (** [remaining r] is the number of unread bytes. *)
  val remaining : r -> int

  (** [rest r] reads all remaining bytes as a payload. *)
  val rest : r -> t
end
