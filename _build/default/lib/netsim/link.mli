(** Point-to-point full-duplex links with finite bandwidth, propagation
    latency and a drop-tail queue per direction.

    The queue is modelled analytically: the backlog of a direction at time
    [t] is [(busy_until - t) * bandwidth / 8] bytes; a packet whose wire size
    would push the backlog past [queue_capacity] is dropped. This reproduces
    drop-tail behaviour exactly for FIFO service without materializing the
    queue. *)

type t
type endpoint = A | B

(** [create engine ~bandwidth_bps ~latency ~queue_capacity ()] builds a link.
    [queue_capacity] is in bytes (default 64 KiB). *)
val create :
  ?name:string ->
  ?queue_capacity:int ->
  Engine.t ->
  bandwidth_bps:float ->
  latency:float ->
  unit ->
  t

val name : t -> string
val bandwidth_bps : t -> float

(** [set_up link flag] — a downed link drops everything offered to it
    (fault injection: cable pull). Links start up. *)
val set_up : t -> bool -> unit

val is_up : t -> bool

(** [set_receiver link endpoint f] registers the delivery callback for
    packets arriving *at* [endpoint]. *)
val set_receiver : t -> endpoint -> (Packet.t -> unit) -> unit

(** [send link ~from packet] transmits [packet] from [from] toward the other
    endpoint. Returns [false] if the packet was dropped (queue full). *)
val send : t -> from:endpoint -> Packet.t -> bool

(** [backlog_bytes link endpoint] is the current queue depth of the
    direction transmitting *from* [endpoint]. *)
val backlog_bytes : t -> endpoint -> int

(** [stat link endpoint] is the carried-traffic statistic of the direction
    transmitting *from* [endpoint]. *)
val stat : t -> endpoint -> Flowstat.t

(** [drops link endpoint] counts packets dropped in the direction
    transmitting *from* [endpoint]. *)
val drops : t -> endpoint -> int

val other : endpoint -> endpoint
