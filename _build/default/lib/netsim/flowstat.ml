type sample = { at : float; bytes : int }

type t = {
  win : float;
  samples : sample Queue.t;
  mutable window_bytes : int;
  mutable all_bytes : int;
  mutable all_packets : int;
}

let create ?(window = 1.0) () =
  if window <= 0.0 then invalid_arg "Flowstat.create: window must be positive";
  {
    win = window;
    samples = Queue.create ();
    window_bytes = 0;
    all_bytes = 0;
    all_packets = 0;
  }

let expire stat ~now =
  let horizon = now -. stat.win in
  let continue = ref true in
  while !continue do
    match Queue.peek_opt stat.samples with
    | Some s when s.at < horizon ->
        ignore (Queue.pop stat.samples);
        stat.window_bytes <- stat.window_bytes - s.bytes
    | Some _ | None -> continue := false
  done

let record stat ~now bytes =
  expire stat ~now;
  Queue.push { at = now; bytes } stat.samples;
  stat.window_bytes <- stat.window_bytes + bytes;
  stat.all_bytes <- stat.all_bytes + bytes;
  stat.all_packets <- stat.all_packets + 1

let rate_bps stat ~now =
  expire stat ~now;
  float_of_int (stat.window_bytes * 8) /. stat.win

let total_bytes stat = stat.all_bytes
let total_packets stat = stat.all_packets
let window stat = stat.win

module Series = struct
  type s = { mutable acc : (float * float) list }

  let attach engine stat ~period ~until =
    if period <= 0.0 then invalid_arg "Flowstat.Series.attach: bad period";
    let series = { acc = [] } in
    let rec tick () =
      let now = Engine.now engine in
      series.acc <- (now, rate_bps stat ~now) :: series.acc;
      if now +. period <= until then Engine.schedule_after engine ~delay:period tick
    in
    Engine.schedule_after engine ~delay:period tick;
    series

  let points series = List.rev series.acc
end
