type t = {
  mutable samples : float array;
  mutable len : int;
  mutable sorted : bool;
}

let create () = { samples = Array.make 64 0.0; len = 0; sorted = true }

let add t value =
  if t.len = Array.length t.samples then begin
    let grown = Array.make (2 * t.len) 0.0 in
    Array.blit t.samples 0 grown 0 t.len;
    t.samples <- grown
  end;
  t.samples.(t.len) <- value;
  t.len <- t.len + 1;
  t.sorted <- false

let count t = t.len

let iter t f =
  for i = 0 to t.len - 1 do
    f t.samples.(i)
  done

let merge ~into t = iter t (add into)

let ensure_sorted t =
  if not t.sorted then begin
    let snapshot = Array.sub t.samples 0 t.len in
    Array.sort Float.compare snapshot;
    Array.blit snapshot 0 t.samples 0 t.len;
    t.sorted <- true
  end

let mean t =
  if t.len = 0 then 0.0
  else begin
    let sum = ref 0.0 in
    for i = 0 to t.len - 1 do
      sum := !sum +. t.samples.(i)
    done;
    !sum /. float_of_int t.len
  end

let min t =
  if t.len = 0 then 0.0
  else begin
    ensure_sorted t;
    t.samples.(0)
  end

let max t =
  if t.len = 0 then 0.0
  else begin
    ensure_sorted t;
    t.samples.(t.len - 1)
  end

let percentile t p =
  if p < 0.0 || p > 100.0 then invalid_arg "Summary.percentile: p outside [0, 100]";
  if t.len = 0 then 0.0
  else begin
    ensure_sorted t;
    (* nearest rank *)
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int t.len)) in
    t.samples.(Stdlib.max 0 (Stdlib.min (t.len - 1) (rank - 1)))
  end

let stddev t =
  if t.len < 2 then 0.0
  else begin
    let m = mean t in
    let acc = ref 0.0 in
    for i = 0 to t.len - 1 do
      let d = t.samples.(i) -. m in
      acc := !acc +. (d *. d)
    done;
    sqrt (!acc /. float_of_int t.len)
  end

let pp fmt t =
  Format.fprintf fmt "n=%d mean=%.3f p50=%.3f p95=%.3f max=%.3f" (count t)
    (mean t) (percentile t 50.0) (percentile t 95.0) (max t)
