type t = int

let of_octets a b c d =
  let check octet =
    if octet < 0 || octet > 255 then
      invalid_arg (Printf.sprintf "Addr.of_octets: octet %d out of range" octet)
  in
  check a;
  check b;
  check c;
  check d;
  (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

let to_octets addr =
  ((addr lsr 24) land 0xff, (addr lsr 16) land 0xff, (addr lsr 8) land 0xff,
   addr land 0xff)

let of_string_opt s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> (
      match
        (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c,
         int_of_string_opt d)
      with
      | Some a, Some b, Some c, Some d
        when a >= 0 && a <= 255 && b >= 0 && b <= 255 && c >= 0 && c <= 255
             && d >= 0 && d <= 255 ->
          Some (of_octets a b c d)
      | _ -> None)
  | _ -> None

let of_string s =
  match of_string_opt s with
  | Some addr -> addr
  | None -> invalid_arg (Printf.sprintf "Addr.of_string: %S" s)

let to_string addr =
  let a, b, c, d = to_octets addr in
  Printf.sprintf "%d.%d.%d.%d" a b c d

let broadcast = of_octets 255 255 255 255
let multicast_base = of_octets 224 0 0 0
let multicast_limit = of_octets 239 255 255 255
let is_multicast addr = addr >= multicast_base && addr <= multicast_limit

let same_subnet ~mask_bits a b =
  if mask_bits < 0 || mask_bits > 32 then
    invalid_arg "Addr.same_subnet: mask_bits out of range";
  if mask_bits = 0 then true
  else
    let mask = lnot ((1 lsl (32 - mask_bits)) - 1) land 0xffffffff in
    a land mask = b land mask

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Int.compare a b
let hash (addr : t) = Hashtbl.hash addr
let pp fmt addr = Format.pp_print_string fmt (to_string addr)
