(** Binary min-heap keyed by [(time, seq)] used as the simulator event queue.

    Entries with equal times are dequeued in insertion order, which makes
    simulation runs deterministic. *)

type 'a t

(** [create ()] is an empty heap. *)
val create : unit -> 'a t

(** [add heap ~time value] inserts [value] with priority [time]. *)
val add : 'a t -> time:float -> 'a -> unit

(** [pop heap] removes and returns the minimum entry, or [None] if empty. *)
val pop : 'a t -> (float * 'a) option

(** [peek_time heap] is the time of the minimum entry without removing it. *)
val peek_time : 'a t -> float option

val size : 'a t -> int
val is_empty : 'a t -> bool

(** [clear heap] removes all entries. *)
val clear : 'a t -> unit
