(** IPv4-style 32-bit addresses.

    Addresses are plain [int]s (0 .. 2^32-1) so they can be compared, hashed
    and used as map keys without boxing. The dotted-quad notation used in
    PLAN-P programs (e.g. [131.254.60.81]) parses to this representation. *)

type t = int

(** [of_string s] parses dotted-quad notation.
    @raise Invalid_argument on malformed input. *)
val of_string : string -> t

(** [of_string_opt s] is [of_string] returning [None] on malformed input. *)
val of_string_opt : string -> t option

(** [to_string addr] renders dotted-quad notation. *)
val to_string : t -> string

(** [of_octets a b c d] builds [a.b.c.d].
    @raise Invalid_argument if any octet is outside 0..255. *)
val of_octets : int -> int -> int -> int -> t

val to_octets : t -> int * int * int * int

(** [broadcast] is 255.255.255.255, used for segment-local broadcast. *)
val broadcast : t

(** [multicast_base] is 224.0.0.0; [is_multicast addr] tests the class-D
    range 224.0.0.0 .. 239.255.255.255. *)
val multicast_base : t

val is_multicast : t -> bool

(** [same_subnet ~mask_bits a b] tests whether [a] and [b] share their top
    [mask_bits] bits. *)
val same_subnet : mask_bits:int -> t -> t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
