(** Scalar sample summaries: mean, percentiles, extrema.

    Samples accumulate in insertion order; queries sort a snapshot on
    demand (cheap at experiment scales). Used by the experiments for
    response-time distributions. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int

(** [iter t f] visits every sample (unspecified order). *)
val iter : t -> (float -> unit) -> unit

(** [merge ~into t] adds all of [t]'s samples to [into]. *)
val merge : into:t -> t -> unit

(** All of the following return 0.0 on an empty summary. *)

val mean : t -> float

val min : t -> float
val max : t -> float

(** [percentile t p] for [p] in [0, 100]: nearest-rank.
    @raise Invalid_argument outside the range. *)
val percentile : t -> float -> float

val stddev : t -> float

(** [pp fmt t] — "n=… mean=… p50=… p95=… max=…". *)
val pp : Format.formatter -> t -> unit
