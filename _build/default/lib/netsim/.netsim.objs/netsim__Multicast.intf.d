lib/netsim/multicast.mli: Addr
