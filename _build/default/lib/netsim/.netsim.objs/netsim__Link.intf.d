lib/netsim/link.mli: Engine Flowstat Packet
