lib/netsim/routing.mli: Addr Format
