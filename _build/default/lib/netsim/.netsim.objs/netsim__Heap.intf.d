lib/netsim/heap.mli:
