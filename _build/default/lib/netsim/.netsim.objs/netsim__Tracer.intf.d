lib/netsim/tracer.mli: Addr Format Packet Segment
