lib/netsim/link.ml: Engine Float Flowstat Packet
