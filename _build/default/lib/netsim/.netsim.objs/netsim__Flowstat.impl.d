lib/netsim/flowstat.ml: Engine List Queue
