lib/netsim/reliable.ml: Addr Char Engine Hashtbl Int List Node Packet Payload Queue
