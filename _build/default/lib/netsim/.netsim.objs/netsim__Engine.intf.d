lib/netsim/engine.mli:
