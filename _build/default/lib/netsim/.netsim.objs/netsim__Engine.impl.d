lib/netsim/engine.ml: Heap Printf
