lib/netsim/packet.mli: Addr Format Payload
