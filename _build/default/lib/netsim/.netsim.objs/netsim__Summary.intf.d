lib/netsim/summary.mli: Format
