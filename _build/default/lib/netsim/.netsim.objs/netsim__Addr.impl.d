lib/netsim/addr.ml: Format Hashtbl Int Printf String
