lib/netsim/topology.ml: Addr Array Engine Flowstat Hashtbl Link List Multicast Node Printf Queue Routing Segment
