lib/netsim/summary.ml: Array Float Format Stdlib
