lib/netsim/node.ml: Addr Array Engine Float Hashtbl List Multicast Packet Printf Routing
