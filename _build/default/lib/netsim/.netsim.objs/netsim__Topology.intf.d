lib/netsim/topology.mli: Addr Engine Link Multicast Node Segment
