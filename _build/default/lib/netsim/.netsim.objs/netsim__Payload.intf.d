lib/netsim/payload.mli: Format
