lib/netsim/node.mli: Addr Engine Multicast Packet Payload Routing
