lib/netsim/segment.mli: Addr Engine Flowstat Packet
