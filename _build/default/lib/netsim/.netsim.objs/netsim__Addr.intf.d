lib/netsim/addr.mli: Format
