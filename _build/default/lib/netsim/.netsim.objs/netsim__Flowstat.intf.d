lib/netsim/flowstat.mli: Engine
