lib/netsim/tracer.ml: Addr Buffer Format List Packet Queue Segment
