lib/netsim/multicast.ml: Addr Hashtbl Int List Printf Set
