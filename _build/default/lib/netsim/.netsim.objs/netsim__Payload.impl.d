lib/netsim/payload.ml: Buffer Bytes Char Format Printf String
