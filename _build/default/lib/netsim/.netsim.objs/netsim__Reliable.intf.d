lib/netsim/reliable.mli: Addr Node Payload
