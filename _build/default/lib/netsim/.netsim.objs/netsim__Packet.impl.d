lib/netsim/packet.ml: Addr Format Payload
