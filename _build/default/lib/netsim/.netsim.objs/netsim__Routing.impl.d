lib/netsim/routing.ml: Addr Format Hashtbl List
