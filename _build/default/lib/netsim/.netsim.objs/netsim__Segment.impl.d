lib/netsim/segment.ml: Addr Array Engine Float Flowstat Packet
