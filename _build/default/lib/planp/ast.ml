type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Ne
  | Lt
  | Gt
  | Le
  | Ge
  | And
  | Or
  | Concat

type unop = Not | Neg

type expr = { desc : desc; loc : Loc.t }

and desc =
  | Int of int
  | Bool of bool
  | String of string
  | Char of char
  | Unit
  | Host of int
  | Var of string
  | Call of string * expr list
  | Tuple of expr list
  | Proj of int * expr
  | Let of binding list * expr
  | If of expr * expr * expr
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Seq of expr * expr
  | On_remote of string * expr
  | On_neighbor of string * expr
  | Raise of string
  | Try of expr * (string * expr) list

and binding = { bind_name : string; bind_type : Ptype.t; bind_expr : expr }

type channel = {
  chan_name : string;
  ps_name : string;
  ps_type : Ptype.t;
  ss_name : string;
  ss_type : Ptype.t;
  pkt_name : string;
  pkt_type : Ptype.t;
  initstate : expr option;
  body : expr;
  chan_loc : Loc.t;
}

type fundef = {
  fun_name : string;
  params : (string * Ptype.t) list;
  ret_type : Ptype.t;
  fun_body : expr;
  fun_loc : Loc.t;
}

type decl =
  | Dval of binding * Loc.t
  | Dfun of fundef
  | Dexception of string * Loc.t
  | Dprotostate of Ptype.t * expr * Loc.t
  | Dchannel of channel

type program = decl list

let channels program =
  List.filter_map
    (function Dchannel chan -> Some chan | Dval _ | Dfun _ | Dexception _ | Dprotostate _ -> None)
    program

let channel_names program =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun chan ->
      if Hashtbl.mem seen chan.chan_name then None
      else begin
        Hashtbl.add seen chan.chan_name ();
        Some chan.chan_name
      end)
    (channels program)

let protostate program =
  List.find_map
    (function
      | Dprotostate (ty, expr, _) -> Some (ty, expr)
      | Dval _ | Dfun _ | Dexception _ | Dchannel _ -> None)
    program

let line_count source =
  let lines = String.split_on_char '\n' source in
  let is_code line =
    let trimmed = String.trim line in
    String.length trimmed > 0
    && not (String.length trimmed >= 2 && String.sub trimmed 0 2 = "--")
  in
  List.length (List.filter is_code lines)

let mk loc desc = { desc; loc }
let network_channel = "network"
