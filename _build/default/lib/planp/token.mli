(** Lexical tokens of PLAN-P. *)

type t =
  | INT of int
  | STRING of string
  | CHAR of char
  | HOST of int  (** dotted-quad literal, packed as in {!Netsim.Addr} *)
  | IDENT of string
  | PROJ of int  (** [#n] tuple projection *)
  (* keywords *)
  | KW_val
  | KW_fun
  | KW_channel
  | KW_initstate
  | KW_is
  | KW_let
  | KW_in
  | KW_end
  | KW_if
  | KW_then
  | KW_else
  | KW_andalso
  | KW_orelse
  | KW_not
  | KW_mod
  | KW_true
  | KW_false
  | KW_raise
  | KW_try
  | KW_handle
  | KW_exception
  | KW_protostate
  | KW_onremote
  | KW_onneighbor
  | KW_hash_table
  (* punctuation / operators *)
  | LPAREN
  | RPAREN
  | COMMA
  | SEMI
  | COLON
  | STAR
  | PLUS
  | MINUS
  | SLASH
  | CARET
  | EQ
  | NE
  | LT
  | GT
  | LE
  | GE
  | DARROW  (** [=>] *)
  | EOF

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** [keyword ident] maps reserved identifiers to keyword tokens. *)
val keyword : string -> t option
