lib/planp/typecheck.ml: Ast Format Hashtbl List Loc Prim_sig Printf Ptype String
