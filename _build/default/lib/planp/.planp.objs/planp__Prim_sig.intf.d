lib/planp/prim_sig.mli: Ptype
