lib/planp/token.ml: Format Printf
