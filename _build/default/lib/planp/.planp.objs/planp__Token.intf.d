lib/planp/token.mli: Format
