lib/planp/typecheck.mli: Ast Format Loc Prim_sig Ptype
