lib/planp/lexer.ml: Buffer List Loc Printf String Token
