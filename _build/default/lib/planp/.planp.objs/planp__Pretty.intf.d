lib/planp/pretty.mli: Ast Format
