lib/planp/ast.mli: Loc Ptype
