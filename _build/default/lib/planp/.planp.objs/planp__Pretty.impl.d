lib/planp/pretty.ml: Ast Buffer Format Printf Ptype String
