lib/planp/ptype.mli: Format
