lib/planp/ast.ml: Hashtbl List Loc Ptype String
