lib/planp/parser.ml: Array Ast Lexer List Loc Printf Ptype Token
