lib/planp/loc.ml: Format
