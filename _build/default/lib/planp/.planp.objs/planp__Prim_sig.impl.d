lib/planp/prim_sig.ml: Hashtbl List Printf Ptype String
