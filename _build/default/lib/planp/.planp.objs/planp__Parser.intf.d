lib/planp/parser.mli: Ast Loc Ptype
