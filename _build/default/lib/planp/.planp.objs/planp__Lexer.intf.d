lib/planp/lexer.mli: Loc Token
