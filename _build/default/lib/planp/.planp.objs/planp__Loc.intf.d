lib/planp/loc.mli: Format
