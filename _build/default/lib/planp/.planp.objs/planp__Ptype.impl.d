lib/planp/ptype.ml: Format List
