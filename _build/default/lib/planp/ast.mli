(** Abstract syntax of PLAN-P programs.

    A program is a list of declarations: global values, (non-recursive)
    functions, exceptions, an optional protocol-state declaration, and
    channels. Channels named ["network"] apply to existing traffic selected
    by packet type; channels with other names apply to packets explicitly
    sent on them (the packet carries the channel tag). *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Ne
  | Lt
  | Gt
  | Le
  | Ge
  | And  (** [andalso], short-circuit *)
  | Or  (** [orelse], short-circuit *)
  | Concat  (** [^] string concatenation *)

type unop = Not | Neg

type expr = { desc : desc; loc : Loc.t }

and desc =
  | Int of int
  | Bool of bool
  | String of string
  | Char of char
  | Unit
  | Host of int  (** dotted-quad literal *)
  | Var of string
  | Call of string * expr list  (** user function or primitive *)
  | Tuple of expr list
  | Proj of int * expr  (** [#n e], 1-based *)
  | Let of binding list * expr
  | If of expr * expr * expr
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Seq of expr * expr
  | On_remote of string * expr  (** [OnRemote(chan, packet)] *)
  | On_neighbor of string * expr  (** [OnNeighbor(chan, packet)] *)
  | Raise of string
  | Try of expr * (string * expr) list  (** [try e handle E1 => e1 | ...] *)

and binding = { bind_name : string; bind_type : Ptype.t; bind_expr : expr }

type channel = {
  chan_name : string;
  ps_name : string;
  ps_type : Ptype.t;  (** protocol-state parameter *)
  ss_name : string;
  ss_type : Ptype.t;  (** channel-state parameter *)
  pkt_name : string;
  pkt_type : Ptype.t;  (** packet parameter; must satisfy {!Ptype.is_packet} *)
  initstate : expr option;  (** initial channel state *)
  body : expr;
  chan_loc : Loc.t;
}

type fundef = {
  fun_name : string;
  params : (string * Ptype.t) list;
  ret_type : Ptype.t;
  fun_body : expr;
  fun_loc : Loc.t;
}

type decl =
  | Dval of binding * Loc.t
  | Dfun of fundef
  | Dexception of string * Loc.t
  | Dprotostate of Ptype.t * expr * Loc.t
  | Dchannel of channel

type program = decl list

(** [channels program] lists channel declarations in source order. *)
val channels : program -> channel list

(** [channel_names program] is deduplicated, in first-occurrence order. *)
val channel_names : program -> string list

(** [protostate program] is the protocol-state declaration, if any. *)
val protostate : program -> (Ptype.t * expr) option

(** [line_count source] counts non-blank, non-comment-only source lines —
    the metric of the paper's Fig. 3. *)
val line_count : string -> int

val mk : Loc.t -> desc -> expr

(** The distinguished channel name whose packets are selected by type from
    existing traffic. *)
val network_channel : string
