(** Hand-written lexer for PLAN-P.

    Comments: ["-- to end of line"] (as in the paper's listings) and
    [(* ... *)] (nesting). Dotted-quad sequences of four integers lex as a
    single [HOST] literal, so programs can write router addresses directly
    (Fig. 2 of the paper). *)

exception Error of string * Loc.t

(** [tokenize source] lexes the whole input.
    @raise Error on bad input. *)
val tokenize : string -> (Token.t * Loc.t) list
