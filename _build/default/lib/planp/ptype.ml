type t =
  | Tint
  | Tbool
  | Tstring
  | Tchar
  | Tunit
  | Thost
  | Tblob
  | Tip
  | Ttcp
  | Tudp
  | Ttuple of t list
  | Thash of t * t
  | Thash_any

let rec equal a b =
  match (a, b) with
  | Thash_any, (Thash _ | Thash_any) | Thash _, Thash_any -> true
  | Tint, Tint
  | Tbool, Tbool
  | Tstring, Tstring
  | Tchar, Tchar
  | Tunit, Tunit
  | Thost, Thost
  | Tblob, Tblob
  | Tip, Tip
  | Ttcp, Ttcp
  | Tudp, Tudp ->
      true
  | Ttuple xs, Ttuple ys ->
      List.length xs = List.length ys && List.for_all2 equal xs ys
  | Thash (ka, va), Thash (kb, vb) -> equal ka kb && equal va vb
  | Thash_any, _ -> false
  | ( ( Tint | Tbool | Tstring | Tchar | Tunit | Thost | Tblob | Tip | Ttcp
      | Tudp | Ttuple _ | Thash _ ),
      _ ) ->
      false

let rec pp fmt = function
  | Tint -> Format.pp_print_string fmt "int"
  | Tbool -> Format.pp_print_string fmt "bool"
  | Tstring -> Format.pp_print_string fmt "string"
  | Tchar -> Format.pp_print_string fmt "char"
  | Tunit -> Format.pp_print_string fmt "unit"
  | Thost -> Format.pp_print_string fmt "host"
  | Tblob -> Format.pp_print_string fmt "blob"
  | Tip -> Format.pp_print_string fmt "ip"
  | Ttcp -> Format.pp_print_string fmt "tcp"
  | Tudp -> Format.pp_print_string fmt "udp"
  | Ttuple components ->
      Format.fprintf fmt "%a"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "*")
           pp_atom)
        components
  | Thash (key, value) ->
      Format.fprintf fmt "(%a, %a) hash_table" pp key pp value
  | Thash_any -> Format.pp_print_string fmt "hash_table"

and pp_atom fmt ty =
  match ty with
  | Ttuple _ -> Format.fprintf fmt "(%a)" pp ty
  | _ -> pp fmt ty

let to_string ty = Format.asprintf "%a" pp ty

let rec is_equality = function
  | Tint | Tbool | Tstring | Tchar | Tunit | Thost -> true
  | Tblob | Tip | Ttcp | Tudp | Thash _ | Thash_any -> false
  | Ttuple components -> List.for_all is_equality components

let is_packet = function
  | Ttuple (Tip :: _) -> true
  | Tint | Tbool | Tstring | Tchar | Tunit | Thost | Tblob | Tip | Ttcp | Tudp
  | Ttuple _ | Thash _ | Thash_any ->
      false

let tuple components =
  if List.length components < 2 then
    invalid_arg "Ptype.tuple: needs at least two components";
  Ttuple components
