type type_fn = Ptype.t list -> (Ptype.t, string) result
type lookup = string -> type_fn option

let fixed expected result args =
  if List.length args <> List.length expected then
    Error
      (Printf.sprintf "expected %d argument(s), got %d" (List.length expected)
         (List.length args))
  else if List.for_all2 Ptype.equal expected args then Ok result
  else
    Error
      (Printf.sprintf "expected (%s), got (%s)"
         (String.concat ", " (List.map Ptype.to_string expected))
         (String.concat ", " (List.map Ptype.to_string args)))

let arity n f args =
  if List.length args <> n then
    Error (Printf.sprintf "expected %d argument(s), got %d" n (List.length args))
  else f args

let empty_lookup _ = None

let of_alist bindings =
  let table = Hashtbl.create (List.length bindings) in
  List.iter (fun (name, fn) -> Hashtbl.replace table name fn) bindings;
  fun name -> Hashtbl.find_opt table name
