(** Source locations for error reporting. *)

type t = { line : int; col : int }

val dummy : t
val make : line:int -> col:int -> t
val pp : Format.formatter -> t -> unit
val to_string : t -> string
