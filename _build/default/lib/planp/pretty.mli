(** Pretty-printer for PLAN-P programs.

    Output re-parses to an equal AST (modulo locations); the round-trip is
    checked by property tests. *)

val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_decl : Format.formatter -> Ast.decl -> unit
val pp_program : Format.formatter -> Ast.program -> unit
val program_to_string : Ast.program -> string
val expr_to_string : Ast.expr -> string
