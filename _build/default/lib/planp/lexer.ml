exception Error of string * Loc.t

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (* position of the beginning of the current line *)
}

let loc st = Loc.make ~line:st.line ~col:(st.pos - st.bol + 1)
let fail st message = raise (Error (message, loc st))
let at_end st = st.pos >= String.length st.src
let peek st = if at_end st then '\000' else st.src.[st.pos]

let peek2 st =
  if st.pos + 1 >= String.length st.src then '\000' else st.src.[st.pos + 1]

let advance st =
  if peek st = '\n' then begin
    st.line <- st.line + 1;
    st.bol <- st.pos + 1
  end;
  st.pos <- st.pos + 1

let is_digit c = c >= '0' && c <= '9'

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || is_digit c

let rec skip_block_comment st depth =
  if at_end st then fail st "unterminated comment"
  else if peek st = '(' && peek2 st = '*' then begin
    advance st;
    advance st;
    skip_block_comment st (depth + 1)
  end
  else if peek st = '*' && peek2 st = ')' then begin
    advance st;
    advance st;
    if depth > 1 then skip_block_comment st (depth - 1)
  end
  else begin
    advance st;
    skip_block_comment st depth
  end

let rec skip_ws st =
  if at_end st then ()
  else
    match peek st with
    | ' ' | '\t' | '\r' | '\n' ->
        advance st;
        skip_ws st
    | '-' when peek2 st = '-' ->
        while (not (at_end st)) && peek st <> '\n' do
          advance st
        done;
        skip_ws st
    | '(' when peek2 st = '*' ->
        advance st;
        advance st;
        skip_block_comment st 1;
        skip_ws st
    | _ -> ()

let lex_int st =
  let start = st.pos in
  while (not (at_end st)) && is_digit (peek st) do
    advance st
  done;
  int_of_string (String.sub st.src start (st.pos - start))

(* An integer followed by ".digit" starts a dotted-quad host literal; the
   language has no floating point so there is no ambiguity. *)
let lex_number st =
  let first = lex_int st in
  if peek st = '.' && is_digit (peek2 st) then begin
    let octets = ref [ first ] in
    while peek st = '.' && is_digit (peek2 st) do
      advance st;
      octets := lex_int st :: !octets
    done;
    match List.rev !octets with
    | [ a; b; c; d ] when List.for_all (fun o -> o <= 255) [ a; b; c; d ] ->
        Token.HOST ((a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d)
    | parts ->
        fail st
          (Printf.sprintf "malformed host literal (%d components)"
             (List.length parts))
  end
  else Token.INT first

let lex_string st =
  advance st;
  let buf = Buffer.create 16 in
  let rec go () =
    if at_end st then fail st "unterminated string literal"
    else
      match peek st with
      | '"' -> advance st
      | '\\' ->
          advance st;
          let c =
            match peek st with
            | 'n' -> '\n'
            | 't' -> '\t'
            | '\\' -> '\\'
            | '"' -> '"'
            | other -> fail st (Printf.sprintf "bad escape '\\%c'" other)
          in
          Buffer.add_char buf c;
          advance st;
          go ()
      | c ->
          Buffer.add_char buf c;
          advance st;
          go ()
  in
  go ();
  Token.STRING (Buffer.contents buf)

let lex_char st =
  advance st;
  let c =
    match peek st with
    | '\\' ->
        advance st;
        let c =
          match peek st with
          | 'n' -> '\n'
          | 't' -> '\t'
          | '\\' -> '\\'
          | '\'' -> '\''
          | other -> fail st (Printf.sprintf "bad escape '\\%c'" other)
        in
        c
    | '\'' -> fail st "empty character literal"
    | c -> c
  in
  advance st;
  if peek st <> '\'' then fail st "unterminated character literal";
  advance st;
  Token.CHAR c

let lex_ident st =
  let start = st.pos in
  while (not (at_end st)) && is_ident_char (peek st) do
    advance st
  done;
  let word = String.sub st.src start (st.pos - start) in
  match Token.keyword word with Some kw -> kw | None -> Token.IDENT word

let next_token st =
  skip_ws st;
  let token_loc = loc st in
  if at_end st then (Token.EOF, token_loc)
  else
    let token =
      match peek st with
      | c when is_digit c -> lex_number st
      | c when is_ident_start c -> lex_ident st
      | '"' -> lex_string st
      | '\'' -> lex_char st
      | '#' ->
          advance st;
          if is_digit (peek st) then Token.PROJ (lex_int st)
          else fail st "expected digit after '#'"
      | '(' ->
          advance st;
          Token.LPAREN
      | ')' ->
          advance st;
          Token.RPAREN
      | ',' ->
          advance st;
          Token.COMMA
      | ';' ->
          advance st;
          Token.SEMI
      | ':' ->
          advance st;
          Token.COLON
      | '*' ->
          advance st;
          Token.STAR
      | '+' ->
          advance st;
          Token.PLUS
      | '-' ->
          advance st;
          Token.MINUS
      | '/' ->
          advance st;
          Token.SLASH
      | '^' ->
          advance st;
          Token.CARET
      | '=' ->
          advance st;
          if peek st = '>' then begin
            advance st;
            Token.DARROW
          end
          else Token.EQ
      | '<' ->
          advance st;
          if peek st = '>' then begin
            advance st;
            Token.NE
          end
          else if peek st = '=' then begin
            advance st;
            Token.LE
          end
          else Token.LT
      | '>' ->
          advance st;
          if peek st = '=' then begin
            advance st;
            Token.GE
          end
          else Token.GT
      | c -> fail st (Printf.sprintf "unexpected character %C" c)
    in
    (token, token_loc)

let tokenize source =
  let st = { src = source; pos = 0; line = 1; bol = 0 } in
  let rec go acc =
    let token, token_loc = next_token st in
    let acc = (token, token_loc) :: acc in
    match token with Token.EOF -> List.rev acc | _ -> go acc
  in
  go []
