(** Typing interface for PLAN-P primitives.

    Following the paper (§2.3), each primitive is defined by two functions:
    one computing its value and one computing "the return type of the
    primitive given the types of its arguments". The front end only needs
    the latter; the runtime registers both (see {!Planp_runtime.Prim}), and
    the type checker receives a {!lookup} so the front end stays independent
    of the runtime. *)

(** A type function: argument types to result type, or an error message
    explaining the mismatch. *)
type type_fn = Ptype.t list -> (Ptype.t, string) result

(** How the type checker resolves a primitive name. *)
type lookup = string -> type_fn option

(** {1 Combinators for writing type functions} *)

(** [fixed args result] accepts exactly [args] and returns [result]. *)
val fixed : Ptype.t list -> Ptype.t -> type_fn

(** [arity n f] checks the argument count, then delegates. *)
val arity : int -> type_fn -> type_fn

val empty_lookup : lookup

(** [of_alist bindings] builds a lookup from an association list. *)
val of_alist : (string * type_fn) list -> lookup
