(** PLAN-P types.

    The type language is deliberately small (it is a DSL): base types,
    tuples, and hash tables. Packet types are tuples whose first component
    is [ip] (e.g. [ip*tcp*blob]); the trailing components after the
    transport header describe how the payload is decoded (see
    {!Planp_runtime.Pkt_codec}). *)

type t =
  | Tint
  | Tbool
  | Tstring
  | Tchar
  | Tunit
  | Thost  (** an IP address value *)
  | Tblob  (** opaque payload bytes *)
  | Tip  (** an IP header *)
  | Ttcp  (** a TCP header *)
  | Tudp  (** a UDP header *)
  | Ttuple of t list  (** invariant: at least two components *)
  | Thash of t * t  (** [(key, value) hash_table] *)
  | Thash_any
      (** internal: the result type of [mkTable], equal to every hash-table
          type so the context (a binding or initstate annotation) fixes the
          key/value types; never produced by the parser *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** [is_equality ty] holds for types comparable with [=]/[<>]: every type
    except [blob], headers and hash tables (and tuples containing them). *)
val is_equality : t -> bool

(** [is_packet ty] holds for types a channel can declare for its packet
    parameter: a tuple starting with [ip]. *)
val is_packet : t -> bool

(** [tuple components] builds a tuple type.
    @raise Invalid_argument with fewer than two components. *)
val tuple : t list -> t
