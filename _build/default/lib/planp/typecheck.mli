(** The PLAN-P type checker.

    Beyond ordinary checking, it enforces the DSL restrictions that make the
    safety analyses of the paper possible:

    - functions are non-recursive (a function may only call functions
      declared before it), hence local termination by construction;
    - channel packet types are tuples headed by [ip];
    - overloads of one channel name share the protocol-state type and have
      pairwise distinct packet types;
    - [OnRemote]/[OnNeighbor] targets exist, and the packet expression
      matches one of the target's declared packet types (any packet type for
      the distinguished [network] channel, whose packets travel untagged);
    - equality is restricted to equality types; sequencing discards only
      [unit].

    If no [protostate] declaration is present, all channels must declare a
    protocol-state parameter of a defaultable type (not a hash table). *)

(** Exception names every program may raise and handle without declaring
    them: the built-in [DivByZero], [OutOfBounds], [BadChar], [BadAudio],
    [BadImage]. *)
val builtin_exceptions : string list

type error = { message : string; loc : Loc.t }

type checked = {
  program : Ast.program;
  proto_type : Ptype.t;  (** [Tunit] when there are no channels *)
  proto_init : Ast.expr option;
  globals : (string * Ptype.t) list;  (** top-level vals, declaration order *)
  exceptions : string list;
}

val check : prims:Prim_sig.lookup -> Ast.program -> (checked, error) result

(** [check_exn ~prims program] raises [Failure] with a rendered message. *)
val check_exn : prims:Prim_sig.lookup -> Ast.program -> checked

val pp_error : Format.formatter -> error -> unit
