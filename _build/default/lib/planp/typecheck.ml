type error = { message : string; loc : Loc.t }

type checked = {
  program : Ast.program;
  proto_type : Ptype.t;
  proto_init : Ast.expr option;
  globals : (string * Ptype.t) list;
  exceptions : string list;
}

exception Fail of error

let fail loc fmt = Format.kasprintf (fun message -> raise (Fail { message; loc })) fmt

type env = {
  vals : (string * Ptype.t) list;  (* innermost first *)
  funs : (string, (string * Ptype.t) list * Ptype.t) Hashtbl.t;
  exns : (string, unit) Hashtbl.t;
  chans : (string, Ptype.t list ref) Hashtbl.t;  (* name -> packet overloads *)
  prims : Prim_sig.lookup;
}

let lookup_val env name = List.assoc_opt name env.vals

(* The result of checking an expression: [None] means the expression raises
   on every path (bottom), so it fits any context. *)
type result_ty = Ptype.t option

let join loc a b =
  match (a, b) with
  | None, other | other, None -> other
  | Some ta, Some tb ->
      if Ptype.equal ta tb then Some ta
      else fail loc "branches have different types: %s vs %s" (Ptype.to_string ta) (Ptype.to_string tb)

(* Demand a concrete type; a bottom (always-raising) subexpression is fine
   anywhere a value is expected, so substitute the expectation. *)
let demand loc expected (actual : result_ty) context =
  match actual with
  | None -> ()
  | Some ty ->
      if not (Ptype.equal ty expected) then
        fail loc "%s: expected %s, got %s" context (Ptype.to_string expected)
          (Ptype.to_string ty)

let rec check_expr env (expr : Ast.expr) : result_ty =
  let loc = expr.Ast.loc in
  match expr.Ast.desc with
  | Ast.Int _ -> Some Ptype.Tint
  | Ast.Bool _ -> Some Ptype.Tbool
  | Ast.String _ -> Some Ptype.Tstring
  | Ast.Char _ -> Some Ptype.Tchar
  | Ast.Unit -> Some Ptype.Tunit
  | Ast.Host _ -> Some Ptype.Thost
  | Ast.Var name -> (
      match lookup_val env name with
      | Some ty -> Some ty
      | None -> fail loc "unbound variable %s" name)
  | Ast.Call (name, args) -> check_call env loc name args
  | Ast.Tuple components ->
      if List.length components < 2 then
        fail loc "tuples need at least two components";
      let tys =
        List.map
          (fun component ->
            match check_expr env component with
            | Some ty -> ty
            | None -> fail component.Ast.loc "tuple component always raises")
          components
      in
      Some (Ptype.Ttuple tys)
  | Ast.Proj (index, operand) -> (
      match check_expr env operand with
      | Some (Ptype.Ttuple components) ->
          if index < 1 || index > List.length components then
            fail loc "#%d out of range for %d-tuple" index
              (List.length components)
          else Some (List.nth components (index - 1))
      | Some other ->
          fail loc "#%d applied to non-tuple type %s" index
            (Ptype.to_string other)
      | None -> fail loc "#%d applied to expression that always raises" index)
  | Ast.Let (bindings, body) ->
      let env =
        List.fold_left
          (fun env { Ast.bind_name; bind_type; bind_expr } ->
            demand bind_expr.Ast.loc bind_type (check_expr env bind_expr)
              (Printf.sprintf "binding of %s" bind_name);
            { env with vals = (bind_name, bind_type) :: env.vals })
          env bindings
      in
      check_expr env body
  | Ast.If (cond, then_branch, else_branch) ->
      demand cond.Ast.loc Ptype.Tbool (check_expr env cond) "if condition";
      let t1 = check_expr env then_branch in
      let t2 = check_expr env else_branch in
      join loc t1 t2
  | Ast.Binop (op, left, right) -> check_binop env loc op left right
  | Ast.Unop (Ast.Not, operand) ->
      demand operand.Ast.loc Ptype.Tbool (check_expr env operand) "not";
      Some Ptype.Tbool
  | Ast.Unop (Ast.Neg, operand) ->
      demand operand.Ast.loc Ptype.Tint (check_expr env operand) "negation";
      Some Ptype.Tint
  | Ast.Seq (left, right) ->
      demand left.Ast.loc Ptype.Tunit (check_expr env left)
        "sequence discards a non-unit value";
      check_expr env right
  | Ast.On_remote (chan, packet) | Ast.On_neighbor (chan, packet) ->
      check_send env loc chan packet;
      Some Ptype.Tunit
  | Ast.Raise exn_name ->
      if not (Hashtbl.mem env.exns exn_name) then
        fail loc "undeclared exception %s" exn_name;
      None
  | Ast.Try (body, handlers) ->
      let body_ty = check_expr env body in
      List.fold_left
        (fun acc (exn_name, handler) ->
          if not (Hashtbl.mem env.exns exn_name) then
            fail handler.Ast.loc "undeclared exception %s" exn_name;
          join loc acc (check_expr env handler))
        body_ty handlers

and check_call env loc name args =
  let arg_tys =
    List.map
      (fun arg ->
        match check_expr env arg with
        | Some ty -> ty
        | None -> fail arg.Ast.loc "argument always raises")
      args
  in
  match Hashtbl.find_opt env.funs name with
  | Some (params, ret_type) ->
      if List.length params <> List.length arg_tys then
        fail loc "%s expects %d argument(s), got %d" name (List.length params)
          (List.length arg_tys);
      List.iter2
        (fun (param_name, param_ty) arg_ty ->
          if not (Ptype.equal param_ty arg_ty) then
            fail loc "argument %s of %s: expected %s, got %s" param_name name
              (Ptype.to_string param_ty) (Ptype.to_string arg_ty))
        params arg_tys;
      Some ret_type
  | None -> (
      match env.prims name with
      | Some type_fn -> (
          match type_fn arg_tys with
          | Ok ty -> Some ty
          | Error message -> fail loc "primitive %s: %s" name message)
      | None -> fail loc "unknown function or primitive %s" name)

and check_binop env loc op left right =
  let tl = check_expr env left in
  let tr = check_expr env right in
  let concrete side = function
    | Some ty -> ty
    | None -> fail loc "%s operand of operator always raises" side
  in
  match op with
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod ->
      demand left.Ast.loc Ptype.Tint tl "arithmetic";
      demand right.Ast.loc Ptype.Tint tr "arithmetic";
      Some Ptype.Tint
  | Ast.Concat ->
      demand left.Ast.loc Ptype.Tstring tl "concatenation";
      demand right.Ast.loc Ptype.Tstring tr "concatenation";
      Some Ptype.Tstring
  | Ast.And | Ast.Or ->
      demand left.Ast.loc Ptype.Tbool tl "boolean operator";
      demand right.Ast.loc Ptype.Tbool tr "boolean operator";
      Some Ptype.Tbool
  | Ast.Eq | Ast.Ne ->
      let ta = concrete "left" tl and tb = concrete "right" tr in
      if not (Ptype.equal ta tb) then
        fail loc "equality between different types: %s vs %s"
          (Ptype.to_string ta) (Ptype.to_string tb);
      if not (Ptype.is_equality ta) then
        fail loc "type %s does not support equality" (Ptype.to_string ta);
      Some Ptype.Tbool
  | Ast.Lt | Ast.Gt | Ast.Le | Ast.Ge ->
      let ta = concrete "left" tl and tb = concrete "right" tr in
      if not (Ptype.equal ta tb) then
        fail loc "comparison between different types: %s vs %s"
          (Ptype.to_string ta) (Ptype.to_string tb);
      (match ta with
      | Ptype.Tint | Ptype.Tchar | Ptype.Tstring -> ()
      | other ->
          fail loc "type %s does not support ordering" (Ptype.to_string other));
      Some Ptype.Tbool

and check_send env loc chan packet =
  let packet_ty =
    match check_expr env packet with
    | Some ty -> ty
    | None -> fail packet.Ast.loc "packet expression always raises"
  in
  if not (Ptype.is_packet packet_ty) then
    fail packet.Ast.loc "not a packet type: %s (must be a tuple headed by ip)"
      (Ptype.to_string packet_ty);
  if String.equal chan Ast.network_channel then ()
  else
    match Hashtbl.find_opt env.chans chan with
    | None -> fail loc "unknown channel %s" chan
    | Some overloads ->
        if not (List.exists (Ptype.equal packet_ty) !overloads) then
          fail loc "channel %s has no overload for packet type %s" chan
            (Ptype.to_string packet_ty)

let defaultable = function
  | Ptype.Tint | Ptype.Tbool | Ptype.Tstring | Ptype.Tchar | Ptype.Tunit
  | Ptype.Thost ->
      true
  | Ptype.Tblob | Ptype.Tip | Ptype.Ttcp | Ptype.Tudp | Ptype.Ttuple _
  | Ptype.Thash _ | Ptype.Thash_any ->
      false

(* Exceptions raised by the built-in partial primitives; always in scope. *)
let builtin_exceptions =
  [ "DivByZero"; "OutOfBounds"; "BadChar"; "BadAudio"; "BadImage" ]

let check ~prims program =
  try
    let env =
      {
        vals = [];
        funs = Hashtbl.create 16;
        exns = Hashtbl.create 8;
        chans = Hashtbl.create 8;
        prims;
      }
    in
    List.iter (fun name -> Hashtbl.replace env.exns name ()) builtin_exceptions;
    (* Pre-pass: collect channel overloads so OnRemote can target channels
       declared later (a channel may even send to itself across hops). *)
    List.iter
      (fun decl ->
        match decl with
        | Ast.Dchannel chan ->
            if not (Ptype.is_packet chan.Ast.pkt_type) then
              fail chan.Ast.chan_loc
                "channel %s: packet parameter must be a tuple headed by ip, got %s"
                chan.Ast.chan_name
                (Ptype.to_string chan.Ast.pkt_type);
            let overloads =
              match Hashtbl.find_opt env.chans chan.Ast.chan_name with
              | Some overloads -> overloads
              | None ->
                  let overloads = ref [] in
                  Hashtbl.add env.chans chan.Ast.chan_name overloads;
                  overloads
            in
            if List.exists (Ptype.equal chan.Ast.pkt_type) !overloads then
              fail chan.Ast.chan_loc
                "channel %s: duplicate overload for packet type %s"
                chan.Ast.chan_name
                (Ptype.to_string chan.Ast.pkt_type);
            overloads := !overloads @ [ chan.Ast.pkt_type ]
        | Ast.Dval _ | Ast.Dfun _ | Ast.Dexception _ | Ast.Dprotostate _ -> ())
      program;
    (* Protocol-state consistency. *)
    let declared_proto =
      List.filter_map
        (function
          | Ast.Dprotostate (ty, init, loc) -> Some (ty, init, loc)
          | Ast.Dval _ | Ast.Dfun _ | Ast.Dexception _ | Ast.Dchannel _ -> None)
        program
    in
    let proto_type, proto_init =
      match declared_proto with
      | [] -> (
          match Ast.channels program with
          | [] -> (Ptype.Tunit, None)
          | chan :: _ ->
              if not (defaultable chan.Ast.ps_type) then
                fail chan.Ast.chan_loc
                  "protocol state of type %s needs an explicit protostate declaration"
                  (Ptype.to_string chan.Ast.ps_type);
              (chan.Ast.ps_type, None))
      | [ (ty, init, _) ] -> (ty, Some init)
      | _ :: (_, _, loc) :: _ -> fail loc "multiple protostate declarations"
    in
    List.iter
      (fun chan ->
        if not (Ptype.equal chan.Ast.ps_type proto_type) then
          fail chan.Ast.chan_loc
            "channel %s: protocol-state type %s disagrees with %s"
            chan.Ast.chan_name
            (Ptype.to_string chan.Ast.ps_type)
            (Ptype.to_string proto_type))
      (Ast.channels program);
    (* Main pass, in declaration order. *)
    let env = ref env in
    let globals = ref [] in
    let exceptions = ref [] in
    List.iter
      (fun decl ->
        match decl with
        | Ast.Dval ({ Ast.bind_name; bind_type; bind_expr }, loc) ->
            if List.mem_assoc bind_name !env.vals then
              fail loc "duplicate global value %s" bind_name;
            demand bind_expr.Ast.loc bind_type (check_expr !env bind_expr)
              (Printf.sprintf "global %s" bind_name);
            env := { !env with vals = (bind_name, bind_type) :: !env.vals };
            globals := (bind_name, bind_type) :: !globals
        | Ast.Dfun { Ast.fun_name; params; ret_type; fun_body; fun_loc } ->
            if Hashtbl.mem !env.funs fun_name then
              fail fun_loc "duplicate function %s" fun_name;
            (* The function is not yet visible in its own body: recursion is
               impossible by construction (local termination, paper §2.1). *)
            let body_env =
              { !env with vals = List.rev_append params !env.vals }
            in
            demand fun_body.Ast.loc ret_type (check_expr body_env fun_body)
              (Printf.sprintf "body of %s" fun_name);
            Hashtbl.add !env.funs fun_name (params, ret_type)
        | Ast.Dexception (name, loc) ->
            if Hashtbl.mem !env.exns name then
              fail loc "duplicate exception %s" name;
            Hashtbl.add !env.exns name ();
            exceptions := name :: !exceptions
        | Ast.Dprotostate (_, init, loc) ->
            demand loc proto_type (check_expr !env init) "protostate initializer"
        | Ast.Dchannel chan ->
            (match chan.Ast.initstate with
            | Some init ->
                demand init.Ast.loc chan.Ast.ss_type (check_expr !env init)
                  (Printf.sprintf "initstate of channel %s" chan.Ast.chan_name)
            | None ->
                if not (defaultable chan.Ast.ss_type) then
                  fail chan.Ast.chan_loc
                    "channel %s: state type %s needs an initstate"
                    chan.Ast.chan_name
                    (Ptype.to_string chan.Ast.ss_type));
            let body_env =
              {
                !env with
                vals =
                  (chan.Ast.pkt_name, chan.Ast.pkt_type)
                  :: (chan.Ast.ss_name, chan.Ast.ss_type)
                  :: (chan.Ast.ps_name, chan.Ast.ps_type)
                  :: !env.vals;
              }
            in
            let expected = Ptype.Ttuple [ chan.Ast.ps_type; chan.Ast.ss_type ] in
            let body_ty = check_expr body_env chan.Ast.body in
            (match body_ty with
            | None ->
                fail chan.Ast.chan_loc
                  "channel %s: body raises on every path" chan.Ast.chan_name
            | Some ty ->
                if not (Ptype.equal ty expected) then
                  fail chan.Ast.chan_loc
                    "channel %s: body must return %s, got %s" chan.Ast.chan_name
                    (Ptype.to_string expected) (Ptype.to_string ty)))
      program;
    Ok
      {
        program;
        proto_type;
        proto_init;
        globals = List.rev !globals;
        exceptions = List.rev !exceptions;
      }
  with Fail error -> Error error

let pp_error fmt { message; loc } =
  Format.fprintf fmt "%a: %s" Loc.pp loc message

let check_exn ~prims program =
  match check ~prims program with
  | Ok checked -> checked
  | Error error -> failwith (Format.asprintf "%a" pp_error error)
