(** Recursive-descent parser for PLAN-P.

    Expression grammar (loosest to tightest): [orelse] < [andalso] <
    comparisons < [^] < [+ -] < [* / mod] < unary < atoms. [if], [let],
    [try ... handle ... end] and [raise] parse at top level of an
    expression; inside an operand they must be parenthesized. Parenthesized
    forms: [()] unit, [(e)] grouping, [(e, e, ...)] tuples, [(e; e; ...)]
    sequences. *)

exception Error of string * Loc.t

(** [parse source] lexes and parses a whole program.
    @raise Error (or {!Lexer.Error}) on malformed input. *)
val parse : string -> Ast.program

(** [parse_expr source] parses a single expression (for tests/REPL). *)
val parse_expr : string -> Ast.expr

(** [parse_type source] parses a single type (for tests). *)
val parse_type : string -> Ptype.t
