exception Error of string * Loc.t

type state = { tokens : (Token.t * Loc.t) array; mutable pos : int }

let current st = fst st.tokens.(st.pos)
let current_loc st = snd st.tokens.(st.pos)

let fail st message =
  raise
    (Error
       ( Printf.sprintf "%s (found %s)" message (Token.to_string (current st)),
         current_loc st ))

let advance st = if st.pos < Array.length st.tokens - 1 then st.pos <- st.pos + 1

let eat st token =
  if current st = token then advance st
  else fail st (Printf.sprintf "expected %s" (Token.to_string token))

let eat_ident st =
  match current st with
  | Token.IDENT name ->
      advance st;
      name
  | _ -> fail st "expected identifier"

(* ---------- types ---------- *)

let base_type = function
  | "int" -> Some Ptype.Tint
  | "bool" -> Some Ptype.Tbool
  | "string" -> Some Ptype.Tstring
  | "char" -> Some Ptype.Tchar
  | "unit" -> Some Ptype.Tunit
  | "host" -> Some Ptype.Thost
  | "blob" -> Some Ptype.Tblob
  | "ip" -> Some Ptype.Tip
  | "tcp" -> Some Ptype.Ttcp
  | "udp" -> Some Ptype.Tudp
  | _ -> None

let rec parse_type_expr st =
  let first = parse_type_atom st in
  if current st = Token.STAR then begin
    let components = ref [ first ] in
    while current st = Token.STAR do
      advance st;
      components := parse_type_atom st :: !components
    done;
    Ptype.Ttuple (List.rev !components)
  end
  else first

and parse_type_atom st =
  match current st with
  | Token.IDENT name -> (
      match base_type name with
      | Some ty ->
          advance st;
          ty
      | None -> fail st (Printf.sprintf "unknown type %s" name))
  | Token.LPAREN ->
      advance st;
      let first = parse_type_expr st in
      let result =
        if current st = Token.COMMA then begin
          advance st;
          let second = parse_type_expr st in
          eat st Token.RPAREN;
          eat st Token.KW_hash_table;
          Ptype.Thash (first, second)
        end
        else begin
          eat st Token.RPAREN;
          if current st = Token.KW_hash_table then
            fail st "hash_table takes (key, value) type arguments"
          else first
        end
      in
      result
  | _ -> fail st "expected a type"

(* ---------- expressions ---------- *)

let rec parse_expr_top st =
  match current st with
  | Token.KW_if -> parse_if st
  | Token.KW_let -> parse_let st
  | Token.KW_try -> parse_try st
  | Token.KW_raise -> parse_raise st
  | _ -> parse_or st

and parse_if st =
  let loc = current_loc st in
  eat st Token.KW_if;
  let cond = parse_expr_top st in
  eat st Token.KW_then;
  let then_branch = parse_expr_top st in
  eat st Token.KW_else;
  let else_branch = parse_expr_top st in
  Ast.mk loc (Ast.If (cond, then_branch, else_branch))

and parse_let st =
  let loc = current_loc st in
  eat st Token.KW_let;
  let bindings = ref [] in
  while current st = Token.KW_val do
    advance st;
    let bind_name = eat_ident st in
    eat st Token.COLON;
    let bind_type = parse_type_expr st in
    eat st Token.EQ;
    let bind_expr = parse_expr_top st in
    bindings := { Ast.bind_name; bind_type; bind_expr } :: !bindings
  done;
  if !bindings = [] then fail st "let needs at least one 'val' binding";
  eat st Token.KW_in;
  let body = parse_expr_top st in
  eat st Token.KW_end;
  Ast.mk loc (Ast.Let (List.rev !bindings, body))

and parse_try st =
  let loc = current_loc st in
  eat st Token.KW_try;
  let body = parse_expr_top st in
  eat st Token.KW_handle;
  let parse_handler () =
    let exn_name = eat_ident st in
    eat st Token.DARROW;
    let handler_body = parse_expr_top st in
    (exn_name, handler_body)
  in
  let handlers = ref [ parse_handler () ] in
  while current st = Token.COMMA do
    advance st;
    handlers := parse_handler () :: !handlers
  done;
  eat st Token.KW_end;
  Ast.mk loc (Ast.Try (body, List.rev !handlers))

and parse_raise st =
  let loc = current_loc st in
  eat st Token.KW_raise;
  let exn_name = eat_ident st in
  Ast.mk loc (Ast.Raise exn_name)

and parse_or st =
  let left = parse_and st in
  if current st = Token.KW_orelse then begin
    let loc = current_loc st in
    advance st;
    let right = parse_or st in
    Ast.mk loc (Ast.Binop (Ast.Or, left, right))
  end
  else left

and parse_and st =
  let left = parse_cmp st in
  if current st = Token.KW_andalso then begin
    let loc = current_loc st in
    advance st;
    let right = parse_and st in
    Ast.mk loc (Ast.Binop (Ast.And, left, right))
  end
  else left

and parse_cmp st =
  let left = parse_concat st in
  let op =
    match current st with
    | Token.EQ -> Some Ast.Eq
    | Token.NE -> Some Ast.Ne
    | Token.LT -> Some Ast.Lt
    | Token.GT -> Some Ast.Gt
    | Token.LE -> Some Ast.Le
    | Token.GE -> Some Ast.Ge
    | _ -> None
  in
  match op with
  | Some op ->
      let loc = current_loc st in
      advance st;
      let right = parse_concat st in
      Ast.mk loc (Ast.Binop (op, left, right))
  | None -> left

and parse_concat st =
  let left = parse_add st in
  if current st = Token.CARET then begin
    let loc = current_loc st in
    advance st;
    let right = parse_concat st in
    Ast.mk loc (Ast.Binop (Ast.Concat, left, right))
  end
  else left

and parse_add st =
  let left = ref (parse_mul st) in
  let continue = ref true in
  while !continue do
    match current st with
    | Token.PLUS ->
        let loc = current_loc st in
        advance st;
        left := Ast.mk loc (Ast.Binop (Ast.Add, !left, parse_mul st))
    | Token.MINUS ->
        let loc = current_loc st in
        advance st;
        left := Ast.mk loc (Ast.Binop (Ast.Sub, !left, parse_mul st))
    | _ -> continue := false
  done;
  !left

and parse_mul st =
  let left = ref (parse_unary st) in
  let continue = ref true in
  while !continue do
    match current st with
    | Token.STAR ->
        let loc = current_loc st in
        advance st;
        left := Ast.mk loc (Ast.Binop (Ast.Mul, !left, parse_unary st))
    | Token.SLASH ->
        let loc = current_loc st in
        advance st;
        left := Ast.mk loc (Ast.Binop (Ast.Div, !left, parse_unary st))
    | Token.KW_mod ->
        let loc = current_loc st in
        advance st;
        left := Ast.mk loc (Ast.Binop (Ast.Mod, !left, parse_unary st))
    | _ -> continue := false
  done;
  !left

and parse_unary st =
  match current st with
  | Token.KW_not ->
      let loc = current_loc st in
      advance st;
      Ast.mk loc (Ast.Unop (Ast.Not, parse_unary st))
  | Token.MINUS -> (
      let loc = current_loc st in
      advance st;
      (* Fold negated integer literals so printing round-trips. *)
      match parse_unary st with
      | { Ast.desc = Ast.Int n; _ } -> Ast.mk loc (Ast.Int (-n))
      | operand -> Ast.mk loc (Ast.Unop (Ast.Neg, operand)))
  | _ -> parse_atom st

and parse_atom st =
  let loc = current_loc st in
  match current st with
  | Token.INT n ->
      advance st;
      Ast.mk loc (Ast.Int n)
  | Token.STRING s ->
      advance st;
      Ast.mk loc (Ast.String s)
  | Token.CHAR c ->
      advance st;
      Ast.mk loc (Ast.Char c)
  | Token.HOST h ->
      advance st;
      Ast.mk loc (Ast.Host h)
  | Token.KW_true ->
      advance st;
      Ast.mk loc (Ast.Bool true)
  | Token.KW_false ->
      advance st;
      Ast.mk loc (Ast.Bool false)
  | Token.PROJ n ->
      advance st;
      let operand = parse_atom st in
      Ast.mk loc (Ast.Proj (n, operand))
  | Token.KW_onremote ->
      advance st;
      eat st Token.LPAREN;
      let chan = eat_ident st in
      eat st Token.COMMA;
      let packet = parse_expr_top st in
      eat st Token.RPAREN;
      Ast.mk loc (Ast.On_remote (chan, packet))
  | Token.KW_onneighbor ->
      advance st;
      eat st Token.LPAREN;
      let chan = eat_ident st in
      eat st Token.COMMA;
      let packet = parse_expr_top st in
      eat st Token.RPAREN;
      Ast.mk loc (Ast.On_neighbor (chan, packet))
  | Token.IDENT name ->
      advance st;
      if current st = Token.LPAREN then begin
        advance st;
        let args =
          if current st = Token.RPAREN then []
          else begin
            let args = ref [ parse_expr_top st ] in
            while current st = Token.COMMA do
              advance st;
              args := parse_expr_top st :: !args
            done;
            List.rev !args
          end
        in
        eat st Token.RPAREN;
        Ast.mk loc (Ast.Call (name, args))
      end
      else Ast.mk loc (Ast.Var name)
  | Token.LPAREN ->
      advance st;
      if current st = Token.RPAREN then begin
        advance st;
        Ast.mk loc Ast.Unit
      end
      else begin
        let first = parse_expr_top st in
        match current st with
        | Token.COMMA ->
            let components = ref [ first ] in
            while current st = Token.COMMA do
              advance st;
              components := parse_expr_top st :: !components
            done;
            eat st Token.RPAREN;
            Ast.mk loc (Ast.Tuple (List.rev !components))
        | Token.SEMI ->
            let parts = ref [ first ] in
            while current st = Token.SEMI do
              advance st;
              parts := parse_expr_top st :: !parts
            done;
            eat st Token.RPAREN;
            let rec build = function
              | [ last ] -> last
              | part :: rest -> Ast.mk part.Ast.loc (Ast.Seq (part, build rest))
              | [] -> assert false
            in
            build (List.rev !parts)
        | _ ->
            eat st Token.RPAREN;
            first
      end
  | _ -> fail st "expected an expression"

(* ---------- declarations ---------- *)

let parse_param st =
  let name = eat_ident st in
  eat st Token.COLON;
  let ty = parse_type_expr st in
  (name, ty)

let parse_decl st =
  let loc = current_loc st in
  match current st with
  | Token.KW_val ->
      advance st;
      let bind_name = eat_ident st in
      eat st Token.COLON;
      let bind_type = parse_type_expr st in
      eat st Token.EQ;
      let bind_expr = parse_expr_top st in
      Ast.Dval ({ Ast.bind_name; bind_type; bind_expr }, loc)
  | Token.KW_fun ->
      advance st;
      let fun_name = eat_ident st in
      eat st Token.LPAREN;
      let params =
        if current st = Token.RPAREN then []
        else begin
          let params = ref [ parse_param st ] in
          while current st = Token.COMMA do
            advance st;
            params := parse_param st :: !params
          done;
          List.rev !params
        end
      in
      eat st Token.RPAREN;
      eat st Token.COLON;
      let ret_type = parse_type_expr st in
      eat st Token.EQ;
      let fun_body = parse_expr_top st in
      Ast.Dfun { Ast.fun_name; params; ret_type; fun_body; fun_loc = loc }
  | Token.KW_exception ->
      advance st;
      let name = eat_ident st in
      Ast.Dexception (name, loc)
  | Token.KW_protostate ->
      advance st;
      let ty = parse_type_expr st in
      eat st Token.EQ;
      let init = parse_expr_top st in
      Ast.Dprotostate (ty, init, loc)
  | Token.KW_channel ->
      advance st;
      let chan_name = eat_ident st in
      eat st Token.LPAREN;
      let ps_name, ps_type = parse_param st in
      eat st Token.COMMA;
      let ss_name, ss_type = parse_param st in
      eat st Token.COMMA;
      let pkt_name, pkt_type = parse_param st in
      eat st Token.RPAREN;
      let initstate =
        if current st = Token.KW_initstate then begin
          advance st;
          Some (parse_expr_top st)
        end
        else None
      in
      eat st Token.KW_is;
      let body = parse_expr_top st in
      Ast.Dchannel
        {
          Ast.chan_name;
          ps_name;
          ps_type;
          ss_name;
          ss_type;
          pkt_name;
          pkt_type;
          initstate;
          body;
          chan_loc = loc;
        }
  | _ -> fail st "expected a declaration (val, fun, exception, protostate, channel)"

let make_state source =
  { tokens = Array.of_list (Lexer.tokenize source); pos = 0 }

let parse source =
  let st = make_state source in
  let decls = ref [] in
  while current st <> Token.EOF do
    decls := parse_decl st :: !decls
  done;
  List.rev !decls

let parse_expr source =
  let st = make_state source in
  let expr = parse_expr_top st in
  if current st <> Token.EOF then fail st "trailing input after expression";
  expr

let parse_type source =
  let st = make_state source in
  let ty = parse_type_expr st in
  if current st <> Token.EOF then fail st "trailing input after type";
  ty
