type t = { line : int; col : int }

let dummy = { line = 0; col = 0 }
let make ~line ~col = { line; col }
let pp fmt { line; col } = Format.fprintf fmt "line %d, column %d" line col
let to_string loc = Format.asprintf "%a" pp loc
