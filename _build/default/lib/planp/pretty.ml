let binop_symbol = function
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.Div -> "/"
  | Ast.Mod -> "mod"
  | Ast.Eq -> "="
  | Ast.Ne -> "<>"
  | Ast.Lt -> "<"
  | Ast.Gt -> ">"
  | Ast.Le -> "<="
  | Ast.Ge -> ">="
  | Ast.And -> "andalso"
  | Ast.Or -> "orelse"
  | Ast.Concat -> "^"

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let host_string h =
  Printf.sprintf "%d.%d.%d.%d" ((h lsr 24) land 0xff) ((h lsr 16) land 0xff)
    ((h lsr 8) land 0xff) (h land 0xff)

(* Everything except atoms prints fully parenthesized: correctness of the
   round-trip beats prettiness for machine-generated output. *)
let rec pp_expr fmt (expr : Ast.expr) =
  match expr.Ast.desc with
  | Ast.Int n -> if n < 0 then Format.fprintf fmt "(%d)" n else Format.pp_print_int fmt n
  | Ast.Bool b -> Format.pp_print_bool fmt b
  | Ast.String s -> Format.fprintf fmt "\"%s\"" (escape_string s)
  | Ast.Char '\n' -> Format.pp_print_string fmt "'\\n'"
  | Ast.Char '\t' -> Format.pp_print_string fmt "'\\t'"
  | Ast.Char '\'' -> Format.pp_print_string fmt "'\\''"
  | Ast.Char '\\' -> Format.pp_print_string fmt "'\\\\'"
  | Ast.Char c -> Format.fprintf fmt "'%c'" c
  | Ast.Unit -> Format.pp_print_string fmt "()"
  | Ast.Host h -> Format.pp_print_string fmt (host_string h)
  | Ast.Var name -> Format.pp_print_string fmt name
  | Ast.Call (name, []) -> Format.fprintf fmt "%s()" name
  | Ast.Call (name, args) ->
      Format.fprintf fmt "@[<hov 2>%s(%a)@]" name
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.fprintf fmt ",@ ")
           pp_expr)
        args
  | Ast.Tuple components ->
      Format.fprintf fmt "@[<hov 1>(%a)@]"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.fprintf fmt ",@ ")
           pp_expr)
        components
  | Ast.Proj (index, operand) ->
      Format.fprintf fmt "#%d%a" index pp_atomized operand
  | Ast.Let (bindings, body) ->
      Format.fprintf fmt "@[<v>let@;<1 2>@[<v>%a@]@ in@;<1 2>%a@ end@]"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.fprintf fmt "@ ")
           pp_binding)
        bindings pp_expr body
  | Ast.If (cond, then_branch, else_branch) ->
      Format.fprintf fmt
        "@[<v>if %a then@;<1 2>%a@ else@;<1 2>%a@]" pp_operand cond pp_operand
        then_branch pp_operand else_branch
  | Ast.Binop (op, left, right) ->
      Format.fprintf fmt "@[<hov>(%a %s %a)@]" pp_operand left (binop_symbol op)
        pp_operand right
  | Ast.Unop (Ast.Not, operand) ->
      Format.fprintf fmt "(not %a)" pp_operand operand
  | Ast.Unop (Ast.Neg, operand) -> Format.fprintf fmt "(- %a)" pp_operand operand
  | Ast.Seq (left, right) ->
      Format.fprintf fmt "@[<v 1>(%a;@ %a)@]" pp_expr left pp_expr right
  | Ast.On_remote (chan, packet) ->
      Format.fprintf fmt "@[<hov 2>OnRemote(%s,@ %a)@]" chan pp_expr packet
  | Ast.On_neighbor (chan, packet) ->
      Format.fprintf fmt "@[<hov 2>OnNeighbor(%s,@ %a)@]" chan pp_expr packet
  | Ast.Raise exn_name -> Format.fprintf fmt "raise %s" exn_name
  | Ast.Try (body, handlers) ->
      Format.fprintf fmt "@[<v>try %a@ handle %a@ end@]" pp_operand body
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.fprintf fmt ",@ ")
           (fun fmt (exn_name, handler) ->
             Format.fprintf fmt "%s => %a" exn_name pp_operand handler))
        handlers

(* Operands of operators and delimited constructs: wrap the loose forms. *)
and pp_operand fmt (expr : Ast.expr) =
  match expr.Ast.desc with
  | Ast.If _ | Ast.Let _ | Ast.Try _ | Ast.Raise _ ->
      Format.fprintf fmt "(%a)" pp_expr expr
  | _ -> pp_expr fmt expr

(* Operand of # projection must be an atom. *)
and pp_atomized fmt (expr : Ast.expr) =
  match expr.Ast.desc with
  | Ast.Var _ | Ast.Call _ | Ast.Int _ | Ast.Bool _ | Ast.String _ | Ast.Char _
  | Ast.Unit | Ast.Host _ | Ast.Tuple _ | Ast.Proj _ ->
      pp_expr fmt expr
  | _ -> Format.fprintf fmt "(%a)" pp_expr expr

and pp_binding fmt { Ast.bind_name; bind_type; bind_expr } =
  Format.fprintf fmt "@[<hov 2>val %s : %a =@ %a@]" bind_name Ptype.pp bind_type
    pp_expr bind_expr

let pp_decl fmt (decl : Ast.decl) =
  match decl with
  | Ast.Dval (binding, _) -> pp_binding fmt binding
  | Ast.Dfun { Ast.fun_name; params; ret_type; fun_body; _ } ->
      Format.fprintf fmt "@[<v 2>fun %s(%a) : %a =@ %a@]" fun_name
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ")
           (fun fmt (name, ty) -> Format.fprintf fmt "%s : %a" name Ptype.pp ty))
        params Ptype.pp ret_type pp_expr fun_body
  | Ast.Dexception (name, _) -> Format.fprintf fmt "exception %s" name
  | Ast.Dprotostate (ty, init, _) ->
      Format.fprintf fmt "@[<hov 2>protostate %a =@ %a@]" Ptype.pp ty pp_expr init
  | Ast.Dchannel chan ->
      Format.fprintf fmt "@[<v 2>channel %s(%s : %a, %s : %a, %s : %a)%a is@ %a@]"
        chan.Ast.chan_name chan.Ast.ps_name Ptype.pp chan.Ast.ps_type
        chan.Ast.ss_name Ptype.pp chan.Ast.ss_type chan.Ast.pkt_name Ptype.pp
        chan.Ast.pkt_type
        (fun fmt init ->
          match init with
          | Some expr -> Format.fprintf fmt "@ initstate %a" pp_expr expr
          | None -> ())
        chan.Ast.initstate pp_expr chan.Ast.body

let pp_program fmt program =
  Format.fprintf fmt "@[<v>%a@]@."
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.fprintf fmt "@ @ ")
       pp_decl)
    program

let program_to_string program = Format.asprintf "%a" pp_program program
let expr_to_string expr = Format.asprintf "%a" pp_expr expr
