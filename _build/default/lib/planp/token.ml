type t =
  | INT of int
  | STRING of string
  | CHAR of char
  | HOST of int
  | IDENT of string
  | PROJ of int
  | KW_val
  | KW_fun
  | KW_channel
  | KW_initstate
  | KW_is
  | KW_let
  | KW_in
  | KW_end
  | KW_if
  | KW_then
  | KW_else
  | KW_andalso
  | KW_orelse
  | KW_not
  | KW_mod
  | KW_true
  | KW_false
  | KW_raise
  | KW_try
  | KW_handle
  | KW_exception
  | KW_protostate
  | KW_onremote
  | KW_onneighbor
  | KW_hash_table
  | LPAREN
  | RPAREN
  | COMMA
  | SEMI
  | COLON
  | STAR
  | PLUS
  | MINUS
  | SLASH
  | CARET
  | EQ
  | NE
  | LT
  | GT
  | LE
  | GE
  | DARROW
  | EOF

let keyword = function
  | "val" -> Some KW_val
  | "fun" -> Some KW_fun
  | "channel" -> Some KW_channel
  | "initstate" -> Some KW_initstate
  | "is" -> Some KW_is
  | "let" -> Some KW_let
  | "in" -> Some KW_in
  | "end" -> Some KW_end
  | "if" -> Some KW_if
  | "then" -> Some KW_then
  | "else" -> Some KW_else
  | "andalso" -> Some KW_andalso
  | "orelse" -> Some KW_orelse
  | "not" -> Some KW_not
  | "mod" -> Some KW_mod
  | "true" -> Some KW_true
  | "false" -> Some KW_false
  | "raise" -> Some KW_raise
  | "try" -> Some KW_try
  | "handle" -> Some KW_handle
  | "exception" -> Some KW_exception
  | "protostate" -> Some KW_protostate
  | "OnRemote" -> Some KW_onremote
  | "OnNeighbor" -> Some KW_onneighbor
  | "hash_table" -> Some KW_hash_table
  | _ -> None

let to_string = function
  | INT n -> string_of_int n
  | STRING s -> Printf.sprintf "%S" s
  | CHAR c -> Printf.sprintf "'%c'" c
  | HOST h ->
      Printf.sprintf "%d.%d.%d.%d" ((h lsr 24) land 0xff) ((h lsr 16) land 0xff)
        ((h lsr 8) land 0xff) (h land 0xff)
  | IDENT s -> s
  | PROJ n -> "#" ^ string_of_int n
  | KW_val -> "val"
  | KW_fun -> "fun"
  | KW_channel -> "channel"
  | KW_initstate -> "initstate"
  | KW_is -> "is"
  | KW_let -> "let"
  | KW_in -> "in"
  | KW_end -> "end"
  | KW_if -> "if"
  | KW_then -> "then"
  | KW_else -> "else"
  | KW_andalso -> "andalso"
  | KW_orelse -> "orelse"
  | KW_not -> "not"
  | KW_mod -> "mod"
  | KW_true -> "true"
  | KW_false -> "false"
  | KW_raise -> "raise"
  | KW_try -> "try"
  | KW_handle -> "handle"
  | KW_exception -> "exception"
  | KW_protostate -> "protostate"
  | KW_onremote -> "OnRemote"
  | KW_onneighbor -> "OnNeighbor"
  | KW_hash_table -> "hash_table"
  | LPAREN -> "("
  | RPAREN -> ")"
  | COMMA -> ","
  | SEMI -> ";"
  | COLON -> ":"
  | STAR -> "*"
  | PLUS -> "+"
  | MINUS -> "-"
  | SLASH -> "/"
  | CARET -> "^"
  | EQ -> "="
  | NE -> "<>"
  | LT -> "<"
  | GT -> ">"
  | LE -> "<="
  | GE -> ">="
  | DARROW -> "=>"
  | EOF -> "<eof>"

let pp fmt token = Format.pp_print_string fmt (to_string token)
