type event = {
  at : float;
  source : string;
  kind : string;
  fields : (string * Json.t) list;
}

let event ~at ~source ~kind fields = { at; source; kind; fields }

(* Stable by construction: List.stable_sort keeps the producer's order for
   equal-time events, which mirrors the engine's own tie-break rule. *)
let merge streams =
  List.stable_sort
    (fun a b -> Float.compare a.at b.at)
    (List.concat streams)

let of_snapshot ~at snapshot =
  {
    at;
    source = "metrics";
    kind = "snapshot";
    fields = [ ("metrics", Registry.snapshot_json snapshot) ];
  }

let event_json e =
  Json.Obj
    ([
       ("at", Json.Float e.at);
       ("source", Json.String e.source);
       ("kind", Json.String e.kind);
     ]
    @ e.fields)

let to_json events =
  Json.Obj
    [
      ("format", Json.String "planp-timeline/1");
      ("events", Json.List (List.map event_json events));
    ]

let to_json_string events = Json.to_string (to_json events)
