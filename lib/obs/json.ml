type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buffer s =
  Buffer.add_char buffer '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\r' -> Buffer.add_string buffer "\\r"
      | '\t' -> Buffer.add_string buffer "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.add_char buffer '"'

(* One fixed rendering per double, so identical runs export identical bytes.
   Integral doubles print with a trailing ".0" to stay floats on re-read. *)
let float_repr f =
  if Float.is_nan f then "null"
  else if f = Float.infinity then "\"inf\""
  else if f = Float.neg_infinity then "\"-inf\""
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.9g" f

let rec write ~indent buffer json =
  let pad n = Buffer.add_string buffer (String.make n ' ') in
  match json with
  | Null -> Buffer.add_string buffer "null"
  | Bool b -> Buffer.add_string buffer (if b then "true" else "false")
  | Int n -> Buffer.add_string buffer (string_of_int n)
  | Float f -> Buffer.add_string buffer (float_repr f)
  | String s -> escape buffer s
  | List [] -> Buffer.add_string buffer "[]"
  | List items ->
      Buffer.add_string buffer "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buffer ",\n";
          pad (indent + 2);
          write ~indent:(indent + 2) buffer item)
        items;
      Buffer.add_char buffer '\n';
      pad indent;
      Buffer.add_char buffer ']'
  | Obj [] -> Buffer.add_string buffer "{}"
  | Obj fields ->
      Buffer.add_string buffer "{\n";
      List.iteri
        (fun i (key, value) ->
          if i > 0 then Buffer.add_string buffer ",\n";
          pad (indent + 2);
          escape buffer key;
          Buffer.add_string buffer ": ";
          write ~indent:(indent + 2) buffer value)
        fields;
      Buffer.add_char buffer '\n';
      pad indent;
      Buffer.add_char buffer '}'

let to_string json =
  let buffer = Buffer.create 1024 in
  write ~indent:0 buffer json;
  Buffer.add_char buffer '\n';
  Buffer.contents buffer
