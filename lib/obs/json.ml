type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buffer s =
  Buffer.add_char buffer '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\r' -> Buffer.add_string buffer "\\r"
      | '\t' -> Buffer.add_string buffer "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.add_char buffer '"'

(* One fixed rendering per double, so identical runs export identical bytes.
   Integral doubles print with a trailing ".0" to stay floats on re-read. *)
let float_repr f =
  if Float.is_nan f then "null"
  else if f = Float.infinity then "\"inf\""
  else if f = Float.neg_infinity then "\"-inf\""
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.9g" f

let rec write ~indent buffer json =
  let pad n = Buffer.add_string buffer (String.make n ' ') in
  match json with
  | Null -> Buffer.add_string buffer "null"
  | Bool b -> Buffer.add_string buffer (if b then "true" else "false")
  | Int n -> Buffer.add_string buffer (string_of_int n)
  | Float f -> Buffer.add_string buffer (float_repr f)
  | String s -> escape buffer s
  | List [] -> Buffer.add_string buffer "[]"
  | List items ->
      Buffer.add_string buffer "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buffer ",\n";
          pad (indent + 2);
          write ~indent:(indent + 2) buffer item)
        items;
      Buffer.add_char buffer '\n';
      pad indent;
      Buffer.add_char buffer ']'
  | Obj [] -> Buffer.add_string buffer "{}"
  | Obj fields ->
      Buffer.add_string buffer "{\n";
      List.iteri
        (fun i (key, value) ->
          if i > 0 then Buffer.add_string buffer ",\n";
          pad (indent + 2);
          escape buffer key;
          Buffer.add_string buffer ": ";
          write ~indent:(indent + 2) buffer value)
        fields;
      Buffer.add_char buffer '\n';
      pad indent;
      Buffer.add_char buffer '}'

let to_string json =
  let buffer = Buffer.create 1024 in
  write ~indent:0 buffer json;
  Buffer.add_char buffer '\n';
  Buffer.contents buffer

(* A recursive-descent reader for the same dialect the printer emits (plus
   arbitrary whitespace).  The perf-baseline gate uses it to reload committed
   BENCH_*.json documents without an external dependency. *)
exception Parse of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail message = raise (Parse (Printf.sprintf "%s at byte %d" message !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | Some _ | None -> ()
  in
  let expect c =
    match peek () with
    | Some got when got = c -> advance ()
    | Some got -> fail (Printf.sprintf "expected '%c', got '%c'" c got)
    | None -> fail (Printf.sprintf "expected '%c', got end of input" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then (
      pos := !pos + String.length word;
      value)
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buffer = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> advance (); Buffer.add_char buffer '"'; go ()
          | Some '\\' -> advance (); Buffer.add_char buffer '\\'; go ()
          | Some '/' -> advance (); Buffer.add_char buffer '/'; go ()
          | Some 'n' -> advance (); Buffer.add_char buffer '\n'; go ()
          | Some 'r' -> advance (); Buffer.add_char buffer '\r'; go ()
          | Some 't' -> advance (); Buffer.add_char buffer '\t'; go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let code = int_of_string ("0x" ^ String.sub s !pos 4) in
              pos := !pos + 4;
              (* The printer only escapes control bytes, so a single byte
                 suffices here. *)
              Buffer.add_char buffer (Char.chr (code land 0xff));
              go ()
          | Some c -> fail (Printf.sprintf "bad escape '\\%c'" c)
          | None -> fail "unterminated escape")
      | Some c ->
          advance ();
          Buffer.add_char buffer c;
          go ()
    in
    go ();
    Buffer.contents buffer
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %S" text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (
          advance ();
          Obj [])
        else
          let rec fields acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let value = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((key, value) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((key, value) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          fields []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (
          advance ();
          List [])
        else
          let rec items acc =
            let value = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (value :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (value :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items []
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
    | None -> fail "unexpected end of input"
  in
  match
    let value = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    value
  with
  | value -> Ok value
  | exception Parse message -> Error message

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let number = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None
