(** The merged timeline: packet-level trace records interleaved with
    metric snapshots on one simulated-time axis.

    Producers (the netsim [Tracer], experiment drivers, the CLI) each
    contribute a list of events; {!merge} sorts them stably by time, so
    equal-time events keep producer order — the same tie-break rule as the
    simulation engine itself. *)

type event = {
  at : float;  (** simulated time, seconds *)
  source : string;  (** producer, e.g. ["tracer"] or ["metrics"] *)
  kind : string;  (** event class within the producer, e.g. ["packet"] *)
  fields : (string * Json.t) list;  (** producer-specific payload *)
}

val event :
  at:float -> source:string -> kind:string -> (string * Json.t) list -> event

val merge : event list list -> event list
(** Stable merge of several producers' streams into one time-ordered list. *)

val of_snapshot : at:float -> Registry.snapshot -> event
(** Wraps a registry snapshot as a ["metrics"/"snapshot"] event, embedding
    the full metric list at that instant. *)

val to_json : event list -> Json.t
(** [{"format": "planp-timeline/1", "events": [...]}]. *)

val to_json_string : event list -> string
