(** The metrics registry: named, labelled counters, gauges and log-scale
    histograms with deterministic JSON/CSV export.

    Instrumented components create their handles once (at component
    construction or program compile time) with get-or-create semantics: two
    calls with the same name and label set return handles on the same
    underlying cell, so identically-named components aggregate. Updates
    through a handle are a single flag test plus a store — and no-ops when
    the owning registry is disabled, which is what keeps instrumentation
    affordable on the simulator's per-packet hot paths.

    Exports are deterministic: entries sort by name then canonical label
    order, floats render through {!Json.float_repr}, and metrics registered
    as [~volatile:true] (wall-clock timings and anything else that differs
    between identical runs) are excluded unless explicitly requested. Two
    runs of the same seeded scenario therefore export byte-identical
    documents. *)

type t
(** A registry. Most callers use {!default}; tests create their own. *)

type labels = (string * string) list
(** Label sets are canonicalized (sorted by key) on registration. *)

val create : unit -> t

val default : t
(** The process-wide registry every built-in instrumentation point uses. *)

val set_enabled : t -> bool -> unit
(** [set_enabled t false] turns every update through this registry's
    handles into a no-op (creation and reads still work). Default: on. *)

val enabled : t -> bool

val reset : t -> unit
(** Drops every metric. Handles created before the reset keep updating
    their orphaned cells invisibly — re-create components (and thereby
    their handles) after a reset, as the determinism tests do. *)

(** {1 Counters} — monotonically increasing integers. *)

type counter

val counter :
  ?registry:t ->
  ?labels:labels ->
  ?help:string ->
  ?volatile:bool ->
  string ->
  counter
(** Get-or-create. [~volatile:true] marks an execution-plane diagnostic
    (how the run was executed — parallel sync traffic, scheduler shape —
    rather than what the simulated network did); exporters skip it by
    default, exactly as for volatile gauges.
    @raise Invalid_argument if the name+labels pair already names a metric
    of another kind. *)

val incr : counter -> unit

val add : counter -> int -> unit
(** @raise Invalid_argument on negative increments. *)

val count : counter -> int

(** {1 Gauges} — last-set floats, or sampled callbacks. *)

type gauge

val gauge :
  ?registry:t ->
  ?labels:labels ->
  ?help:string ->
  ?volatile:bool ->
  string ->
  gauge
(** [~volatile:true] marks a gauge whose value is not reproducible across
    identical runs (wall-clock time); exporters skip it by default. *)

val set : gauge -> float -> unit

val set_fn : gauge -> (unit -> float) -> unit
(** Replaces the stored value with a callback sampled at snapshot time —
    zero cost between snapshots, ideal for "current depth" style values. *)

val gauge_value : gauge -> float

(** {1 Histograms} — log-scale (powers of two) bucketed distributions,
    sized for latencies in seconds or queue depths in bytes. *)

type histogram

val histogram : ?registry:t -> ?labels:labels -> ?help:string -> string -> histogram
val observe : histogram -> float -> unit
val observations : histogram -> int

val histogram_slots : int
(** Number of slots every histogram has (zero + finite buckets + overflow).
    The expected length of the [counts] array in {!observe_bulk}. *)

val observe_bulk : histogram -> counts:int array -> sum:float -> unit
(** [observe_bulk h ~counts ~sum] merges a batch of pre-bucketed
    observations: [counts.(slot)] observations per slot (indexed as
    {!bucket_of}) whose values total [sum]. Used by components that batch
    per-packet samples into raw arrays and flush at run exit.
    @raise Invalid_argument if [counts] is not {!histogram_slots} long. *)

val bucket_of : float -> int
(** The slot an observation lands in: 0 for v <= 0, ascending powers of
    two after that, last slot for overflow. Exposed for tests. *)

val bucket_of_int : int -> int
(** [bucket_of_int v = bucket_of (float_of_int v)] for every [v] with
    [abs v < 2^53], computed without floating point — the hot-path form
    for integer samples (byte counts). *)

val bucket_upper_bound : int -> float
(** Inclusive upper bound of a slot; [infinity] for the overflow slot. *)

val quantile : histogram -> float -> float
(** [quantile h q] (q in [0, 1]) is the upper bound of the log-scale
    bucket holding the q-quantile of everything observed so far — the
    same resolution the exported bucket list offers. 0 when empty.
    @raise Invalid_argument when [q] is outside [0, 1]. *)

(** {1 Typed reads} — current values by name, without JSON round-trips.

    Read-only: unlike the handle constructors these never create a cell,
    so probing for a metric no component has registered is side-effect
    free and returns [None]. Condition monitors ({!Adapt} in the umbrella
    library) sample through this API every probe period.

    @raise Invalid_argument when the name+labels pair names a metric of
    another kind. *)

val read_counter : ?registry:t -> ?labels:labels -> string -> int option
val read_gauge : ?registry:t -> ?labels:labels -> string -> float option

val read_histogram : ?registry:t -> ?labels:labels -> string -> (int * float) option
(** [(observation count, sum)] of the named histogram. *)

val read_quantile :
  ?registry:t -> ?labels:labels -> q:float -> string -> float option
(** {!quantile} by name. *)

(** {1 Merging} *)

val merge : into:t -> t -> unit
(** [merge ~into src] folds every metric of [src] into [into]: counters
    and histograms add, gauges take the source's sampled value (callback
    gauges collapse to a plain stored value in the destination). Metrics
    missing from [into] are created with the source's help text and
    volatility. Deterministic: sources are walked in canonical key order,
    so merging the per-domain registries of a partitioned run in partition
    order always produces the same destination.
    @raise Invalid_argument when a name+labels pair exists in both
    registries with different kinds. *)

(** {1 Snapshots and exports} *)

type sample =
  | Scounter of int
  | Sgauge of float
  | Shistogram of {
      hs_count : int;
      hs_sum : float;
      hs_buckets : (float * int) list;  (** (upper bound, count), sparse *)
    }

type entry = { e_name : string; e_labels : labels; e_sample : sample }

type snapshot = entry list
(** Sorted by name, then canonical labels. *)

val snapshot : ?include_volatile:bool -> t -> snapshot
val snapshot_json : snapshot -> Json.t

val to_json : ?include_volatile:bool -> t -> Json.t
(** The full metrics document: [{"format": "planp-metrics/1", "metrics":
    [...]}]. *)

val to_json_string : ?include_volatile:bool -> t -> string
val to_csv_string : ?include_volatile:bool -> t -> string

val pp : ?include_volatile:bool -> Format.formatter -> t -> unit
(** One metric per line, for [planpc stats]. *)

val labels_to_string : labels -> string
(** Canonical ["k=v,k2=v2"] rendering (exposed for exporters and tests). *)
