type labels = (string * string) list

(* Canonical label rendering: sorted by key, "k=v" joined with ",". Keys the
   metric table and orders exports, so it must be total and stable. *)
let canonical_labels labels =
  List.sort
    (fun (a, _) (b, _) ->
      match String.compare a b with 0 -> 0 | c -> c)
    labels

let labels_to_string labels =
  String.concat ","
    (List.map (fun (k, v) -> k ^ "=" ^ v) (canonical_labels labels))

let key_of ~name ~labels = name ^ "{" ^ labels_to_string labels ^ "}"

(* Log-scale histogram: bucket [i] counts observations v with
   2^(i-1+min_exp) < v <= 2^(i+min_exp); slot 0 is v <= 0, the last slot is
   overflow. frexp gives the exponent exactly, no libm rounding to worry
   about. *)
let hist_min_exp = -30 (* smallest bucket: le 2^-30 ~ 0.93 ns *)

let hist_max_exp = 30 (* largest finite bucket: le 2^30 ~ 1.07e9 *)

let hist_slots = hist_max_exp - hist_min_exp + 3 (* zero + finite + overflow *)

let bucket_of v =
  if v <= 0.0 then 0
  else
    let _, e = Float.frexp v in
    (* 2^(e-1) <= v < 2^e, except exact powers of two where frexp reports
       e = log2 v + 1; either way v <= 2^e, so [e] indexes the bucket. *)
    if e > hist_max_exp then hist_slots - 1
    else if e < hist_min_exp then 1
    else e - hist_min_exp + 1

let bucket_upper_bound slot =
  if slot = 0 then 0.0
  else if slot = hist_slots - 1 then Float.infinity
  else Float.ldexp 1.0 (slot - 1 + hist_min_exp)

type hist_cell = {
  mutable h_count : int;
  mutable h_sum : float;
  h_buckets : int array;
}

type counter_cell = { mutable c_value : int }

type gauge_cell = {
  mutable g_value : float;
  mutable g_fn : (unit -> float) option;
}

type data =
  | Counter of counter_cell
  | Gauge of gauge_cell
  | Histogram of hist_cell

type metric = {
  m_name : string;
  m_labels : labels; (* canonical order *)
  m_help : string;
  m_volatile : bool;
  m_data : data;
}

type t = {
  table : (string, metric) Hashtbl.t;
  mutable on : bool;
}

let create () = { table = Hashtbl.create 64; on = true }
let default = create ()
let set_enabled t flag = t.on <- flag
let enabled t = t.on
let reset t = Hashtbl.reset t.table

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let find_or_add t ~name ~labels ~help ~volatile make =
  let labels = canonical_labels labels in
  let key = key_of ~name ~labels in
  match Hashtbl.find_opt t.table key with
  | Some metric -> metric
  | None ->
      let metric =
        {
          m_name = name;
          m_labels = labels;
          m_help = help;
          m_volatile = volatile;
          m_data = make ();
        }
      in
      Hashtbl.replace t.table key metric;
      metric

let wrong_kind metric expected =
  invalid_arg
    (Printf.sprintf "Obs.Registry: metric %s is a %s, not a %s"
       (key_of ~name:metric.m_name ~labels:metric.m_labels)
       (kind_name metric.m_data) expected)

(* Handles carry the registry so updates can be a single flag test when
   observability is switched off. *)
type counter = { cr : t; cc : counter_cell }
type gauge = { gr : t; gc : gauge_cell }
type histogram = { hr : t; hc : hist_cell }

let counter ?(registry = default) ?(labels = []) ?(help = "") ?(volatile = false)
    name =
  let metric =
    find_or_add registry ~name ~labels ~help ~volatile (fun () ->
        Counter { c_value = 0 })
  in
  match metric.m_data with
  | Counter cell -> { cr = registry; cc = cell }
  | _ -> wrong_kind metric "counter"

let incr counter = if counter.cr.on then counter.cc.c_value <- counter.cc.c_value + 1

let add counter n =
  if n < 0 then invalid_arg "Obs.Registry.add: counters only go up";
  if counter.cr.on then counter.cc.c_value <- counter.cc.c_value + n

let count counter = counter.cc.c_value

let gauge ?(registry = default) ?(labels = []) ?(help = "") ?(volatile = false)
    name =
  let metric =
    find_or_add registry ~name ~labels ~help ~volatile (fun () ->
        Gauge { g_value = 0.0; g_fn = None })
  in
  match metric.m_data with
  | Gauge cell -> { gr = registry; gc = cell }
  | _ -> wrong_kind metric "gauge"

let set gauge v = if gauge.gr.on then gauge.gc.g_value <- v
let set_fn gauge f = gauge.gc.g_fn <- Some f

let gauge_value gauge =
  match gauge.gc.g_fn with Some f -> f () | None -> gauge.gc.g_value

let histogram ?(registry = default) ?(labels = []) ?(help = "") name =
  let metric =
    find_or_add registry ~name ~labels ~help ~volatile:false (fun () ->
        Histogram
          { h_count = 0; h_sum = 0.0; h_buckets = Array.make hist_slots 0 })
  in
  match metric.m_data with
  | Histogram cell -> { hr = registry; hc = cell }
  | _ -> wrong_kind metric "histogram"

let observe histogram v =
  if histogram.hr.on then begin
    let cell = histogram.hc in
    cell.h_count <- cell.h_count + 1;
    cell.h_sum <- cell.h_sum +. v;
    let slot = bucket_of v in
    cell.h_buckets.(slot) <- cell.h_buckets.(slot) + 1
  end

let observations histogram = histogram.hc.h_count

let histogram_slots = hist_slots

(* Integer twin of [bucket_of]: for v > 0, the bit length of v equals the
   exponent frexp reports for [float_of_int v] (exact for v < 2^53, which
   covers every byte count the simulator can produce), so both functions
   agree on the slot without going through floating point. *)
let[@inline] bucket_of_int v =
  if v <= 0 then 0
  else begin
    let e = ref 0 in
    let x = ref v in
    while !x > 0 do
      e := !e + 1;
      x := !x lsr 1
    done;
    (* e >= 1 > hist_min_exp, so no underflow branch. *)
    if !e > hist_max_exp then hist_slots - 1 else !e - hist_min_exp + 1
  end

(* Merge a batch of pre-bucketed observations, e.g. a link direction's
   per-run backlog samples accumulated in raw arrays. *)
let observe_bulk histogram ~counts ~sum =
  if Array.length counts <> hist_slots then
    invalid_arg
      (Printf.sprintf "Obs.Registry.observe_bulk: expected %d slots, got %d"
         hist_slots (Array.length counts));
  if histogram.hr.on then begin
    let cell = histogram.hc in
    let total = ref 0 in
    for slot = 0 to hist_slots - 1 do
      let n = Array.unsafe_get counts slot in
      if n > 0 then begin
        total := !total + n;
        cell.h_buckets.(slot) <- cell.h_buckets.(slot) + n
      end
    done;
    if !total > 0 then begin
      cell.h_count <- cell.h_count + !total;
      cell.h_sum <- cell.h_sum +. sum
    end
  end

(* ------------------------------------------------------------------ *)
(* Typed reads                                                         *)
(* ------------------------------------------------------------------ *)

(* Read-only lookup: never creates a cell, so probing for a metric that no
   component has registered stays side-effect free. *)
let lookup t ~name ~labels =
  Hashtbl.find_opt t.table (key_of ~name ~labels:(canonical_labels labels))

let quantile_of_cell cell q =
  if not (q >= 0.0 && q <= 1.0) then
    invalid_arg "Obs.Registry.quantile: q outside [0, 1]";
  if cell.h_count = 0 then 0.0
  else begin
    (* Smallest slot whose cumulative count reaches rank ceil(q * n); the
       answer is that bucket's upper bound, the same resolution the
       exported bucket list offers. *)
    let target =
      let rank = int_of_float (Float.ceil (q *. float_of_int cell.h_count)) in
      if rank < 1 then 1 else rank
    in
    let slot = ref (hist_slots - 1) in
    let acc = ref 0 in
    (try
       for s = 0 to hist_slots - 1 do
         acc := !acc + cell.h_buckets.(s);
         if !acc >= target then begin
           slot := s;
           raise Exit
         end
       done
     with Exit -> ());
    bucket_upper_bound !slot
  end

let quantile histogram q = quantile_of_cell histogram.hc q

let read_counter ?(registry = default) ?(labels = []) name =
  match lookup registry ~name ~labels with
  | None -> None
  | Some { m_data = Counter cell; _ } -> Some cell.c_value
  | Some metric -> wrong_kind metric "counter"

let read_gauge ?(registry = default) ?(labels = []) name =
  match lookup registry ~name ~labels with
  | None -> None
  | Some { m_data = Gauge cell; _ } ->
      Some (match cell.g_fn with Some f -> f () | None -> cell.g_value)
  | Some metric -> wrong_kind metric "gauge"

let read_histogram ?(registry = default) ?(labels = []) name =
  match lookup registry ~name ~labels with
  | None -> None
  | Some { m_data = Histogram cell; _ } -> Some (cell.h_count, cell.h_sum)
  | Some metric -> wrong_kind metric "histogram"

let read_quantile ?(registry = default) ?(labels = []) ~q name =
  match lookup registry ~name ~labels with
  | None -> None
  | Some { m_data = Histogram cell; _ } -> Some (quantile_of_cell cell q)
  | Some metric -> wrong_kind metric "histogram"

(* ------------------------------------------------------------------ *)
(* Merging                                                             *)
(* ------------------------------------------------------------------ *)

(* Fold one registry into another: counters and histograms add, gauges
   take the source's sampled value (callbacks collapse to a plain value in
   the destination).  Missing destination metrics are created with the
   source's help text and volatility.  Iteration goes in canonical key
   order so repeated merges touch the destination deterministically. *)
let merge ~into src =
  Hashtbl.fold (fun key metric acc -> (key, metric) :: acc) src.table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (_, metric) ->
         let dst =
           find_or_add into ~name:metric.m_name ~labels:metric.m_labels
             ~help:metric.m_help ~volatile:metric.m_volatile (fun () ->
               match metric.m_data with
               | Counter _ -> Counter { c_value = 0 }
               | Gauge _ -> Gauge { g_value = 0.0; g_fn = None }
               | Histogram _ ->
                   Histogram
                     {
                       h_count = 0;
                       h_sum = 0.0;
                       h_buckets = Array.make hist_slots 0;
                     })
         in
         match (metric.m_data, dst.m_data) with
         | Counter src_cell, Counter dst_cell ->
             dst_cell.c_value <- dst_cell.c_value + src_cell.c_value
         | Gauge src_cell, Gauge dst_cell ->
             dst_cell.g_fn <- None;
             dst_cell.g_value <-
               (match src_cell.g_fn with
               | Some f -> f ()
               | None -> src_cell.g_value)
         | Histogram src_cell, Histogram dst_cell ->
             dst_cell.h_count <- dst_cell.h_count + src_cell.h_count;
             dst_cell.h_sum <- dst_cell.h_sum +. src_cell.h_sum;
             for slot = 0 to hist_slots - 1 do
               dst_cell.h_buckets.(slot) <-
                 dst_cell.h_buckets.(slot) + src_cell.h_buckets.(slot)
             done
         | (Counter _ | Gauge _ | Histogram _), _ ->
             wrong_kind dst (kind_name metric.m_data))

(* ------------------------------------------------------------------ *)
(* Snapshots and exports                                               *)
(* ------------------------------------------------------------------ *)

type sample =
  | Scounter of int
  | Sgauge of float
  | Shistogram of {
      hs_count : int;
      hs_sum : float;
      hs_buckets : (float * int) list; (* (upper bound, count), non-empty *)
    }

type entry = { e_name : string; e_labels : labels; e_sample : sample }
type snapshot = entry list

let sample_of metric =
  match metric.m_data with
  | Counter cell -> Scounter cell.c_value
  | Gauge cell ->
      Sgauge (match cell.g_fn with Some f -> f () | None -> cell.g_value)
  | Histogram cell ->
      let buckets = ref [] in
      for slot = hist_slots - 1 downto 0 do
        if cell.h_buckets.(slot) > 0 then
          buckets := (bucket_upper_bound slot, cell.h_buckets.(slot)) :: !buckets
      done;
      Shistogram
        { hs_count = cell.h_count; hs_sum = cell.h_sum; hs_buckets = !buckets }

let snapshot ?(include_volatile = false) t =
  Hashtbl.fold
    (fun key metric acc ->
      if metric.m_volatile && not include_volatile then acc
      else (key, metric) :: acc)
    t.table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.map (fun (_, metric) ->
         {
           e_name = metric.m_name;
           e_labels = metric.m_labels;
           e_sample = sample_of metric;
         })

let entry_json entry =
  let labels = List.map (fun (k, v) -> (k, Json.String v)) entry.e_labels in
  let base = [ ("name", Json.String entry.e_name) ] in
  let base =
    if labels = [] then base else base @ [ ("labels", Json.Obj labels) ]
  in
  match entry.e_sample with
  | Scounter n ->
      Json.Obj
        (base @ [ ("type", Json.String "counter"); ("value", Json.Int n) ])
  | Sgauge v ->
      Json.Obj
        (base @ [ ("type", Json.String "gauge"); ("value", Json.Float v) ])
  | Shistogram h ->
      Json.Obj
        (base
        @ [
            ("type", Json.String "histogram");
            ("count", Json.Int h.hs_count);
            ("sum", Json.Float h.hs_sum);
            ( "buckets",
              Json.List
                (List.map
                   (fun (le, n) ->
                     Json.Obj [ ("le", Json.Float le); ("count", Json.Int n) ])
                   h.hs_buckets) );
          ])

let snapshot_json snap = Json.List (List.map entry_json snap)

let to_json ?include_volatile t =
  Json.Obj
    [
      ("format", Json.String "planp-metrics/1");
      ("metrics", snapshot_json (snapshot ?include_volatile t));
    ]

let to_json_string ?include_volatile t =
  Json.to_string (to_json ?include_volatile t)

(* CSV: one row per scalar; histograms flatten to count/sum/le_* rows. *)
let to_csv_string ?include_volatile t =
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer "name,labels,type,field,value\n";
  let quote s =
    if String.contains s ',' || String.contains s '"' then
      "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
    else s
  in
  let row entry kind field value =
    Buffer.add_string buffer
      (Printf.sprintf "%s,%s,%s,%s,%s\n" (quote entry.e_name)
         (quote (labels_to_string entry.e_labels))
         kind field value)
  in
  List.iter
    (fun entry ->
      match entry.e_sample with
      | Scounter n -> row entry "counter" "value" (string_of_int n)
      | Sgauge v -> row entry "gauge" "value" (Json.float_repr v)
      | Shistogram h ->
          row entry "histogram" "count" (string_of_int h.hs_count);
          row entry "histogram" "sum" (Json.float_repr h.hs_sum);
          List.iter
            (fun (le, n) ->
              row entry "histogram"
                ("le_" ^ Json.float_repr le)
                (string_of_int n))
            h.hs_buckets)
    (snapshot ?include_volatile t);
  Buffer.contents buffer

let pp ?include_volatile fmt t =
  List.iter
    (fun entry ->
      let name =
        if entry.e_labels = [] then entry.e_name
        else entry.e_name ^ "{" ^ labels_to_string entry.e_labels ^ "}"
      in
      match entry.e_sample with
      | Scounter n -> Format.fprintf fmt "%-56s %12d@." name n
      | Sgauge v -> Format.fprintf fmt "%-56s %12s@." name (Json.float_repr v)
      | Shistogram h ->
          Format.fprintf fmt "%-56s %12s@." name
            (Printf.sprintf "n=%d sum=%s" h.hs_count (Json.float_repr h.hs_sum)))
    (snapshot ?include_volatile t)
