(** A minimal JSON document tree with a deterministic printer.

    The observability exporters hand-roll their JSON through this module so
    that two identical simulation runs produce byte-identical files: field
    order is whatever the caller built, floats render through one fixed
    format ({!float_repr}), and the printer never consults locale or
    wall-clock state. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** [float_repr f] is the canonical rendering used for [Float]: integral
    doubles as ["x.0"], others as [%.9g]; NaN renders as [null], infinities
    as quoted strings. *)
val float_repr : float -> string

(** [to_string json] renders with two-space indentation and a trailing
    newline. *)
val to_string : t -> string

(** [of_string s] reads one JSON document — the dialect {!to_string} emits,
    plus arbitrary whitespace.  Floats whose rendering happens to be integral
    parse back as [Int]; use {!number} when only the magnitude matters. *)
val of_string : string -> (t, string) result

(** [member key json] is field [key] of an [Obj], [None] otherwise. *)
val member : string -> t -> t option

(** [number json] is the numeric value of an [Int] or [Float]. *)
val number : t -> float option
