(* Static cacheability analysis for the flow-keyed decision cache.

   The walk mirrors how the interpreter consumes a channel body: a
   *spine* of control flow (If / Seq / Let / Try / Raise) ending in
   either a [(ps', ss')] result tuple or an uncaught [Raise]. Everything
   hanging off the spine must be pure; branch conditions become key
   atoms, may-raise spine expressions become guards (keyed by whether
   they raise), and emissions become sites whose argument expressions
   are re-evaluated at replay time. Let-bound names are substituted into
   the extracted expressions so atoms, guards and sites are closed over
   the channel parameters and program globals only. *)

open Planp
open Ast

type prim_class =
  | Pure of { may_raise : bool }
  | Table_read
  | Node_const
  | Emit
  | Impure

type target = Remote of string | Neighbor of string | Deliver

type site = {
  site_target : target;
  site_expr : Ast.expr;
  site_may_raise : bool;
}

type details = {
  atoms : Ast.expr list;
  guards : Ast.expr list;
  sites : site list;
  reads_tables : bool;
  ps_int_delta : bool;
}

type verdict = Cacheable of details | Uncacheable of string

let default_classify _ = Impure

exception Give_up of string

let give_up fmt = Format.kasprintf (fun s -> raise (Give_up s)) fmt

(* Structural equality modulo locations, for deduplicating atoms,
   guards and emission sites. *)
let rec expr_equal (a : expr) (b : expr) =
  match (a.desc, b.desc) with
  | Int x, Int y -> x = y
  | Bool x, Bool y -> x = y
  | String x, String y -> String.equal x y
  | Char x, Char y -> x = y
  | Unit, Unit -> true
  | Host x, Host y -> x = y
  | Var x, Var y -> String.equal x y
  | Call (f, xs), Call (g, ys) -> String.equal f g && exprs_equal xs ys
  | Tuple xs, Tuple ys -> exprs_equal xs ys
  | Proj (i, x), Proj (j, y) -> i = j && expr_equal x y
  | Let (bs, x), Let (cs, y) ->
      List.length bs = List.length cs
      && List.for_all2
           (fun b c ->
             String.equal b.bind_name c.bind_name
             && expr_equal b.bind_expr c.bind_expr)
           bs cs
      && expr_equal x y
  | If (c1, t1, f1), If (c2, t2, f2) ->
      expr_equal c1 c2 && expr_equal t1 t2 && expr_equal f1 f2
  | Binop (o1, a1, b1), Binop (o2, a2, b2) ->
      o1 = o2 && expr_equal a1 a2 && expr_equal b1 b2
  | Unop (o1, a1), Unop (o2, a2) -> o1 = o2 && expr_equal a1 a2
  | Seq (a1, b1), Seq (a2, b2) -> expr_equal a1 a2 && expr_equal b1 b2
  | On_remote (c1, e1), On_remote (c2, e2) ->
      String.equal c1 c2 && expr_equal e1 e2
  | On_neighbor (c1, e1), On_neighbor (c2, e2) ->
      String.equal c1 c2 && expr_equal e1 e2
  | Raise x, Raise y -> String.equal x y
  | Try (b1, hs1), Try (b2, hs2) ->
      expr_equal b1 b2
      && List.length hs1 = List.length hs2
      && List.for_all2
           (fun (e1, h1) (e2, h2) -> String.equal e1 e2 && expr_equal h1 h2)
           hs1 hs2
  | _ -> false

and exprs_equal xs ys =
  List.length xs = List.length ys && List.for_all2 expr_equal xs ys

(* Capture-avoiding substitution of let-bound names by (already
   substituted) defining expressions. *)
let rec subst env (e : expr) =
  match env with
  | [] -> e
  | _ -> (
      match e.desc with
      | Var n -> (
          match List.assoc_opt n env with Some e' -> e' | None -> e)
      | Int _ | Bool _ | String _ | Char _ | Unit | Host _ | Raise _ -> e
      | Call (f, args) -> { e with desc = Call (f, List.map (subst env) args) }
      | Tuple xs -> { e with desc = Tuple (List.map (subst env) xs) }
      | Proj (i, x) -> { e with desc = Proj (i, subst env x) }
      | If (c, t, f) ->
          { e with desc = If (subst env c, subst env t, subst env f) }
      | Binop (o, a, b) -> { e with desc = Binop (o, subst env a, subst env b) }
      | Unop (o, a) -> { e with desc = Unop (o, subst env a) }
      | Seq (a, b) -> { e with desc = Seq (subst env a, subst env b) }
      | On_remote (c, x) -> { e with desc = On_remote (c, subst env x) }
      | On_neighbor (c, x) -> { e with desc = On_neighbor (c, subst env x) }
      | Try (b, hs) ->
          {
            e with
            desc =
              Try
                ( subst env b,
                  List.map (fun (ex, h) -> (ex, subst env h)) hs );
          }
      | Let (bs, body) ->
          let env', bs' =
            List.fold_left
              (fun (env, acc) b ->
                let b' = { b with bind_expr = subst env b.bind_expr } in
                (List.remove_assoc b.bind_name env, b' :: acc))
              (env, []) bs
          in
          { e with desc = Let (List.rev bs', subst env' body) })

(* Does [e] mention any of [names] as a variable? Ignores shadowing by
   inner lets, i.e. over-approximates — an extra key atom is sound. *)
let rec mentions_var names (e : expr) =
  match e.desc with
  | Var n -> List.mem n names
  | Int _ | Bool _ | String _ | Char _ | Unit | Host _ | Raise _ -> false
  | Call (_, xs) | Tuple xs -> List.exists (mentions_var names) xs
  | Proj (_, x) | Unop (_, x) | On_remote (_, x) | On_neighbor (_, x) ->
      mentions_var names x
  | If (a, b, c) ->
      mentions_var names a || mentions_var names b || mentions_var names c
  | Binop (_, a, b) | Seq (a, b) -> mentions_var names a || mentions_var names b
  | Let (bs, body) ->
      List.exists (fun b -> mentions_var names b.bind_expr) bs
      || mentions_var names body
  | Try (b, hs) ->
      mentions_var names b || List.exists (fun (_, h) -> mentions_var names h) hs

(* Purity facts about an expression: pure (value depends on nothing but
   its free variables and resident-table contents), may it raise, does
   it read resident tables. *)
type facts = {
  fa_pure : bool;
  fa_reason : string;
  fa_may_raise : bool;
  fa_reads : bool;
}

let pure_facts =
  { fa_pure = true; fa_reason = ""; fa_may_raise = false; fa_reads = false }

let impure reason =
  { fa_pure = false; fa_reason = reason; fa_may_raise = false; fa_reads = false }

let fa_merge a b =
  if not a.fa_pure then a
  else if not b.fa_pure then b
  else
    {
      a with
      fa_may_raise = a.fa_may_raise || b.fa_may_raise;
      fa_reads = a.fa_reads || b.fa_reads;
    }

let rec facts_of ~classify ~funs ~allowed locals (e : expr) : facts =
  let recur = facts_of ~classify ~funs ~allowed in
  match e.desc with
  | Int _ | Bool _ | String _ | Char _ | Unit | Host _ -> pure_facts
  | Var n -> (
      if List.mem n locals then pure_facts
      else
        match allowed n with
        | `Plain -> pure_facts
        | `Table -> { pure_facts with fa_reads = true }
        | `No -> impure (Printf.sprintf "reads %s" n))
  | Raise _ -> { pure_facts with fa_may_raise = true }
  | On_remote _ | On_neighbor _ -> impure "emits a packet"
  | Call (f, args) -> (
      let args_f =
        List.fold_left (fun acc a -> fa_merge acc (recur locals a)) pure_facts args
      in
      if not args_f.fa_pure then args_f
      else
        match Hashtbl.find_opt funs f with
        | Some ff ->
            if not ff.fa_pure then
              impure (Printf.sprintf "calls %s, which %s" f ff.fa_reason)
            else
              {
                args_f with
                fa_may_raise = args_f.fa_may_raise || ff.fa_may_raise;
                fa_reads = args_f.fa_reads || ff.fa_reads;
              }
        | None -> (
            match classify f with
            | Pure { may_raise } ->
                { args_f with fa_may_raise = args_f.fa_may_raise || may_raise }
            | Table_read -> { args_f with fa_reads = true }
            | Node_const -> args_f
            | Emit -> impure (Printf.sprintf "emits via %s" f)
            | Impure -> impure (Printf.sprintf "calls impure primitive %s" f)))
  | Tuple xs ->
      List.fold_left (fun acc x -> fa_merge acc (recur locals x)) pure_facts xs
  | Proj (_, x) | Unop (_, x) -> recur locals x
  | If (a, b, c) -> fa_merge (recur locals a) (fa_merge (recur locals b) (recur locals c))
  | Binop (op, a, b) -> (
      let m = fa_merge (recur locals a) (recur locals b) in
      match op with Div | Mod -> { m with fa_may_raise = true } | _ -> m)
  | Seq (a, b) -> fa_merge (recur locals a) (recur locals b)
  | Try (b, hs) ->
      (* Conservative: a [try] stays may-raise even if every handler is
         total, because unlisted exceptions pass through. *)
      List.fold_left
        (fun acc (_, h) -> fa_merge acc (recur locals h))
        (recur locals b) hs
  | Let (bs, body) ->
      let rec go locals acc = function
        | [] -> fa_merge acc (recur locals body)
        | b :: rest ->
            let f = recur locals b.bind_expr in
            if not f.fa_pure then f
            else go (b.bind_name :: locals) (fa_merge acc f) rest
      in
      go locals pure_facts bs

let is_table = function Ptype.Thash _ | Ptype.Thash_any -> true | _ -> false

(* A table-typed protocol state may feed the cache key only if no
   channel in the program can ever replace it by a different table:
   every result position must return it as a bare [Var]. (Mutating it
   in place is fine — reads are value-keyed and version-stamped.) *)
let ps_returned_unchanged (c : channel) =
  let rec loop (e : expr) =
    match e.desc with
    | Tuple [ pe; _ ] -> (
        match pe.desc with Var n -> String.equal n c.ps_name | _ -> false)
    | If (_, t, f) -> loop t && loop f
    | Seq (_, r) -> loop r
    | Let (bs, b) ->
        (not (List.exists (fun bd -> String.equal bd.bind_name c.ps_name) bs))
        && loop b
    | Try (b, hs) -> loop b && List.for_all (fun (_, h) -> loop h) hs
    | Raise _ -> true
    | _ -> false
  in
  loop c.body

let analyze_channel ~classify ~funs ~globals ~ps_table_ok (chan : channel) =
  let ps_is_int = match chan.ps_type with Ptype.Tint -> true | _ -> false in
  let allowed n =
    if String.equal n chan.pkt_name then `Plain
    else if String.equal n chan.ps_name then
      if is_table chan.ps_type && ps_table_ok then `Table else `No
    else if String.equal n chan.ss_name then
      (* The analysis only accepts channels returning [ss] unchanged, so
         the channel state is a per-slot constant; table-typed reads are
         still version-stamped. *)
      if is_table chan.ss_type then `Table else `Plain
    else if List.mem n globals then `Plain
    else `No
  in
  let facts e = facts_of ~classify ~funs ~allowed [] e in
  let atoms = ref [] and guards = ref [] and sites = ref [] in
  let reads = ref false and ps_delta = ref false in
  let note f = if f.fa_reads then reads := true in
  (* An extracted expression matters to the key when its value can vary
     per packet (mentions the packet or protocol state), when it can
     raise, or when it reads a resident table (mutable between
     packets). Everything else is constant for the slot's lifetime. *)
  let keyed e f =
    f.fa_may_raise || f.fa_reads
    || mentions_var [ chan.pkt_name; chan.ps_name ] e
  in
  let add_atom e =
    let f = facts e in
    if not f.fa_pure then give_up "branch condition %s" f.fa_reason;
    note f;
    if keyed e f && not (List.exists (expr_equal e) !atoms) then
      atoms := e :: !atoms
  in
  let add_guard e f =
    if f.fa_may_raise && keyed e f && not (List.exists (expr_equal e) !guards)
    then guards := e :: !guards
  in
  let add_site target e =
    let f = facts e in
    if not f.fa_pure then give_up "emission argument %s" f.fa_reason;
    note f;
    let dup s =
      s.site_target = target && expr_equal s.site_expr e
    in
    if not (List.exists dup !sites) then
      sites :=
        { site_target = target; site_expr = e; site_may_raise = f.fa_may_raise }
        :: !sites
  in
  let is_emit f =
    (not (Hashtbl.mem funs f))
    && match classify f with Emit -> true | _ -> false
  in
  let bind_all env bs =
    List.fold_left
      (fun env b ->
        let e' = subst env b.bind_expr in
        let f = facts e' in
        if not f.fa_pure then
          give_up "binding %s %s" b.bind_name f.fa_reason;
        note f;
        add_guard e' f;
        (b.bind_name, e') :: List.remove_assoc b.bind_name env)
      env bs
  in
  (* Statement position: the value is discarded; emissions, raise
     markers and branch decisions are what matter. *)
  let rec walk_effect env (e : expr) =
    match e.desc with
    | On_remote (c, pe) -> add_site (Remote c) (subst env pe)
    | On_neighbor (c, pe) -> add_site (Neighbor c) (subst env pe)
    | Call (f, [ pe ]) when is_emit f -> add_site Deliver (subst env pe)
    | Call (f, _) when is_emit f ->
        give_up "emission primitive %s applied to an unexpected arity" f
    | Seq (a, b) ->
        walk_effect env a;
        walk_effect env b
    | Let (bs, body) -> walk_effect (bind_all env bs) body
    | Raise _ -> ()
    | If (c, t, f) ->
        let whole = subst env e in
        let fw = facts whole in
        if fw.fa_pure then (
          (* No emission on either arm: the branch only matters through
             its raise behaviour, keyed as one guard. *)
          note fw;
          add_guard whole fw)
        else (
          add_atom (subst env c);
          walk_effect env t;
          walk_effect env f)
    | Try (b, hs) ->
        let whole = subst env e in
        let fw = facts whole in
        if fw.fa_pure then (
          note fw;
          add_guard whole fw)
        else (
          walk_effect env b;
          List.iter (fun (_, h) -> walk_effect env h) hs)
    | _ ->
        let e' = subst env e in
        let f = facts e' in
        if not f.fa_pure then
          give_up "statement %s" f.fa_reason;
        note f;
        add_guard e' f
  in
  (* [(ps', ss')] result position: the channel state must be returned
     unchanged; the protocol state either unchanged or moved by a
     key-determined integer delta. *)
  let handle_return env pe se =
    let se' = subst env se in
    (match se'.desc with
    | Var n when String.equal n chan.ss_name -> ()
    | _ -> give_up "channel state is not returned unchanged");
    let pe' = subst env pe in
    let is_ps e =
      match e.desc with
      | Var n -> String.equal n chan.ps_name
      | _ -> false
    in
    let delta d =
      if not ps_is_int then give_up "protocol-state update is not an increment";
      if mentions_var [ chan.ps_name ] d then
        give_up "protocol-state delta depends on the previous state";
      ps_delta := true;
      add_atom d
    in
    match pe'.desc with
    | _ when is_ps pe' -> ()
    | Binop (Add, l, d) when is_ps l -> delta d
    | Binop (Add, d, r) when is_ps r -> delta d
    | Binop (Sub, l, d) when is_ps l -> delta d
    | _ -> give_up "protocol-state update is not an increment"
  in
  let rec walk_result env (e : expr) =
    match e.desc with
    | Tuple [ pe; se ] -> handle_return env pe se
    | Var n -> (
        match List.assoc_opt n env with
        | Some e' -> walk_result [] e'
        | None -> give_up "channel result is the unknown variable %s" n)
    | If (c, t, f) ->
        add_atom (subst env c);
        walk_result env t;
        walk_result env f
    | Seq (a, b) ->
        walk_effect env a;
        walk_result env b
    | Let (bs, body) -> walk_result (bind_all env bs) body
    | Try (b, hs) ->
        walk_result env b;
        List.iter (fun (_, h) -> walk_result env h) hs
    | Raise _ -> ()
    | _ -> give_up "channel result is not a (state, state) tuple"
  in
  if is_table chan.ps_type && not ps_table_ok then
    give_up "a channel in this program replaces the resident table";
  walk_result [] chan.body;
  Cacheable
    {
      atoms = List.rev !atoms;
      guards = List.rev !guards;
      sites = List.rev !sites;
      reads_tables = !reads;
      ps_int_delta = !ps_delta;
    }

let analyze ~classify (program : Ast.program) =
  let globals =
    List.filter_map
      (function Dval (b, _) -> Some b.bind_name | _ -> None)
      program
  in
  let funs : (string, facts) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (function
      | Dfun f ->
          let allowed n =
            if List.exists (fun (p, _) -> String.equal p n) f.params then `Plain
            else if List.mem n globals then `Plain
            else `No
          in
          Hashtbl.replace funs f.fun_name
            (facts_of ~classify ~funs ~allowed [] f.fun_body)
      | _ -> ())
    program;
  let channels = Ast.channels program in
  let ps_table_ok = List.for_all ps_returned_unchanged channels in
  List.map
    (fun chan ->
      let verdict =
        try analyze_channel ~classify ~funs ~globals ~ps_table_ok chan
        with Give_up reason -> Uncacheable reason
      in
      (chan, verdict))
    channels

let pp_verdict ppf = function
  | Cacheable d ->
      Format.fprintf ppf "cacheable (%d key atom%s, %d guard%s, %d site%s%s%s)"
        (List.length d.atoms)
        (if List.length d.atoms = 1 then "" else "s")
        (List.length d.guards)
        (if List.length d.guards = 1 then "" else "s")
        (List.length d.sites)
        (if List.length d.sites = 1 then "" else "s")
        (if d.reads_tables then ", reads tables" else "")
        (if d.ps_int_delta then ", counting state" else "")
  | Uncacheable reason -> Format.fprintf ppf "uncacheable: %s" reason
