type report = {
  local_termination : Local_termination.report;
  global_termination : Global_termination.report;
  delivery : Delivery.report;
  duplication : Duplication.report;
  cacheability : (string * Cacheability.verdict) list;
}

let verify ?(classify = Cacheability.default_classify) program =
  {
    local_termination = Local_termination.analyze program;
    global_termination = Global_termination.analyze program;
    delivery = Delivery.analyze program;
    duplication = Duplication.analyze program;
    cacheability =
      List.map
        (fun (chan, verdict) -> (chan.Planp.Ast.chan_name, verdict))
        (Cacheability.analyze ~classify program);
  }

let passes report =
  report.local_termination.Local_termination.ok
  && (match report.global_termination.Global_termination.verdict with
     | Global_termination.Proved -> true
     | Global_termination.Rejected _ -> false)
  && report.delivery.Delivery.ok
  && report.duplication.Duplication.ok

let first_failure report =
  if not report.local_termination.Local_termination.ok then
    Some
      (Printf.sprintf "local termination: %s"
         (Option.value ~default:"failed"
            report.local_termination.Local_termination.reason))
  else
    match report.global_termination.Global_termination.verdict with
    | Global_termination.Rejected reason ->
        Some (Printf.sprintf "global termination: %s" reason)
    | Global_termination.Proved -> (
        if not report.delivery.Delivery.ok then
          match report.delivery.Delivery.failures with
          | (chan, reason) :: _ ->
              Some (Printf.sprintf "delivery (channel %s): %s" chan reason)
          | [] -> Some "delivery: failed"
        else if not report.duplication.Duplication.ok then
          Some
            (Printf.sprintf "duplication: %s"
               (Option.value ~default:"failed"
                  report.duplication.Duplication.reason))
        else None)

let gate ?(authenticated = false) () checked =
  if authenticated then Ok ()
  else
    let report = verify checked.Planp.Typecheck.program in
    match first_failure report with
    | None -> Ok ()
    | Some reason -> Error reason

let pp fmt report =
  let verdict_string ok = if ok then "PROVED" else "REJECTED" in
  Format.fprintf fmt "@[<v>";
  Format.fprintf fmt "local termination:  %s (functions: %d, max call depth: %d)@,"
    (verdict_string report.local_termination.Local_termination.ok)
    report.local_termination.Local_termination.function_count
    report.local_termination.Local_termination.max_call_depth;
  (match report.global_termination.Global_termination.verdict with
  | Global_termination.Proved ->
      Format.fprintf fmt
        "global termination: PROVED (states: %d, transitions: %d)@,"
        report.global_termination.Global_termination.states_explored
        report.global_termination.Global_termination.transitions
  | Global_termination.Rejected reason ->
      Format.fprintf fmt "global termination: REJECTED — %s@," reason);
  Format.fprintf fmt "delivery:           %s"
    (verdict_string report.delivery.Delivery.ok);
  List.iter
    (fun (chan, reason) -> Format.fprintf fmt "@,  %s: %s" chan reason)
    report.delivery.Delivery.failures;
  Format.fprintf fmt "@,duplication:        %s (fix-point iterations: %d)"
    (verdict_string report.duplication.Duplication.ok)
    report.duplication.Duplication.iterations;
  (match report.duplication.Duplication.reason with
  | Some reason -> Format.fprintf fmt "@,  %s" reason
  | None -> ());
  (* Informational only: cacheability never rejects a program, it just
     says which channels the flow-keyed decision cache may serve. *)
  List.iter
    (fun (chan, verdict) ->
      Format.fprintf fmt "@,cacheability:       %s: %a" chan
        Cacheability.pp_verdict verdict)
    report.cacheability;
  Format.fprintf fmt "@]"
