(** The combined program verifier the runtime consults before accepting a
    downloaded program (paper §2.1: "when programs are downloaded into the
    network layer, programs should be analyzed and rejected if they cannot
    be shown to terminate or to exhibit non-exponential packet
    duplication"). *)

type report = {
  local_termination : Local_termination.report;
  global_termination : Global_termination.report;
  delivery : Delivery.report;
  duplication : Duplication.report;
  cacheability : (string * Cacheability.verdict) list;
      (** per-channel flow-cache verdicts (informational — never rejects) *)
}

(** [classify] tells the cacheability analysis about the primitive
    library (pass [Planp_runtime.Flowcache.classify] for real verdicts);
    the default treats every primitive as impure. *)
val verify :
  ?classify:(string -> Cacheability.prim_class) -> Planp.Ast.program -> report

(** [passes report] — all four properties proved. *)
val passes : report -> bool

(** [first_failure report] is a human-readable reason, if any check failed. *)
val first_failure : report -> string option

(** [gate ?authenticated ()] is a validation hook for
    [Planp_runtime.Runtime.install]: rejects programs failing verification
    unless [authenticated] (the paper's escape hatch for privileged users
    downloading legitimate-but-unprovable protocols such as multicast). *)
val gate :
  ?authenticated:bool ->
  unit ->
  Planp.Typecheck.checked ->
  (unit, string) result

val pp : Format.formatter -> report -> unit
