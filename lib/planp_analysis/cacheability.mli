(** Static cacheability analysis for the flow-keyed decision cache
    ([Planp_runtime.Flowcache]).

    A channel is *cacheable* when its per-packet decision — which packets it
    emits (and from which expressions), whether an exception escapes, and
    how the protocol state moves — is a pure function of a small flow key
    extracted from the decoded packet. The analysis walks the channel body
    and either proves that shape or reports why it cannot:

    - every branch condition on the decision spine becomes a key {e atom}
      (re-evaluated per packet, always scalar: conditions are [bool], state
      deltas are [int]);
    - every expression that may raise on the spine becomes a {e guard},
      keyed only by whether it raises (and which exception);
    - every [OnRemote]/[OnNeighbor]/[deliver] occurrence becomes an
      emission {e site} whose value expression is re-evaluated at replay —
      the cache stores {e which} sites fired, never stale packet bytes;
    - resident-table reads ([tblGet]/[tblMem]/[tblSize]) are allowed but
      force version-stamped entries ([reads_tables]); any table write,
      output, or time/load-dependent primitive makes the channel
      uncacheable.

    The analysis knows nothing about the primitive library; the runtime
    passes a [classify] function. *)

type prim_class =
  | Pure of { may_raise : bool }  (** value depends only on arguments *)
  | Table_read  (** pure read of a resident table *)
  | Node_const  (** constant per node (e.g. [thisHost]) *)
  | Emit  (** an emission primitive ([deliver]) *)
  | Impure  (** anything else: writes, output, time, link state *)

type target = Remote of string | Neighbor of string | Deliver

type site = {
  site_target : target;
  site_expr : Planp.Ast.expr;
      (** closed over the channel parameters and globals (lets substituted) *)
  site_may_raise : bool;
}

type details = {
  atoms : Planp.Ast.expr list;
      (** scalar key fields: decision conditions and protocol-state deltas *)
  guards : Planp.Ast.expr list;
      (** may-raise spine expressions, keyed by raise marker only *)
  sites : site list;
  reads_tables : bool;
      (** entries must be stamped with the resident-table version *)
  ps_int_delta : bool;
      (** protocol state may move by a key-determined [int] delta
          (otherwise it must be returned unchanged) *)
}

type verdict = Cacheable of details | Uncacheable of string

(** Treats every primitive as [Impure]: everything is uncacheable, with the
    reason naming the missing classification. The safe default when the
    caller has no primitive library at hand. *)
val default_classify : string -> prim_class

(** Verdicts in [Ast.channels] order (one per channel declaration,
    positionally aligned with every backend's [compile] output). *)
val analyze :
  classify:(string -> prim_class) ->
  Planp.Ast.program ->
  (Planp.Ast.channel * verdict) list

val pp_verdict : Format.formatter -> verdict -> unit
