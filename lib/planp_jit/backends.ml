let interp = Planp_runtime.Interp.backend

let jit =
  {
    Specialize.backend with
    Planp_runtime.Backend.backend_name = "jit";
    compile =
      (fun checked ~globals ->
        Specialize.backend.Planp_runtime.Backend.compile
          (Fold.program checked ~globals)
          ~globals);
  }

let jit_nofold =
  { Specialize.backend with Planp_runtime.Backend.backend_name = "jit-nofold" }

let bytecode = Bytecomp.backend
let all () = [ interp; jit; bytecode ]

let by_name name =
  List.find_opt
    (fun backend ->
      String.equal backend.Planp_runtime.Backend.backend_name name)
    (List.concat [ all (); [ jit_nofold ] ])

let codegen_time_ms backend checked ~globals ~repeats =
  if repeats <= 0 then invalid_arg "codegen_time_ms: repeats must be positive";
  (* One warm-up compilation keeps first-run allocation effects out. *)
  ignore (backend.Planp_runtime.Backend.compile checked ~globals);
  let started = Unix.gettimeofday () in
  for _ = 1 to repeats do
    ignore (backend.Planp_runtime.Backend.compile checked ~globals)
  done;
  (Unix.gettimeofday () -. started) *. 1000.0 /. float_of_int repeats
