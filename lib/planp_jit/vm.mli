(** The bytecode virtual machine.

    A threaded loop over {!Bytecode.instr} with locals and operand stack
    living in one pooled, growable arena that is reused across packets;
    function calls carve their frame out of the same arena, so steady-state
    execution does not allocate per call. Deliberately *not* specialized:
    it is the baseline the JIT is measured against. *)

(** [call unit_ ~fn world args] runs function [fn] of the unit with [args]
    in its parameter slots and returns the value left on the stack. The
    argument array is copied at entry; the caller keeps ownership.
    @raise Value.Planp_raise on uncaught PLAN-P exceptions.
    @raise Value.Runtime_error on stack/code inconsistencies (compiler
    bugs). *)
val call :
  Bytecode.unit_ ->
  fn:int ->
  Planp_runtime.World.t ->
  Planp_runtime.Value.t array ->
  Planp_runtime.Value.t

(** Domain-local profiling cells: instructions dispatched and primitives
    invoked by the calling domain since it started. Domain-local (not
    process-wide refs) so accounting is race-free under
    [Netsim.Par_engine --domains k]; the bytecode backend reads
    per-packet deltas of these into [planp.vm.instrs] /
    [planp.vm.prim_calls]. [profile () = (instrs, prim calls)]. *)
val profile : unit -> int * int

val instrs_executed : unit -> int
val prim_calls : unit -> int
