(** The "JIT": run-time specialization of the interpreter with respect to a
    program.

    The paper derives its JIT by partially evaluating the PLAN-P
    interpreter (written in C) with Tempo, assembling machine-code
    templates at run time. This module is the OCaml analogue of that
    derivation: each case of [Planp_runtime.Interp.eval] is turned into a
    compile-time function that returns a *closure template*; compiling a
    program assembles the templates once, resolving

    - variable names to integer frame slots,
    - primitive names to their registered implementations,
    - global values to embedded constants,
    - operator dispatch to specialized closures,

    so none of that work remains on the per-packet path. Compiled channels
    execute in a per-channel slot arena that is reset and reused for every
    packet (safe because channel executions never nest and PLAN-P
    functions cannot recurse), so steady-state execution allocates only
    the values the program itself builds. Compilation time is what Fig. 3
    of the paper measures. *)

(** Compiled code: evaluates in a frame of slot-resolved locals. *)
type code

(** [compile_program checked ~globals] compiles every channel; this is the
    unit of work timed by the Fig. 3 bench. *)
val backend : Planp_runtime.Backend.t

(** [compile_expr ~globals ~params expr] compiles a standalone expression
    with the given parameter frame layout (exposed for tests and the
    microbenchmarks). *)
val compile_expr :
  globals:(string * Planp_runtime.Value.t) list ->
  params:string list ->
  Planp.Ast.expr ->
  code

(** [run code world args] executes compiled code with [args] bound to the
    declared parameters. *)
val run :
  code -> Planp_runtime.World.t -> Planp_runtime.Value.t list ->
  Planp_runtime.Value.t
