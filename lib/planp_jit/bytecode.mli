(** Stack bytecode for PLAN-P — the mobile-code baseline.

    The paper compares its JIT against Java bytecode compiled with Harissa;
    this instruction set plays the JVM's role: a compact, portable,
    *interpreted* representation. Primitives are resolved once into a
    constant pool (as a JVM resolves its constant pool), but each execution
    still pays instruction dispatch, operand-stack traffic and jump
    decoding — the costs specialization removes. *)

type instr =
  | Const of Planp_runtime.Value.t
  | Load of int  (** push local slot *)
  | Store of int  (** pop into local slot *)
  | Pop
  | Jump of int  (** absolute instruction index *)
  | Jump_if_false of int  (** pop a bool, jump when false *)
  | Make_tuple of int  (** pop n, push tuple *)
  | Get_field of int  (** 0-based tuple projection *)
  | Call_prim of int * int  (** constant-pool index, arg count *)
  | Call_fun of int * int  (** function index, arg count *)
  | Bin of Planp.Ast.binop  (** strict operators only (not andalso/orelse) *)
  | Not_op
  | Neg_op
  | Emit of Planp_runtime.World.target * string  (** pop packet, push unit *)
  | Raise_exn of string
  | Push_try of (string * int) list  (** handler table: (exception, target) *)
  | Pop_try
  | Return
  | Load_bin of int * Planp.Ast.binop
      (** superinstruction: [Load slot; Bin op] — pop left, right from slot *)
  | Const_bin of Planp_runtime.Value.t * Planp.Ast.binop
      (** superinstruction: [Const v; Bin op] — pop left, right is [v] *)
  | Cmp_jump of Planp.Ast.binop * int
      (** superinstruction: [Bin cmp; Jump_if_false target] *)

type func = {
  fn_name : string;
  code : instr array;
  n_locals : int;
  n_params : int;  (** parameters occupy locals [0 .. n_params-1] *)
}

type unit_ = {
  funcs : func array;
  pool : Planp_runtime.Prim.prim array;  (** resolved primitive pool *)
}

val pp_instr : Format.formatter -> instr -> unit
val pp_func : Format.formatter -> func -> unit

(** [disassemble func] renders one instruction per line (for tests and the
    [planpc --dump-bytecode] CLI). *)
val disassemble : func -> string
