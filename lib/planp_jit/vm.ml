module Value = Planp_runtime.Value
module Prim = Planp_runtime.Prim

type try_frame = { handlers : (string * int) list; saved_sp : int }

(* Profiling cells, mirroring Planp_runtime.Interp: bare increments in the
   dispatch loop, read as per-packet deltas by the bytecode backend. *)
let instrs_executed = ref 0
let prim_calls = ref 0

let rec call unit_ ~fn world args =
  let func = unit_.Bytecode.funcs.(fn) in
  let locals = Array.make (Int.max func.Bytecode.n_locals 1) Value.Vunit in
  List.iteri
    (fun i value ->
      if i < func.Bytecode.n_params then locals.(i) <- value
      else raise (Value.Runtime_error "vm: too many arguments"))
    args;
  let stack = ref (Array.make 32 Value.Vunit) in
  let sp = ref 0 in
  let push value =
    if !sp = Array.length !stack then begin
      let grown = Array.make (2 * Array.length !stack) Value.Vunit in
      Array.blit !stack 0 grown 0 !sp;
      stack := grown
    end;
    !stack.(!sp) <- value;
    incr sp
  in
  let pop () =
    if !sp = 0 then raise (Value.Runtime_error "vm: stack underflow");
    decr sp;
    !stack.(!sp)
  in
  let pop_n n =
    let values = ref [] in
    for _ = 1 to n do
      values := pop () :: !values
    done;
    !values
  in
  let tries = ref [] in
  let pc = ref 0 in
  let result = ref None in
  let code = func.Bytecode.code in
  (* Route a PLAN-P exception to the innermost matching handler, or
     re-raise to the calling frame. *)
  let handle_raise exn_name original =
    let rec unwind = function
      | [] -> raise original
      | frame :: rest -> (
          match List.assoc_opt exn_name frame.handlers with
          | Some target ->
              tries := rest;
              sp := frame.saved_sp;
              pc := target
          | None -> unwind rest)
    in
    unwind !tries
  in
  while Option.is_none !result do
    if !pc < 0 || !pc >= Array.length code then
      raise (Value.Runtime_error "vm: program counter out of range");
    let instr = code.(!pc) in
    incr pc;
    incr instrs_executed;
    try
      match instr with
      | Bytecode.Const value -> push value
      | Bytecode.Load slot -> push locals.(slot)
      | Bytecode.Store slot -> locals.(slot) <- pop ()
      | Bytecode.Pop -> ignore (pop ())
      | Bytecode.Jump target -> pc := target
      | Bytecode.Jump_if_false target ->
          if not (Value.as_bool (pop ())) then pc := target
      | Bytecode.Make_tuple n -> push (Value.Vtuple (pop_n n))
      | Bytecode.Get_field i -> (
          match pop () with
          | Value.Vtuple components when i < List.length components ->
              push (List.nth components i)
          | value -> Value.type_error ~expected:"tuple" value)
      | Bytecode.Call_prim (pool_index, argc) ->
          let prim = unit_.Bytecode.pool.(pool_index) in
          incr prim_calls;
          push (prim.Prim.impl world (pop_n argc))
      | Bytecode.Call_fun (index, argc) ->
          push (call unit_ ~fn:index world (pop_n argc))
      | Bytecode.Bin op -> (
          let right = pop () in
          let left = pop () in
          match op with
          | Planp.Ast.Add ->
              push (Value.Vint (Value.as_int left + Value.as_int right))
          | Planp.Ast.Sub ->
              push (Value.Vint (Value.as_int left - Value.as_int right))
          | Planp.Ast.Mul ->
              push (Value.Vint (Value.as_int left * Value.as_int right))
          | Planp.Ast.Div ->
              let divisor = Value.as_int right in
              if divisor = 0 then raise (Value.Planp_raise "DivByZero")
              else push (Value.Vint (Value.as_int left / divisor))
          | Planp.Ast.Mod ->
              let divisor = Value.as_int right in
              if divisor = 0 then raise (Value.Planp_raise "DivByZero")
              else push (Value.Vint (Value.as_int left mod divisor))
          | Planp.Ast.Eq -> push (Value.Vbool (Value.equal left right))
          | Planp.Ast.Ne -> push (Value.Vbool (not (Value.equal left right)))
          | Planp.Ast.Lt ->
              push (Value.Vbool (Value.compare_values left right < 0))
          | Planp.Ast.Gt ->
              push (Value.Vbool (Value.compare_values left right > 0))
          | Planp.Ast.Le ->
              push (Value.Vbool (Value.compare_values left right <= 0))
          | Planp.Ast.Ge ->
              push (Value.Vbool (Value.compare_values left right >= 0))
          | Planp.Ast.Concat ->
              push
                (Value.Vstring (Value.as_string left ^ Value.as_string right))
          | Planp.Ast.And | Planp.Ast.Or ->
              raise (Value.Runtime_error "vm: short-circuit op in Bin"))
      | Bytecode.Not_op -> push (Value.Vbool (not (Value.as_bool (pop ()))))
      | Bytecode.Neg_op -> push (Value.Vint (-Value.as_int (pop ())))
      | Bytecode.Emit (target, chan) ->
          world.Planp_runtime.World.emit target ~chan (pop ());
          push Value.Vunit
      | Bytecode.Raise_exn exn_name ->
          raise (Value.Planp_raise exn_name)
      | Bytecode.Push_try handlers ->
          tries := { handlers; saved_sp = !sp } :: !tries
      | Bytecode.Pop_try -> (
          match !tries with
          | _ :: rest -> tries := rest
          | [] -> raise (Value.Runtime_error "vm: pop_try on empty try stack"))
      | Bytecode.Return -> result := Some (pop ())
    with Value.Planp_raise exn_name as original ->
      handle_raise exn_name original
  done;
  match !result with
  | Some value -> value
  | None -> raise (Value.Runtime_error "vm: no result")
