module Value = Planp_runtime.Value
module Prim = Planp_runtime.Prim

type try_frame = { handlers : (string * int) list; saved_sp : int }

(* One growable value arena holds every frame of an execution: the layout
   is [caller frames... | locals | operand stack].  A call carves the
   callee's frame out of the same arena — its arguments, already on the
   operand stack, become its first locals in place — so steady-state
   execution allocates nothing per call.

   The arena is pooled (one slot) and reused across packets.  If a packet
   execution somehow re-enters the VM while the pooled arena is busy, the
   inner execution just pays for a fresh arena — correctness never depends
   on the pool. *)
type arena = { mutable data : Value.t array; mutable sp : int }

(* All per-execution mutable scratch — the profiling cells (mirroring
   Planp_runtime.Interp: bare increments in the dispatch loop, read as
   per-packet deltas by the bytecode backend), the pooled arena, and the
   primitive-argument buffers — lives in one domain-local record so the
   VM is race-free under [Netsim.Par_engine --domains k]. *)
type domain_state = {
  mutable d_instrs : int;
  mutable d_prims : int;
  d_pooled : arena;
  mutable d_pool_busy : bool;
  (* Per-arity scratch buffers for primitive arguments.  The Prim.impl
     contract (see prim.mli) lets us reuse them: implementations read
     their arguments before any world effect and never retain the
     array. *)
  d_scratch : Value.t array array;
}

let dls_key =
  Domain.DLS.new_key (fun () ->
      {
        d_instrs = 0;
        d_prims = 0;
        d_pooled = { data = Array.make 256 Value.Vunit; sp = 0 };
        d_pool_busy = false;
        d_scratch = Array.init 9 (fun n -> Array.make n Value.Vunit);
      })

let profile () =
  let st = Domain.DLS.get dls_key in
  (st.d_instrs, st.d_prims)

let instrs_executed () = fst (profile ())
let prim_calls () = snd (profile ())

let ensure arena needed =
  if needed > Array.length arena.data then begin
    let cap = ref (2 * Array.length arena.data) in
    while needed > !cap do
      cap := 2 * !cap
    done;
    let grown = Array.make !cap Value.Vunit in
    Array.blit arena.data 0 grown 0 arena.sp;
    arena.data <- grown
  end

let push arena value =
  if arena.sp = Array.length arena.data then ensure arena (arena.sp + 1);
  Array.unsafe_set arena.data arena.sp value;
  arena.sp <- arena.sp + 1

let take_arena st =
  if st.d_pool_busy then { data = Array.make 256 Value.Vunit; sp = 0 }
  else begin
    st.d_pool_busy <- true;
    st.d_pooled
  end

let release_arena st arena =
  if arena == st.d_pooled then st.d_pool_busy <- false

let eval_binop op left right =
  match op with
  | Planp.Ast.Add -> Value.Vint (Value.as_int left + Value.as_int right)
  | Planp.Ast.Sub -> Value.Vint (Value.as_int left - Value.as_int right)
  | Planp.Ast.Mul -> Value.Vint (Value.as_int left * Value.as_int right)
  | Planp.Ast.Div ->
      let divisor = Value.as_int right in
      if divisor = 0 then raise (Value.Planp_raise "DivByZero")
      else Value.Vint (Value.as_int left / divisor)
  | Planp.Ast.Mod ->
      let divisor = Value.as_int right in
      if divisor = 0 then raise (Value.Planp_raise "DivByZero")
      else Value.Vint (Value.as_int left mod divisor)
  | Planp.Ast.Eq -> Value.vbool (Value.equal left right)
  | Planp.Ast.Ne -> Value.vbool (not (Value.equal left right))
  | Planp.Ast.Lt -> Value.vbool (Value.compare_values left right < 0)
  | Planp.Ast.Gt -> Value.vbool (Value.compare_values left right > 0)
  | Planp.Ast.Le -> Value.vbool (Value.compare_values left right <= 0)
  | Planp.Ast.Ge -> Value.vbool (Value.compare_values left right >= 0)
  | Planp.Ast.Concat ->
      Value.Vstring (Value.as_string left ^ Value.as_string right)
  | Planp.Ast.And | Planp.Ast.Or ->
      raise (Value.Runtime_error "vm: short-circuit op in Bin")

(* Run function [fn] whose frame starts at [base]; the caller has already
   placed the arguments at [base .. base+argc-1]. *)
let rec exec unit_ ~fn world st arena ~base =
  let func = unit_.Bytecode.funcs.(fn) in
  let stack_base = base + Int.max func.Bytecode.n_locals 1 in
  ensure arena stack_base;
  arena.sp <- stack_base;
  let pop () =
    if arena.sp <= stack_base then
      raise (Value.Runtime_error "vm: stack underflow");
    arena.sp <- arena.sp - 1;
    Array.unsafe_get arena.data arena.sp
  in
  let local slot = arena.data.(base + slot) in
  let tries = ref [] in
  let pc = ref 0 in
  let result = ref None in
  let code = func.Bytecode.code in
  (* Route a PLAN-P exception to the innermost matching handler, or
     re-raise to the calling frame. *)
  let handle_raise exn_name original =
    let rec unwind = function
      | [] -> raise original
      | frame :: rest -> (
          match List.assoc_opt exn_name frame.handlers with
          | Some target ->
              tries := rest;
              arena.sp <- frame.saved_sp;
              pc := target
          | None -> unwind rest)
    in
    unwind !tries
  in
  while Option.is_none !result do
    if !pc < 0 || !pc >= Array.length code then
      raise (Value.Runtime_error "vm: program counter out of range");
    let instr = code.(!pc) in
    incr pc;
    st.d_instrs <- st.d_instrs + 1;
    try
      match instr with
      | Bytecode.Const value -> push arena value
      | Bytecode.Load slot -> push arena (local slot)
      | Bytecode.Store slot -> arena.data.(base + slot) <- pop ()
      | Bytecode.Pop -> ignore (pop ())
      | Bytecode.Jump target -> pc := target
      | Bytecode.Jump_if_false target ->
          if not (Value.as_bool (pop ())) then pc := target
      | Bytecode.Make_tuple n ->
          let tbase = arena.sp - n in
          if tbase < stack_base then
            raise (Value.Runtime_error "vm: stack underflow");
          let components = Array.sub arena.data tbase n in
          arena.sp <- tbase;
          push arena (Value.Vtuple components)
      | Bytecode.Get_field i -> (
          match pop () with
          | Value.Vtuple components when i < Array.length components ->
              push arena (Array.unsafe_get components i)
          | value -> Value.type_error ~expected:"tuple" value)
      | Bytecode.Call_prim (pool_index, argc) ->
          let prim = unit_.Bytecode.pool.(pool_index) in
          st.d_prims <- st.d_prims + 1;
          let abase = arena.sp - argc in
          if abase < stack_base then
            raise (Value.Runtime_error "vm: stack underflow");
          let args =
            if argc < Array.length st.d_scratch then st.d_scratch.(argc)
            else Array.make argc Value.Vunit
          in
          Array.blit arena.data abase args 0 argc;
          arena.sp <- abase;
          push arena (prim.Prim.impl world args)
      | Bytecode.Call_fun (index, argc) ->
          (* The argc stack values become the callee's first locals in
             place; the callee's frame replaces them on the stack. *)
          let cbase = arena.sp - argc in
          if cbase < stack_base then
            raise (Value.Runtime_error "vm: stack underflow");
          let value = exec unit_ ~fn:index world st arena ~base:cbase in
          arena.sp <- cbase;
          push arena value
      | Bytecode.Bin op ->
          let right = pop () in
          let left = pop () in
          push arena (eval_binop op left right)
      | Bytecode.Load_bin (slot, op) ->
          let right = local slot in
          let left = pop () in
          push arena (eval_binop op left right)
      | Bytecode.Const_bin (value, op) ->
          let left = pop () in
          push arena (eval_binop op left value)
      | Bytecode.Cmp_jump (op, target) ->
          let right = pop () in
          let left = pop () in
          let taken =
            match op with
            | Planp.Ast.Eq -> Value.equal left right
            | Planp.Ast.Ne -> not (Value.equal left right)
            | Planp.Ast.Lt -> Value.compare_values left right < 0
            | Planp.Ast.Gt -> Value.compare_values left right > 0
            | Planp.Ast.Le -> Value.compare_values left right <= 0
            | Planp.Ast.Ge -> Value.compare_values left right >= 0
            | _ -> raise (Value.Runtime_error "vm: non-comparison in cmp_jump")
          in
          if not taken then pc := target
      | Bytecode.Not_op -> push arena (Value.vbool (not (Value.as_bool (pop ()))))
      | Bytecode.Neg_op -> push arena (Value.Vint (-Value.as_int (pop ())))
      | Bytecode.Emit (target, chan) ->
          world.Planp_runtime.World.emit target ~chan (pop ());
          push arena Value.Vunit
      | Bytecode.Raise_exn exn_name -> raise (Value.Planp_raise exn_name)
      | Bytecode.Push_try handlers ->
          tries := { handlers; saved_sp = arena.sp } :: !tries
      | Bytecode.Pop_try -> (
          match !tries with
          | _ :: rest -> tries := rest
          | [] -> raise (Value.Runtime_error "vm: pop_try on empty try stack"))
      | Bytecode.Return -> result := Some (pop ())
    with Value.Planp_raise exn_name as original ->
      handle_raise exn_name original
  done;
  match !result with
  | Some value -> value
  | None -> raise (Value.Runtime_error "vm: no result")

let call unit_ ~fn world (args : Value.t array) =
  let func = unit_.Bytecode.funcs.(fn) in
  if Array.length args > func.Bytecode.n_params then
    raise (Value.Runtime_error "vm: too many arguments");
  let st = Domain.DLS.get dls_key in
  let arena = take_arena st in
  arena.sp <- 0;
  ensure arena (Array.length args);
  Array.blit args 0 arena.data 0 (Array.length args);
  arena.sp <- Array.length args;
  match exec unit_ ~fn world st arena ~base:0 with
  | value ->
      release_arena st arena;
      value
  | exception e ->
      release_arena st arena;
      raise e
