type instr =
  | Const of Planp_runtime.Value.t
  | Load of int
  | Store of int
  | Pop
  | Jump of int
  | Jump_if_false of int
  | Make_tuple of int
  | Get_field of int
  | Call_prim of int * int
  | Call_fun of int * int
  | Bin of Planp.Ast.binop
  | Not_op
  | Neg_op
  | Emit of Planp_runtime.World.target * string
  | Raise_exn of string
  | Push_try of (string * int) list
  | Pop_try
  | Return
  (* Superinstructions, produced only by the peephole pass: each replaces a
     two-instruction sequence, saving one dispatch and one operand-stack
     round trip. *)
  | Load_bin of int * Planp.Ast.binop
  | Const_bin of Planp_runtime.Value.t * Planp.Ast.binop
  | Cmp_jump of Planp.Ast.binop * int

type func = {
  fn_name : string;
  code : instr array;
  n_locals : int;
  n_params : int;
}

type unit_ = {
  funcs : func array;
  pool : Planp_runtime.Prim.prim array;
}

let binop_name = function
  | Planp.Ast.Add -> "add"
  | Planp.Ast.Sub -> "sub"
  | Planp.Ast.Mul -> "mul"
  | Planp.Ast.Div -> "div"
  | Planp.Ast.Mod -> "mod"
  | Planp.Ast.Eq -> "eq"
  | Planp.Ast.Ne -> "ne"
  | Planp.Ast.Lt -> "lt"
  | Planp.Ast.Gt -> "gt"
  | Planp.Ast.Le -> "le"
  | Planp.Ast.Ge -> "ge"
  | Planp.Ast.And -> "and"
  | Planp.Ast.Or -> "or"
  | Planp.Ast.Concat -> "concat"

let pp_instr fmt = function
  | Const value ->
      Format.fprintf fmt "const %s" (Planp_runtime.Value.to_string value)
  | Load slot -> Format.fprintf fmt "load %d" slot
  | Store slot -> Format.fprintf fmt "store %d" slot
  | Pop -> Format.pp_print_string fmt "pop"
  | Jump target -> Format.fprintf fmt "jump %d" target
  | Jump_if_false target -> Format.fprintf fmt "jump_if_false %d" target
  | Make_tuple n -> Format.fprintf fmt "make_tuple %d" n
  | Get_field i -> Format.fprintf fmt "get_field %d" i
  | Call_prim (pool, argc) -> Format.fprintf fmt "call_prim %d/%d" pool argc
  | Call_fun (index, argc) -> Format.fprintf fmt "call_fun %d/%d" index argc
  | Bin op -> Format.fprintf fmt "bin %s" (binop_name op)
  | Not_op -> Format.pp_print_string fmt "not"
  | Neg_op -> Format.pp_print_string fmt "neg"
  | Emit (Planp_runtime.World.Remote, chan) ->
      Format.fprintf fmt "emit_remote %s" chan
  | Emit (Planp_runtime.World.Neighbor, chan) ->
      Format.fprintf fmt "emit_neighbor %s" chan
  | Raise_exn name -> Format.fprintf fmt "raise %s" name
  | Push_try handlers ->
      Format.fprintf fmt "push_try [%s]"
        (String.concat "; "
           (List.map
              (fun (exn_name, target) -> Printf.sprintf "%s->%d" exn_name target)
              handlers))
  | Pop_try -> Format.pp_print_string fmt "pop_try"
  | Return -> Format.pp_print_string fmt "return"
  | Load_bin (slot, op) -> Format.fprintf fmt "load_bin %d %s" slot (binop_name op)
  | Const_bin (value, op) ->
      Format.fprintf fmt "const_bin %s %s"
        (Planp_runtime.Value.to_string value)
        (binop_name op)
  | Cmp_jump (op, target) ->
      Format.fprintf fmt "cmp_jump %s %d" (binop_name op) target

let pp_func fmt func =
  Format.fprintf fmt "@[<v 2>%s (params=%d locals=%d):" func.fn_name
    func.n_params func.n_locals;
  Array.iteri
    (fun i instr -> Format.fprintf fmt "@,%4d: %a" i pp_instr instr)
    func.code;
  Format.fprintf fmt "@]"

let disassemble func = Format.asprintf "%a" pp_func func
