module Ast = Planp.Ast
module Value = Planp_runtime.Value
module Prim = Planp_runtime.Prim

(* An expression is "literal" when we can read its value off statically. *)
let literal_of (expr : Ast.expr) =
  match expr.Ast.desc with
  | Ast.Int n -> Some (Value.Vint n)
  | Ast.Bool b -> Some (Value.Vbool b)
  | Ast.String s -> Some (Value.Vstring s)
  | Ast.Char c -> Some (Value.Vchar c)
  | Ast.Unit -> Some Value.Vunit
  | Ast.Host h -> Some (Value.Vhost h)
  | _ -> None

let expr_of_literal loc (value : Value.t) =
  match value with
  | Value.Vint n -> Some (Ast.mk loc (Ast.Int n))
  | Value.Vbool b -> Some (Ast.mk loc (Ast.Bool b))
  | Value.Vstring s -> Some (Ast.mk loc (Ast.String s))
  | Value.Vchar c -> Some (Ast.mk loc (Ast.Char c))
  | Value.Vunit -> Some (Ast.mk loc Ast.Unit)
  | Value.Vhost h -> Some (Ast.mk loc (Ast.Host h))
  | Value.Vblob _ | Value.Vip _ | Value.Vtcp _ | Value.Vudp _ | Value.Vtuple _
  | Value.Vtable _ ->
      None

(* Pure total primitives safe to evaluate at compile time on literal
   arguments. Partial primitives (chr, substr, ...) are excluded: their
   run-time exceptions must keep their run-time semantics. *)
let foldable_prim = function
  | "itos" | "htos" | "charPos" | "strlen" | "strFind" | "min" | "max" | "abs"
  | "even" | "isMulticast" | "hostBits" ->
      true
  | _ -> false

let fold_binop loc op (a : Value.t) (b : Value.t) =
  let int_op f =
    match (a, b) with
    | Value.Vint x, Value.Vint y -> expr_of_literal loc (Value.Vint (f x y))
    | _ -> None
  in
  let cmp f =
    match (a, b) with
    | Value.Vint x, Value.Vint y ->
        expr_of_literal loc (Value.Vbool (f (Int.compare x y) 0))
    | Value.Vchar x, Value.Vchar y ->
        expr_of_literal loc (Value.Vbool (f (Char.compare x y) 0))
    | Value.Vstring x, Value.Vstring y ->
        expr_of_literal loc (Value.Vbool (f (String.compare x y) 0))
    | _ -> None
  in
  match op with
  | Ast.Add -> int_op ( + )
  | Ast.Sub -> int_op ( - )
  | Ast.Mul -> int_op ( * )
  | Ast.Div | Ast.Mod ->
      (* Folding would erase the DivByZero raise point; leave division to
         run time even on literals. *)
      None
  | Ast.Eq -> (
      try expr_of_literal loc (Value.Vbool (Value.equal a b)) with _ -> None)
  | Ast.Ne -> (
      try expr_of_literal loc (Value.Vbool (not (Value.equal a b)))
      with _ -> None)
  | Ast.Lt -> cmp ( < )
  | Ast.Gt -> cmp ( > )
  | Ast.Le -> cmp ( <= )
  | Ast.Ge -> cmp ( >= )
  | Ast.Concat -> (
      match (a, b) with
      | Value.Vstring x, Value.Vstring y ->
          expr_of_literal loc (Value.Vstring (x ^ y))
      | _ -> None)
  | Ast.And | Ast.Or -> None (* handled before evaluation, for short-circuit *)

(* [env] maps names to [Some literal] when statically known, [None] when a
   binding shadows an outer literal with an unknown value (poisoning, so an
   inner shadow can never leak the outer literal). *)
let rec fold env (expr : Ast.expr) : Ast.expr =
  let loc = expr.Ast.loc in
  match expr.Ast.desc with
  | Ast.Int _ | Ast.Bool _ | Ast.String _ | Ast.Char _ | Ast.Unit | Ast.Host _
  | Ast.Raise _ ->
      expr
  | Ast.Var name -> (
      match List.assoc_opt name env with
      | Some (Some value) -> (
          match expr_of_literal loc value with
          | Some literal -> literal
          | None -> expr)
      | Some None | None -> expr)
  | Ast.Call (name, args) -> (
      let args = List.map (fold env) args in
      let rebuilt = Ast.mk loc (Ast.Call (name, args)) in
      if not (foldable_prim name) then rebuilt
      else
        match
          List.fold_right
            (fun arg acc ->
              match (acc, literal_of arg) with
              | Some values, Some value -> Some (value :: values)
              | _ -> None)
            args (Some [])
        with
        | Some values -> (
            match Prim.find name with
            | Some prim -> (
                let world, _, _ = Planp_runtime.World.dummy () in
                match prim.Prim.impl world (Array.of_list values) with
                | value -> (
                    match expr_of_literal loc value with
                    | Some literal -> literal
                    | None -> rebuilt)
                | exception _ -> rebuilt)
            | None -> rebuilt)
        | None -> rebuilt)
  | Ast.Tuple components -> Ast.mk loc (Ast.Tuple (List.map (fold env) components))
  | Ast.Proj (index, operand) -> (
      let operand = fold env operand in
      match operand.Ast.desc with
      | Ast.Tuple components
        when index >= 1 && index <= List.length components ->
          (* Safe only when the discarded components are effect-free;
             literals and variables always are. *)
          let kept = List.nth components (index - 1) in
          let others_pure =
            List.for_all
              (fun (c : Ast.expr) ->
                match c.Ast.desc with
                | Ast.Int _ | Ast.Bool _ | Ast.String _ | Ast.Char _ | Ast.Unit
                | Ast.Host _ | Ast.Var _ ->
                    true
                | _ -> false)
              components
          in
          if others_pure then kept else Ast.mk loc (Ast.Proj (index, operand))
      | _ -> Ast.mk loc (Ast.Proj (index, operand)))
  | Ast.Let (bindings, body) -> (
      let env, bindings =
        List.fold_left
          (fun (env, acc) { Ast.bind_name; bind_type; bind_expr } ->
            let bind_expr = fold env bind_expr in
            let env = (bind_name, literal_of bind_expr) :: env in
            (env, { Ast.bind_name; bind_type; bind_expr } :: acc))
          (env, []) bindings
      in
      (* A binding whose initializer folded to a literal was substituted at
         every use and is pure: drop it. *)
      let live =
        List.rev
          (List.filter
             (fun { Ast.bind_expr; _ } -> Option.is_none (literal_of bind_expr))
             bindings)
      in
      let body = fold env body in
      match live with
      | [] -> body
      | _ -> Ast.mk loc (Ast.Let (live, body)))
  | Ast.If (cond, then_branch, else_branch) -> (
      let cond = fold env cond in
      match cond.Ast.desc with
      | Ast.Bool true -> fold env then_branch
      | Ast.Bool false -> fold env else_branch
      | _ ->
          Ast.mk loc (Ast.If (cond, fold env then_branch, fold env else_branch)))
  | Ast.Binop (Ast.And, left, right) -> (
      let left = fold env left in
      match left.Ast.desc with
      | Ast.Bool true -> fold env right
      | Ast.Bool false -> Ast.mk loc (Ast.Bool false)
      | _ -> Ast.mk loc (Ast.Binop (Ast.And, left, fold env right)))
  | Ast.Binop (Ast.Or, left, right) -> (
      let left = fold env left in
      match left.Ast.desc with
      | Ast.Bool false -> fold env right
      | Ast.Bool true -> Ast.mk loc (Ast.Bool true)
      | _ -> Ast.mk loc (Ast.Binop (Ast.Or, left, fold env right)))
  | Ast.Binop (op, left, right) -> (
      let left = fold env left and right = fold env right in
      match (literal_of left, literal_of right) with
      | Some a, Some b -> (
          match fold_binop loc op a b with
          | Some folded -> folded
          | None -> Ast.mk loc (Ast.Binop (op, left, right)))
      | _ -> Ast.mk loc (Ast.Binop (op, left, right)))
  | Ast.Unop (Ast.Not, operand) -> (
      let operand = fold env operand in
      match operand.Ast.desc with
      | Ast.Bool b -> Ast.mk loc (Ast.Bool (not b))
      | _ -> Ast.mk loc (Ast.Unop (Ast.Not, operand)))
  | Ast.Unop (Ast.Neg, operand) -> (
      let operand = fold env operand in
      match operand.Ast.desc with
      | Ast.Int n -> Ast.mk loc (Ast.Int (-n))
      | _ -> Ast.mk loc (Ast.Unop (Ast.Neg, operand)))
  | Ast.Seq (left, right) -> (
      let left = fold env left in
      let right = fold env right in
      (* A literal left side is effect-free: drop it. *)
      match literal_of left with
      | Some _ -> right
      | None -> Ast.mk loc (Ast.Seq (left, right)))
  | Ast.On_remote (chan, packet) ->
      Ast.mk loc (Ast.On_remote (chan, fold env packet))
  | Ast.On_neighbor (chan, packet) ->
      Ast.mk loc (Ast.On_neighbor (chan, fold env packet))
  | Ast.Try (body, handlers) ->
      Ast.mk loc
        (Ast.Try
           ( fold env body,
             List.map (fun (name, handler) -> (name, fold env handler)) handlers ))

let literal_env globals = List.map (fun (name, value) -> (name, Some value)) globals

let expr ~globals e = fold (literal_env globals) e

let program checked ~globals =
  let env = literal_env globals in
  let fold_decl decl =
    match decl with
    | Ast.Dval ({ Ast.bind_name; bind_type; bind_expr }, loc) ->
        Ast.Dval ({ Ast.bind_name; bind_type; bind_expr = fold env bind_expr }, loc)
    | Ast.Dfun f ->
        (* Function parameters shadow any same-named globals. *)
        let body_env =
          List.map (fun (param, _ty) -> (param, None)) f.Ast.params @ env
        in
        Ast.Dfun { f with Ast.fun_body = fold body_env f.Ast.fun_body }
    | Ast.Dexception _ -> decl
    | Ast.Dprotostate (ty, init, loc) -> Ast.Dprotostate (ty, fold env init, loc)
    | Ast.Dchannel chan ->
        let body_env =
          (chan.Ast.ps_name, None) :: (chan.Ast.ss_name, None)
          :: (chan.Ast.pkt_name, None) :: env
        in
        Ast.Dchannel
          {
            chan with
            Ast.body = fold body_env chan.Ast.body;
            initstate = Option.map (fold env) chan.Ast.initstate;
          }
  in
  {
    checked with
    Planp.Typecheck.program = List.map fold_decl checked.Planp.Typecheck.program;
  }

let rec count_nodes (expr : Ast.expr) =
  match expr.Ast.desc with
  | Ast.Int _ | Ast.Bool _ | Ast.String _ | Ast.Char _ | Ast.Unit | Ast.Host _
  | Ast.Var _ | Ast.Raise _ ->
      1
  | Ast.Call (_, args) -> 1 + List.fold_left (fun acc a -> acc + count_nodes a) 0 args
  | Ast.Tuple components ->
      1 + List.fold_left (fun acc c -> acc + count_nodes c) 0 components
  | Ast.Proj (_, operand) | Ast.Unop (_, operand) -> 1 + count_nodes operand
  | Ast.Let (bindings, body) ->
      1
      + List.fold_left
          (fun acc { Ast.bind_expr; _ } -> acc + count_nodes bind_expr)
          (count_nodes body) bindings
  | Ast.If (a, b, c) -> 1 + count_nodes a + count_nodes b + count_nodes c
  | Ast.Binop (_, a, b) | Ast.Seq (a, b) -> 1 + count_nodes a + count_nodes b
  | Ast.On_remote (_, packet) | Ast.On_neighbor (_, packet) ->
      1 + count_nodes packet
  | Ast.Try (body, handlers) ->
      1
      + List.fold_left
          (fun acc (_, handler) -> acc + count_nodes handler)
          (count_nodes body) handlers
