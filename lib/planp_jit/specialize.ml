module Ast = Planp.Ast
module Value = Planp_runtime.Value
module World = Planp_runtime.World
module Prim = Planp_runtime.Prim
module Backend = Planp_runtime.Backend

(* Run-time state of compiled code: the world and a slice of the channel's
   slot arena.  The arena is allocated once per compiled channel and reused
   for every packet; a function call carves its frame out of the region
   above [top] instead of allocating.  Everything else (names, types, AST)
   is gone after compilation.

   Safety of the reuse: packet executions never nest.  Channel code runs
   only from the engine's event loop, and the world's [emit]/[deliver]
   effects enqueue further work through the engine rather than executing
   another channel synchronously.  PLAN-P functions cannot recurse (the
   type checker only admits calls to previously declared functions), so a
   call site's frame region is never live twice. *)
type arena = { mutable data : Value.t array; mutable top : int }
type rt = { world : World.t; arena : arena; base : int }
type compiled = rt -> Value.t
type code = { entry : compiled; frame_size : int; param_count : int }

let make_arena size = { data = Array.make (Int.max size 16) Value.Vunit; top = 0 }

let ensure arena needed =
  if needed > Array.length arena.data then (
    let cap = ref (2 * Array.length arena.data) in
    while needed > !cap do
      cap := !cap * 2
    done;
    let data = Array.make !cap Value.Vunit in
    Array.blit arena.data 0 data 0 arena.top;
    arena.data <- data)

(* Compile-time environment: where does a name live? *)
type binding = Global of Value.t | Slot of int

type ctx = {
  names : (string * binding) list;  (* innermost first *)
  next_slot : int;
  max_slot : int ref;  (* high-water mark, shared across scope extensions *)
  funs : (string, fun_code) Hashtbl.t;
}

and fun_code = { fc_body : compiled; fc_frame : int; fc_params : int }

let bind ctx name =
  let slot = ctx.next_slot in
  if slot + 1 > !(ctx.max_slot) then ctx.max_slot := slot + 1;
  ({ ctx with names = (name, Slot slot) :: ctx.names; next_slot = slot + 1 }, slot)

let lookup ctx name =
  match List.assoc_opt name ctx.names with
  | Some binding -> binding
  | None ->
      raise
        (Value.Runtime_error
           (Printf.sprintf "specialize: unbound variable %s" name))

(* Specialized arithmetic templates: the operator match happens here, at
   compile time — the residual closure performs only the operation. *)
let compile_arith op (l : compiled) (r : compiled) : compiled =
  match op with
  | Ast.Add -> fun rt -> Value.Vint (Value.as_int (l rt) + Value.as_int (r rt))
  | Ast.Sub -> fun rt -> Value.Vint (Value.as_int (l rt) - Value.as_int (r rt))
  | Ast.Mul -> fun rt -> Value.Vint (Value.as_int (l rt) * Value.as_int (r rt))
  | Ast.Div ->
      fun rt ->
        let b = Value.as_int (r rt) in
        if b = 0 then raise (Value.Planp_raise "DivByZero")
        else Value.Vint (Value.as_int (l rt) / b)
  | Ast.Mod ->
      fun rt ->
        let b = Value.as_int (r rt) in
        if b = 0 then raise (Value.Planp_raise "DivByZero")
        else Value.Vint (Value.as_int (l rt) mod b)
  | Ast.Eq -> fun rt -> Value.vbool (Value.equal (l rt) (r rt))
  | Ast.Ne -> fun rt -> Value.vbool (not (Value.equal (l rt) (r rt)))
  | Ast.Lt -> fun rt -> Value.vbool (Value.compare_values (l rt) (r rt) < 0)
  | Ast.Gt -> fun rt -> Value.vbool (Value.compare_values (l rt) (r rt) > 0)
  | Ast.Le -> fun rt -> Value.vbool (Value.compare_values (l rt) (r rt) <= 0)
  | Ast.Ge -> fun rt -> Value.vbool (Value.compare_values (l rt) (r rt) >= 0)
  | Ast.Concat ->
      fun rt -> Value.Vstring (Value.as_string (l rt) ^ Value.as_string (r rt))
  | Ast.And | Ast.Or -> assert false (* short-circuit: handled in compile *)

let rec compile ctx (expr : Ast.expr) : compiled =
  match expr.Ast.desc with
  | Ast.Int n ->
      let v = Value.Vint n in
      fun _ -> v
  | Ast.Bool b ->
      let v = Value.vbool b in
      fun _ -> v
  | Ast.String s ->
      let v = Value.Vstring s in
      fun _ -> v
  | Ast.Char c ->
      let v = Value.Vchar c in
      fun _ -> v
  | Ast.Unit -> fun _ -> Value.Vunit
  | Ast.Host h ->
      let v = Value.Vhost h in
      fun _ -> v
  | Ast.Var name -> (
      match lookup ctx name with
      | Global value -> fun _ -> value
      | Slot slot -> fun rt -> rt.arena.data.(rt.base + slot))
  | Ast.Call (name, args) -> (
      let arg_codes = Array.of_list (List.map (compile ctx) args) in
      match Hashtbl.find_opt ctx.funs name with
      | Some { fc_body; fc_frame; fc_params } ->
          if fc_params <> Array.length arg_codes then
            raise (Value.Runtime_error ("specialize: bad arity for " ^ name));
          fun rt ->
            let arena = rt.arena in
            let base = arena.top in
            ensure arena (base + fc_frame);
            (* Bump before evaluating arguments: a call inside an argument
               expression then builds its own frame above this one. *)
            arena.top <- base + fc_frame;
            for i = 0 to Array.length arg_codes - 1 do
              let v = (Array.unsafe_get arg_codes i) rt in
              arena.data.(base + i) <- v
            done;
            let result = fc_body { world = rt.world; arena; base } in
            arena.top <- base;
            result
      | None ->
          let prim = Prim.find_exn name in
          let impl = prim.Prim.impl in
          (* Per-call-site scratch argument buffers: functions cannot
             recurse and packet executions never nest, so each site's
             buffer is dead again by the time the primitive returns (the
             Prim.impl contract forbids retaining it). *)
          (match arg_codes with
          | [||] -> fun rt -> impl rt.world [||]
          | [| a |] ->
              let scratch = [| Value.Vunit |] in
              fun rt ->
                scratch.(0) <- a rt;
                impl rt.world scratch
          | [| a; b |] ->
              let scratch = [| Value.Vunit; Value.Vunit |] in
              fun rt ->
                scratch.(0) <- a rt;
                scratch.(1) <- b rt;
                impl rt.world scratch
          | [| a; b; c |] ->
              let scratch = [| Value.Vunit; Value.Vunit; Value.Vunit |] in
              fun rt ->
                scratch.(0) <- a rt;
                scratch.(1) <- b rt;
                scratch.(2) <- c rt;
                impl rt.world scratch
          | codes ->
              let scratch = Array.make (Array.length codes) Value.Vunit in
              fun rt ->
                for i = 0 to Array.length codes - 1 do
                  scratch.(i) <- (Array.unsafe_get codes i) rt
                done;
                impl rt.world scratch))
  | Ast.Tuple components ->
      let codes = Array.of_list (List.map (compile ctx) components) in
      fun rt -> Value.Vtuple (Array.map (fun c -> c rt) codes)
  | Ast.Proj (index, operand) ->
      let code = compile ctx operand in
      let i = index - 1 in
      fun rt -> (
        match code rt with
        | Value.Vtuple components -> components.(i)
        | value -> Value.type_error ~expected:"tuple" value)
  | Ast.Let (bindings, body) ->
      (* Each binding compiles to a slot store; the body sees the slots. *)
      let rec chain ctx = function
        | [] -> compile ctx body
        | { Ast.bind_name; bind_expr; _ } :: rest ->
            let value_code = compile ctx bind_expr in
            let ctx', slot = bind ctx bind_name in
            let rest_code = chain ctx' rest in
            fun rt ->
              let v = value_code rt in
              rt.arena.data.(rt.base + slot) <- v;
              rest_code rt
      in
      chain ctx bindings
  | Ast.If (cond, then_branch, else_branch) ->
      let cond_code = compile ctx cond in
      let then_code = compile ctx then_branch in
      let else_code = compile ctx else_branch in
      fun rt -> if Value.as_bool (cond_code rt) then then_code rt else else_code rt
  | Ast.Binop (Ast.And, left, right) ->
      let l = compile ctx left and r = compile ctx right in
      fun rt -> if Value.as_bool (l rt) then r rt else Value.vfalse
  | Ast.Binop (Ast.Or, left, right) ->
      let l = compile ctx left and r = compile ctx right in
      fun rt -> if Value.as_bool (l rt) then Value.vtrue else r rt
  | Ast.Binop (op, left, right) ->
      compile_arith op (compile ctx left) (compile ctx right)
  | Ast.Unop (Ast.Not, operand) ->
      let code = compile ctx operand in
      fun rt -> Value.vbool (not (Value.as_bool (code rt)))
  | Ast.Unop (Ast.Neg, operand) ->
      let code = compile ctx operand in
      fun rt -> Value.Vint (-Value.as_int (code rt))
  | Ast.Seq (left, right) ->
      let l = compile ctx left and r = compile ctx right in
      fun rt ->
        let _unit = l rt in
        r rt
  | Ast.On_remote (chan, packet) ->
      let code = compile ctx packet in
      fun rt ->
        rt.world.World.emit World.Remote ~chan (code rt);
        Value.Vunit
  | Ast.On_neighbor (chan, packet) ->
      let code = compile ctx packet in
      fun rt ->
        rt.world.World.emit World.Neighbor ~chan (code rt);
        Value.Vunit
  | Ast.Raise exn_name ->
      let exn = Value.Planp_raise exn_name in
      fun _ -> raise exn
  | Ast.Try (body, handlers) ->
      let body_code = compile ctx body in
      let handler_codes =
        List.map (fun (exn_name, handler) -> (exn_name, compile ctx handler)) handlers
      in
      fun rt -> (
        try body_code rt
        with Value.Planp_raise exn_name as original -> (
          (* The frame region of any call the raise unwound stays bumped
             until the channel exec resets [top]; handlers just allocate
             above it. *)
          match List.assoc_opt exn_name handler_codes with
          | Some handler -> handler rt
          | None -> raise original))

(* Compile the shared declarations of a program: globals become embedded
   constants, functions become compiled bodies with their own frames. *)
let compile_unit (program : Ast.program) ~globals =
  let funs : (string, fun_code) Hashtbl.t = Hashtbl.create 16 in
  let global_bindings =
    List.map (fun (name, value) -> (name, Global value)) globals
  in
  List.iter
    (fun decl ->
      match decl with
      | Ast.Dfun f ->
          (* Functions only call previously declared functions (enforced by
             the type checker), so eager compilation in declaration order
             always finds callees already compiled. *)
          let ctx =
            { names = global_bindings; next_slot = 0; max_slot = ref 0; funs }
          in
          let ctx =
            List.fold_left
              (fun ctx (param, _ty) -> fst (bind ctx param))
              ctx f.Ast.params
          in
          let fc_body = compile ctx f.Ast.fun_body in
          Hashtbl.replace funs f.Ast.fun_name
            { fc_body; fc_frame = Int.max 1 !(ctx.max_slot);
              fc_params = List.length f.Ast.params }
      | Ast.Dval _ | Ast.Dexception _ | Ast.Dprotostate _ | Ast.Dchannel _ -> ())
    program;
  (global_bindings, funs)

let compile_channel ~global_bindings ~funs (chan : Ast.channel) =
  let ctx = { names = global_bindings; next_slot = 0; max_slot = ref 0; funs } in
  let ctx, ps_slot = bind ctx chan.Ast.ps_name in
  let ctx, ss_slot = bind ctx chan.Ast.ss_name in
  let ctx, pkt_slot = bind ctx chan.Ast.pkt_name in
  let body = compile ctx chan.Ast.body in
  let frame_size = !(ctx.max_slot) in
  let arena = make_arena frame_size in
  fun world ~ps ~ss ~pkt ->
    (* Resetting [top] here also heals any inflation a previous packet's
       escaped exception left behind. *)
    arena.top <- frame_size;
    let data = arena.data in
    data.(ps_slot) <- ps;
    data.(ss_slot) <- ss;
    data.(pkt_slot) <- pkt;
    match body { world; arena; base = 0 } with
    | Value.Vtuple [| ps'; ss' |] -> (ps', ss')
    | value -> Value.type_error ~expected:"(protocol, channel) state pair" value

let backend =
  {
    Backend.backend_name = "jit";
    (* No per-step accounting in specialized code, so there is nothing
       to snapshot or credit beyond the packet itself: the flow cache's
       hit path is exactly the paper's "cached entry stub" sitting ahead
       of the specialized closure. *)
    profile = (fun () -> (0, 0));
    replay_credit =
      (fun () ->
        let m_packets =
          Obs.Registry.counter
            ~labels:[ ("backend", "jit") ]
            ~help:"packets executed" "planp.exec.packets"
        in
        fun ~steps:_ ~prims:_ -> Obs.Registry.incr m_packets);
    compile =
      (fun checked ~globals ->
        let program = checked.Planp.Typecheck.program in
        let global_bindings, funs = compile_unit program ~globals in
        (* Only a per-packet counter here: specialized code must stay at
           native speed, so no per-step accounting (paper 2.4). *)
        let m_packets =
          Obs.Registry.counter
            ~labels:[ ("backend", "jit") ]
            ~help:"packets executed" "planp.exec.packets"
        in
        List.map
          (fun chan ->
            let exec = compile_channel ~global_bindings ~funs chan in
            let exec world ~ps ~ss ~pkt =
              Obs.Registry.incr m_packets;
              exec world ~ps ~ss ~pkt
            in
            (chan, exec))
          (Ast.channels program));
  }

let compile_expr ~globals ~params expr =
  let global_bindings =
    List.map (fun (name, value) -> (name, Global value)) globals
  in
  let ctx =
    {
      names = global_bindings;
      next_slot = 0;
      max_slot = ref 0;
      funs = Hashtbl.create 1;
    }
  in
  let ctx =
    List.fold_left (fun ctx param -> fst (bind ctx param)) ctx params
  in
  let entry = compile ctx expr in
  { entry; frame_size = !(ctx.max_slot); param_count = List.length params }

let run code world args =
  let size = Int.max code.frame_size code.param_count in
  let arena = make_arena size in
  arena.top <- size;
  List.iteri
    (fun i value -> if i < code.param_count then arena.data.(i) <- value)
    args;
  code.entry { world; arena; base = 0 }
