module Ast = Planp.Ast
module Value = Planp_runtime.Value
module Prim = Planp_runtime.Prim
module Backend = Planp_runtime.Backend
module World = Planp_runtime.World

type compiled_unit = {
  unit_ : Bytecode.unit_;
  channel_fns : (Ast.channel * int) list;
}

(* Growable instruction buffer with backpatchable jump targets. *)
module Emitter = struct
  type t = { mutable instrs : Bytecode.instr array; mutable len : int }

  let create () = { instrs = Array.make 64 Bytecode.Return; len = 0 }

  let emit t instr =
    if t.len = Array.length t.instrs then begin
      let grown = Array.make (2 * t.len) Bytecode.Return in
      Array.blit t.instrs 0 grown 0 t.len;
      t.instrs <- grown
    end;
    t.instrs.(t.len) <- instr;
    t.len <- t.len + 1

  let here t = t.len

  (* Emit a jump with a dummy target; patch it later. *)
  let emit_jump t =
    let at = t.len in
    emit t (Bytecode.Jump (-1));
    at

  let emit_jump_if_false t =
    let at = t.len in
    emit t (Bytecode.Jump_if_false (-1));
    at

  let patch t at target =
    match t.instrs.(at) with
    | Bytecode.Jump _ -> t.instrs.(at) <- Bytecode.Jump target
    | Bytecode.Jump_if_false _ -> t.instrs.(at) <- Bytecode.Jump_if_false target
    | _ -> invalid_arg "Emitter.patch: not a jump"

  let finish t = Array.sub t.instrs 0 t.len
end

(* Primitive constant pool, interned by name. *)
module Pool = struct
  type t = {
    mutable prims : Prim.prim list;  (* reversed *)
    mutable count : int;
    index : (string, int) Hashtbl.t;
  }

  let create () = { prims = []; count = 0; index = Hashtbl.create 16 }

  let intern t name =
    match Hashtbl.find_opt t.index name with
    | Some i -> i
    | None ->
        let prim = Prim.find_exn name in
        let i = t.count in
        t.prims <- prim :: t.prims;
        t.count <- t.count + 1;
        Hashtbl.add t.index name i;
        i

  let finish t = Array.of_list (List.rev t.prims)
end

type env = {
  globals : (string * Value.t) list;
  locals : (string * int) list;  (* innermost first *)
  next_local : int;
  max_local : int ref;  (* high-water mark, shared across scope extensions *)
  fun_index : (string, int * int) Hashtbl.t;  (* name -> (index, arity) *)
  pool : Pool.t;
}

let alloc_local env name =
  let slot = env.next_local in
  if slot + 1 > !(env.max_local) then env.max_local := slot + 1;
  ({ env with locals = (name, slot) :: env.locals; next_local = slot + 1 }, slot)

(* Peephole pass: fuse adjacent instruction pairs into the superinstructions
   of {!Bytecode} ([Load/Const + Bin] and [compare + Jump_if_false]),
   halving dispatch on the hottest arithmetic/branch sequences.  A pair is
   only fused when no jump lands on its second instruction; all jump
   targets (including try-handler tables) are remapped to the compacted
   indices. *)
module Peephole = struct
  let fusible_bin = function Ast.And | Ast.Or -> false | _ -> true

  let comparison = function
    | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Gt | Ast.Le | Ast.Ge -> true
    | _ -> false

  let run code =
    let n = Array.length code in
    let is_target = Array.make (n + 1) false in
    Array.iter
      (fun instr ->
        match instr with
        | Bytecode.Jump target | Bytecode.Jump_if_false target ->
            is_target.(target) <- true
        | Bytecode.Push_try handlers ->
            List.iter (fun (_, target) -> is_target.(target) <- true) handlers
        | _ -> ())
      code;
    (* Decide fusions: [fused.(i)] replaces the pair (i, i+1); the dropped
       second instruction gets [keep.(i+1) = false]. *)
    let keep = Array.make n true in
    let fused = Array.make n None in
    let i = ref 0 in
    while !i < n - 1 do
      let pair =
        if is_target.(!i + 1) then None
        else
          match (code.(!i), code.(!i + 1)) with
          | Bytecode.Load slot, Bytecode.Bin op when fusible_bin op ->
              Some (Bytecode.Load_bin (slot, op))
          | Bytecode.Const value, Bytecode.Bin op when fusible_bin op ->
              Some (Bytecode.Const_bin (value, op))
          | Bytecode.Bin op, Bytecode.Jump_if_false target when comparison op
            ->
              Some (Bytecode.Cmp_jump (op, target))
          | _ -> None
      in
      match pair with
      | Some instr ->
          fused.(!i) <- Some instr;
          keep.(!i + 1) <- false;
          i := !i + 2
      | None -> incr i
    done;
    let new_index = Array.make (n + 1) 0 in
    let count = ref 0 in
    for j = 0 to n - 1 do
      new_index.(j) <- !count;
      if keep.(j) then incr count
    done;
    new_index.(n) <- !count;
    let remap target = new_index.(target) in
    let out = Array.make !count Bytecode.Return in
    let k = ref 0 in
    for j = 0 to n - 1 do
      if keep.(j) then begin
        let instr = match fused.(j) with Some f -> f | None -> code.(j) in
        out.(!k) <-
          (match instr with
          | Bytecode.Jump target -> Bytecode.Jump (remap target)
          | Bytecode.Jump_if_false target ->
              Bytecode.Jump_if_false (remap target)
          | Bytecode.Cmp_jump (op, target) ->
              Bytecode.Cmp_jump (op, remap target)
          | Bytecode.Push_try handlers ->
              Bytecode.Push_try
                (List.map
                   (fun (exn_name, target) -> (exn_name, remap target))
                   handlers)
          | other -> other);
        incr k
      end
    done;
    out
end

let rec compile env emitter (expr : Ast.expr) =
  let emit = Emitter.emit emitter in
  match expr.Ast.desc with
  | Ast.Int n -> emit (Bytecode.Const (Value.Vint n))
  | Ast.Bool b -> emit (Bytecode.Const (Value.Vbool b))
  | Ast.String s -> emit (Bytecode.Const (Value.Vstring s))
  | Ast.Char c -> emit (Bytecode.Const (Value.Vchar c))
  | Ast.Unit -> emit (Bytecode.Const Value.Vunit)
  | Ast.Host h -> emit (Bytecode.Const (Value.Vhost h))
  | Ast.Var name -> (
      match List.assoc_opt name env.locals with
      | Some slot -> emit (Bytecode.Load slot)
      | None -> (
          match List.assoc_opt name env.globals with
          | Some value -> emit (Bytecode.Const value)
          | None ->
              raise
                (Value.Runtime_error
                   (Printf.sprintf "bytecomp: unbound variable %s" name))))
  | Ast.Call (name, args) -> (
      List.iter (compile env emitter) args;
      match Hashtbl.find_opt env.fun_index name with
      | Some (index, arity) ->
          if arity <> List.length args then
            raise (Value.Runtime_error ("bytecomp: bad arity for " ^ name));
          emit (Bytecode.Call_fun (index, arity))
      | None ->
          let pool_index = Pool.intern env.pool name in
          emit (Bytecode.Call_prim (pool_index, List.length args)))
  | Ast.Tuple components ->
      List.iter (compile env emitter) components;
      emit (Bytecode.Make_tuple (List.length components))
  | Ast.Proj (index, operand) ->
      compile env emitter operand;
      emit (Bytecode.Get_field (index - 1))
  | Ast.Let (bindings, body) ->
      let env =
        List.fold_left
          (fun env { Ast.bind_name; bind_expr; _ } ->
            compile env emitter bind_expr;
            let env, slot = alloc_local env bind_name in
            Emitter.emit emitter (Bytecode.Store slot);
            env)
          env bindings
      in
      compile env emitter body
  | Ast.If (cond, then_branch, else_branch) ->
      compile env emitter cond;
      let to_else = Emitter.emit_jump_if_false emitter in
      compile env emitter then_branch;
      let to_end = Emitter.emit_jump emitter in
      Emitter.patch emitter to_else (Emitter.here emitter);
      compile env emitter else_branch;
      Emitter.patch emitter to_end (Emitter.here emitter)
  | Ast.Binop (Ast.And, left, right) ->
      compile env emitter left;
      let to_false = Emitter.emit_jump_if_false emitter in
      compile env emitter right;
      let to_end = Emitter.emit_jump emitter in
      Emitter.patch emitter to_false (Emitter.here emitter);
      emit (Bytecode.Const (Value.Vbool false));
      Emitter.patch emitter to_end (Emitter.here emitter)
  | Ast.Binop (Ast.Or, left, right) ->
      compile env emitter left;
      let to_right = Emitter.emit_jump_if_false emitter in
      emit (Bytecode.Const (Value.Vbool true));
      let to_end = Emitter.emit_jump emitter in
      Emitter.patch emitter to_right (Emitter.here emitter);
      compile env emitter right;
      Emitter.patch emitter to_end (Emitter.here emitter)
  | Ast.Binop (op, left, right) ->
      compile env emitter left;
      compile env emitter right;
      emit (Bytecode.Bin op)
  | Ast.Unop (Ast.Not, operand) ->
      compile env emitter operand;
      emit Bytecode.Not_op
  | Ast.Unop (Ast.Neg, operand) ->
      compile env emitter operand;
      emit Bytecode.Neg_op
  | Ast.Seq (left, right) ->
      compile env emitter left;
      emit Bytecode.Pop;
      compile env emitter right
  | Ast.On_remote (chan, packet) ->
      compile env emitter packet;
      emit (Bytecode.Emit (World.Remote, chan))
  | Ast.On_neighbor (chan, packet) ->
      compile env emitter packet;
      emit (Bytecode.Emit (World.Neighbor, chan))
  | Ast.Raise exn_name -> emit (Bytecode.Raise_exn exn_name)
  | Ast.Try (body, handlers) ->
      (* push_try [h...]; body; pop_try; jump end; h1: ...; jump end; ... *)
      let push_at = Emitter.here emitter in
      emit (Bytecode.Push_try []);
      compile env emitter body;
      emit Bytecode.Pop_try;
      let body_to_end = Emitter.emit_jump emitter in
      let ends = ref [ body_to_end ] in
      let handler_table =
        List.map
          (fun (exn_name, handler) ->
            let target = Emitter.here emitter in
            compile env emitter handler;
            ends := Emitter.emit_jump emitter :: !ends;
            (exn_name, target))
          handlers
      in
      emitter.Emitter.instrs.(push_at) <- Bytecode.Push_try handler_table;
      let the_end = Emitter.here emitter in
      List.iter (fun at -> Emitter.patch emitter at the_end) !ends

let compile_function ~globals ~fun_index ~pool ~params body ~name =
  let env =
    {
      globals;
      locals = [];
      next_local = 0;
      max_local = ref 0;
      fun_index;
      pool;
    }
  in
  let env =
    List.fold_left (fun env param -> fst (alloc_local env param)) env params
  in
  let emitter = Emitter.create () in
  compile env emitter body;
  Emitter.emit emitter Bytecode.Return;
  {
    Bytecode.fn_name = name;
    code = Peephole.run (Emitter.finish emitter);
    n_locals = !(env.max_local);
    n_params = List.length params;
  }

let compile_program checked ~globals =
  let program = checked.Planp.Typecheck.program in
  let pool = Pool.create () in
  let fun_index = Hashtbl.create 16 in
  let funcs = ref [] in
  let add_func func =
    let index = List.length !funcs in
    funcs := !funcs @ [ func ];
    index
  in
  List.iter
    (fun decl ->
      match decl with
      | Ast.Dfun f ->
          let func =
            compile_function ~globals ~fun_index ~pool
              ~params:(List.map fst f.Ast.params)
              f.Ast.fun_body ~name:f.Ast.fun_name
          in
          let index = add_func func in
          Hashtbl.replace fun_index f.Ast.fun_name
            (index, List.length f.Ast.params)
      | Ast.Dval _ | Ast.Dexception _ | Ast.Dprotostate _ | Ast.Dchannel _ -> ())
    program;
  let channel_fns =
    List.map
      (fun chan ->
        let func =
          compile_function ~globals ~fun_index ~pool
            ~params:[ chan.Ast.ps_name; chan.Ast.ss_name; chan.Ast.pkt_name ]
            chan.Ast.body
            ~name:("channel:" ^ chan.Ast.chan_name)
        in
        (chan, add_func func))
      (Ast.channels program)
  in
  {
    unit_ = { Bytecode.funcs = Array.of_list !funcs; pool = Pool.finish pool };
    channel_fns;
  }

let bytecode_labels = [ ("backend", "bytecode") ]

let bytecode_counters () =
  ( Obs.Registry.counter ~labels:bytecode_labels ~help:"packets executed"
      "planp.exec.packets",
    Obs.Registry.counter ~labels:bytecode_labels
      ~help:"VM instructions dispatched" "planp.vm.instrs",
    Obs.Registry.counter ~labels:bytecode_labels ~help:"primitive invocations"
      "planp.vm.prim_calls" )

let replay_credit () =
  let m_packets, m_instrs, m_prims = bytecode_counters () in
  fun ~steps ~prims ->
    Obs.Registry.incr m_packets;
    Obs.Registry.add m_instrs steps;
    Obs.Registry.add m_prims prims

let backend =
  {
    Backend.backend_name = "bytecode";
    profile = Vm.profile;
    replay_credit;
    compile =
      (fun checked ~globals ->
        let { unit_; channel_fns } = compile_program checked ~globals in
        let m_packets, m_instrs, m_prims = bytecode_counters () in
        List.map
          (fun (chan, fn) ->
            let exec world ~ps ~ss ~pkt =
              let instrs0, prims0 = Vm.profile () in
              Fun.protect
                ~finally:(fun () ->
                  let instrs1, prims1 = Vm.profile () in
                  Obs.Registry.incr m_packets;
                  Obs.Registry.add m_instrs (instrs1 - instrs0);
                  Obs.Registry.add m_prims (prims1 - prims0))
                (fun () ->
                  match Vm.call unit_ ~fn world [| ps; ss; pkt |] with
                  | Value.Vtuple [| ps'; ss' |] -> (ps', ss')
                  | value ->
                      Value.type_error
                        ~expected:"(protocol, channel) state pair" value)
            in
            (chan, exec))
          channel_fns);
  }

let compile_expr ~globals ~params expr =
  let pool = Pool.create () in
  let fun_index = Hashtbl.create 1 in
  let func =
    compile_function ~globals ~fun_index ~pool ~params expr ~name:"expr"
  in
  { Bytecode.funcs = [| func |]; pool = Pool.finish pool }
