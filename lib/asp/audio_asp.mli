(** The audio-adaptation PLAN-P programs (paper §3.1).

    Two programs, as in the paper: one for routers (monitor the outgoing
    segment, degrade quality when it saturates), one for clients (restore
    degraded frames to the player's native format). The router program is
    generated with its thresholds and monitored interface baked in — the
    paper's point that "ASPs can be easily modified to match a new network
    topology" or to try another adaptation policy. *)

(** An adaptation policy: the thresholds (in kB/s of observed segment load)
    above which quality drops to 16-bit mono and to 8-bit mono. *)
type policy = {
  mono16_above : int;
  mono8_above : int;
}

(** The default policy for a 10 Mb/s (1250 kB/s) segment. *)
val default_policy : policy

(** Aggressive thresholds that settle at 16-bit mono whenever the audio
    stream dominates the segment — the variant the adaptation plane
    hot-swaps in when a congestion fault shrinks the segment's capacity,
    which the static [default_policy] cannot observe (it reads offered
    load, not capacity). *)
val conservative_policy : policy

(** [router_program ~iface ()] is the PLAN-P source for a router whose
    congested interface has index [iface]. *)
val router_program : ?policy:policy -> ?port:int -> iface:int -> unit -> string

(** [client_program ()] restores degraded audio and delivers everything. *)
val client_program : ?port:int -> unit -> string
