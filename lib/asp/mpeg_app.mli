(** The distributed MPEG player of §3.3: a point-to-point video server and
    its client.

    Control runs over TCP port 554: a PLAY request (['P'], file id, video
    port) answered by a SETUP reply (['S'], file id, setup blob describing
    the GOP pattern, rate and length). Video frames then stream over UDP to
    the client's chosen port: an MPEG-1-like IBBPBBPBB pattern at 24
    frames/s (I = 12000, P = 4000, B = 1500 bytes).

    The client is "extended" as in the paper: before connecting it asks the
    monitor ASP whether an existing connection already carries the file
    (see {!Mpeg_asp}); if so it captures that stream instead of opening a
    new one. The server is entirely unmodified. *)

val control_port : int
val query_port : int  (** the monitor ASP's query channel *)

(** Frame kinds of the GOP pattern. *)
type frame_kind = I_frame | P_frame | B_frame

val frame_size : frame_kind -> int

(** The IBBPBBPBB group-of-pictures pattern. *)
val gop_pattern : frame_kind array

val frames_per_second : float

(** Setup information as carried in the SETUP reply. *)
type setup = { file_id : int; total_frames : int }

val encode_setup : setup -> Netsim.Payload.t
val decode_setup : Netsim.Payload.t -> setup option

module Server : sig
  type t

  (** [start node ~movie_frames ()] serves PLAY requests; each opens a
      unicast stream of [movie_frames] frames. *)
  val start : ?port:int -> Netsim.Node.t -> movie_frames:int -> unit -> t

  (** [streams_opened t] — how many point-to-point connections the server
      had to serve (the §3.3 claim: stays at 1 with the ASPs). *)
  val streams_opened : t -> int

  val frames_sent : t -> int
end

module Client : sig
  type t

  (** [start node ~server ~monitor ~file ~at ()] begins the §3.3 client
      logic at time [at]: query the monitor; on "existing connection"
      configure the local capture ASP (which must already be installed on
      the node, see {!Mpeg_asp.capture_program}); otherwise PLAY directly.

      @param video_port where this client wants its video (default 7000) *)
  val start :
    ?video_port:int ->
    Netsim.Node.t ->
    server:Netsim.Addr.t ->
    monitor:Netsim.Addr.t ->
    file:int ->
    at:float ->
    unit ->
    t

  val frames_received : t -> int

  (** [frames_by_kind t] — received (I, P, B) frame counts; the
      adaptation plane's guard watches I+P delivery while the frame-class
      filter sheds B-frames. *)
  val frames_by_kind : t -> int * int * int

  (** [used_existing t] — [Some true] once the client decided to share an
      existing stream, [Some false] for a direct connection, [None] before
      the monitor answered. *)
  val used_existing : t -> bool option

  val setup_received : t -> setup option
end
