module Topology = Netsim.Topology
module Node = Netsim.Node
module Engine = Netsim.Engine
module Packet = Netsim.Packet
module Payload = Netsim.Payload
module Routing = Netsim.Routing
module Runtime = Planp_runtime.Runtime

module Monitor = struct
  type server_state = {
    addr : Netsim.Addr.t;
    index : int;
    mutable pending : int;  (* consecutive unanswered probes *)
    mutable believed_up : bool;
  }

  type t = {
    node : Node.t;
    servers : server_state array;
    period : float;
    misses : int;
    probe_port : int;
    until : float;
    mutable next_probe_port : int;
    mutable flips : int;
    outstanding : (int, server_state) Hashtbl.t;  (* probe port -> server *)
  }

  let signal t server up =
    t.flips <- t.flips + 1;
    server.believed_up <- up;
    (* The health packet is consumed by this node's own gateway ASP. *)
    Node.receive t.node ~ifindex:0 ~l2_dst:None
      (Http_asp.health_packet ~gateway:(Node.addr t.node)
         ~server_index:server.index ~up)

  (* A probe is one tiny direct request; the response (any packet back on
     the probe's port) clears the pending count. *)
  let send_probe t server =
    let port = t.next_probe_port in
    t.next_probe_port <- t.next_probe_port + 1;
    Hashtbl.replace t.outstanding port server;
    server.pending <- server.pending + 1;
    if server.pending >= t.misses && server.believed_up then
      signal t server false;
    let writer = Payload.Writer.create () in
    Payload.Writer.u32 writer 1;
    Node.send_tcp t.node ~dst:server.addr ~src_port:port ~dst_port:t.probe_port
      (Payload.Writer.finish writer)

  let on_probe_reply t _node (packet : Packet.t) =
    match packet.Packet.l4 with
    | Packet.Tcp { Packet.tcp_dst; _ } -> (
        match Hashtbl.find_opt t.outstanding tcp_dst with
        | Some server ->
            Hashtbl.remove t.outstanding tcp_dst;
            server.pending <- 0;
            if not server.believed_up then signal t server true
        | None -> ())
    | Packet.Udp _ | Packet.Raw -> ()

  let rec tick t () =
    let now = Engine.now (Node.engine t.node) in
    if now < t.until then begin
      Array.iter (send_probe t) t.servers;
      Engine.schedule_after (Node.engine t.node) ~delay:t.period (tick t)
    end

  let start ?(period = 0.5) ?(misses = 2) ?(probe_port = 80) node
      ~servers:(server0, server1) ~until () =
    let t =
      {
        node;
        servers =
          [| { addr = server0; index = 0; pending = 0; believed_up = true };
             { addr = server1; index = 1; pending = 0; believed_up = true } |];
        period;
        misses;
        probe_port;
        until;
        next_probe_port = 40000;
        flips = 0;
        outstanding = Hashtbl.create 16;
      }
    in
    (* Probe replies come back to ports 40000+; catch them before any other
       default handler claims them. *)
    Node.on_tcp_default node (on_probe_reply t);
    Engine.schedule_after (Node.engine node) ~delay:period (tick t);
    t

  let state t = (t.servers.(0).believed_up, t.servers.(1).believed_up)
  let transitions t = t.flips
end

type config = {
  failover : bool;
  duration : float;
  kill_at : float;
  recover_at : float option;
  workers : int;
  backend : Planp_runtime.Backend.t;
}

let default_config ?(failover = true) () =
  {
    failover;
    duration = 30.0;
    kill_at = 10.0;
    recover_at = None;
    workers = 24;
    backend = Planp_jit.Backends.jit;
  }

type result = {
  before_kill_rate : float;
  after_kill_rate : float;
  monitor_transitions : int;
  server_loads : int * int;
  stalled_retries : int;
}

let vip_string = "10.3.0.100"
let server0_string = "10.3.0.1"
let server1_string = "10.3.0.2"

let run config =
  let topo = Topology.create () in
  let gateway = Topology.add_host topo "gateway" "10.3.0.254" in
  let server0_node = Topology.add_host topo "server0" server0_string in
  let server1_node = Topology.add_host topo "server1" server1_string in
  let cluster =
    Topology.segment topo ~name:"cluster" ~bandwidth_bps:100e6 ~latency:0.0002 ()
  in
  ignore (Topology.attach topo cluster gateway);
  ignore (Topology.attach topo cluster server0_node);
  ignore (Topology.attach topo cluster server1_node);
  let client_count = 8 in
  let clients =
    List.init client_count (fun i ->
        let client =
          Topology.add_host topo
            (Printf.sprintf "client%d" i)
            (Printf.sprintf "10.4.%d.1" i)
        in
        ignore
          (Topology.connect topo
             ~name:(Printf.sprintf "access%d" i)
             ~bandwidth_bps:10e6 ~latency:0.001 gateway client);
        client)
  in
  Topology.compute_routes topo;
  let vip = Netsim.Addr.of_string vip_string in
  List.iter
    (fun client ->
      Routing.set_default (Node.routing client)
        (Some { Routing.ifindex = 0; next_hop = Some (Node.addr gateway) }))
    clients;
  let server0 = Http_app.Server.start server0_node () in
  let server1 = Http_app.Server.start server1_node () in
  Node.set_processing_cost gateway Http_asp.gateway_cost_compiled;
  let rt = Runtime.attach gateway in
  let source =
    if config.failover then
      Http_asp.failover_gateway_program ~vip:vip_string
        ~servers:(server0_string, server1_string) ()
    else
      Http_asp.gateway_program ~vip:vip_string
        ~servers:(server0_string, server1_string) ()
  in
  ignore (Runtime.install_exn rt ~backend:config.backend ~name:"gateway" ~source ());
  let monitor =
    if config.failover then
      Some
        (Monitor.start gateway
           ~servers:(Node.addr server0_node, Node.addr server1_node)
           ~until:config.duration ())
    else None
  in
  (* Fault injection. *)
  let engine = Topology.engine topo in
  Engine.schedule engine ~at:config.kill_at (fun () ->
      Http_app.Server.set_down server0 true);
  (match config.recover_at with
  | Some at ->
      Engine.schedule engine ~at (fun () -> Http_app.Server.set_down server0 false)
  | None -> ());
  (* Clients: measure the healthy phase and the degraded phase separately
     by reading the completion counter at the kill time. *)
  let trace =
    Http_app.Trace.generate ~requests:80_000 ~files:2_000 ~seed:7 ()
  in
  let per_client = config.workers / client_count in
  let apps =
    List.map
      (fun client ->
        Http_app.Client.start ~warmup:2.0 ~retry_timeout:2.0 client ~server:vip
          ~workers:(Int.max 1 per_client) ~trace ())
      clients
  in
  let completed () =
    List.fold_left (fun acc app -> acc + Http_app.Client.completed app) 0 apps
  in
  let at_kill = ref 0 in
  Engine.schedule engine ~at:config.kill_at (fun () -> at_kill := completed ());
  Topology.run_until topo ~stop:config.duration;
  let total = completed () in
  let healthy_window = config.kill_at -. 2.0 in
  let degraded_window = config.duration -. config.kill_at in
  let labels = [ ("experiment", "http_ft") ] in
  List.iter
    (fun (name, value) -> Obs.Registry.set (Obs.Registry.gauge ~labels name) value)
    [
      ("asp.summary.before_kill_rate", float_of_int !at_kill /. healthy_window);
      ("asp.summary.after_kill_rate",
       float_of_int (total - !at_kill) /. degraded_window);
      ("asp.summary.stalled_retries",
       float_of_int
         (List.fold_left (fun acc app -> acc + Http_app.Client.retries app) 0 apps));
    ];
  {
    before_kill_rate = float_of_int !at_kill /. healthy_window;
    after_kill_rate = float_of_int (total - !at_kill) /. degraded_window;
    monitor_transitions =
      (match monitor with Some m -> Monitor.transitions m | None -> 0);
    server_loads =
      ( Http_app.Server.requests_served server0,
        Http_app.Server.requests_served server1 );
    stalled_retries =
      List.fold_left (fun acc app -> acc + Http_app.Client.retries app) 0 apps;
  }
