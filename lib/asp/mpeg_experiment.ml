module Topology = Netsim.Topology
module Node = Netsim.Node
module Runtime = Planp_runtime.Runtime

type config = {
  with_asps : bool;
  backend : Planp_runtime.Backend.t;
  movie_frames : int;
  client_starts : float list;
  duration : float;
  deploy : Deploy_mode.t;
  faults : Netsim.Faults.scenario option;
}

let default_config ?(with_asps = true) ?(backend = Planp_jit.Backends.jit)
    ?(deploy = Deploy_mode.Preinstalled) ?faults () =
  {
    with_asps;
    backend;
    movie_frames = 240;
    client_starts = [ 0.5; 3.0; 6.0 ];
    duration = 20.0;
    deploy;
    faults;
  }

type result = {
  server_streams : int;
  server_frames_sent : int;
  client_frames : int list;
  clients_shared : bool option list;
  segment_video_bytes : int;
}

let server_addr_string = "10.6.0.1"
let movie_file = 7

let run config =
  let topo = Topology.create () in
  let server_node = Topology.add_host topo "video-server" server_addr_string in
  let router = Topology.add_host topo "router" "10.6.0.254" in
  let monitor_node = Topology.add_host topo "monitor" "10.7.0.50" in
  ignore
    (Topology.connect topo ~name:"backbone" ~bandwidth_bps:100e6
       ~latency:0.0005 server_node router);
  let segment =
    Topology.segment topo ~name:"client-segment" ~bandwidth_bps:10e6
      ~latency:0.0005 ()
  in
  ignore (Topology.attach topo segment router);
  ignore (Topology.attach topo segment monitor_node);
  let client_nodes =
    List.mapi
      (fun i _ ->
        let node =
          Topology.add_host topo
            (Printf.sprintf "client%d" (i + 1))
            (Printf.sprintf "10.7.0.%d" (10 + i))
        in
        ignore (Topology.attach topo segment node);
        node)
      config.client_starts
  in
  Topology.compute_routes topo;
  (* Names resolvable by fault scenarios: "backbone", "client-segment",
     and every node name above. *)
  Option.iter
    (fun scenario -> ignore (Netsim.Faults.arm topo scenario))
    config.faults;
  (* Count video payload bytes the shared segment carries. *)
  let video_bytes = ref 0 in
  Netsim.Segment.set_tap segment (fun ~at:_ ~l2_dst:_ packet ->
      match packet.Netsim.Packet.l4 with
      | Netsim.Packet.Udp _
        when Netsim.Payload.length packet.Netsim.Packet.body >= 9
             && Netsim.Payload.get_u32 packet.Netsim.Packet.body 0 = movie_file
        ->
          video_bytes := !video_bytes + Netsim.Payload.length packet.Netsim.Packet.body
      | Netsim.Packet.Udp _ | Netsim.Packet.Tcp _ | Netsim.Packet.Raw -> ());
  let server = Mpeg_app.Server.start server_node ~movie_frames:config.movie_frames () in
  if config.with_asps then begin
    Node.set_promiscuous monitor_node true;
    List.iter (fun node -> Node.set_promiscuous node true) client_nodes;
    (* In_band ships the monitor ASP point-to-point and the identical
       capture ASPs to the three clients as one staged rollout, all from
       the video server; the transfers finish milliseconds into the run,
       before the first client asks for the movie at 0.5 s. *)
    ignore
      (Deploy_mode.install config.deploy ~backend:config.backend
         ~controller:server_node
         ~programs:
           ((monitor_node, "mpeg-monitor",
             Mpeg_asp.monitor_program ~server:server_addr_string ())
           :: List.map
                (fun node -> (node, "mpeg-capture", Mpeg_asp.capture_program ()))
                client_nodes)
         ())
  end;
  let clients =
    List.map2
      (fun node at ->
        Mpeg_app.Client.start node
          ~server:(Node.addr server_node)
          ~monitor:(Node.addr monitor_node)
          ~file:movie_file ~at ())
      client_nodes config.client_starts
  in
  Topology.run_until topo ~stop:config.duration;
  let labels = [ ("experiment", "mpeg") ] in
  List.iter
    (fun (name, value) ->
      Obs.Registry.set (Obs.Registry.gauge ~labels name) (float_of_int value))
    [
      ("asp.summary.server_streams", Mpeg_app.Server.streams_opened server);
      ("asp.summary.server_frames_sent", Mpeg_app.Server.frames_sent server);
      ("asp.summary.segment_video_bytes", !video_bytes);
    ];
  {
    server_streams = Mpeg_app.Server.streams_opened server;
    server_frames_sent = Mpeg_app.Server.frames_sent server;
    client_frames = List.map Mpeg_app.Client.frames_received clients;
    clients_shared = List.map Mpeg_app.Client.used_existing clients;
    segment_video_bytes = !video_bytes;
  }
