module Topology = Netsim.Topology
module Node = Netsim.Node
module Runtime = Planp_runtime.Runtime

type config = {
  with_asps : bool;
  backend : Planp_runtime.Backend.t;
  movie_frames : int;
  client_starts : float list;
  duration : float;
  deploy : Deploy_mode.t;
  faults : Netsim.Faults.scenario option;
  adaptation : Adapt.Policy.t option;
  filters : int;
}

let default_config ?(with_asps = true) ?(backend = Planp_jit.Backends.jit)
    ?(deploy = Deploy_mode.Preinstalled) ?faults ?adaptation ?(filters = 1) () =
  {
    with_asps;
    backend;
    movie_frames = 240;
    client_starts = [ 0.5; 3.0; 6.0 ];
    duration = 20.0;
    deploy;
    faults;
    adaptation;
    filters;
  }

(* The canned closed-loop policy: when the client segment starts dropping
   frames, swap the router filter to the B-frame-shedding variant so the
   I- and P-frames survive (every B-frame shed frees segment capacity);
   probe back to pass-through once drops stay quiet. The guard watches
   I+P delivery, which degrading must not regress. *)
let adaptive_policy () =
  match
    Adapt.Policy.parse
      {|period 0.5
alpha 0.4
rule degrade: when loss_rate > 5 for 0.5 cooldown 6 do swap mpeg-filter degrade
rule recover: when loss_rate < 0.5 for 8 cooldown 12 do swap mpeg-filter pass
guard ip_goodput window 4 min-ratio 0.5
|}
  with
  | Ok policy -> policy
  | Error msg -> failwith ("Mpeg_experiment.adaptive_policy: " ^ msg)

type result = {
  server_streams : int;
  server_frames_sent : int;
  client_frames : int list;
  client_frame_kinds : (int * int * int) list;
  clients_shared : bool option list;
  segment_video_bytes : int;
  adaptation : Adapt.Plane.stats option;
}

let server_addr_string = "10.6.0.1"
let movie_file = 7

let run config =
  if config.filters < 1 then invalid_arg "Mpeg_experiment: filters must be >= 1";
  let topo = Topology.create () in
  let server_node = Topology.add_host topo "video-server" server_addr_string in
  (* One filter router keeps the classic names and addresses (byte
     identical to the pre-fleet experiment); [filters >= 2] chains relay
     routers all running the frame filter, so a degrade/recover swap must
     reach every hop through one staged rollout. *)
  let routers =
    if config.filters = 1 then [ Topology.add_host topo "router" "10.6.0.254" ]
    else
      List.init config.filters (fun i ->
          Topology.add_host topo
            (Printf.sprintf "router%d" i)
            (Printf.sprintf "10.6.%d.254" i))
  in
  let monitor_node = Topology.add_host topo "monitor" "10.7.0.50" in
  ignore
    (Topology.connect topo ~name:"backbone" ~bandwidth_bps:100e6
       ~latency:0.0005 server_node (List.hd routers));
  (* Relay hops run at backbone speed so the shared client segment stays
     the only congestion point. *)
  List.iteri
    (fun i r ->
      if i > 0 then
        ignore
          (Topology.connect topo
             ~name:(Printf.sprintf "relay%d" (i - 1))
             ~bandwidth_bps:100e6 ~latency:0.0005
             (List.nth routers (i - 1))
             r))
    routers;
  let segment =
    Topology.segment topo ~name:"client-segment" ~bandwidth_bps:10e6
      ~latency:0.0005 ()
  in
  ignore (Topology.attach topo segment (List.nth routers (config.filters - 1)));
  ignore (Topology.attach topo segment monitor_node);
  let client_nodes =
    List.mapi
      (fun i _ ->
        let node =
          Topology.add_host topo
            (Printf.sprintf "client%d" (i + 1))
            (Printf.sprintf "10.7.0.%d" (10 + i))
        in
        ignore (Topology.attach topo segment node);
        node)
      config.client_starts
  in
  Topology.compute_routes topo;
  (* Names resolvable by fault scenarios: "backbone", "client-segment",
     and every node name above. *)
  Option.iter
    (fun scenario -> ignore (Netsim.Faults.arm topo scenario))
    config.faults;
  (* Count video payload bytes the shared segment carries. *)
  let video_bytes = ref 0 in
  Netsim.Segment.set_tap segment (fun ~at:_ ~l2_dst:_ packet ->
      match packet.Netsim.Packet.l4 with
      | Netsim.Packet.Udp _
        when Netsim.Payload.length packet.Netsim.Packet.body >= 9
             && Netsim.Payload.get_u32 packet.Netsim.Packet.body 0 = movie_file
        ->
          video_bytes := !video_bytes + Netsim.Payload.length packet.Netsim.Packet.body
      | Netsim.Packet.Udp _ | Netsim.Packet.Tcp _ | Netsim.Packet.Raw -> ());
  let server = Mpeg_app.Server.start server_node ~movie_frames:config.movie_frames () in
  let adaptive =
    match config.adaptation with
    | Some policy -> not (Adapt.Policy.is_empty policy)
    | None -> false
  in
  let plane = ref None in
  if config.with_asps then begin
    Node.set_promiscuous monitor_node true;
    List.iter (fun node -> Node.set_promiscuous node true) client_nodes;
    (* In_band ships the monitor ASP point-to-point and the identical
       capture ASPs to the three clients as one staged rollout, all from
       the video server; the transfers finish milliseconds into the run,
       before the first client asks for the movie at 0.5 s. When a
       non-empty adaptation policy is armed, the router also gets the
       pass-through frame filter (and so a daemon for later swaps). *)
    let programs =
      (monitor_node, "mpeg-monitor",
       Mpeg_asp.monitor_program ~server:server_addr_string ())
      :: List.map
           (fun node -> (node, "mpeg-capture", Mpeg_asp.capture_program ()))
           client_nodes
    in
    let programs =
      if adaptive then
        List.map
          (fun r -> (r, "mpeg-filter", Mpeg_asp.filter_program ~drop_b:false ()))
          routers
        @ programs
      else programs
    in
    plane :=
      Some
        (Deploy_mode.install config.deploy ~backend:config.backend
           ~controller:server_node ~programs ())
  end;
  let clients =
    List.map2
      (fun node at ->
        Mpeg_app.Client.start node
          ~server:(Node.addr server_node)
          ~monitor:(Node.addr monitor_node)
          ~file:movie_file ~at ())
      client_nodes config.client_starts
  in
  let ip_frames () =
    List.fold_left
      (fun acc client ->
        let i, p, _ = Mpeg_app.Client.frames_by_kind client in
        acc + i + p)
      0 clients
  in
  let adaptation =
    match config.adaptation with
    | None -> None
    | Some policy when Adapt.Policy.is_empty policy ->
        (* Arms nothing; bit-identical to [adaptation = None]. *)
        Some
          (Adapt.Plane.arm
             ~engine:(Topology.engine topo)
             ~until:config.duration ~signals:[] policy)
    | Some policy ->
        let ctl =
          match Option.bind !plane Deploy_mode.controller with
          | Some ctl -> ctl
          | None ->
              invalid_arg
                "Mpeg_experiment: adaptation needs with_asps = true and \
                 deploy = In_band (hot-swaps ride the deploy daemons)"
        in
        let env =
          {
            Adapt.Plane.de_controller = ctl;
            de_backend = config.backend.Planp_runtime.Backend.backend_name;
            de_targets_of =
              (fun program ->
                if program = "mpeg-filter" then List.map Node.addr routers
                else []);
            de_variant_of =
              (fun ~program ~variant ->
                if program <> "mpeg-filter" then None
                else
                  match variant with
                  | "pass" ->
                      Some
                        {
                          Adapt.Plane.v_source =
                            Mpeg_asp.filter_program ~drop_b:false ();
                          v_authenticated = false;
                        }
                  | "degrade" ->
                      (* Sheds packets on purpose: rides the privileged
                         path past the delivery verifier. *)
                      Some
                        {
                          Adapt.Plane.v_source =
                            Mpeg_asp.filter_program ~drop_b:true ();
                          v_authenticated = true;
                        }
                  | _ -> None);
            de_concurrency = 2;
            de_nak_policy = Deploy.Controller.Abort;
            de_nak_quarantine = 3;
          }
        in
        Some
          (Adapt.Plane.arm ~env
             ~active:[ ("mpeg-filter", "pass") ]
             ~engine:(Topology.engine topo)
             ~until:config.duration
             ~signals:
               [
                 ( "loss_rate",
                   Adapt.Monitor.Counter_rate
                     (Obs.Registry.counter
                        ~labels:[ ("segment", "client-segment") ]
                        "netsim.segment.drops") );
                 ( "ip_goodput",
                   Adapt.Monitor.Rate_of
                     (fun () -> float_of_int (ip_frames ())) );
               ]
             policy)
  in
  Topology.run_until topo ~stop:config.duration;
  let labels = [ ("experiment", "mpeg") ] in
  List.iter
    (fun (name, value) ->
      Obs.Registry.set (Obs.Registry.gauge ~labels name) (float_of_int value))
    [
      ("asp.summary.server_streams", Mpeg_app.Server.streams_opened server);
      ("asp.summary.server_frames_sent", Mpeg_app.Server.frames_sent server);
      ("asp.summary.segment_video_bytes", !video_bytes);
    ];
  {
    server_streams = Mpeg_app.Server.streams_opened server;
    server_frames_sent = Mpeg_app.Server.frames_sent server;
    client_frames = List.map Mpeg_app.Client.frames_received clients;
    client_frame_kinds = List.map Mpeg_app.Client.frames_by_kind clients;
    clients_shared = List.map Mpeg_app.Client.used_existing clients;
    segment_video_bytes = !video_bytes;
    adaptation = Option.map Adapt.Plane.stats adaptation;
  }
