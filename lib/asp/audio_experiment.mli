(** The audio broadcasting experiment end to end (paper §3.1, Fig. 5-7).

    Topology (Fig. 5): audio server —100 Mb link→ router —10 Mb shared
    segment→ {audio client, load generator sink}. The load generator sits
    on the client's segment, so its traffic competes with the audio stream
    there and the router observes the contention directly. *)

type config = {
  duration : float;  (** seconds of simulated time *)
  adapt : bool;  (** install the adaptation ASPs *)
  schedule : (float * float) list;  (** load steps: (time, kB/s) *)
  backend : Planp_runtime.Backend.t;
  policy : Audio_asp.policy;
  sample_period : float;  (** Fig. 6 sampling *)
  deploy : Deploy_mode.t;
      (** how the ASPs reach router and client: preinstalled, or shipped
          in-band from the audio server at the start of the run *)
  faults : Netsim.Faults.scenario option;
      (** fault scenario armed on the topology before the run; target
          names: link ["backbone"], segment ["client-segment"], nodes
          ["audio-server"], ["router"], ["client"], ["load-sink"],
          ["load-generator"] *)
  adaptation : Adapt.Policy.t option;
      (** closed-loop adaptation policy armed for the run. Signals wired:
          [drop_rate] (client-segment drops/s) and [goodput] (frames
          delivered/s). Swap target: program ["audio-router"], variants
          ["default"] and ["conservative"]. Needs [adapt = true] and
          [deploy = In_band] unless the policy is empty. *)
  routers : int;
      (** router fleet size (default 1 — the classic Fig. 5 topology,
          byte identical). With [n >= 2] the audio crosses a chain
          [router0] .. [router(n-1)] of relay routers (joined by 100 Mb
          links ["relay0"] .. ["relay(n-2)"]) all running the
          distillation ASP, and a swap or retune reaches every hop
          through one staged rollout. *)
}

(** The paper's Fig. 6 scenario: no load until 100 s, heavy at 100 s,
    medium at 220 s, light at 340 s, 500 s total. *)
val fig6_config :
  ?adapt:bool ->
  ?backend:Planp_runtime.Backend.t ->
  ?deploy:Deploy_mode.t ->
  ?faults:Netsim.Faults.scenario ->
  ?adaptation:Adapt.Policy.t ->
  ?routers:int ->
  unit ->
  config

(** A shortened variant for tests and quick runs: same shape, 50 s. *)
val quick_config :
  ?adapt:bool ->
  ?backend:Planp_runtime.Backend.t ->
  ?deploy:Deploy_mode.t ->
  ?faults:Netsim.Faults.scenario ->
  ?adaptation:Adapt.Policy.t ->
  ?routers:int ->
  unit ->
  config

(** The canned closed-loop policy for this experiment: swap the router to
    {!Audio_asp.conservative_policy} thresholds when [drop_rate] rises,
    probe back to the defaults when it stays quiet, guard on [goodput]. *)
val adaptive_policy : unit -> Adapt.Policy.t

type result = {
  series : (float * float) list;
      (** (time, kB/s) of audio traffic *on the wire* of the client segment
          — the paper measures bandwidth before the client ASP restores
          frames to full size *)
  frames_sent : int;
  frames_received : int;  (** frames the client application played *)
  wire_quality_counts : int * int * int;
      (** stereo16 / mono16 / mono8 frames observed on the wire *)
  silent_periods : int;  (** Fig. 7 metric: maximal runs of missed frames *)
  silent_frames : int;
  segment_drops : int;
  adaptation : Adapt.Plane.stats option;
      (** what the adaptation plane did, when a policy was armed *)
}

val run : config -> result
