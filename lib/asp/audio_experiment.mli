(** The audio broadcasting experiment end to end (paper §3.1, Fig. 5-7).

    Topology (Fig. 5): audio server —100 Mb link→ router —10 Mb shared
    segment→ {audio client, load generator sink}. The load generator sits
    on the client's segment, so its traffic competes with the audio stream
    there and the router observes the contention directly. *)

type config = {
  duration : float;  (** seconds of simulated time *)
  adapt : bool;  (** install the adaptation ASPs *)
  schedule : (float * float) list;  (** load steps: (time, kB/s) *)
  backend : Planp_runtime.Backend.t;
  policy : Audio_asp.policy;
  sample_period : float;  (** Fig. 6 sampling *)
  deploy : Deploy_mode.t;
      (** how the ASPs reach router and client: preinstalled, or shipped
          in-band from the audio server at the start of the run *)
  faults : Netsim.Faults.scenario option;
      (** fault scenario armed on the topology before the run; target
          names: link ["backbone"], segment ["client-segment"], nodes
          ["audio-server"], ["router"], ["client"], ["load-sink"],
          ["load-generator"] *)
}

(** The paper's Fig. 6 scenario: no load until 100 s, heavy at 100 s,
    medium at 220 s, light at 340 s, 500 s total. *)
val fig6_config :
  ?adapt:bool ->
  ?backend:Planp_runtime.Backend.t ->
  ?deploy:Deploy_mode.t ->
  ?faults:Netsim.Faults.scenario ->
  unit ->
  config

(** A shortened variant for tests and quick runs: same shape, 50 s. *)
val quick_config :
  ?adapt:bool ->
  ?backend:Planp_runtime.Backend.t ->
  ?deploy:Deploy_mode.t ->
  ?faults:Netsim.Faults.scenario ->
  unit ->
  config

type result = {
  series : (float * float) list;
      (** (time, kB/s) of audio traffic *on the wire* of the client segment
          — the paper measures bandwidth before the client ASP restores
          frames to full size *)
  frames_sent : int;
  frames_received : int;  (** frames the client application played *)
  wire_quality_counts : int * int * int;
      (** stereo16 / mono16 / mono8 frames observed on the wire *)
  silent_periods : int;  (** Fig. 7 metric: maximal runs of missed frames *)
  silent_frames : int;
  segment_drops : int;
}

val run : config -> result
