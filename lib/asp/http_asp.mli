(** Load-balancing gateways for the HTTP cluster (§3.2, Fig. 2/8).

    [gateway_program] is the PLAN-P ASP of the paper's Fig. 2: incoming
    requests to the virtual server address pick a physical server (modulo
    on request count — the paper's strategy), recorded per connection in a
    hash table so later packets of the same connection stick; responses get
    their source rewritten back to the virtual address.

    [install_native_gateway] is the "built-in C version": the same logic as
    a compiled OCaml hook, the baseline of Fig. 8 curve (c). *)

(** Per-packet gateway CPU cost for compiled code (seconds) — ~21000
    cycles on the paper's 170 MHz Ultra-1. *)
val gateway_cost_compiled : float

(** [gateway_cost backend_name] scales the compiled cost by the measured
    interpretation overhead (interp ~10x, bytecode ~2x). *)
val gateway_cost : string -> float

(** Load-balancing strategies (paper 5: "several load-balancing
    algorithms ... helpful for the administrator in managing service
    configuration"):

    - [Modulo]: alternate servers per new connection (the paper's 3.2
      strategy, "a modulo on the number of requests");
    - [Source_hash]: hash the client address, giving client-affinity
      without table growth;
    - [Weighted (a, b)]: distribute proportionally to fixed weights
      (heterogeneous-cluster support). *)
type strategy = Modulo | Source_hash | Weighted of int * int

val strategy_name : strategy -> string

(** [gateway_program ~vip ~servers ()] generates the ASP for a virtual
    address [vip] fronting two [servers] (dotted-quad strings).
    @param strategy defaults to [Modulo] *)
val gateway_program :
  ?port:int ->
  ?strategy:strategy ->
  vip:string ->
  servers:string * string ->
  unit ->
  string

(** [failover_gateway_program ~vip ~servers ()] is the fault-tolerant
    variant (paper 5: "enrich the HTTP cluster server experiment with
    fault-tolerance capabilities"): a [health] control channel marks a
    physical server up or down, and requests avoid downed servers. The
    protocol state is the pair of server health flags packed as an int. *)
val failover_gateway_program :
  ?port:int -> vip:string -> servers:string * string -> unit -> string

(** [health_packet ~gateway ~server_index ~up] builds the tagged control
    packet a health monitor sends to the gateway's [health] channel. *)
val health_packet :
  gateway:Netsim.Addr.t -> server_index:int -> up:bool -> Netsim.Packet.t

(** [install_native_gateway node ~vip ~servers ()] installs the hook. The
    returned counter reports rewritten requests. *)
val install_native_gateway :
  ?port:int ->
  Netsim.Node.t ->
  vip:Netsim.Addr.t ->
  servers:Netsim.Addr.t * Netsim.Addr.t ->
  unit ->
  int ref
