module Node = Netsim.Node
module Engine = Netsim.Engine
module Packet = Netsim.Packet
module Payload = Netsim.Payload

let control_port = 554
let query_port = 5999

type frame_kind = I_frame | P_frame | B_frame

let frame_size = function I_frame -> 12000 | P_frame -> 4000 | B_frame -> 1500

let gop_pattern =
  [| I_frame; B_frame; B_frame; P_frame; B_frame; B_frame; P_frame; B_frame;
     B_frame |]

let frames_per_second = 24.0

type setup = { file_id : int; total_frames : int }

let encode_setup setup =
  let writer = Payload.Writer.create () in
  Payload.Writer.string writer "MPEGSETUP";
  Payload.Writer.u32 writer setup.file_id;
  Payload.Writer.u32 writer setup.total_frames;
  Payload.Writer.finish writer

let decode_setup payload =
  if Payload.length payload <> 17 then None
  else if Payload.to_string (Payload.sub payload ~pos:0 ~len:9) <> "MPEGSETUP"
  then None
  else
    Some
      {
        file_id = Payload.get_u32 payload 9;
        total_frames = Payload.get_u32 payload 13;
      }

(* Video frame payload: u32 file, u32 frame index, u8 kind, data. *)
let encode_frame ~file ~index kind =
  let writer = Payload.Writer.create () in
  Payload.Writer.u32 writer file;
  Payload.Writer.u32 writer index;
  Payload.Writer.u8 writer
    (match kind with I_frame -> 0 | P_frame -> 1 | B_frame -> 2);
  Payload.Writer.raw writer (Payload.fill (frame_size kind - 9) 0x3C);
  Payload.Writer.finish writer

module Server = struct
  type t = {
    node : Node.t;
    port : int;
    movie_frames : int;
    mutable opened : int;
    mutable sent : int;
  }

  let rec stream t ~dst ~dst_port ~file ~index =
    if index < t.movie_frames then begin
      let kind = gop_pattern.(index mod Array.length gop_pattern) in
      Node.send_udp t.node ~dst ~src_port:t.port ~dst_port
        (encode_frame ~file ~index kind);
      t.sent <- t.sent + 1;
      Engine.schedule_after (Node.engine t.node)
        ~delay:(1.0 /. frames_per_second) (fun () ->
          stream t ~dst ~dst_port ~file ~index:(index + 1))
    end
    else begin
      (* Stream over: TEARDOWN control packet ('T', file, port), so
         connection monitors can forget the entry. *)
      let writer = Payload.Writer.create () in
      Payload.Writer.u8 writer (Char.code 'T');
      Payload.Writer.u32 writer file;
      Payload.Writer.u32 writer dst_port;
      Node.send_tcp t.node ~dst ~src_port:t.port ~dst_port:(20000 + dst_port)
        (Payload.Writer.finish writer)
    end

  let on_control t node (packet : Packet.t) =
    let body = packet.Packet.body in
    match packet.Packet.l4 with
    | Packet.Tcp { Packet.tcp_src; _ }
      when Payload.length body = 9 && Payload.get_u8 body 0 = Char.code 'P' ->
        let file = Payload.get_u32 body 1 in
        let video_port = Payload.get_u32 body 5 in
        t.opened <- t.opened + 1;
        (* SETUP reply: 'S', file id, setup blob. *)
        let writer = Payload.Writer.create () in
        Payload.Writer.u8 writer (Char.code 'S');
        Payload.Writer.u32 writer file;
        Payload.Writer.raw writer
          (encode_setup { file_id = file; total_frames = t.movie_frames });
        Node.send_tcp node ~dst:packet.Packet.src ~src_port:t.port
          ~dst_port:tcp_src
          (Payload.Writer.finish writer);
        (* Stream after a short setup delay. *)
        Engine.schedule_after (Node.engine node) ~delay:0.05 (fun () ->
            stream t ~dst:packet.Packet.src ~dst_port:video_port ~file ~index:0)
    | Packet.Tcp _ | Packet.Udp _ | Packet.Raw -> ()

  let start ?(port = control_port) node ~movie_frames () =
    let t = { node; port; movie_frames; opened = 0; sent = 0 } in
    Node.on_tcp node ~port (on_control t);
    t

  let streams_opened t = t.opened
  let frames_sent t = t.sent
end

module Client = struct
  type t = {
    node : Node.t;
    server : Netsim.Addr.t;
    monitor : Netsim.Addr.t;
    file : int;
    video_port : int;
    mutable received : int;
    mutable recv_i : int;
    mutable recv_p : int;
    mutable recv_b : int;
    mutable shared : bool option;
    mutable setup : setup option;
  }

  let send_play t =
    let writer = Payload.Writer.create () in
    Payload.Writer.u8 writer (Char.code 'P');
    Payload.Writer.u32 writer t.file;
    Payload.Writer.u32 writer t.video_port;
    Node.send_tcp t.node ~dst:t.server ~src_port:(20000 + t.video_port)
      ~dst_port:control_port
      (Payload.Writer.finish writer)

  (* Configure the local capture ASP: a packet on the tagged channel "ccfg"
     carrying (stream host, stream port). Injected locally — it never
     touches the wire. Deferred to the next event: this runs inside the
     delivery of the monitor's reply, and the runtime finishes that
     channel invocation (committing its state) before a new one may run. *)
  let configure_capture t ~host ~port =
    let writer = Payload.Writer.create () in
    Payload.Writer.u32 writer host;
    Payload.Writer.u32 writer port;
    let packet =
      Packet.udp ~chan_tag:"ccfg" ~src:(Node.addr t.node)
        ~dst:(Node.addr t.node) ~src_port:0 ~dst_port:0
        (Payload.Writer.finish writer)
    in
    Engine.schedule_after (Node.engine t.node) ~delay:0.0 (fun () ->
        Node.receive t.node ~ifindex:0 ~l2_dst:None packet)

  (* Monitor reply: u32 found, u32 host, u32 port, setup blob (may be
     empty). The destination check matters: on a promiscuous node the
     capture ASP delivers every frame on the segment, including replies
     meant for other clients. *)
  let on_query_reply t node (packet : Packet.t) =
    let body = packet.Packet.body in
    if
      Netsim.Addr.equal packet.Packet.dst (Node.addr node)
      && Payload.length body >= 12 && t.shared = None
    then begin
      let found = Payload.get_u32 body 0 in
      if found = 1 then begin
        let host = Payload.get_u32 body 4 in
        let port = Payload.get_u32 body 8 in
        t.setup <-
          decode_setup
            (Payload.sub body ~pos:12 ~len:(Payload.length body - 12));
        t.shared <- Some true;
        configure_capture t ~host ~port
      end
      else begin
        t.shared <- Some false;
        send_play t
      end
    end

  (* Video packets delivered to our port (directly, or rewritten by the
     capture ASP). SETUP replies come on TCP. *)
  let on_video t node (packet : Packet.t) =
    let body = packet.Packet.body in
    (* Only frames addressed to this host count: a promiscuous node's ASP
       delivers foreign frames too (readdressed when captured, untouched
       otherwise), and the player must not count the latter. *)
    if
      Netsim.Addr.equal packet.Packet.dst (Node.addr node)
      && Payload.length body >= 9
      && Payload.get_u32 body 0 = t.file
    then begin
      t.received <- t.received + 1;
      match Payload.get_u8 body 8 with
      | 0 -> t.recv_i <- t.recv_i + 1
      | 1 -> t.recv_p <- t.recv_p + 1
      | _ -> t.recv_b <- t.recv_b + 1
    end

  let on_control t node (packet : Packet.t) =
    let body = packet.Packet.body in
    if
      Netsim.Addr.equal packet.Packet.dst (Node.addr node)
      && Payload.length body >= 5
      && Payload.get_u8 body 0 = Char.code 'S'
    then
      t.setup <-
        decode_setup (Payload.sub body ~pos:5 ~len:(Payload.length body - 5))

  let send_query t =
    let writer = Payload.Writer.create () in
    Payload.Writer.u32 writer t.file;
    let packet =
      Packet.udp ~chan_tag:"mquery" ~src:(Node.addr t.node) ~dst:t.monitor
        ~src_port:(30000 + t.video_port) ~dst_port:query_port
        (Payload.Writer.finish writer)
    in
    Node.originate t.node packet

  let start ?(video_port = 7000) node ~server ~monitor ~file ~at () =
    let t =
      {
        node;
        server;
        monitor;
        file;
        video_port;
        received = 0;
        recv_i = 0;
        recv_p = 0;
        recv_b = 0;
        shared = None;
        setup = None;
      }
    in
    Node.on_udp node ~port:(30000 + video_port) (on_query_reply t);
    Node.on_udp node ~port:video_port (on_video t);
    Node.on_tcp node ~port:(20000 + video_port) (on_control t);
    Engine.schedule (Node.engine node) ~at (fun () -> send_query t);
    (* No monitor answered (none deployed, or it knows nothing yet that it
       is willing to say): fall back to a direct connection. *)
    Engine.schedule (Node.engine node) ~at:(at +. 1.0) (fun () ->
        if t.shared = None then begin
          t.shared <- Some false;
          send_play t
        end);
    t

  let frames_received t = t.received
  let frames_by_kind t = (t.recv_i, t.recv_p, t.recv_b)
  let used_existing t = t.shared
  let setup_received t = t.setup
end
