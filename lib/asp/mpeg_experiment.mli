(** The point-to-point → multipoint MPEG experiment (§3.3).

    Topology: video server —100 Mb link→ router —10 Mb shared segment→
    {client 1, client 2, client 3, monitor host}. Clients request the same
    movie at staggered times. With the ASPs deployed, only the first client
    opens a server connection; later clients capture its stream off the
    shared segment. Without them, every client opens its own stream. *)

type config = {
  with_asps : bool;
  backend : Planp_runtime.Backend.t;
  movie_frames : int;  (** 240 frames = 10 s at 24 fps *)
  client_starts : float list;  (** request times of the clients *)
  duration : float;
  deploy : Deploy_mode.t;
      (** how the ASPs reach monitor and clients: preinstalled, or shipped
          in-band from the video server (the identical capture ASPs go out
          as one staged rollout) *)
  faults : Netsim.Faults.scenario option;
      (** fault scenario armed on the topology before the run; target
          names: link ["backbone"], segment ["client-segment"], nodes
          ["video-server"], ["router"], ["monitor"], ["client1".."3"] *)
}

val default_config :
  ?with_asps:bool ->
  ?backend:Planp_runtime.Backend.t ->
  ?deploy:Deploy_mode.t ->
  ?faults:Netsim.Faults.scenario ->
  unit ->
  config

type result = {
  server_streams : int;  (** connections the server had to serve *)
  server_frames_sent : int;
  client_frames : int list;  (** per client, in [client_starts] order *)
  clients_shared : bool option list;  (** which clients joined an existing stream *)
  segment_video_bytes : int;  (** video payload carried by the segment *)
}

val run : config -> result
