(** The point-to-point → multipoint MPEG experiment (§3.3).

    Topology: video server —100 Mb link→ router —10 Mb shared segment→
    {client 1, client 2, client 3, monitor host}. Clients request the same
    movie at staggered times. With the ASPs deployed, only the first client
    opens a server connection; later clients capture its stream off the
    shared segment. Without them, every client opens its own stream. *)

type config = {
  with_asps : bool;
  backend : Planp_runtime.Backend.t;
  movie_frames : int;  (** 240 frames = 10 s at 24 fps *)
  client_starts : float list;  (** request times of the clients *)
  duration : float;
  deploy : Deploy_mode.t;
      (** how the ASPs reach monitor and clients: preinstalled, or shipped
          in-band from the video server (the identical capture ASPs go out
          as one staged rollout) *)
  faults : Netsim.Faults.scenario option;
      (** fault scenario armed on the topology before the run; target
          names: link ["backbone"], segment ["client-segment"], nodes
          ["video-server"], ["router"], ["monitor"], ["client1".."3"] *)
  adaptation : Adapt.Policy.t option;
      (** closed-loop adaptation policy armed for the run. Signals wired:
          [loss_rate] (client-segment drops/s) and [ip_goodput] (I+P
          frames delivered/s). Swap target: program ["mpeg-filter"] on the
          router, variants ["pass"] and ["degrade"] (B-frame shedding,
          deployed authenticated). Needs [with_asps = true] and
          [deploy = In_band] unless the policy is empty. *)
  filters : int;
      (** filter-router fleet size (default 1 — the classic topology,
          byte identical). With [n >= 2] the video crosses a chain
          [router0] .. [router(n-1)] of relay routers (joined by 100 Mb
          links ["relay0"] .. ["relay(n-2)"]) all running the frame
          filter, and a degrade/recover swap reaches every hop through
          one staged rollout. *)
}

val default_config :
  ?with_asps:bool ->
  ?backend:Planp_runtime.Backend.t ->
  ?deploy:Deploy_mode.t ->
  ?faults:Netsim.Faults.scenario ->
  ?adaptation:Adapt.Policy.t ->
  ?filters:int ->
  unit ->
  config

(** The canned closed-loop policy for this experiment: swap the router
    filter to B-frame shedding when [loss_rate] rises, back to
    pass-through when it stays quiet, guard on [ip_goodput]. *)
val adaptive_policy : unit -> Adapt.Policy.t

type result = {
  server_streams : int;  (** connections the server had to serve *)
  server_frames_sent : int;
  client_frames : int list;  (** per client, in [client_starts] order *)
  client_frame_kinds : (int * int * int) list;
      (** per client (I, P, B) frames received *)
  clients_shared : bool option list;  (** which clients joined an existing stream *)
  segment_video_bytes : int;  (** video payload carried by the segment *)
  adaptation : Adapt.Plane.stats option;
      (** what the adaptation plane did, when a policy was armed *)
}

val run : config -> result
