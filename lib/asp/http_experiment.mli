(** The clustered HTTP server experiment (§3.2, Fig. 8).

    Topology: two Apache-like servers and a gateway on a 100 Mb/s cluster
    segment; each client machine reaches the cluster through its own
    10 Mb/s link into the gateway node (the paper's clients are on 10 Mb
    Ethernet). Clients replay a synthetic 80 000-request trace in closed
    loop; the x-axis of Fig. 8 is the number of concurrent client
    processes, the y-axis completed replies per second.

    The gateway's per-packet CPU cost models the contention point the
    paper measures. Compiled code (the JIT-specialized ASP and the
    built-in native gateway) costs [gateway_cost_compiled] per packet;
    the interpreter and the bytecode VM are slower by the factors the
    [backends] microbenchmark measures. *)

type setup =
  | Single  (** one server, no gateway (curve a) *)
  | Asp_gateway of Planp_runtime.Backend.t
      (** two servers behind the PLAN-P gateway (curve b) *)
  | Native_gateway  (** two servers behind the built-in gateway (curve c) *)
  | Disjoint
      (** two servers, clients statically split, no gateway (curve d) *)

val setup_name : setup -> string

(** Per-packet gateway CPU cost for compiled code (seconds). *)
val gateway_cost_compiled : float

(** [gateway_cost backend_name] scales the compiled cost by the measured
    interpretation overhead (interp ~10x, bytecode ~2x). *)
val gateway_cost : string -> float

(** How a multi-gateway adaptation plane is organized: one plane driving
    the whole fleet through staged rollouts with a fleet-level guard, or
    one independent plane per gateway, each watching only its own
    clients (the noisier per-node baseline the bench compares against). *)
type coordination = Coordinated | Independent

type config = {
  duration : float;
  warmup : float;
  client_count : int;
  trace_requests : int;
  trace_files : int;
  seed : int;
  strategy : Http_asp.strategy;  (** used by [Asp_gateway] setups *)
  deploy : Deploy_mode.t;
      (** how [Asp_gateway] setups place the gateway ASP: preinstalled, or
          shipped in-band from server0 at the start of the run *)
  faults : Netsim.Faults.scenario option;
      (** fault scenario armed on each point's topology before the run;
          target names: segment ["cluster"], links ["access0"] ..
          ["accessN"], nodes ["gateway"], ["server0"], ["server1"],
          ["client0"] .. ["clientN"] *)
  adaptation : Adapt.Policy.t option;
      (** closed-loop adaptation policy armed for the run. Signals wired:
          [retry_rate] (client request retries/s) and [goodput] (completed
          replies/s). Swap target: program ["http-gateway"], variants
          ["plain"] and ["failover"] (the failover swap also starts the
          {!Http_ft.Monitor} health prober). Needs an [Asp_gateway] setup
          with [deploy = In_band] unless the policy is empty. *)
  gateways : int;
      (** gateway fleet size (default 1 — the classic topology, byte
          identical). With [n >= 2] the clients split round-robin across
          [gateway0] .. [gateway(n-1)] and a swap retunes every gateway
          through one staged rollout. *)
  coordination : coordination;
      (** how a multi-gateway plane is organized (default [Coordinated]) *)
}

val default_config : config

(** The canned closed-loop policy for this experiment: swap the gateway to
    {!Http_asp.failover_gateway_program} when [retry_rate] climbs (a server
    flap the Modulo gateway cannot see), guard on [goodput]. *)
val adaptive_policy : unit -> Adapt.Policy.t

type point = {
  workers : int;  (** total concurrent client processes *)
  replies_per_s : float;
  mean_response_ms : float;
  p95_response_ms : float;
  gateway_requests : int;  (** requests the gateway rewrote (0 without one) *)
  server_loads : int * int;  (** requests served by each physical server *)
  client_retries : int;  (** abandoned-and-reissued requests across clients *)
  adaptation : Adapt.Plane.stats option;
      (** what the coordinated (or sole) adaptation plane did, when a
          policy was armed; [None] under [Independent] *)
  adaptations : Adapt.Plane.stats list;
      (** every armed plane — one per gateway under [Independent],
          a singleton otherwise *)
}

(** [run_point config setup ~workers] runs one (setup, load) cell. *)
val run_point : config -> setup -> workers:int -> point

(** [run_sweep config setup ~workers_list] maps {!run_point}. *)
val run_sweep : config -> setup -> workers_list:int list -> point list
