(** How an experiment's ASPs reach their nodes.

    The paper's experiments assume their ASPs are already in place when
    the simulation starts. [Preinstalled] keeps that: programs are
    installed directly into each node's runtime before the clock runs.
    [In_band] instead ships them through the network itself with the
    {!Deploy} plane — a controller chunks each program into code capsules
    and streams them to per-node daemons, which verify on arrival and
    activate by epoch. Deployment traffic shares the simulated links with
    the experiment's own traffic; it completes within simulated
    milliseconds, before any congestion phase starts, so both modes
    produce the same experiment summaries. *)

type t = Preinstalled | In_band

val to_string : t -> string

(** [of_string s] parses ["preinstalled"] and ["in-band"] (also
    ["inband"]). *)
val of_string : string -> t option

(** Handle on the installed programs, however they got there. *)
type plane

(** [install mode ~backend ~controller ~programs ()] puts every
    [(node, name, source)] of [programs] in place and returns a handle
    for looking the programs up later.

    Under [In_band], [controller] is the node that ships the capsules (a
    daemon is started on every target); programs sharing a (name, source)
    pair across several nodes go out as one staged {e rollout} with
    bounded concurrency. Operations are enqueued at the current simulated
    time and complete during the run; a NAK or timeout raises [Failure]
    from inside the event loop. *)
val install :
  t ->
  backend:Planp_runtime.Backend.t ->
  controller:Netsim.Node.t ->
  programs:(Netsim.Node.t * string * string) list ->
  unit ->
  plane

(** [find plane node name] — the active program, if (already) installed.
    Under [In_band] this reads the daemon's slot, so it reflects the
    deployment's progress at the current simulated time. *)
val find :
  plane -> Netsim.Node.t -> string -> Planp_runtime.Runtime.program option

(** [controller plane] — the deploy controller that shipped the programs
    ([In_band] only). The adaptation plane reuses it for hot-swaps so
    epochs to each daemon stay ordered under one epoch counter. *)
val controller : plane -> Deploy.Controller.t option

(** [daemon plane node] — the deploy daemon started on [node]
    ([In_band] only). *)
val daemon : plane -> Netsim.Node.t -> Deploy.Daemon.t option
