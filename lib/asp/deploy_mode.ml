module Node = Netsim.Node
module Runtime = Planp_runtime.Runtime

type t = Preinstalled | In_band

let to_string = function Preinstalled -> "preinstalled" | In_band -> "in-band"

let of_string = function
  | "preinstalled" -> Some Preinstalled
  | "in-band" | "inband" -> Some In_band
  | _ -> None

type plane = {
  find : Node.t -> string -> Runtime.program option;
  ctl : Deploy.Controller.t option;
  daemon_of : Node.t -> Deploy.Daemon.t option;
}

let find plane = plane.find
let controller plane = plane.ctl
let daemon plane = plane.daemon_of

(* Group programs by (name, source): identical programs for several nodes
   ship as one staged rollout instead of independent deployments. *)
let group programs =
  List.fold_left
    (fun groups (node, name, source) ->
      match List.assoc_opt (name, source) groups with
      | Some nodes ->
          nodes := node :: !nodes;
          groups
      | None -> ((name, source), ref [ node ]) :: groups)
    [] programs
  |> List.rev_map (fun (key, nodes) -> (key, List.rev !nodes))
  |> List.rev

let preinstall ~backend programs =
  let runtimes = Hashtbl.create 8 in
  let runtime_for node =
    match Hashtbl.find_opt runtimes (Node.name node) with
    | Some rt -> rt
    | None ->
        let rt = Runtime.attach node in
        Hashtbl.replace runtimes (Node.name node) rt;
        rt
  in
  let handles =
    List.map
      (fun (node, name, source) ->
        ( (Node.name node, name),
          Runtime.install_exn (runtime_for node) ~backend ~name ~source () ))
      programs
  in
  {
    find = (fun node name -> List.assoc_opt (Node.name node, name) handles);
    ctl = None;
    daemon_of = (fun _ -> None);
  }

let fail_outcome ~name ~node outcome =
  failwith
    (Printf.sprintf "in-band deploy of %s to %s failed: %s" name node
       (Deploy.Controller.outcome_to_string outcome))

let ship ~backend ~controller programs =
  let backend = backend.Planp_runtime.Backend.backend_name in
  let daemons = Hashtbl.create 8 in
  let daemon_for node =
    match Hashtbl.find_opt daemons (Node.name node) with
    | Some daemon -> daemon
    | None ->
        let daemon = Deploy.Daemon.start node () in
        Hashtbl.replace daemons (Node.name node) daemon;
        daemon
  in
  List.iter
    (fun (node, _, _) -> ignore (daemon_for node))
    programs;
  let ctl = Deploy.Controller.create controller () in
  List.iter
    (fun ((name, source), nodes) ->
      match nodes with
      | [ node ] ->
          Deploy.Controller.deploy ctl ~backend ~target:(Node.addr node) ~name
            ~source
            ~on_done:(function
              | Deploy.Controller.Acked _ -> ()
              | outcome -> fail_outcome ~name ~node:(Node.name node) outcome)
            ()
      | nodes ->
          Deploy.Controller.rollout ctl ~backend ~concurrency:2
            ~on_nak:Deploy.Controller.Abort
            ~targets:(List.map Node.addr nodes)
            ~name ~source
            ~on_done:
              (List.iter (fun (addr, outcome) ->
                   match outcome with
                   | Deploy.Controller.Acked _ -> ()
                   | outcome ->
                       fail_outcome ~name
                         ~node:(Netsim.Addr.to_string addr)
                         outcome))
            ())
    (group programs);
  {
    find =
      (fun node name ->
        match Hashtbl.find_opt daemons (Node.name node) with
        | Some daemon -> Deploy.Daemon.active_program daemon ~name
        | None -> None);
    ctl = Some ctl;
    daemon_of = (fun node -> Hashtbl.find_opt daemons (Node.name node));
  }

let install mode ~backend ~controller ~programs () =
  match mode with
  | Preinstalled -> preinstall ~backend programs
  | In_band -> ship ~backend ~controller programs
