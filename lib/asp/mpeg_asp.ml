let monitor_program ?(control_port = Mpeg_app.control_port)
    ?(query_port = Mpeg_app.query_port) ~server () =
  Printf.sprintf
    {|-- MPEG connection monitor (paper 3.3).
-- Watches the point-to-point video server's control traffic on the shared
-- segment and remembers, per file, which client the video is being sent to
-- and the setup information the server returned. Clients ask on the
-- "mquery" channel whether a request can be filled by an existing
-- connection.
val videoServer : host = %s
val controlPort : int = %d
val queryPort : int = %d

protostate (int, (host*int*blob)) hash_table = mkTable(64)

-- PLAY requests (client -> server, 'P', file, video port) and TEARDOWN
-- notifications (server -> client, 'T', file, port) share one packet
-- shape; the command byte dispatches, as in the paper's Fig. 4.
channel network(ps : (int, (host*int*blob)) hash_table, ss : int,
                p : ip*tcp*char*int*int) is
  let
    val iph : ip = #1 p
    val cmd : char = #3 p
    val file : int = #4 p
    val port : int = #5 p
  in
    (if cmd = 'P' andalso ipDst(iph) = videoServer
        andalso tcpDst(#2 p) = controlPort then
      tblSet(ps, file, (ipSrc(iph), port, stob("")))
    else
      if cmd = 'T' andalso ipSrc(iph) = videoServer
          andalso tcpSrc(#2 p) = controlPort then
        tblRemove(ps, file)
      else ();
    deliver(p);
    (ps, ss))
  end

-- SETUP replies: server -> client, 'S', file, setup blob.
channel network(ps : (int, (host*int*blob)) hash_table, ss : int,
                p : ip*tcp*char*int*blob) is
  let
    val iph : ip = #1 p
    val cmd : char = #3 p
    val file : int = #4 p
    val setup : blob = #5 p
  in
    (if cmd = 'S' andalso ipSrc(iph) = videoServer
        andalso tcpSrc(#2 p) = controlPort then
      let
        val entry : host*int*blob = tblGet(ps, file, (0.0.0.0, 0, stob("")))
      in
        tblSet(ps, file, (#1 entry, #2 entry, setup))
      end
    else ();
    deliver(p);
    (ps, ss))
  end

-- Queries from extended clients: which connection serves this file?
channel mquery(ps : (int, (host*int*blob)) hash_table, ss : int,
               p : ip*udp*int) is
  let
    val iph : ip = #1 p
    val udph : udp = #2 p
    val file : int = #3 p
    val entry : host*int*blob = tblGet(ps, file, (0.0.0.0, 0, stob("")))
    val live : bool = blobLength(#3 entry) > 0
    val reply_ip : ip = ipDestSet(ipSrcSet(iph, ipDst(iph)), ipSrc(iph))
    val reply_udp : udp = mkUdp(queryPort, udpSrc(udph))
  in
    (if live then
      OnRemote(network,
        (reply_ip, reply_udp, 1, #1 entry, #2 entry, #3 entry))
    else
      OnRemote(network,
        (reply_ip, reply_udp, 0, 0.0.0.0, 0, stob("")));
    (ps, ss))
  end
|}
    server control_port query_port

let capture_program () =
  {|-- MPEG stream capture (paper 3.3, client side).
-- Once configured (via the local "ccfg" channel) with the address and port
-- an existing video stream is being sent to, grab those packets off the
-- shared segment and deliver them locally, readdressed to this host.
protostate host*int = (0.0.0.0, 0)

channel ccfg(ps : host*int, ss : int, p : ip*udp*host*int) is
  (deliver(p); ((#3 p, #4 p), ss))

channel network(ps : host*int, ss : int, p : ip*udp*blob) is
  let
    val iph : ip = #1 p
    val udph : udp = #2 p
    val body : blob = #3 p
  in
    if ipDst(iph) = #1 ps andalso udpDst(udph) = #2 ps
       andalso not (ipDst(iph) = thisHost()) then
      (deliver((ipDestSet(iph, thisHost()), udph, body)); (ps, ss))
    else
      (deliver(p); (ps, ss))
  end
|}

let filter_program ?(video_port = Mpeg_app.control_port) ~drop_b () =
  if not drop_b then
    Printf.sprintf
      {|-- MPEG frame-class filter (router side), pass-through variant:
-- forward every frame untouched. The adaptation plane's baseline, so
-- swapping between variants is one epoch activation either way.
val videoPort : int = %d

channel network(ps : int, ss : int, p : ip*udp*blob) is
  (OnRemote(network, p); (ps, ss))
|}
      video_port
  else
    Printf.sprintf
      {|-- MPEG frame-class filter (router side), degrade variant: shed
-- B-frames of the video flow so the I- and P-frames they would compete
-- with survive a lossy segment (paper 5: media-specific degradation in
-- the network). Dropping is deliberate, so this variant cannot pass the
-- delivery verifier and ships over the authenticated deploy path.
val videoPort : int = %d

channel network(ps : int, ss : int, p : ip*udp*blob) is
  let
    val udph : udp = #2 p
    val body : blob = #3 p
  in
    if udpSrc(udph) = videoPort andalso blobLength(body) > 8
       andalso blobByte(body, 8) = 2 then
      -- A B-frame: shed it and count the shed.
      ((ps + 1), ss)
    else
      (OnRemote(network, p); (ps, ss))
  end
|}
      video_port
