(** The two ASPs of the MPEG experiment (§3.3).

    [monitor_program] runs on one machine of the client segment
    (promiscuous): it watches control traffic to and from the video
    server's TCP port, maintaining a table of open connections (file →
    client, port, setup info), and answers queries on the user-defined
    channel [mquery] — "the first ASP executes on any one of the machines
    on the segment and maintains a list of all open connections to the
    video server".

    [capture_program] runs on each extended client: once configured via
    the local [ccfg] channel, it "captures packets sent to the original
    address and port and delivers them to the client" by rewriting the
    destination to the local host. *)

val monitor_program :
  ?control_port:int -> ?query_port:int -> server:string -> unit -> string

val capture_program : unit -> string

(** [filter_program ~drop_b ()] is the router-side frame-class filter the
    adaptation plane hot-swaps under loss. With [drop_b = false] it
    forwards everything (the baseline variant); with [drop_b = true] it
    sheds B-frames of the video flow (frames streamed from UDP source
    port [video_port]) so I- and P-frames survive the congested segment.
    The protocol state counts shed frames. The [drop_b] variant
    intentionally violates the delivery analysis and must be deployed
    authenticated. *)
val filter_program : ?video_port:int -> drop_b:bool -> unit -> string
