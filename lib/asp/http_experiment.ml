module Topology = Netsim.Topology
module Node = Netsim.Node
module Routing = Netsim.Routing
module Runtime = Planp_runtime.Runtime

type setup =
  | Single
  | Asp_gateway of Planp_runtime.Backend.t
  | Native_gateway
  | Disjoint

let setup_name = function
  | Single -> "single server"
  | Asp_gateway backend ->
      Printf.sprintf "ASP gateway (%s), 2 servers"
        backend.Planp_runtime.Backend.backend_name
  | Native_gateway -> "built-in gateway, 2 servers"
  | Disjoint -> "2 servers, disjoint clients"

let gateway_cost_compiled = Http_asp.gateway_cost_compiled
let gateway_cost = Http_asp.gateway_cost

(* How a multi-gateway adaptation plane is organized: one plane
   coordinating every gateway through staged rollouts, or one
   independent plane per gateway, each watching only its own clients
   (the noisier per-node baseline the bench compares against). *)
type coordination = Coordinated | Independent

type config = {
  duration : float;
  warmup : float;
  client_count : int;
  trace_requests : int;
  trace_files : int;
  seed : int;
  strategy : Http_asp.strategy;
  deploy : Deploy_mode.t;
  faults : Netsim.Faults.scenario option;
  adaptation : Adapt.Policy.t option;
  gateways : int;
  coordination : coordination;
}

let default_config =
  {
    duration = 30.0;
    warmup = 5.0;
    client_count = 8;
    trace_requests = 80_000;
    trace_files = 2_000;
    seed = 42;
    strategy = Http_asp.Modulo;
    deploy = Deploy_mode.Preinstalled;
    faults = None;
    adaptation = None;
    gateways = 1;
    coordination = Coordinated;
  }

(* The canned closed-loop policy: the Modulo gateway keeps assigning new
   connections to a crashed server (clients only recover by re-requesting
   after their retry timeout), so a climbing retry rate is the flap
   signal. Swapping in the failover gateway — and starting its health
   prober on the ACK — routes around the dead server. The guard watches
   completed replies per second. *)
let adaptive_policy () =
  match
    Adapt.Policy.parse
      {|period 0.5
alpha 0.4
rule failover: when retry_rate > 1 for 0.5 cooldown 6 do swap http-gateway failover
guard goodput window 4 min-ratio 0.5
|}
  with
  | Ok policy -> policy
  | Error msg -> failwith ("Http_experiment.adaptive_policy: " ^ msg)

type point = {
  workers : int;
  replies_per_s : float;
  mean_response_ms : float;
  p95_response_ms : float;
  gateway_requests : int;
  server_loads : int * int;
  client_retries : int;
  adaptation : Adapt.Plane.stats option;
      (** the coordinated (or sole) plane, when one was armed *)
  adaptations : Adapt.Plane.stats list;
      (** every armed plane — one per gateway under [Independent] *)
}

let vip_string = "10.3.0.100"
let server0_string = "10.3.0.1"
let server1_string = "10.3.0.2"

(* Split [total] into [bins] near-equal parts. *)
let split_workers total bins =
  List.init bins (fun i -> (total / bins) + if i < total mod bins then 1 else 0)

let run_point config setup ~workers =
  if config.gateways < 1 then
    invalid_arg "Http_experiment: gateways must be >= 1";
  let n_gw = config.gateways in
  let topo = Topology.create () in
  (* With [gateways = 1] the topology (names, addresses, creation order)
     is exactly the classic single-gateway one; [n >= 2] splits the
     clients round-robin across a gateway fleet behind the same VIP. *)
  let gateways =
    List.init n_gw (fun i ->
        let name =
          if n_gw = 1 then "gateway" else Printf.sprintf "gateway%d" i
        in
        Topology.add_host topo name (Printf.sprintf "10.3.0.%d" (254 - i)))
  in
  let gateway_of_client i = List.nth gateways (i mod n_gw) in
  let server0_node = Topology.add_host topo "server0" server0_string in
  let server1_node = Topology.add_host topo "server1" server1_string in
  let cluster =
    Topology.segment topo ~name:"cluster" ~bandwidth_bps:100e6 ~latency:0.0002
      ()
  in
  List.iter (fun gw -> ignore (Topology.attach topo cluster gw)) gateways;
  ignore (Topology.attach topo cluster server0_node);
  ignore (Topology.attach topo cluster server1_node);
  let clients =
    List.init config.client_count (fun i ->
        let client =
          Topology.add_host topo
            (Printf.sprintf "client%d" i)
            (Printf.sprintf "10.4.%d.1" i)
        in
        ignore
          (Topology.connect topo
             ~name:(Printf.sprintf "access%d" i)
             ~bandwidth_bps:10e6 ~latency:0.001 (gateway_of_client i) client);
        client)
  in
  Topology.compute_routes topo;
  (* Names resolvable by fault scenarios: segment "cluster", links
     "access0".."accessN", and every node name above. *)
  Option.iter
    (fun scenario -> ignore (Netsim.Faults.arm topo scenario))
    config.faults;
  (* The virtual server address has no node: clients reach it through their
     default route into the gateway. *)
  let vip = Netsim.Addr.of_string vip_string in
  List.iteri
    (fun i client ->
      Routing.set_default (Node.routing client)
        (Some
           { Routing.ifindex = 0;
             next_hop = Some (Node.addr (gateway_of_client i)) }))
    clients;
  let server0 = Http_app.Server.start server0_node () in
  let server1 = Http_app.Server.start server1_node () in
  (* The deploy plane that shipped the gateway ASP, when there is one —
     the adaptation plane swaps through its controller. *)
  let gateway_plane = ref None in
  (* Gateway flavour; returns a thunk reading how many requests it routed. *)
  let read_gateway_requests =
    match setup with
    | Single | Disjoint -> fun () -> 0
    | Native_gateway ->
        let counters =
          List.map
            (fun gw ->
              Node.set_processing_cost gw (gateway_cost "native");
              Http_asp.install_native_gateway gw ~vip
                ~servers:(Node.addr server0_node, Node.addr server1_node)
                ())
            gateways
        in
        fun () -> List.fold_left (fun acc c -> acc + !c) 0 counters
    | Asp_gateway backend ->
        List.iter
          (fun gw ->
            Node.set_processing_cost gw
              (gateway_cost backend.Planp_runtime.Backend.backend_name))
          gateways;
        (* In_band ships the gateway ASP from server0 across the cluster
           segment at the start of the run (a staged rollout when the
           fleet has several gateways); the few requests that reach a
           gateway before activation are retried by the clients well
           inside the warmup window. *)
        let plane =
          Deploy_mode.install config.deploy ~backend ~controller:server0_node
            ~programs:
              (List.map
                 (fun gw ->
                   ( gw,
                     "http-gateway",
                     Http_asp.gateway_program ~strategy:config.strategy
                       ~vip:vip_string
                       ~servers:(server0_string, server1_string) () ))
                 gateways)
            ()
        in
        gateway_plane := Some plane;
        fun () ->
          (* The ASP counts routed requests in its protocol state. *)
          List.fold_left
            (fun acc gw ->
              match Deploy_mode.find plane gw "http-gateway" with
              | Some program -> (
                  match Runtime.proto_state program with
                  | Planp_runtime.Value.Vint n -> acc + n
                  | _ -> acc)
              | None -> acc)
            0 gateways
  in
  let trace =
    Http_app.Trace.generate ~requests:config.trace_requests
      ~files:config.trace_files ~seed:config.seed ()
  in
  let per_client = split_workers workers config.client_count in
  let client_apps =
    List.map2
      (fun i (client, client_workers) ->
        let target =
          match setup with
          | Single -> Node.addr server0_node
          | Asp_gateway _ | Native_gateway -> vip
          | Disjoint ->
              if i < config.client_count / 2 then Node.addr server0_node
              else Node.addr server1_node
        in
        if client_workers = 0 then None
        else
          Some
            (Http_app.Client.start ~warmup:config.warmup client ~server:target
               ~workers:client_workers ~trace ()))
      (List.init config.client_count Fun.id)
      (List.combine clients per_client)
  in
  let sum_clients read =
    List.fold_left
      (fun acc app -> match app with Some app -> acc + read app | None -> acc)
      0 client_apps
  in
  let adaptation_planes =
    match config.adaptation with
    | None -> []
    | Some policy when Adapt.Policy.is_empty policy ->
        (* Arms nothing; bit-identical to [adaptation = None]. *)
        [
          Adapt.Plane.arm
            ~engine:(Topology.engine topo)
            ~until:config.duration ~signals:[] policy;
        ]
    | Some policy ->
        let backend, ctl =
          match (setup, Option.bind !gateway_plane Deploy_mode.controller) with
          | Asp_gateway backend, Some ctl -> (backend, ctl)
          | _ ->
              invalid_arg
                "Http_experiment: adaptation needs an Asp_gateway setup with \
                 deploy = In_band (hot-swaps ride the deploy daemons)"
        in
        let variant_source = function
          | "plain" ->
              Some
                (Http_asp.gateway_program ~strategy:config.strategy
                   ~vip:vip_string
                   ~servers:(server0_string, server1_string) ())
          | "failover" ->
              Some
                (Http_asp.failover_gateway_program ~vip:vip_string
                   ~servers:(server0_string, server1_string) ())
          | _ -> None
        in
        let env_for targets =
          {
            Adapt.Plane.de_controller = ctl;
            de_backend = backend.Planp_runtime.Backend.backend_name;
            de_targets_of =
              (fun program -> if program = "http-gateway" then targets else []);
            de_variant_of =
              (fun ~program ~variant ->
                if program <> "http-gateway" then None
                else
                  Option.map
                    (fun v_source ->
                      { Adapt.Plane.v_source; v_authenticated = false })
                    (variant_source variant));
            de_concurrency = 2;
            de_nak_policy = Deploy.Controller.Abort;
            de_nak_quarantine = 3;
          }
        in
        (* The failover gateway is blind until its health prober runs;
           start it the moment its swap is acknowledged (each gateway
           probes for itself). *)
        let probers = Array.make n_gw false in
        let start_prober g =
          if not probers.(g) then begin
            probers.(g) <- true;
            ignore
              (Http_ft.Monitor.start (List.nth gateways g)
                 ~servers:(Node.addr server0_node, Node.addr server1_node)
                 ~until:config.duration ())
          end
        in
        let arm_plane ~targets ~on_swap ~signals =
          Adapt.Plane.arm ~env:(env_for targets)
            ~active:[ ("http-gateway", "plain") ]
            ~on_swap
            ~engine:(Topology.engine topo)
            ~until:config.duration ~signals policy
        in
        let rate_signals read_retries read_completed =
          [
            ( "retry_rate",
              Adapt.Monitor.Rate_of (fun () -> float_of_int (read_retries ()))
            );
            ( "goodput",
              Adapt.Monitor.Rate_of (fun () -> float_of_int (read_completed ()))
            );
          ]
        in
        (match config.coordination with
        | Coordinated ->
            (* One plane owns the whole gateway fleet: the swap is a
               staged rollout retuning every gateway together. *)
            [
              arm_plane
                ~targets:(List.map Node.addr gateways)
                ~on_swap:(fun ~program:_ ~variant ->
                  if variant = "failover" then
                    List.iteri (fun g _ -> start_prober g) gateways)
                ~signals:
                  (rate_signals
                     (fun () -> sum_clients Http_app.Client.retries)
                     (fun () -> sum_clients Http_app.Client.completed));
            ]
        | Independent ->
            (* One plane per gateway, each watching only its own clients
               — noisier per-node signals, no cross-gateway coordination. *)
            List.mapi
              (fun g gw ->
                let mine read =
                  List.fold_left
                    (fun acc app ->
                      match app with
                      | Some app -> acc + read app
                      | None -> acc)
                    0
                    (List.filteri
                       (fun i _ -> i mod n_gw = g)
                       client_apps)
                in
                arm_plane
                  ~targets:[ Node.addr gw ]
                  ~on_swap:(fun ~program:_ ~variant ->
                    if variant = "failover" then start_prober g)
                  ~signals:
                    (rate_signals
                       (fun () -> mine Http_app.Client.retries)
                       (fun () -> mine Http_app.Client.completed)))
              gateways)
  in
  let adaptation =
    match (config.coordination, adaptation_planes) with
    | Coordinated, plane :: _ -> Some plane
    | Independent, _ | _, [] -> None
  in
  Topology.run_until topo ~stop:config.duration;
  let completed =
    List.fold_left
      (fun acc app ->
        match app with
        | Some app -> acc + Http_app.Client.completed app
        | None -> acc)
      0 client_apps
  in
  let response_sum, response_n =
    List.fold_left
      (fun (sum, n) app ->
        match app with
        | Some app when Http_app.Client.completed app > 0 ->
            ( sum
              +. Http_app.Client.mean_response_time app
                 *. float_of_int (Http_app.Client.completed app),
              n + Http_app.Client.completed app )
        | Some _ | None -> (sum, n))
      (0.0, 0) client_apps
  in
  let measured = config.duration -. config.warmup in
  (* Aggregate the per-client response-time distributions. *)
  let all_times = Netsim.Summary.create () in
  List.iter
    (fun app ->
      match app with
      | Some app ->
          Netsim.Summary.merge ~into:all_times (Http_app.Client.response_times app)
      | None -> ())
    client_apps;
  let labels =
    [
      ("experiment", "http");
      ("setup", setup_name setup);
      ("workers", string_of_int workers);
    ]
  in
  List.iter
    (fun (name, value) -> Obs.Registry.set (Obs.Registry.gauge ~labels name) value)
    [
      ("asp.summary.replies_per_s", float_of_int completed /. measured);
      ("asp.summary.p95_response_ms",
       Netsim.Summary.percentile all_times 95.0 *. 1000.0);
    ];
  {
    workers;
    replies_per_s = float_of_int completed /. measured;
    mean_response_ms =
      (if response_n = 0 then 0.0
       else response_sum /. float_of_int response_n *. 1000.0);
    p95_response_ms = Netsim.Summary.percentile all_times 95.0 *. 1000.0;
    gateway_requests = read_gateway_requests ();
    server_loads =
      ( Http_app.Server.requests_served server0,
        Http_app.Server.requests_served server1 );
    client_retries = sum_clients Http_app.Client.retries;
    adaptation = Option.map Adapt.Plane.stats adaptation;
    adaptations = List.map Adapt.Plane.stats adaptation_planes;
  }

let run_sweep config setup ~workers_list =
  List.map (fun workers -> run_point config setup ~workers) workers_list
