module Node = Netsim.Node
module Packet = Netsim.Packet
module Payload = Netsim.Payload

(* ~21000 cycles on the paper's 170 MHz Ultra-1 — the kernel packet path
   plus header rewrite and connection lookup. The JIT-compiled ASP matches
   built-in C (the paper's central performance claim); interpretation pays
   the factors measured by the `backends` microbenchmark. *)
let gateway_cost_compiled = 125e-6

let gateway_cost = function
  | "interp" -> gateway_cost_compiled *. 10.0
  | "bytecode" -> gateway_cost_compiled *. 2.0
  | _ -> gateway_cost_compiled

type strategy = Modulo | Source_hash | Weighted of int * int

let strategy_name = function
  | Modulo -> "modulo"
  | Source_hash -> "source-hash"
  | Weighted (a, b) -> Printf.sprintf "weighted %d:%d" a b

(* The body of pickServer(count, client) for each strategy. *)
let pick_body = function
  | Modulo -> "count mod 2"
  | Source_hash -> "(hostBits(client) + hostBits(client) / 256) mod 2"
  | Weighted (a, b) ->
      Printf.sprintf "if count mod %d < %d then 0 else 1" (a + b) a

let gateway_program ?(port = 80) ?(strategy = Modulo) ~vip
    ~servers:(server0, server1) () =
  Printf.sprintf
    {|-- Load-balancing HTTP gateway (paper Fig. 2), strategy: %s.
-- Requests addressed to the virtual server pick a physical server; the
-- connection table pins later packets of the same connection; responses
-- are rewritten back to the virtual address.
val virtualServer : host = %s
val server0 : host = %s
val server1 : host = %s
val httpPort : int = %d

fun pickServer(count : int, client : host) : int =
  %s

channel network(ps : int, ss : ((host*int), int) hash_table, p : ip*tcp*blob)
initstate mkTable(256) is
  let
    val iph : ip = #1 p
    val tcph : tcp = #2 p
    val body : blob = #3 p
  in
    if ipDst(iph) = virtualServer andalso tcpDst(tcph) = httpPort then
      -- incoming HTTP request
      let
        val conn : (host*int) = (ipSrc(iph), tcpSrc(tcph))
        val chosen : int =
          if tblMem(ss, conn) then tblGet(ss, conn, 0)
          else pickServer(ps, ipSrc(iph))
      in
        (tblSet(ss, conn, chosen);
         if chosen = 0 then
           OnRemote(network, (ipDestSet(iph, server0), tcph, body))
         else
           OnRemote(network, (ipDestSet(iph, server1), tcph, body));
         (ps + 1, ss))
      end
    else
      if tcpSrc(tcph) = httpPort
         andalso (ipSrc(iph) = server0 orelse ipSrc(iph) = server1) then
        -- response from a physical server: restore the virtual address
        (OnRemote(network, (ipSrcSet(iph, virtualServer), tcph, body));
         (ps, ss))
      else
        (OnRemote(network, p); (ps, ss))
  end
|}
    (strategy_name strategy) vip server0 server1 port (pick_body strategy)

let failover_gateway_program ?(port = 80) ~vip ~servers:(server0, server1) () =
  Printf.sprintf
    {|-- Fault-tolerant load-balancing gateway (paper 5 future work).
-- The protocol state is (health, count): health packs one up/down bit per
-- physical server; a health monitor flips bits through the "health"
-- channel. New connections avoid downed servers; connections pinned to a
-- server that has since died are re-routed to the survivor.
val virtualServer : host = %s
val server0 : host = %s
val server1 : host = %s
val httpPort : int = %d

protostate int*int = (3, 0)    -- both servers up, zero requests routed

fun up(health : int, index : int) : bool =
  if index = 0 then health mod 2 = 1 else health / 2 mod 2 = 1

fun pick(health : int, count : int, wanted : int) : int =
  if up(health, wanted) then wanted else
  if up(health, 1 - wanted) then 1 - wanted else wanted

-- Health updates: (server index, up?) on the tagged "health" channel.
channel health(ps : int*int, ss : int, p : ip*udp*int*bool) is
  let
    val health : int = #1 ps
    val index : int = #3 p
    val bit : int = if index = 0 then 1 else 2
    val cleared : int = health - (if up(health, index) then bit else 0)
    val updated : int = if #4 p then cleared + bit else cleared
  in
    (deliver(p); ((updated, #2 ps), ss))
  end

channel network(ps : int*int, ss : ((host*int), int) hash_table, p : ip*tcp*blob)
initstate mkTable(256) is
  let
    val health : int = #1 ps
    val count : int = #2 ps
    val iph : ip = #1 p
    val tcph : tcp = #2 p
    val body : blob = #3 p
  in
    if ipDst(iph) = virtualServer andalso tcpDst(tcph) = httpPort then
      let
        val conn : (host*int) = (ipSrc(iph), tcpSrc(tcph))
        val wanted : int =
          if tblMem(ss, conn) then tblGet(ss, conn, 0) else count mod 2
        val chosen : int = pick(health, count, wanted)
      in
        (tblSet(ss, conn, chosen);
         if chosen = 0 then
           OnRemote(network, (ipDestSet(iph, server0), tcph, body))
         else
           OnRemote(network, (ipDestSet(iph, server1), tcph, body));
         ((health, count + 1), ss))
      end
    else
      if tcpSrc(tcph) = httpPort
         andalso (ipSrc(iph) = server0 orelse ipSrc(iph) = server1) then
        (OnRemote(network, (ipSrcSet(iph, virtualServer), tcph, body));
         (ps, ss))
      else
        (OnRemote(network, p); (ps, ss))
  end
|}
    vip server0 server1 port

let health_packet ~gateway ~server_index ~up =
  let writer = Payload.Writer.create () in
  Payload.Writer.u32 writer server_index;
  Payload.Writer.u8 writer (if up then 1 else 0);
  Packet.udp ~chan_tag:"health" ~src:gateway ~dst:gateway ~src_port:0
    ~dst_port:0
    (Payload.Writer.finish writer)

let install_native_gateway ?(port = 80) node ~vip ~servers:(server0, server1)
    () =
  let connections : (Netsim.Addr.t * int, int) Hashtbl.t = Hashtbl.create 256 in
  let request_count = ref 0 in
  let hook node ~ifindex ~l2_dst packet =
    match packet.Packet.l4 with
    | Packet.Tcp tcp
      when Netsim.Addr.equal packet.Packet.dst vip && tcp.Packet.tcp_dst = port
      ->
        let conn = (packet.Packet.src, tcp.Packet.tcp_src) in
        let chosen =
          match Hashtbl.find_opt connections conn with
          | Some chosen -> chosen
          | None ->
              let chosen = !request_count mod 2 in
              Hashtbl.replace connections conn chosen;
              chosen
        in
        incr request_count;
        let target = if chosen = 0 then server0 else server1 in
        Node.forward node ~ifindex (Packet.with_dst packet target)
    | Packet.Tcp tcp
      when tcp.Packet.tcp_src = port
           && (Netsim.Addr.equal packet.Packet.src server0
              || Netsim.Addr.equal packet.Packet.src server1) ->
        Node.forward node ~ifindex (Packet.with_src packet vip)
    | Packet.Tcp _ | Packet.Udp _ | Packet.Raw ->
        Node.default_process node ~ifindex ~l2_dst packet
  in
  Node.set_hook node hook;
  request_count
