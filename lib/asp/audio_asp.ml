type policy = { mono16_above : int; mono8_above : int }

let default_policy = { mono16_above = 950; mono8_above = 1150 }

(* For capacity faults rather than offered-load contention: the stream
   itself is ~176 kB/s at stereo16, ~88 at mono16, ~44 at mono8, so these
   thresholds settle at mono16 whenever the audio is the dominant flow —
   the right shape when a congestion fault has shrunk the segment rather
   than a competing load having filled it. The static default policy
   cannot see a capacity change (linkLoad measures offered traffic); the
   closed-loop adaptation plane swaps this variant in when drop-rate
   signals say the segment no longer fits the stream. *)
let conservative_policy = { mono16_above = 50; mono8_above = 120 }

let router_program ?(policy = default_policy) ?(port = Audio_app.audio_port)
    ~iface () =
  Printf.sprintf
    {|-- Audio bandwidth adaptation (router side).
-- Degrades the audio stream when the outgoing segment saturates;
-- measurement is local to the router, so adaptation is immediate.
val audioPort : int = %d
val mono16Above : int = %d
val mono8Above : int = %d
val outIface : int = %d

fun targetQuality(load : int) : int =
  if load > mono8Above then 2 else
  if load > mono16Above then 1 else 0

channel network(ps : int, ss : int, p : ip*udp*blob) is
  let
    val iph : ip = #1 p
    val udph : udp = #2 p
    val body : blob = #3 p
  in
    if udpDst(udph) = audioPort then
      let
        val q : int = targetQuality(linkLoad(outIface))
      in
        try
          (OnRemote(network, (iph, udph, audioDegrade(body, q))); (q, ss))
        handle BadAudio =>
          -- Not an audio frame after all: forward untouched.
          (OnRemote(network, p); (ps, ss))
        end
      end
    else
      (OnRemote(network, p); (ps, ss))
  end
|}
    port policy.mono16_above policy.mono8_above iface

let client_program ?(port = Audio_app.audio_port) () =
  Printf.sprintf
    {|-- Audio restoration (client side): re-expand degraded frames to the
-- player's native 16-bit stereo format, so the player needs no change.
val audioPort : int = %d

channel network(ps : unit, ss : unit, p : ip*udp*blob) is
  let
    val iph : ip = #1 p
    val udph : udp = #2 p
    val body : blob = #3 p
  in
    if udpDst(udph) = audioPort then
      try
        (deliver((iph, udph, audioRestore(body))); (ps, ss))
      handle BadAudio =>
        (deliver(p); (ps, ss))
      end
    else
      (deliver(p); (ps, ss))
  end
|}
    port
