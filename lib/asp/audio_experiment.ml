module Topology = Netsim.Topology
module Node = Netsim.Node
module Runtime = Planp_runtime.Runtime
module Audio_frame = Planp_runtime.Audio_frame

type config = {
  duration : float;
  adapt : bool;
  schedule : (float * float) list;
  backend : Planp_runtime.Backend.t;
  policy : Audio_asp.policy;
  sample_period : float;
  deploy : Deploy_mode.t;
  faults : Netsim.Faults.scenario option;
  adaptation : Adapt.Policy.t option;
  routers : int;
}

let fig6_config ?(adapt = true) ?(backend = Planp_jit.Backends.jit)
    ?(deploy = Deploy_mode.Preinstalled) ?faults ?adaptation ?(routers = 1) () =
  {
    duration = 500.0;
    adapt;
    (* Loads in kB/s on the 1250 kB/s segment; chosen so the equilibria
       reproduce the paper's Fig. 6: heavy -> stable 8-bit mono, medium ->
       oscillates between 8- and 16-bit mono, light -> stable 16-bit mono. *)
    schedule = [ (0.0, 0.0); (100.0, 1150.0); (220.0, 1050.0); (340.0, 900.0) ];
    backend;
    policy = Audio_asp.default_policy;
    sample_period = 2.0;
    deploy;
    faults;
    adaptation;
    routers;
  }

let quick_config ?(adapt = true) ?(backend = Planp_jit.Backends.jit)
    ?(deploy = Deploy_mode.Preinstalled) ?faults ?adaptation ?(routers = 1) () =
  {
    duration = 50.0;
    adapt;
    schedule = [ (0.0, 0.0); (10.0, 1150.0); (22.0, 1050.0); (34.0, 900.0) ];
    backend;
    policy = Audio_asp.default_policy;
    sample_period = 1.0;
    deploy;
    faults;
    adaptation;
    routers;
  }

(* The canned closed-loop policy: swap the router ASP to the conservative
   variant when the client segment starts dropping frames (a capacity
   fault the static thresholds cannot see), probe back to the default
   thresholds once drops stay quiet, and guard every swap with the
   delivered-frame rate. Long recover hold + cooldown bound the ping-pong
   while a congestion window is still open. *)
let adaptive_policy () =
  match
    Adapt.Policy.parse
      {|period 0.5
alpha 0.4
rule degrade: when drop_rate > 5 for 0.5 cooldown 6 do swap audio-router conservative
rule recover: when drop_rate < 0.5 for 8 cooldown 12 do swap audio-router default
guard goodput window 4 min-ratio 0.5
|}
  with
  | Ok policy -> policy
  | Error msg -> failwith ("Audio_experiment.adaptive_policy: " ^ msg)

type result = {
  series : (float * float) list;
  frames_sent : int;
  frames_received : int;
  wire_quality_counts : int * int * int;
  silent_periods : int;
  silent_frames : int;
  segment_drops : int;
  adaptation : Adapt.Plane.stats option;
}

(* Passive wire measurement on the client segment: count only frames of the
   audio flow, decode their quality — how Fig. 6's "bandwidth used by the
   audio traffic" was measured. *)
type wire_monitor = {
  wire_stat : Netsim.Flowstat.t;
  mutable wq_stereo16 : int;
  mutable wq_mono16 : int;
  mutable wq_mono8 : int;
}

let attach_wire_monitor segment =
  let mon =
    { wire_stat = Netsim.Flowstat.create (); wq_stereo16 = 0; wq_mono16 = 0;
      wq_mono8 = 0 }
  in
  Netsim.Segment.set_tap segment (fun ~at ~l2_dst:_ packet ->
      match packet.Netsim.Packet.l4 with
      | Netsim.Packet.Udp { Netsim.Packet.udp_dst; _ }
        when udp_dst = Audio_app.audio_port -> (
          Netsim.Flowstat.record mon.wire_stat ~now:at
            (Netsim.Packet.wire_size packet);
          match Audio_frame.decode packet.Netsim.Packet.body with
          | Some frame -> (
              match frame.Audio_frame.quality with
              | Audio_frame.Stereo16 -> mon.wq_stereo16 <- mon.wq_stereo16 + 1
              | Audio_frame.Mono16 -> mon.wq_mono16 <- mon.wq_mono16 + 1
              | Audio_frame.Mono8 -> mon.wq_mono8 <- mon.wq_mono8 + 1)
          | None -> ())
      | Netsim.Packet.Udp _ | Netsim.Packet.Tcp _ | Netsim.Packet.Raw -> ());
  mon

let run config =
  if config.routers < 1 then
    invalid_arg "Audio_experiment: routers must be >= 1";
  let topo = Topology.create () in
  let server = Topology.add_host topo "audio-server" "10.1.0.1" in
  (* One router keeps the classic Fig. 5 names and addresses (byte
     identical to the pre-fleet experiment); [routers >= 2] chains
     relay routers server - router0 - .. - router(n-1) - segment, all
     running the same distillation ASP so a retune must reach every hop
     through one staged rollout. *)
  let routers =
    if config.routers = 1 then [ Topology.add_host topo "router" "10.1.0.254" ]
    else
      List.init config.routers (fun i ->
          Topology.add_host topo
            (Printf.sprintf "router%d" i)
            (Printf.sprintf "10.1.%d.254" i))
  in
  let client = Topology.add_host topo "client" "10.2.0.10" in
  let sink = Topology.add_host topo "load-sink" "10.2.0.99" in
  let loadgen_node = Topology.add_host topo "load-generator" "10.2.0.98" in
  ignore
    (Topology.connect topo ~name:"backbone" ~bandwidth_bps:100e6
       ~latency:0.0005 server (List.hd routers));
  (* Relay hops run at backbone speed so the shared client segment stays
     the only congestion point, as in the paper's Fig. 5. *)
  List.iteri
    (fun i r ->
      if i > 0 then
        ignore
          (Topology.connect topo
             ~name:(Printf.sprintf "relay%d" (i - 1))
             ~bandwidth_bps:100e6 ~latency:0.0005
             (List.nth routers (i - 1))
             r))
    routers;
  let segment =
    Topology.segment topo ~name:"client-segment" ~bandwidth_bps:10e6
      ~latency:0.0005 ()
  in
  (* Every chain router sees its upstream hop first, so the downstream
     interface index is the same (1) fleet-wide — one program source,
     compiled against that index, is valid on every router. *)
  let router_seg_iface =
    Topology.attach topo segment (List.nth routers (config.routers - 1))
  in
  ignore (Topology.attach topo segment client);
  ignore (Topology.attach topo segment sink);
  ignore (Topology.attach topo segment loadgen_node);
  Topology.compute_routes topo;
  (* Names resolvable by fault scenarios: "backbone", "client-segment",
     and every node name above. *)
  Option.iter
    (fun scenario -> ignore (Netsim.Faults.arm topo scenario))
    config.faults;
  let wire = attach_wire_monitor segment in
  let wire_series =
    Netsim.Flowstat.Series.attach (Topology.engine topo) wire.wire_stat
      ~period:config.sample_period ~until:config.duration
  in
  (* The receiver must be a group member before the source starts. *)
  let audio_client = Audio_app.Client.attach client () in
  let source = Audio_app.Source.start server ~until:config.duration () in
  ignore
    (Loadgen.start loadgen_node ~dst:(Node.addr sink) ~schedule:config.schedule
       ~until:config.duration ());
  let plane =
    if config.adapt then
      (* Preinstalled puts the ASPs straight into the runtimes; In_band
         ships them from the audio server over the same links the audio
         will use (the transfer completes milliseconds into the run, well
         before the first congestion phase). *)
      Some
        (Deploy_mode.install config.deploy ~backend:config.backend
           ~controller:server
           ~programs:
             (List.map
                (fun r ->
                  ( r,
                    "audio-router",
                    Audio_asp.router_program ~policy:config.policy
                      ~iface:router_seg_iface () ))
                routers
             @ [ (client, "audio-client", Audio_asp.client_program ()) ])
           ())
    else None
  in
  let adaptation =
    match config.adaptation with
    | None -> None
    | Some policy when Adapt.Policy.is_empty policy ->
        (* Arms nothing; bit-identical to [adaptation = None] (pinned by
           the golden-parity test). *)
        Some
          (Adapt.Plane.arm
             ~engine:(Topology.engine topo)
             ~until:config.duration ~signals:[] policy)
    | Some policy ->
        let ctl =
          match Option.bind plane Deploy_mode.controller with
          | Some ctl -> ctl
          | None ->
              invalid_arg
                "Audio_experiment: adaptation needs adapt = true and deploy \
                 = In_band (hot-swaps ride the deploy daemons)"
        in
        (* [tuned] carries retuned distillation thresholds; [Retune]
           actions adjust it and hot-swap the router ASP so the change
           takes effect mid-run, and later "default" swaps keep it. *)
        let tuned = ref config.policy in
        let variant_policy = function
          | "default" -> Some !tuned
          | "conservative" -> Some Audio_asp.conservative_policy
          | _ -> None
        in
        let backend_name = config.backend.Planp_runtime.Backend.backend_name in
        let router_addrs = List.map Node.addr routers in
        let on_retune ~param ~value =
          (match param with
          | "mono16_above" ->
              tuned := { !tuned with Audio_asp.mono16_above = int_of_float value }
          | "mono8_above" ->
              tuned := { !tuned with Audio_asp.mono8_above = int_of_float value }
          | _ -> ());
          let source =
            Audio_asp.router_program ~policy:!tuned ~iface:router_seg_iface ()
          in
          match router_addrs with
          | [ target ] ->
              Deploy.Controller.deploy ctl ~backend:backend_name
                ~authenticated:false ~target ~name:"audio-router" ~source
                ~on_done:(fun _ -> ())
                ()
          | targets ->
              (* The retuned thresholds must land on every chain hop, or
                 the strictest remaining router keeps distilling. *)
              Deploy.Controller.rollout ctl ~backend:backend_name
                ~concurrency:2 ~on_nak:Deploy.Controller.Abort ~targets
                ~name:"audio-router" ~source
                ~on_done:(fun _ -> ())
                ()
        in
        let env =
          {
            Adapt.Plane.de_controller = ctl;
            de_backend = backend_name;
            de_targets_of =
              (fun program ->
                if program = "audio-router" then router_addrs else []);
            de_variant_of =
              (fun ~program ~variant ->
                if program <> "audio-router" then None
                else
                  Option.map
                    (fun policy ->
                      {
                        Adapt.Plane.v_source =
                          Audio_asp.router_program ~policy
                            ~iface:router_seg_iface ();
                        v_authenticated = false;
                      })
                    (variant_policy variant));
            de_concurrency = 2;
            de_nak_policy = Deploy.Controller.Abort;
            de_nak_quarantine = 3;
          }
        in
        Some
          (Adapt.Plane.arm ~env ~on_retune
             ~active:[ ("audio-router", "default") ]
             ~engine:(Topology.engine topo)
             ~until:config.duration
             ~signals:
               [
                 ( "drop_rate",
                   Adapt.Monitor.Counter_rate
                     (Obs.Registry.counter
                        ~labels:[ ("segment", "client-segment") ]
                        "netsim.segment.drops") );
                 ( "goodput",
                   Adapt.Monitor.Rate_of
                     (fun () ->
                       float_of_int
                         (Audio_app.Client.frames_received audio_client)) );
               ]
             policy)
  in
  (* Run slightly past the end so frames in flight at [duration] land. *)
  Topology.run_until topo ~stop:(config.duration +. 0.5);
  let frames_sent = Audio_app.Source.frames_sent source in
  let silent_periods, silent_frames =
    Audio_app.Client.silent_periods audio_client ~frames_expected:frames_sent
  in
  let labels = [ ("experiment", "audio") ] in
  List.iter
    (fun (name, value) ->
      Obs.Registry.set (Obs.Registry.gauge ~labels name) (float_of_int value))
    [
      ("asp.summary.frames_sent", frames_sent);
      ("asp.summary.frames_received",
       Audio_app.Client.frames_received audio_client);
      ("asp.summary.silent_periods", silent_periods);
      ("asp.summary.silent_frames", silent_frames);
      ("asp.summary.segment_drops", Netsim.Segment.drops segment);
    ];
  {
    series =
      List.map
        (fun (time, bps) -> (time, bps /. 8.0 /. 1000.0))
        (Netsim.Flowstat.Series.points wire_series);
    frames_sent;
    frames_received = Audio_app.Client.frames_received audio_client;
    wire_quality_counts = (wire.wq_stereo16, wire.wq_mono16, wire.wq_mono8);
    silent_periods;
    silent_frames;
    segment_drops = Netsim.Segment.drops segment;
    adaptation = Option.map Adapt.Plane.stats adaptation;
  }
