module Topology = Netsim.Topology
module Node = Netsim.Node
module Runtime = Planp_runtime.Runtime
module Audio_frame = Planp_runtime.Audio_frame

type config = {
  duration : float;
  adapt : bool;
  schedule : (float * float) list;
  backend : Planp_runtime.Backend.t;
  policy : Audio_asp.policy;
  sample_period : float;
  deploy : Deploy_mode.t;
  faults : Netsim.Faults.scenario option;
}

let fig6_config ?(adapt = true) ?(backend = Planp_jit.Backends.jit)
    ?(deploy = Deploy_mode.Preinstalled) ?faults () =
  {
    duration = 500.0;
    adapt;
    (* Loads in kB/s on the 1250 kB/s segment; chosen so the equilibria
       reproduce the paper's Fig. 6: heavy -> stable 8-bit mono, medium ->
       oscillates between 8- and 16-bit mono, light -> stable 16-bit mono. *)
    schedule = [ (0.0, 0.0); (100.0, 1150.0); (220.0, 1050.0); (340.0, 900.0) ];
    backend;
    policy = Audio_asp.default_policy;
    sample_period = 2.0;
    deploy;
    faults;
  }

let quick_config ?(adapt = true) ?(backend = Planp_jit.Backends.jit)
    ?(deploy = Deploy_mode.Preinstalled) ?faults () =
  {
    duration = 50.0;
    adapt;
    schedule = [ (0.0, 0.0); (10.0, 1150.0); (22.0, 1050.0); (34.0, 900.0) ];
    backend;
    policy = Audio_asp.default_policy;
    sample_period = 1.0;
    deploy;
    faults;
  }

type result = {
  series : (float * float) list;
  frames_sent : int;
  frames_received : int;
  wire_quality_counts : int * int * int;
  silent_periods : int;
  silent_frames : int;
  segment_drops : int;
}

(* Passive wire measurement on the client segment: count only frames of the
   audio flow, decode their quality — how Fig. 6's "bandwidth used by the
   audio traffic" was measured. *)
type wire_monitor = {
  wire_stat : Netsim.Flowstat.t;
  mutable wq_stereo16 : int;
  mutable wq_mono16 : int;
  mutable wq_mono8 : int;
}

let attach_wire_monitor segment =
  let mon =
    { wire_stat = Netsim.Flowstat.create (); wq_stereo16 = 0; wq_mono16 = 0;
      wq_mono8 = 0 }
  in
  Netsim.Segment.set_tap segment (fun ~at ~l2_dst:_ packet ->
      match packet.Netsim.Packet.l4 with
      | Netsim.Packet.Udp { Netsim.Packet.udp_dst; _ }
        when udp_dst = Audio_app.audio_port -> (
          Netsim.Flowstat.record mon.wire_stat ~now:at
            (Netsim.Packet.wire_size packet);
          match Audio_frame.decode packet.Netsim.Packet.body with
          | Some frame -> (
              match frame.Audio_frame.quality with
              | Audio_frame.Stereo16 -> mon.wq_stereo16 <- mon.wq_stereo16 + 1
              | Audio_frame.Mono16 -> mon.wq_mono16 <- mon.wq_mono16 + 1
              | Audio_frame.Mono8 -> mon.wq_mono8 <- mon.wq_mono8 + 1)
          | None -> ())
      | Netsim.Packet.Udp _ | Netsim.Packet.Tcp _ | Netsim.Packet.Raw -> ());
  mon

let run config =
  let topo = Topology.create () in
  let server = Topology.add_host topo "audio-server" "10.1.0.1" in
  let router = Topology.add_host topo "router" "10.1.0.254" in
  let client = Topology.add_host topo "client" "10.2.0.10" in
  let sink = Topology.add_host topo "load-sink" "10.2.0.99" in
  let loadgen_node = Topology.add_host topo "load-generator" "10.2.0.98" in
  ignore
    (Topology.connect topo ~name:"backbone" ~bandwidth_bps:100e6
       ~latency:0.0005 server router);
  let segment =
    Topology.segment topo ~name:"client-segment" ~bandwidth_bps:10e6
      ~latency:0.0005 ()
  in
  let router_seg_iface = Topology.attach topo segment router in
  ignore (Topology.attach topo segment client);
  ignore (Topology.attach topo segment sink);
  ignore (Topology.attach topo segment loadgen_node);
  Topology.compute_routes topo;
  (* Names resolvable by fault scenarios: "backbone", "client-segment",
     and every node name above. *)
  Option.iter
    (fun scenario -> ignore (Netsim.Faults.arm topo scenario))
    config.faults;
  let wire = attach_wire_monitor segment in
  let wire_series =
    Netsim.Flowstat.Series.attach (Topology.engine topo) wire.wire_stat
      ~period:config.sample_period ~until:config.duration
  in
  (* The receiver must be a group member before the source starts. *)
  let audio_client = Audio_app.Client.attach client () in
  let source = Audio_app.Source.start server ~until:config.duration () in
  ignore
    (Loadgen.start loadgen_node ~dst:(Node.addr sink) ~schedule:config.schedule
       ~until:config.duration ());
  if config.adapt then
    (* Preinstalled puts the ASPs straight into the runtimes; In_band ships
       them from the audio server over the same links the audio will use
       (the transfer completes milliseconds into the run, well before the
       first congestion phase). *)
    ignore
      (Deploy_mode.install config.deploy ~backend:config.backend
         ~controller:server
         ~programs:
           [
             ( router,
               "audio-router",
               Audio_asp.router_program ~policy:config.policy
                 ~iface:router_seg_iface () );
             (client, "audio-client", Audio_asp.client_program ());
           ]
         ());
  (* Run slightly past the end so frames in flight at [duration] land. *)
  Topology.run_until topo ~stop:(config.duration +. 0.5);
  let frames_sent = Audio_app.Source.frames_sent source in
  let silent_periods, silent_frames =
    Audio_app.Client.silent_periods audio_client ~frames_expected:frames_sent
  in
  let labels = [ ("experiment", "audio") ] in
  List.iter
    (fun (name, value) ->
      Obs.Registry.set (Obs.Registry.gauge ~labels name) (float_of_int value))
    [
      ("asp.summary.frames_sent", frames_sent);
      ("asp.summary.frames_received",
       Audio_app.Client.frames_received audio_client);
      ("asp.summary.silent_periods", silent_periods);
      ("asp.summary.silent_frames", silent_frames);
      ("asp.summary.segment_drops", Netsim.Segment.drops segment);
    ];
  {
    series =
      List.map
        (fun (time, bps) -> (time, bps /. 8.0 /. 1000.0))
        (Netsim.Flowstat.Series.points wire_series);
    frames_sent;
    frames_received = Audio_app.Client.frames_received audio_client;
    wire_quality_counts = (wire.wq_stereo16, wire.wq_mono16, wire.wq_mono8);
    silent_periods;
    silent_frames;
    segment_drops = Netsim.Segment.drops segment;
  }
