(** Extensible networks: the top-level API of this library.

    This module ties the pieces together the way the paper's system does:
    build a network ({!Netsim.Topology}), write an ASP in PLAN-P, [load] it
    onto routers and end hosts — verification first, then compilation by
    the chosen backend — and run the simulation. The submodule aliases
    re-export the full stack for direct use.

    {[
      let topo = Extnet.Topology.create () in
      let router = Extnet.Topology.add_host topo "r" "10.0.0.1" in
      ...
      match Extnet.load router ~source:my_asp () with
      | Ok handle -> ...
      | Error message -> ...
    ]} *)

module Topology = Netsim.Topology
module Node = Netsim.Node
module Addr = Netsim.Addr
module Packet = Netsim.Packet
module Payload = Netsim.Payload
module Engine = Netsim.Engine
module Segment = Netsim.Segment
module Tracer = Netsim.Tracer
module Faults = Netsim.Faults

(** Topology partitioning and the deterministic parallel driver: shard a
    built topology across OCaml 5 domains with {!Par.of_topology} and
    drive it with {!Par.run} / {!Par.run_until}. *)
module Partition = Netsim.Partition

module Par = Netsim.Par_engine
module Obs = Obs
module Lang = Planp
module Runtime = Planp_runtime.Runtime
module Value = Planp_runtime.Value
module Verifier = Planp_analysis.Verifier
module Backends = Planp_jit.Backends

(** The in-band deployment plane: {!Deploy.Controller} ships code
    capsules over {!Netsim.Reliable} streams to per-node
    {!Deploy.Daemon}s, which verify on arrival and hot-swap by epoch. *)
module Deploy = Deploy

(** The closed-loop adaptation plane: {!Adapt.Monitor}s sample
    {!Obs.Registry} metrics into smoothed condition signals, an
    {!Adapt.Policy} decides, and {!Adapt.Plane} executes hot-swaps
    through {!Deploy.Controller} epochs under a KPI guard. *)
module Adapt = Adapt

(** How [load] treats programs the verifier rejects. *)
type admission =
  | Verified  (** reject programs failing any safety analysis (default) *)
  | Authenticated
      (** the paper's privileged path: skip verification (for legitimate
          protocols the conservative analyses cannot prove, e.g. flooding) *)

(** [load node ~source ()] parses, type checks, verifies, compiles and
    installs a PLAN-P program on [node]. The runtime is created on first
    use and reused for subsequent loads on the same node.

    @param backend one of {!Backends.all} (default: the JIT)
    @param admission see {!admission}
    @param name diagnostic label *)
val load :
  ?backend:Planp_runtime.Backend.t ->
  ?admission:admission ->
  ?name:string ->
  Node.t ->
  source:string ->
  unit ->
  (Runtime.program, string) result

(** [load_exn] raises [Failure] instead. *)
val load_exn :
  ?backend:Planp_runtime.Backend.t ->
  ?admission:admission ->
  ?name:string ->
  Node.t ->
  source:string ->
  unit ->
  Runtime.program

(** [runtime_of node] is the PLAN-P runtime attached to [node], if any. *)
val runtime_of : Node.t -> Runtime.t option

(** [deploy nodes ~source ()] loads the same program on every node — the
    paper's §5 "protocol management functionalities, such as ASP
    deployment". Atomic: on the first failure, programs already installed
    by this call are uninstalled and the error returned. *)
val deploy :
  ?backend:Planp_runtime.Backend.t ->
  ?admission:admission ->
  ?name:string ->
  Node.t list ->
  source:string ->
  unit ->
  ((Node.t * Runtime.program) list, string) result

(** [undeploy handles] removes a deployment. *)
val undeploy : (Node.t * Runtime.program) list -> unit

(** [verify_source source] parses, type checks and runs the full verifier,
    returning the report or a front-end error message. *)
val verify_source : string -> (Verifier.report, string) result

(** [check_source source] stops after type checking. *)
val check_source : string -> (Planp.Typecheck.checked, string) result
