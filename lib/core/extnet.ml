module Topology = Netsim.Topology
module Node = Netsim.Node
module Addr = Netsim.Addr
module Packet = Netsim.Packet
module Payload = Netsim.Payload
module Engine = Netsim.Engine
module Segment = Netsim.Segment
module Tracer = Netsim.Tracer
module Faults = Netsim.Faults
module Partition = Netsim.Partition
module Par = Netsim.Par_engine
module Obs = Obs
module Lang = Planp
module Runtime = Planp_runtime.Runtime
module Value = Planp_runtime.Value
module Verifier = Planp_analysis.Verifier
module Backends = Planp_jit.Backends
module Deploy = Deploy
module Adapt = Adapt

type admission = Verified | Authenticated

(* One runtime per node, keyed by node name (names are unique within a
   topology; runtimes attach a hook so double-attach would shadow state). *)
let runtimes : (string, Runtime.t) Hashtbl.t = Hashtbl.create 16

let runtime_for node =
  match Hashtbl.find_opt runtimes (Node.name node) with
  | Some rt when Runtime.node rt == node -> rt
  | Some _ | None ->
      let rt = Runtime.attach node in
      Hashtbl.replace runtimes (Node.name node) rt;
      rt

let runtime_of node = Hashtbl.find_opt runtimes (Node.name node)

let load ?(backend = Planp_jit.Backends.jit) ?(admission = Verified)
    ?(name = "asp") node ~source () =
  let pre =
    match admission with
    | Verified -> Planp_analysis.Verifier.gate ()
    | Authenticated -> Planp_analysis.Verifier.gate ~authenticated:true ()
  in
  match Runtime.install ~backend ~pre ~name (runtime_for node) ~source () with
  | Ok program -> Ok program
  | Error error -> Error (Runtime.error_to_string error)

let load_exn ?backend ?admission ?name node ~source () =
  match load ?backend ?admission ?name node ~source () with
  | Ok program -> program
  | Error message -> failwith message

let deploy ?backend ?admission ?name nodes ~source () =
  let rec go installed = function
    | [] -> Ok (List.rev installed)
    | node :: rest -> (
        match load ?backend ?admission ?name node ~source () with
        | Ok program -> go ((node, program) :: installed) rest
        | Error message ->
            List.iter
              (fun (node, program) ->
                match runtime_of node with
                | Some rt -> Runtime.uninstall rt program
                | None -> ())
              installed;
            Error
              (Printf.sprintf "deploy failed on node %s: %s" (Node.name node)
                 message))
  in
  go [] nodes

let undeploy handles =
  List.iter
    (fun (node, program) ->
      match runtime_of node with
      | Some rt -> Runtime.uninstall rt program
      | None -> ())
    handles

let check_source source =
  Planp_runtime.Prims.install ();
  match
    try Ok (Planp.Parser.parse source) with
    | Planp.Lexer.Error (message, loc) ->
        Error (Printf.sprintf "%s at %s" message (Planp.Loc.to_string loc))
    | Planp.Parser.Error (message, loc) ->
        Error (Printf.sprintf "%s at %s" message (Planp.Loc.to_string loc))
  with
  | Error _ as error -> error
  | Ok ast -> (
      match Planp.Typecheck.check ~prims:Planp_runtime.Prim.type_lookup ast with
      | Ok checked -> Ok checked
      | Error type_error ->
          Error (Format.asprintf "%a" Planp.Typecheck.pp_error type_error))

let verify_source source =
  match check_source source with
  | Error _ as error -> error
  | Ok checked -> Ok (Verifier.verify checked.Planp.Typecheck.program)
