(** The closed-loop adaptation plane: a {!Monitor} feeding {!Signal}s, a
    {!Policy} evaluated every tick with hold times, hysteresis and
    cooldowns, and actions executed through the in-band deploy plane —
    hot-swapping ASP variants across a {e fleet} of targets as staged
    {!Deploy.Controller} rollouts, undeploying, retuning application
    parameters, or escalating. After every converged swap an optional KPI
    guard window compares the post-swap signal against its pre-swap
    baseline and rolls regressions back on every staged node at once
    (quarantining the variant for the run). A fleet is never left
    mixed-epoch: a partially-acked rollout is unwound — by the
    controller's abort restore under [Abort], by the plane under
    [Continue] — before the previous variant resumes as the active one,
    and a node that repeatedly NAKs is benched from later operations.

    Arming an empty policy ({!Policy.is_empty}) creates no monitor,
    schedules nothing and registers no metrics — runs are
    event-for-event identical to runs without an adaptation plane (the
    Faults precedent, pinned by the golden-parity tests). *)

(** One deployable flavour of a program. [v_authenticated] rides the
    privileged deploy path that skips on-node verification — required for
    variants that intentionally shed packets (e.g. the MPEG B-frame
    filter), which the delivery verifier would reject. *)
type variant = { v_source : string; v_authenticated : bool }

(** How swap/undeploy actions reach the network: the controller the
    program's daemons already know (so epochs stay ordered), lookups
    from policy names to target fleets and variant sources, and the
    staging discipline for coordinated rollouts. *)
type deploy_env = {
  de_controller : Deploy.Controller.t;
  de_backend : string;
  de_targets_of : string -> Netsim.Addr.t list;
      (** program name -> the daemon nodes it lives on, in stage order
          (empty when the program has no deploy target) *)
  de_variant_of : program:string -> variant:string -> variant option;
  de_concurrency : int;
      (** transfers in flight per rollout (see {!Deploy.Controller.rollout}) *)
  de_nak_policy : Deploy.Controller.nak_policy;
      (** [Abort]: first NAK stops the rollout and the controller
          restores already-staged nodes; [Continue]: every target is
          attempted and the plane unwinds partial convergence itself *)
  de_nak_quarantine : int;
      (** consecutive NAKs from one node before the plane benches it *)
}

(** One adaptation decision, for timelines and tests. *)
type event = {
  ev_at : float;
  ev_rule : string;
  ev_what : string;  (** the action, rendered *)
  ev_note : string;  (** outcome: deploy ACK/NAK, guard verdict, ... *)
}

type stats = {
  st_ticks : int;
  st_fired : int;  (** rule firings (actions started) *)
  st_swaps : int;  (** fleet-converged swaps *)
  st_failed_swaps : int;  (** NAK / timeout / abort / partial fleet *)
  st_undeploys : int;
  st_retunes : int;
  st_escalations : int;
  st_guard_checks : int;
  st_rollbacks : int;  (** guard regressions rolled back (fleet-wide) *)
  st_partial_rollbacks : int;
      (** partially-acked rollouts unwound to keep the fleet unmixed *)
  st_node_quarantines : int;  (** nodes benched for repeated NAKs *)
  st_events : event list;  (** chronological *)
}

type t

val arm :
  ?registry:Obs.Registry.t ->
  ?env:deploy_env ->
  ?par:Netsim.Par_engine.t ->
  ?active:(string * string) list ->
  ?on_retune:(param:string -> value:float -> unit) ->
  ?on_escalate:(reason:string -> unit) ->
  ?on_swap:(program:string -> variant:string -> unit) ->
  engine:Netsim.Engine.t ->
  until:float ->
  signals:(string * Monitor.source) list ->
  Policy.t ->
  t
(** [arm ~engine ~until ~signals policy] wires and starts the loop;
    monitor ticks run every [policy.period] until [until].

    @param env required when any rule swaps or undeploys
    @param par re-home the monitor onto this partitioned driver's window
      barriers ({!Monitor.start_paced}): each partition's engine samples
      its local registry after a merge-ordered flush, and decisions run
      with the whole fleet quiescent — paced runs are byte-identical for
      any domain count. Without [par] ticks are plain engine events.
    @param active the initially-deployed variant of each program, so the
      hysteresis check can suppress a swap to the variant already live
    @param on_swap runs after a swap converges on the whole fleet (e.g.
      start the HTTP health prober when the failover gateway activates)
    @raise Invalid_argument when a rule or guard references a signal not
      in [signals], a deploy action has no [env], or the env's
      [de_concurrency]/[de_nak_quarantine] are not positive. *)

val stats : t -> stats
val events : t -> event list

val active_variant : t -> string -> string option
(** The variant the plane believes is live for a program (fleet-wide:
    convergence or a clean rollback keeps every node on one variant). *)

val quarantined_nodes : t -> Netsim.Addr.t list
(** Nodes benched after [de_nak_quarantine] consecutive NAKs, in
    quarantine order. *)

val signal_value : t -> string -> float option
(** Current smoothed value of a wired signal. *)

val monitor : t -> Monitor.t option
(** [None] exactly when the policy was empty (nothing scheduled). *)
