(** The closed-loop adaptation plane: a {!Monitor} feeding {!Signal}s, a
    {!Policy} evaluated every tick with hold times, hysteresis and
    cooldowns, and actions executed through the in-band deploy plane —
    hot-swapping ASP variants as fresh {!Deploy.Controller} epochs,
    undeploying, retuning application parameters, or escalating. After
    every acknowledged swap an optional KPI guard window compares the
    post-swap signal against its pre-swap baseline and rolls regressions
    back to the previous epoch (quarantining the variant for the run).

    Arming an empty policy ({!Policy.is_empty}) creates no monitor,
    schedules nothing and registers no metrics — runs are
    event-for-event identical to runs without an adaptation plane (the
    Faults precedent, pinned by the golden-parity tests). *)

(** One deployable flavour of a program. [v_authenticated] rides the
    privileged deploy path that skips on-node verification — required for
    variants that intentionally shed packets (e.g. the MPEG B-frame
    filter), which the delivery verifier would reject. *)
type variant = { v_source : string; v_authenticated : bool }

(** How swap/undeploy actions reach the network: the controller the
    program's daemons already know (so epochs stay ordered), and lookups
    from policy names to targets and variant sources. *)
type deploy_env = {
  de_controller : Deploy.Controller.t;
  de_backend : string;
  de_target_of : string -> Netsim.Addr.t option;
      (** program name -> the daemon node it lives on *)
  de_variant_of : program:string -> variant:string -> variant option;
}

(** One adaptation decision, for timelines and tests. *)
type event = {
  ev_at : float;
  ev_rule : string;
  ev_what : string;  (** the action, rendered *)
  ev_note : string;  (** outcome: deploy ACK/NAK, guard verdict, ... *)
}

type stats = {
  st_ticks : int;
  st_fired : int;  (** rule firings (actions started) *)
  st_swaps : int;  (** acknowledged swaps *)
  st_failed_swaps : int;  (** NAK / timeout / abort *)
  st_undeploys : int;
  st_retunes : int;
  st_escalations : int;
  st_guard_checks : int;
  st_rollbacks : int;  (** guard regressions rolled back *)
  st_events : event list;  (** chronological *)
}

type t

val arm :
  ?registry:Obs.Registry.t ->
  ?env:deploy_env ->
  ?active:(string * string) list ->
  ?on_retune:(param:string -> value:float -> unit) ->
  ?on_escalate:(reason:string -> unit) ->
  ?on_swap:(program:string -> variant:string -> unit) ->
  engine:Netsim.Engine.t ->
  until:float ->
  signals:(string * Monitor.source) list ->
  Policy.t ->
  t
(** [arm ~engine ~until ~signals policy] wires and starts the loop;
    monitor ticks run every [policy.period] until [until].

    @param env required when any rule swaps or undeploys
    @param active the initially-deployed variant of each program, so the
      hysteresis check can suppress a swap to the variant already live
    @param on_swap runs after a swap is acknowledged (e.g. start the HTTP
      health prober when the failover gateway activates)
    @raise Invalid_argument when a rule or guard references a signal not
      in [signals], or a deploy action has no [env]. *)

val stats : t -> stats
val events : t -> event list

val active_variant : t -> string -> string option
(** The variant the plane believes is live for a program. *)

val signal_value : t -> string -> float option
(** Current smoothed value of a wired signal. *)

val monitor : t -> Monitor.t option
(** [None] exactly when the policy was empty (nothing scheduled). *)
