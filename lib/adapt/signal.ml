type t = {
  sg_name : string;
  sg_alpha : float;
  mutable sg_value : float;
  mutable sg_last : float;
  mutable sg_samples : int;
}

let create ?(alpha = 0.3) name =
  if not (alpha > 0.0 && alpha <= 1.0) then
    invalid_arg "Adapt.Signal.create: alpha outside (0, 1]";
  { sg_name = name; sg_alpha = alpha; sg_value = 0.0; sg_last = 0.0;
    sg_samples = 0 }

let name t = t.sg_name

let push t sample =
  t.sg_last <- sample;
  t.sg_value <-
    (if t.sg_samples = 0 then sample
     else (t.sg_alpha *. sample) +. ((1.0 -. t.sg_alpha) *. t.sg_value));
  t.sg_samples <- t.sg_samples + 1

let value t = t.sg_value
let last t = t.sg_last
let samples t = t.sg_samples
