(** A named condition signal: the EWMA-smoothed series a monitor feeds
    from one metric source, and the value policy predicates test.

    Smoothing: [value] after a push is
    [alpha * sample + (1 - alpha) * previous], seeded with the first raw
    sample. Higher [alpha] weights recent samples more (reacts faster,
    rides noise harder); the paper-style defaults live in the policies
    shipped with each experiment. *)

type t

val create : ?alpha:float -> string -> t
(** [alpha] is the EWMA weight of the newest sample, in (0, 1]
    (default 0.3). @raise Invalid_argument outside that range. *)

val name : t -> string

val push : t -> float -> unit
(** Feed one raw sample (called by the owning monitor each tick). *)

val value : t -> float
(** Smoothed value; 0.0 before the first sample. *)

val last : t -> float
(** Most recent raw sample; 0.0 before the first. *)

val samples : t -> int
(** How many samples have been pushed. *)
