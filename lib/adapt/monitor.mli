(** The condition monitor: a periodic probe scheduled on the simulation
    engine that samples {!Obs.Registry} metrics (and application
    callbacks) into named, EWMA-smoothed {!Signal}s.

    Each tick first runs {!Netsim.Engine.flush} so components that batch
    per-packet counters (links, segments, the fault plane) publish before
    sampling — registry reads are exact at every probe instant, not just
    at run exit.

    Cost model (the Faults precedent): a monitor only exists when
    something armed it, and arming schedules plain engine timers bounded
    by [until]. A run that arms no monitor schedules nothing — the
    golden-parity tests pin runs with an empty adaptation policy
    event-for-event to runs without an adaptation plane. *)

(** Where a signal's raw sample comes from each tick. *)
type source =
  | Counter_rate of Obs.Registry.counter
      (** increase per second since the previous tick *)
  | Gauge of Obs.Registry.gauge  (** current gauge value *)
  | Quantile of Obs.Registry.histogram * float
      (** running q-quantile of everything observed so far
          (see {!Obs.Registry.quantile}) *)
  | Rate_of of (unit -> float)
      (** increase per second of a sampled cumulative quantity, for
          application state with no registry counter *)
  | Sample of (unit -> float)  (** raw value of a callback *)

type t

val create :
  ?registry:Obs.Registry.t ->
  period:float ->
  until:float ->
  Netsim.Engine.t ->
  t
(** A monitor ticking every [period] seconds from [period] to [until]
    (simulated time; bounded so a run driven to quiescence terminates).
    Nothing is scheduled until {!start}.
    @raise Invalid_argument when [period <= 0]. *)

val watch : t -> ?alpha:float -> name:string -> source -> Signal.t
(** Register a signal fed from [source] every tick. Also registers the
    [adapt.signal.value{signal=<name>}] gauge (sampled at snapshot time).
    @raise Invalid_argument if [name] is already watched or the monitor
    has started. *)

val on_tick : t -> (now:float -> unit) -> unit
(** [on_tick t hook] runs [hook] after each tick's sampling — where the
    policy engine evaluates its rules. Hooks run in registration order. *)

val start : t -> unit
(** Schedule the tick chain; idempotent. *)

val start_paced : t -> Netsim.Par_engine.t -> unit
(** Re-home the tick chain onto [par]'s window barriers
    ({!Netsim.Par_engine.add_pacer}): each tick runs with every partition
    quiescent and every engine clock forced (and flushed) to the tick
    time, so samples and decisions are byte-identical for any domain
    count. The tick cadence is the same [period]-to-[until] chain as
    {!start}. Idempotent with respect to {!start}. *)

val signal : t -> string -> Signal.t option
val signals : t -> Signal.t list
(** In registration order. *)

val ticks : t -> int
