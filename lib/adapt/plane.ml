module Engine = Netsim.Engine
module Addr = Netsim.Addr
module Controller = Deploy.Controller

type variant = { v_source : string; v_authenticated : bool }

type deploy_env = {
  de_controller : Controller.t;
  de_backend : string;
  de_targets_of : string -> Addr.t list;
  de_variant_of : program:string -> variant:string -> variant option;
  de_concurrency : int;
  de_nak_policy : Controller.nak_policy;
  de_nak_quarantine : int;
}

type event = {
  ev_at : float;
  ev_rule : string;
  ev_what : string;
  ev_note : string;
}

type stats = {
  st_ticks : int;
  st_fired : int;
  st_swaps : int;
  st_failed_swaps : int;
  st_undeploys : int;
  st_retunes : int;
  st_escalations : int;
  st_guard_checks : int;
  st_rollbacks : int;
  st_partial_rollbacks : int;
  st_node_quarantines : int;
  st_events : event list;
}

(* Per-rule evaluation state: when the predicate started holding
   continuously ([rs_since] < 0 when it does not hold) and when the rule
   last fired (for the cooldown). *)
type rule_state = {
  rs_rule : Policy.rule;
  rs_fired : Obs.Registry.counter;
  mutable rs_since : float;
  mutable rs_last_fired : float;
}

type t = {
  engine : Engine.t;
  policy : Policy.t;
  monitor : Monitor.t option;
  env : deploy_env option;
  resolve : string -> Signal.t; (* arm-time validated *)
  on_retune : param:string -> value:float -> unit;
  on_escalate : reason:string -> unit;
  on_swap : program:string -> variant:string -> unit;
  rule_states : rule_state list;
  mutable active : (string * string) list; (* program -> live variant *)
  mutable in_flight : string list; (* programs with an op or guard open *)
  mutable quarantined : (string * string) list; (* rolled-back variants *)
  (* Fleet health: consecutive NAKs per node, and the nodes benched for
     the rest of the run after [de_nak_quarantine] of them in a row. *)
  mutable node_naks : (Addr.t * int) list;
  mutable quarantined_nodes : Addr.t list;
  mutable events : event list; (* reverse chronological *)
  mutable fired : int;
  m_swaps_acked : Obs.Registry.counter;
  m_swaps_failed : Obs.Registry.counter;
  m_undeploys : Obs.Registry.counter;
  m_retunes : Obs.Registry.counter;
  m_escalations : Obs.Registry.counter;
  m_guard_checks : Obs.Registry.counter;
  m_guard_regressions : Obs.Registry.counter;
  m_rollbacks : Obs.Registry.counter;
  m_fleet_rollouts : Obs.Registry.counter;
  m_fleet_targets_acked : Obs.Registry.counter;
  m_fleet_targets_failed : Obs.Registry.counter;
  m_fleet_partial_rollbacks : Obs.Registry.counter;
  m_fleet_node_quarantines : Obs.Registry.counter;
  mutable n_swaps : int;
  mutable n_failed_swaps : int;
  mutable n_undeploys : int;
  mutable n_retunes : int;
  mutable n_escalations : int;
  mutable n_guard_checks : int;
  mutable n_rollbacks : int;
  mutable n_partial_rollbacks : int;
  mutable n_node_quarantines : int;
}

let record t ~rule ~what ~note =
  t.events <-
    { ev_at = Engine.now t.engine; ev_rule = rule; ev_what = what;
      ev_note = note }
    :: t.events

let rec eval t = function
  | Policy.Cmp { signal; cmp; threshold } -> (
      let value = Signal.value (t.resolve signal) in
      match cmp with
      | Policy.Gt -> value > threshold
      | Policy.Ge -> value >= threshold
      | Policy.Lt -> value < threshold
      | Policy.Le -> value <= threshold)
  | Policy.All predicates -> List.for_all (eval t) predicates

let release t program =
  t.in_flight <- List.filter (fun p -> p <> program) t.in_flight

let node_quarantined t addr = List.exists (Addr.equal addr) t.quarantined_nodes

(* Track per-node NAK streaks from a rollout's per-target outcomes; a
   node that NAKs [de_nak_quarantine] times in a row is benched for the
   rest of the run (excluded from subsequent fleet operations). *)
let note_target_outcome t ~rule ~program target outcome =
  match outcome with
  | Controller.Acked _ ->
      t.node_naks <- List.filter (fun (a, _) -> not (Addr.equal a target)) t.node_naks
  | Controller.Nakked _ ->
      let env = Option.get t.env in
      let streak =
        1
        + (match
             List.find_opt (fun (a, _) -> Addr.equal a target) t.node_naks
           with
          | Some (_, n) -> n
          | None -> 0)
      in
      t.node_naks <-
        (target, streak)
        :: List.filter (fun (a, _) -> not (Addr.equal a target)) t.node_naks;
      if streak >= env.de_nak_quarantine && not (node_quarantined t target) then begin
        t.quarantined_nodes <- t.quarantined_nodes @ [ target ];
        t.n_node_quarantines <- t.n_node_quarantines + 1;
        Obs.Registry.incr t.m_fleet_node_quarantines;
        record t ~rule
          ~what:(Printf.sprintf "quarantine node %s" (Addr.to_string target))
          ~note:
            (Printf.sprintf "%d consecutive NAKs on %s" streak program)
      end
  | Controller.Timed_out | Controller.Skipped | Controller.Aborted _ -> ()

let acked_targets outcomes =
  List.filter_map
    (fun (target, outcome) ->
      match outcome with Controller.Acked _ -> Some target | _ -> None)
    outcomes

let max_epoch outcomes =
  List.fold_left
    (fun acc (_, outcome) ->
      match outcome with
      | Controller.Acked { epoch; _ } -> max acc epoch
      | _ -> acc)
    0 outcomes

let first_failure outcomes =
  List.find_map
    (fun (_, outcome) ->
      match outcome with
      | Controller.Acked _ -> None
      | outcome -> Some (Controller.outcome_to_string outcome))
    outcomes

(* Restore a set of targets to the pre-swap state: rollback when the
   plane knew a previous variant (every target was on it), undeploy when
   the swap was the slot's first install. [on_done] receives whether
   every restore was acknowledged. *)
let restore_targets t ~previous ~targets ~program ~on_done =
  let env = Option.get t.env in
  match targets with
  | [] -> on_done true
  | targets -> (
      match previous with
      | Some _ ->
          Controller.rollback_fleet env.de_controller
            ~concurrency:env.de_concurrency ~targets ~name:program
            ~on_done:(fun outcomes ->
              on_done
                (List.for_all
                   (fun (_, o) ->
                     match o with Controller.Acked _ -> true | _ -> false)
                   outcomes))
            ()
      | None ->
          let waiting = ref (List.length targets) in
          let all_acked = ref true in
          List.iter
            (fun target ->
              Controller.undeploy env.de_controller ~target ~name:program
                ~on_done:(fun outcome ->
                  (match outcome with
                  | Controller.Acked _ -> ()
                  | _ -> all_acked := false);
                  decr waiting;
                  if !waiting = 0 then on_done !all_acked)
                ())
            targets)

(* The guard: [window] seconds after the fleet converges, the KPI must
   be at least [min_ratio] of its pre-swap baseline or the swap rolls
   back on every staged node at once (previous epoch if one exists,
   undeploy for a first install) and the variant is quarantined for the
   rest of the run. The program stays in-flight until the verdict so no
   other op races the window. *)
let schedule_guard t ~rule ~program ~variant ~previous ~baseline ~targets =
  match t.policy.Policy.guard with
  | None -> release t program
  | Some guard ->
      Engine.schedule_after t.engine ~delay:guard.Policy.g_window (fun () ->
          t.n_guard_checks <- t.n_guard_checks + 1;
          Obs.Registry.incr t.m_guard_checks;
          let post = Signal.value (t.resolve guard.Policy.g_signal) in
          if post >= guard.Policy.g_min_ratio *. baseline then begin
            record t ~rule ~what:(Printf.sprintf "guard %s" program)
              ~note:
                (Printf.sprintf "pass: %s %.3f >= %.2f x %.3f"
                   guard.Policy.g_signal post guard.Policy.g_min_ratio baseline);
            release t program
          end
          else begin
            Obs.Registry.incr t.m_guard_regressions;
            t.quarantined <- (program, variant) :: t.quarantined;
            record t ~rule ~what:(Printf.sprintf "guard %s" program)
              ~note:
                (Printf.sprintf
                   "regression: %s %.3f < %.2f x %.3f, rolling back"
                   guard.Policy.g_signal post guard.Policy.g_min_ratio baseline);
            restore_targets t ~previous ~targets ~program
              ~on_done:(fun restored ->
                release t program;
                if restored then begin
                  t.n_rollbacks <- t.n_rollbacks + 1;
                  Obs.Registry.incr t.m_rollbacks;
                  (match previous with
                  | Some prev ->
                      t.active <-
                        (program, prev) :: List.remove_assoc program t.active
                  | None -> t.active <- List.remove_assoc program t.active);
                  record t ~rule
                    ~what:(Printf.sprintf "rollback %s" program)
                    ~note:
                      (if List.length targets = 1 then "ACK"
                       else
                         Printf.sprintf "fleet of %d restored"
                           (List.length targets))
                end
                else
                  record t ~rule
                    ~what:(Printf.sprintf "rollback %s" program)
                    ~note:"failed: a staged node did not acknowledge")
          end)

let start_swap t rule ~program ~variant =
  let env = Option.get t.env in
  let all = env.de_targets_of program in
  let targets = List.filter (fun a -> not (node_quarantined t a)) all in
  match (all, targets) with
  | [], _ ->
      record t ~rule ~what:(Printf.sprintf "swap %s %s" program variant)
        ~note:"failed: no deploy target for program"
  | _, [] ->
      record t ~rule ~what:(Printf.sprintf "swap %s %s" program variant)
        ~note:"failed: every target is quarantined"
  | _, targets -> (
      match env.de_variant_of ~program ~variant with
      | None ->
          record t ~rule ~what:(Printf.sprintf "swap %s %s" program variant)
            ~note:"failed: unknown variant"
      | Some spec ->
          t.in_flight <- program :: t.in_flight;
          let previous = List.assoc_opt program t.active in
          let baseline =
            match t.policy.Policy.guard with
            | Some guard -> Signal.value (t.resolve guard.Policy.g_signal)
            | None -> 0.0
          in
          let fleet = List.length targets in
          Obs.Registry.incr t.m_fleet_rollouts;
          Controller.rollout env.de_controller ~backend:env.de_backend
            ~authenticated:spec.v_authenticated
            ~concurrency:env.de_concurrency ~on_nak:env.de_nak_policy
            ~on_target:(fun target outcome ->
              note_target_outcome t ~rule ~program target outcome;
              if fleet > 1 then
                record t ~rule
                  ~what:
                    (Printf.sprintf "stage %s %s @ %s" program variant
                       (Addr.to_string target))
                  ~note:(Controller.outcome_to_string outcome))
            ~targets ~name:program ~source:spec.v_source
            ~on_done:(fun outcomes ->
              let acked = acked_targets outcomes in
              let n_acked = List.length acked in
              let n_failed = List.length outcomes - n_acked in
              Obs.Registry.add t.m_fleet_targets_acked n_acked;
              Obs.Registry.add t.m_fleet_targets_failed n_failed;
              if n_failed = 0 then begin
                t.n_swaps <- t.n_swaps + 1;
                Obs.Registry.incr t.m_swaps_acked;
                t.active <-
                  (program, variant) :: List.remove_assoc program t.active;
                record t ~rule
                  ~what:(Printf.sprintf "swap %s %s" program variant)
                  ~note:
                    (if fleet = 1 then
                       Printf.sprintf "acked epoch %d" (max_epoch outcomes)
                     else
                       Printf.sprintf "fleet of %d acked epoch %d" fleet
                         (max_epoch outcomes));
                t.on_swap ~program ~variant;
                schedule_guard t ~rule ~program ~variant ~previous ~baseline
                  ~targets:acked
              end
              else begin
                t.n_failed_swaps <- t.n_failed_swaps + 1;
                Obs.Registry.incr t.m_swaps_failed;
                let failure =
                  Option.value ~default:"unknown" (first_failure outcomes)
                in
                record t ~rule
                  ~what:(Printf.sprintf "swap %s %s" program variant)
                  ~note:
                    (if fleet = 1 then "failed: " ^ failure
                     else
                       Printf.sprintf "failed: %d/%d targets acked (%s)"
                         n_acked fleet failure);
                if n_acked = 0 then release t program
                else begin
                  (* A partial fleet must not stay mixed-epoch. Under
                     [Abort] the controller already restored the staged
                     nodes before reporting; under [Continue] the plane
                     unwinds them here. Either way the previous variant
                     stays the active one. *)
                  t.n_partial_rollbacks <- t.n_partial_rollbacks + 1;
                  Obs.Registry.incr t.m_fleet_partial_rollbacks;
                  match env.de_nak_policy with
                  | Controller.Abort ->
                      record t ~rule
                        ~what:(Printf.sprintf "restore %s" program)
                        ~note:
                          (Printf.sprintf
                             "%d staged node(s) restored by aborted rollout"
                             n_acked);
                      release t program
                  | Controller.Continue ->
                      restore_targets t ~previous ~targets:acked ~program
                        ~on_done:(fun restored ->
                          record t ~rule
                            ~what:(Printf.sprintf "restore %s" program)
                            ~note:
                              (if restored then
                                 Printf.sprintf "%d staged node(s) restored"
                                   n_acked
                               else
                                 "failed: a staged node did not acknowledge");
                          release t program)
                end
              end)
            ())

let start_undeploy t rule ~program =
  let env = Option.get t.env in
  let targets =
    List.filter (fun a -> not (node_quarantined t a)) (env.de_targets_of program)
  in
  match targets with
  | [] ->
      record t ~rule ~what:(Printf.sprintf "undeploy %s" program)
        ~note:"failed: no deploy target for program"
  | targets ->
      t.in_flight <- program :: t.in_flight;
      let fleet = List.length targets in
      let waiting = ref fleet in
      let worst = ref None in
      List.iter
        (fun target ->
          Controller.undeploy env.de_controller ~target ~name:program
            ~on_done:(fun outcome ->
              (match outcome with
              | Controller.Acked _ -> ()
              | outcome -> if !worst = None then worst := Some outcome);
              decr waiting;
              if !waiting = 0 then begin
                release t program;
                match !worst with
                | None ->
                    t.n_undeploys <- t.n_undeploys + 1;
                    Obs.Registry.incr t.m_undeploys;
                    t.active <- List.remove_assoc program t.active;
                    record t ~rule
                      ~what:(Printf.sprintf "undeploy %s" program)
                      ~note:
                        (if fleet = 1 then "ACK"
                         else Printf.sprintf "fleet of %d retired" fleet)
                | Some outcome ->
                    record t ~rule
                      ~what:(Printf.sprintf "undeploy %s" program)
                      ~note:(Controller.outcome_to_string outcome)
              end)
            ())
        targets

(* Decide whether a due rule actually does anything. Hysteresis lives
   here: a swap to the variant that is already live (or one that is
   quarantined, or whose program has an operation or guard window open)
   is suppressed without consuming the cooldown, so the rule re-arms
   cheaply on the next tick. *)
let fire t state now =
  let rule = state.rs_rule in
  let commit () =
    state.rs_last_fired <- now;
    t.fired <- t.fired + 1;
    Obs.Registry.incr state.rs_fired
  in
  match rule.Policy.rl_action with
  | Policy.Swap { program; variant } ->
      if
        List.assoc_opt program t.active = Some variant
        || List.mem (program, variant) t.quarantined
        || List.mem program t.in_flight
      then ()
      else begin
        commit ();
        start_swap t rule.Policy.rl_name ~program ~variant
      end
  | Policy.Undeploy { program } ->
      if
        (not (List.mem_assoc program t.active))
        || List.mem program t.in_flight
      then ()
      else begin
        commit ();
        start_undeploy t rule.Policy.rl_name ~program
      end
  | Policy.Retune { param; value } ->
      commit ();
      t.n_retunes <- t.n_retunes + 1;
      Obs.Registry.incr t.m_retunes;
      record t ~rule:rule.Policy.rl_name
        ~what:(Printf.sprintf "retune %s %g" param value)
        ~note:"applied";
      t.on_retune ~param ~value
  | Policy.Escalate { reason } ->
      commit ();
      t.n_escalations <- t.n_escalations + 1;
      Obs.Registry.incr t.m_escalations;
      record t ~rule:rule.Policy.rl_name
        ~what:(Printf.sprintf "escalate %S" reason)
        ~note:"raised";
      t.on_escalate ~reason

let on_tick t ~now =
  List.iter
    (fun state ->
      let rule = state.rs_rule in
      if eval t rule.Policy.rl_pred then begin
        if state.rs_since < 0.0 then state.rs_since <- now;
        if
          now -. state.rs_since >= rule.Policy.rl_hold
          && now -. state.rs_last_fired >= rule.Policy.rl_cooldown
        then fire t state now
      end
      else state.rs_since <- -1.0)
    t.rule_states

let needs_env = function
  | Policy.Swap _ | Policy.Undeploy _ -> true
  | Policy.Retune _ | Policy.Escalate _ -> false

let arm ?(registry = Obs.Registry.default) ?env ?par ?(active = [])
    ?(on_retune = fun ~param:_ ~value:_ -> ())
    ?(on_escalate = fun ~reason:_ -> ())
    ?(on_swap = fun ~program:_ ~variant:_ -> ()) ~engine ~until ~signals
    policy =
  (* An empty policy must leave the registry untouched too (golden
     parity): park its never-incremented counters in a private registry. *)
  let counter_registry =
    if Policy.is_empty policy then Obs.Registry.create () else registry
  in
  let counter name =
    Obs.Registry.counter ~registry:counter_registry
      ~help:"adaptation-plane activity" name
  in
  (match env with
  | Some env when env.de_concurrency <= 0 ->
      invalid_arg "Adapt.Plane.arm: de_concurrency must be positive"
  | Some env when env.de_nak_quarantine <= 0 ->
      invalid_arg "Adapt.Plane.arm: de_nak_quarantine must be positive"
  | Some _ | None -> ());
  if
    env = None
    && List.exists
         (fun rule -> needs_env rule.Policy.rl_action)
         policy.Policy.rules
  then
    invalid_arg
      "Adapt.Plane.arm: policy has swap/undeploy actions but no deploy env";
  let monitor, resolve =
    if Policy.is_empty policy then
      ( None,
        fun name ->
          invalid_arg
            (Printf.sprintf "Adapt.Plane: signal %s on an empty policy" name)
      )
    else begin
      let monitor =
        Monitor.create ~registry ~period:policy.Policy.period ~until engine
      in
      let table =
        List.map
          (fun (name, source) ->
            (name, Monitor.watch monitor ~alpha:policy.Policy.alpha ~name source))
          signals
      in
      List.iter
        (fun name ->
          if not (List.mem_assoc name table) then
            invalid_arg
              (Printf.sprintf
                 "Adapt.Plane.arm: policy references signal %s but it is not \
                  wired"
                 name))
        (Policy.signals_referenced policy);
      (Some monitor, fun name -> List.assoc name table)
    end
  in
  let t =
    {
      engine;
      policy;
      monitor;
      env;
      resolve;
      on_retune;
      on_escalate;
      on_swap;
      rule_states =
        List.map
          (fun rule ->
            {
              rs_rule = rule;
              rs_fired =
                Obs.Registry.counter ~registry
                  ~labels:[ ("rule", rule.Policy.rl_name) ]
                  ~help:"rule firings" "adapt.rules.fired";
              rs_since = -1.0;
              rs_last_fired = neg_infinity;
            })
          policy.Policy.rules;
      active;
      in_flight = [];
      quarantined = [];
      node_naks = [];
      quarantined_nodes = [];
      events = [];
      fired = 0;
      m_swaps_acked = counter "adapt.swaps.acked";
      m_swaps_failed = counter "adapt.swaps.failed";
      m_undeploys = counter "adapt.undeploys";
      m_retunes = counter "adapt.retunes";
      m_escalations = counter "adapt.escalations";
      m_guard_checks = counter "adapt.guard.checks";
      m_guard_regressions = counter "adapt.guard.regressions";
      m_rollbacks = counter "adapt.rollbacks";
      m_fleet_rollouts = counter "adapt.fleet.rollouts";
      m_fleet_targets_acked = counter "adapt.fleet.targets_acked";
      m_fleet_targets_failed = counter "adapt.fleet.targets_failed";
      m_fleet_partial_rollbacks = counter "adapt.fleet.partial_rollbacks";
      m_fleet_node_quarantines = counter "adapt.fleet.node_quarantines";
      n_swaps = 0;
      n_failed_swaps = 0;
      n_undeploys = 0;
      n_retunes = 0;
      n_escalations = 0;
      n_guard_checks = 0;
      n_rollbacks = 0;
      n_partial_rollbacks = 0;
      n_node_quarantines = 0;
    }
  in
  Option.iter
    (fun monitor ->
      Monitor.on_tick monitor (fun ~now -> on_tick t ~now);
      match par with
      | Some par -> Monitor.start_paced monitor par
      | None -> Monitor.start monitor)
    t.monitor;
  t

let stats t =
  {
    st_ticks = (match t.monitor with Some m -> Monitor.ticks m | None -> 0);
    st_fired = t.fired;
    st_swaps = t.n_swaps;
    st_failed_swaps = t.n_failed_swaps;
    st_undeploys = t.n_undeploys;
    st_retunes = t.n_retunes;
    st_escalations = t.n_escalations;
    st_guard_checks = t.n_guard_checks;
    st_rollbacks = t.n_rollbacks;
    st_partial_rollbacks = t.n_partial_rollbacks;
    st_node_quarantines = t.n_node_quarantines;
    st_events = List.rev t.events;
  }

let events t = List.rev t.events
let active_variant t program = List.assoc_opt program t.active
let quarantined_nodes t = t.quarantined_nodes

let signal_value t name =
  match t.monitor with
  | None -> None
  | Some monitor -> Option.map Signal.value (Monitor.signal monitor name)

let monitor t = t.monitor
