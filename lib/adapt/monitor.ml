module Engine = Netsim.Engine

type source =
  | Counter_rate of Obs.Registry.counter
  | Gauge of Obs.Registry.gauge
  | Quantile of Obs.Registry.histogram * float
  | Rate_of of (unit -> float)
  | Sample of (unit -> float)

type watch = {
  w_signal : Signal.t;
  w_source : source;
  (* Previous cumulative value for the rate sources, captured at [start]
     and updated every tick. *)
  mutable w_prev : float;
}

type t = {
  engine : Engine.t;
  period : float;
  until : float;
  mutable watches : watch list; (* reverse registration order *)
  mutable hooks : (now:float -> unit) list; (* reverse registration order *)
  mutable started : bool;
  mutable ticks : int;
  m_ticks : Obs.Registry.counter;
  registry : Obs.Registry.t;
}

let create ?(registry = Obs.Registry.default) ~period ~until engine =
  if period <= 0.0 then invalid_arg "Adapt.Monitor.create: period <= 0";
  {
    engine;
    period;
    until;
    watches = [];
    hooks = [];
    started = false;
    ticks = 0;
    m_ticks =
      Obs.Registry.counter ~registry ~help:"monitor probe ticks run"
        "adapt.monitor.ticks";
    registry;
  }

let cumulative watch =
  match watch.w_source with
  | Counter_rate counter -> float_of_int (Obs.Registry.count counter)
  | Rate_of f -> f ()
  | Gauge _ | Quantile _ | Sample _ -> 0.0

let watch t ?alpha ~name source =
  if t.started then invalid_arg "Adapt.Monitor.watch: monitor already started";
  if
    List.exists
      (fun watch -> Signal.name watch.w_signal = name)
      t.watches
  then invalid_arg (Printf.sprintf "Adapt.Monitor.watch: duplicate signal %s" name);
  let signal = Signal.create ?alpha name in
  let watch = { w_signal = signal; w_source = source; w_prev = 0.0 } in
  t.watches <- watch :: t.watches;
  Obs.Registry.set_fn
    (Obs.Registry.gauge ~registry:t.registry
       ~labels:[ ("signal", name) ]
       ~help:"smoothed condition-signal value" "adapt.signal.value")
    (fun () -> Signal.value signal);
  signal

let on_tick t hook = t.hooks <- hook :: t.hooks

let sample t watch =
  match watch.w_source with
  | Gauge gauge -> Obs.Registry.gauge_value gauge
  | Quantile (histogram, q) -> Obs.Registry.quantile histogram q
  | Sample f -> f ()
  | Counter_rate _ | Rate_of _ ->
      let now = cumulative watch in
      let rate = (now -. watch.w_prev) /. t.period in
      watch.w_prev <- now;
      rate

let tick_body t ~now =
  List.iter
    (fun watch -> Signal.push watch.w_signal (sample t watch))
    (List.rev t.watches);
  t.ticks <- t.ticks + 1;
  Obs.Registry.incr t.m_ticks;
  List.iter (fun hook -> hook ~now) (List.rev t.hooks)

let rec tick t () =
  (* Publish every batched counter before reading the registry. *)
  Engine.flush t.engine;
  let now = Engine.now t.engine in
  tick_body t ~now;
  if now +. t.period <= t.until then
    Engine.schedule_after t.engine ~delay:t.period (tick t)

let seed t =
  List.iter (fun watch -> watch.w_prev <- cumulative watch) t.watches

let start t =
  if not t.started then begin
    t.started <- true;
    seed t;
    if Engine.now t.engine +. t.period <= t.until then
      Engine.schedule_after t.engine ~delay:t.period (tick t)
  end

let start_paced t par =
  if not t.started then begin
    t.started <- true;
    seed t;
    (* The pacer flushes every partition's engine (in partition order)
       before firing, so the tick body reads a globally consistent
       registry without flushing here. *)
    Netsim.Par_engine.add_pacer par ~period:t.period ~until:t.until
      (fun ~now -> tick_body t ~now)
  end

let signal t name =
  List.find_map
    (fun watch ->
      if Signal.name watch.w_signal = name then Some watch.w_signal else None)
    t.watches

let signals t = List.rev_map (fun watch -> watch.w_signal) t.watches
let ticks t = t.ticks
