type cmp = Gt | Ge | Lt | Le

type predicate =
  | Cmp of { signal : string; cmp : cmp; threshold : float }
  | All of predicate list

type action =
  | Swap of { program : string; variant : string }
  | Undeploy of { program : string }
  | Retune of { param : string; value : float }
  | Escalate of { reason : string }

type rule = {
  rl_name : string;
  rl_pred : predicate;
  rl_hold : float;
  rl_cooldown : float;
  rl_action : action;
}

type guard = { g_signal : string; g_window : float; g_min_ratio : float }

type t = {
  period : float;
  alpha : float;
  rules : rule list;
  guard : guard option;
}

let default_period = 0.5
let default_alpha = 0.3

let empty =
  { period = default_period; alpha = default_alpha; rules = []; guard = None }

let is_empty t = t.rules = [] && t.guard = None

let cmp_to_string = function Gt -> ">" | Ge -> ">=" | Lt -> "<" | Le -> "<="

let action_to_string = function
  | Swap { program; variant } -> Printf.sprintf "swap %s %s" program variant
  | Undeploy { program } -> Printf.sprintf "undeploy %s" program
  | Retune { param; value } -> Printf.sprintf "retune %s %g" param value
  | Escalate { reason } -> Printf.sprintf "escalate %S" reason

let rec predicate_signals acc = function
  | Cmp { signal; _ } -> signal :: acc
  | All predicates -> List.fold_left predicate_signals acc predicates

let signals_referenced t =
  let from_rules =
    List.fold_left
      (fun acc rule -> predicate_signals acc rule.rl_pred)
      [] t.rules
  in
  let all =
    match t.guard with
    | Some guard -> guard.g_signal :: from_rules
    | None -> from_rules
  in
  List.sort_uniq String.compare all

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Bad of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Bad msg)) fmt

let float_tok what token =
  match float_of_string_opt token with
  | Some v -> v
  | None -> fail "%s: expected a number, got %S" what token

let cmp_of_token = function
  | ">" -> Gt
  | ">=" -> Ge
  | "<" -> Lt
  | "<=" -> Le
  | token -> fail "expected a comparison (> >= < <=), got %S" token

let strip_quotes s =
  let n = String.length s in
  if n >= 2 && s.[0] = '"' && s.[n - 1] = '"' then String.sub s 1 (n - 2)
  else s

(* when SIG CMP VAL [and SIG CMP VAL]* -> (predicate, rest after clauses) *)
let rec parse_clauses acc = function
  | signal :: cmp :: threshold :: rest ->
      let clause =
        Cmp
          {
            signal;
            cmp = cmp_of_token cmp;
            threshold = float_tok "threshold" threshold;
          }
      in
      (match rest with
      | "and" :: rest -> parse_clauses (clause :: acc) rest
      | rest -> (List.rev (clause :: acc), rest))
  | _ -> fail "incomplete condition: expected SIGNAL CMP VALUE"

let parse_action = function
  | [ "swap"; program; variant ] -> Swap { program; variant }
  | [ "undeploy"; program ] -> Undeploy { program }
  | [ "retune"; param; value ] ->
      Retune { param; value = float_tok "retune value" value }
  | "escalate" :: (_ :: _ as reason) ->
      Escalate { reason = strip_quotes (String.concat " " reason) }
  | tokens ->
      fail
        "bad action %S: expected swap PROGRAM VARIANT | undeploy PROGRAM | \
         retune PARAM VALUE | escalate REASON"
        (String.concat " " tokens)

let parse_rule tokens =
  let name, tokens =
    match tokens with
    | name :: "when" :: rest ->
        let name =
          if String.length name > 1 && name.[String.length name - 1] = ':' then
            String.sub name 0 (String.length name - 1)
          else name
        in
        (name, rest)
    | _ -> fail "expected: rule NAME: when ..."
  in
  let predicate, tokens = parse_clauses [] tokens in
  let hold, tokens =
    match tokens with
    | "for" :: hold :: rest -> (float_tok "hold time" hold, rest)
    | _ -> fail "rule %s: expected 'for HOLD' after the condition" name
  in
  (* [< 0.0] alone lets nan through (every comparison with nan is false),
     and an infinite hold can never be satisfied. *)
  if not (Float.is_finite hold) || hold < 0.0 then
    fail "rule %s: hold time out of range (must be finite and >= 0)" name;
  let cooldown, tokens =
    match tokens with
    | "cooldown" :: cooldown :: rest -> (float_tok "cooldown" cooldown, rest)
    | tokens -> (0.0, tokens)
  in
  if not (Float.is_finite cooldown) || cooldown < 0.0 then
    fail "rule %s: cooldown out of range (must be finite and >= 0)" name;
  let action =
    match tokens with
    | "do" :: action -> parse_action action
    | _ -> fail "rule %s: expected 'do ACTION'" name
  in
  {
    rl_name = name;
    rl_pred = (match predicate with [ p ] -> p | ps -> All ps);
    rl_hold = hold;
    rl_cooldown = cooldown;
    rl_action = action;
  }

let parse_guard = function
  | [ signal; "window"; window; "min-ratio"; ratio ] ->
      let window = float_tok "guard window" window in
      let ratio = float_tok "guard min-ratio" ratio in
      if not (Float.is_finite window && window > 0.0) then
        fail "guard: window must be finite and positive";
      if not (Float.is_finite ratio && ratio > 0.0) then
        fail "guard: min-ratio must be finite and positive";
      { g_signal = signal; g_window = window; g_min_ratio = ratio }
  | _ -> fail "expected: guard SIGNAL window SECONDS min-ratio RATIO"

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok { acc with rules = List.rev acc.rules }
    | line :: rest -> (
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        let tokens =
          List.filter
            (fun token -> token <> "")
            (String.split_on_char ' '
               (String.map (function '\t' -> ' ' | c -> c) line))
        in
        match
          match tokens with
          | [] -> acc
          | [ "period"; period ] ->
              let period = float_tok "period" period in
              if not (Float.is_finite period && period > 0.0) then
                fail "period must be finite and positive";
              { acc with period }
          | [ "alpha"; alpha ] ->
              let alpha = float_tok "alpha" alpha in
              if not (alpha > 0.0 && alpha <= 1.0) then
                fail "alpha must be in (0, 1]";
              { acc with alpha }
          | "rule" :: tokens ->
              let rule = parse_rule tokens in
              if
                List.exists
                  (fun existing -> existing.rl_name = rule.rl_name)
                  acc.rules
              then fail "duplicate rule name %S" rule.rl_name;
              { acc with rules = rule :: acc.rules }
          | "guard" :: tokens -> (
              match acc.guard with
              | Some _ -> fail "duplicate guard"
              | None -> { acc with guard = Some (parse_guard tokens) })
          | token :: _ -> fail "unknown directive %S" token
        with
        | acc -> go (lineno + 1) acc rest
        | exception Bad msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
  in
  go 1 empty lines
