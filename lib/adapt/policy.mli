(** Declarative adaptation policies: [when <predicate over signals> for
    <hold time> then <action>] rules with hysteresis and cooldowns, plus
    an optional post-swap KPI guard. The text format is documented in
    [doc/ADAPTATION.md]; each experiment also ships a canned policy built
    through this parser. *)

type cmp = Gt | Ge | Lt | Le

type predicate =
  | Cmp of { signal : string; cmp : cmp; threshold : float }
  | All of predicate list  (** conjunction ([and] in the text format) *)

type action =
  | Swap of { program : string; variant : string }
      (** hot-swap the named program to a variant as a fresh
          {!Deploy.Controller} epoch *)
  | Undeploy of { program : string }
  | Retune of { param : string; value : float }
      (** hand a parameter change to the embedding application *)
  | Escalate of { reason : string }
      (** signal a human / upper layer; no deploy-plane traffic *)

type rule = {
  rl_name : string;
  rl_pred : predicate;
  rl_hold : float;
      (** the predicate must hold continuously this long before firing
          (0 = first tick it holds) *)
  rl_cooldown : float;  (** minimum time between firings of this rule *)
  rl_action : action;
}

(** Post-swap guard: [g_window] seconds after a swap is acknowledged, the
    [g_signal] KPI (higher is better, e.g. goodput) must be at least
    [g_min_ratio] of its pre-swap baseline or the swap is rolled back to
    the previous epoch and the variant quarantined for the run. *)
type guard = { g_signal : string; g_window : float; g_min_ratio : float }

type t = {
  period : float;  (** monitor probe period, seconds *)
  alpha : float;  (** default EWMA weight for every signal *)
  rules : rule list;
  guard : guard option;
}

val empty : t
(** No rules, no guard; arming it schedules nothing (see {!Plane.arm}). *)

val is_empty : t -> bool

val signals_referenced : t -> string list
(** Every signal name the rules and guard test, sorted, deduplicated —
    what {!Plane.arm} validates against the wired signal set. *)

val parse : string -> (t, string) result
(** Parses the policy-file format documented in [doc/ADAPTATION.md]:
    {[
      # comments and blank lines are ignored
      period 0.5
      alpha 0.4
      rule degrade: when drop_rate > 5 for 1.0 cooldown 8 do swap audio-router conservative
      rule recover: when drop_rate < 0.5 and goodput > 40 for 4 do swap audio-router default
      rule shed: when drop_rate > 50 for 2 do undeploy mpeg-filter
      rule tune: when queue_delay > 0.25 for 1 do retune buffer 0.5
      rule bail: when retry_rate > 20 for 5 do escalate "retry storm"
      guard goodput window 4 min-ratio 0.5
    ]}
    The error string names the offending line — also for a duplicate
    rule name, and for out-of-range numbers (hold times and cooldowns
    must be finite and non-negative; period, guard window and min-ratio
    finite and positive). *)

val action_to_string : action -> string
val cmp_to_string : cmp -> string
