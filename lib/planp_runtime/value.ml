type ip_view = { vsrc : int; vdst : int; vttl : int }

type t =
  | Vint of int
  | Vbool of bool
  | Vstring of string
  | Vchar of char
  | Vunit
  | Vhost of int
  | Vblob of Netsim.Payload.t
  | Vip of ip_view
  | Vtcp of Netsim.Packet.tcp_header
  | Vudp of Netsim.Packet.udp_header
  | Vtuple of t array
  | Vtable of (t, t) Hashtbl.t

exception Planp_raise of string
exception Runtime_error of string

(* Interned booleans: comparisons on the per-packet path return these
   shared blocks instead of allocating a fresh [Vbool]. *)
let vtrue = Vbool true
let vfalse = Vbool false
let vbool b = if b then vtrue else vfalse

let rec equal a b =
  match (a, b) with
  | Vint x, Vint y -> x = y
  | Vbool x, Vbool y -> x = y
  | Vstring x, Vstring y -> String.equal x y
  | Vchar x, Vchar y -> x = y
  | Vunit, Vunit -> true
  | Vhost x, Vhost y -> x = y
  | Vblob x, Vblob y -> Netsim.Payload.equal x y
  | Vip x, Vip y -> x = y
  | Vtcp x, Vtcp y -> x = y
  | Vudp x, Vudp y -> x = y
  | Vtuple xs, Vtuple ys ->
      xs == ys
      || Array.length xs = Array.length ys
         &&
         let rec go i =
           i >= Array.length xs
           || (equal (Array.unsafe_get xs i) (Array.unsafe_get ys i)
              && go (i + 1))
         in
         go 0
  | Vtable x, Vtable y -> x == y
  | ( ( Vint _ | Vbool _ | Vstring _ | Vchar _ | Vunit | Vhost _ | Vblob _
      | Vip _ | Vtcp _ | Vudp _ | Vtuple _ | Vtable _ ),
      _ ) ->
      false

let compare_values a b =
  match (a, b) with
  | Vint x, Vint y -> Int.compare x y
  | Vchar x, Vchar y -> Char.compare x y
  | Vstring x, Vstring y -> String.compare x y
  | _ -> raise (Runtime_error "values are not orderable")

let rec default_of (ty : Planp.Ptype.t) =
  match ty with
  | Planp.Ptype.Tint -> Vint 0
  | Planp.Ptype.Tbool -> Vbool false
  | Planp.Ptype.Tstring -> Vstring ""
  | Planp.Ptype.Tchar -> Vchar '\000'
  | Planp.Ptype.Tunit -> Vunit
  | Planp.Ptype.Thost -> Vhost 0
  | Planp.Ptype.Ttuple components ->
      Vtuple (Array.of_list (List.map default_of components))
  | Planp.Ptype.Tblob | Planp.Ptype.Tip | Planp.Ptype.Ttcp | Planp.Ptype.Tudp
  | Planp.Ptype.Thash _ | Planp.Ptype.Thash_any ->
      raise
        (Runtime_error
           (Printf.sprintf "no default value for type %s"
              (Planp.Ptype.to_string ty)))

let host_string h =
  Printf.sprintf "%d.%d.%d.%d" ((h lsr 24) land 0xff) ((h lsr 16) land 0xff)
    ((h lsr 8) land 0xff) (h land 0xff)

let rec to_string = function
  | Vint n -> string_of_int n
  | Vbool b -> string_of_bool b
  | Vstring s -> s
  | Vchar c -> String.make 1 c
  | Vunit -> "()"
  | Vhost h -> host_string h
  | Vblob payload ->
      Printf.sprintf "<blob:%d>" (Netsim.Payload.length payload)
  | Vip { vsrc; vdst; vttl } ->
      Printf.sprintf "<ip %s->%s ttl=%d>" (host_string vsrc) (host_string vdst)
        vttl
  | Vtcp h ->
      Printf.sprintf "<tcp %d->%d>" h.Netsim.Packet.tcp_src
        h.Netsim.Packet.tcp_dst
  | Vudp h ->
      Printf.sprintf "<udp %d->%d>" h.Netsim.Packet.udp_src
        h.Netsim.Packet.udp_dst
  | Vtuple components ->
      "("
      ^ String.concat ", " (List.map to_string (Array.to_list components))
      ^ ")"
  | Vtable table -> Printf.sprintf "<table:%d>" (Hashtbl.length table)

let pp fmt value = Format.pp_print_string fmt (to_string value)

let type_error ~expected value =
  raise
    (Runtime_error
       (Printf.sprintf "expected %s, got %s" expected (to_string value)))

let as_int = function Vint n -> n | v -> type_error ~expected:"int" v
let as_bool = function Vbool b -> b | v -> type_error ~expected:"bool" v
let as_string = function Vstring s -> s | v -> type_error ~expected:"string" v
let as_char = function Vchar c -> c | v -> type_error ~expected:"char" v
let as_host = function Vhost h -> h | v -> type_error ~expected:"host" v
let as_blob = function Vblob b -> b | v -> type_error ~expected:"blob" v
let as_ip = function Vip h -> h | v -> type_error ~expected:"ip" v
let as_tcp = function Vtcp h -> h | v -> type_error ~expected:"tcp" v
let as_udp = function Vudp h -> h | v -> type_error ~expected:"udp" v
let as_tuple = function Vtuple t -> t | v -> type_error ~expected:"tuple" v
let as_table = function Vtable t -> t | v -> type_error ~expected:"hash_table" v
