type chan_exec =
  World.t -> ps:Value.t -> ss:Value.t -> pkt:Value.t -> Value.t * Value.t

type t = {
  backend_name : string;
  compile :
    Planp.Typecheck.checked ->
    globals:(string * Value.t) list ->
    (Planp.Ast.channel * chan_exec) list;
  profile : unit -> int * int;
  replay_credit : unit -> steps:int -> prims:int -> unit;
}
