module Ast = Planp.Ast
module Node = Netsim.Node
module Packet = Netsim.Packet

type stats = {
  mutable handled : int;
  mutable fallthrough : int;
  mutable errors : int;
}

type chan_slot = {
  chan : Ast.channel;
  exec : Backend.chan_exec;
  cache : Flowcache.t option;
  mutable chan_state : Value.t;
  mutable hits : int;
}

type program = {
  prog_name : string;
  mutable proto : Value.t;
  slots : chan_slot list;
  prog_profile : unit -> int * int;
  prog_credit : steps:int -> prims:int -> unit;
}

type t = {
  rt_node : Node.t;
  mutable programs : program list;  (* installation order *)
  mutable rt_epoch : int;  (* flow-cache invalidation epoch *)
  rt_stats : stats;
  m_handled : Obs.Registry.counter;
  m_fallthrough : Obs.Registry.counter;
  m_errors : Obs.Registry.counter;
  out : Buffer.t;
  resource_bound : int option;
}

type error =
  | Parse_error of string
  | Type_error of string
  | Rejected of string

let error_to_string = function
  | Parse_error message -> "parse error: " ^ message
  | Type_error message -> "type error: " ^ message
  | Rejected message -> "rejected: " ^ message

let node t = t.rt_node
let stats t = t.rt_stats
let epoch t = t.rt_epoch
let bump_epoch t = t.rt_epoch <- t.rt_epoch + 1
let installed_programs t = t.programs
let program_name program = program.prog_name
let proto_state program = program.proto

let channel_hits program =
  List.map
    (fun slot ->
      ( slot.chan.Ast.chan_name,
        Planp.Ptype.to_string slot.chan.Ast.pkt_type,
        slot.hits ))
    program.slots

let channel_state program chan_name index =
  let overloads =
    List.filter
      (fun slot -> String.equal slot.chan.Ast.chan_name chan_name)
      program.slots
  in
  List.nth_opt overloads index
  |> Option.map (fun slot -> slot.chan_state)

let output t = Buffer.contents t.out

(* The world visible to a program executing on this node for a packet that
   arrived on [ifindex]. *)
let make_world t ~ifindex =
  let node = t.rt_node in
  let engine = Node.engine node in
  {
    World.now = (fun () -> Netsim.Engine.now engine);
    node_addr = (fun () -> Node.addr node);
    iface_load_bps =
      (fun i ->
        if i >= 0 && i < Node.iface_count node then Node.iface_load_bps node i
        else 0.0);
    iface_capacity_bps =
      (fun i ->
        if i >= 0 && i < Node.iface_count node then
          Node.iface_capacity_bps node i
        else 0.0);
    incoming_iface = ifindex;
    emit =
      (fun target ~chan value ->
        let packet = Pkt_codec.encode ~chan value in
        let packet =
          match t.resource_bound with
          | Some bound when packet.Packet.ttl > bound ->
              { packet with Packet.ttl = bound }
          | Some _ | None -> packet
        in
        match target with
        | World.Remote -> Node.forward node ~ifindex packet
        | World.Neighbor -> (
            match Packet.decrement_ttl packet with
            | None -> ()
            | Some packet ->
                for out = 0 to Node.iface_count node - 1 do
                  if out <> ifindex then
                    Node.transmit node ~ifindex:out ~l2_dst:None
                      (Packet.clone packet)
                done));
    deliver =
      (fun value ->
        let packet = Pkt_codec.encode ~chan:Ast.network_channel value in
        Node.deliver_local node packet);
    print = (fun s -> Buffer.add_string t.out s);
  }

(* Install-time world: initializers may print but not touch the network. *)
let bootstrap_world t =
  let world = make_world t ~ifindex:(-1) in
  {
    world with
    World.emit =
      (fun _ ~chan:_ _ ->
        raise (Value.Runtime_error "initializer may not send packets"));
    deliver =
      (fun _ ->
        raise (Value.Runtime_error "initializer may not deliver packets"));
  }

let tag_matches slot (packet : Packet.t) =
  match packet.Packet.chan_tag with
  | None -> String.equal slot.chan.Ast.chan_name Ast.network_channel
  | Some tag -> String.equal slot.chan.Ast.chan_name tag

(* Find the first (program, slot, decoded packet) treating this packet. *)
let dispatch t packet =
  let rec find_program = function
    | [] -> None
    | program :: rest -> (
        let rec find_slot = function
          | [] -> None
          | slot :: slots ->
              if tag_matches slot packet then
                match Pkt_codec.decode slot.chan.Ast.pkt_type packet with
                | Some value -> Some (program, slot, value)
                | None -> find_slot slots
              else find_slot slots
        in
        match find_slot program.slots with
        | Some result -> Some result
        | None -> find_program rest)
  in
  find_program t.programs

let process t ~ifindex ~l2_dst packet =
  match dispatch t packet with
  | None ->
      t.rt_stats.fallthrough <- t.rt_stats.fallthrough + 1;
      Obs.Registry.incr t.m_fallthrough;
      Node.default_process t.rt_node ~ifindex ~l2_dst packet
  | Some (program, slot, pkt_value) -> (
      let world = make_world t ~ifindex in
      let run_real world =
        try
          let ps', ss' =
            slot.exec world ~ps:program.proto ~ss:slot.chan_state ~pkt:pkt_value
          in
          program.proto <- ps';
          slot.chan_state <- ss';
          slot.hits <- slot.hits + 1;
          t.rt_stats.handled <- t.rt_stats.handled + 1;
          Obs.Registry.incr t.m_handled
        with Value.Planp_raise _ ->
          t.rt_stats.errors <- t.rt_stats.errors + 1;
          Obs.Registry.incr t.m_errors
      in
      match slot.cache with
      | Some fc when Flowcache.enabled () -> (
          match
            Flowcache.probe fc ~epoch:t.rt_epoch ~world
              ~src:packet.Packet.src ~dst:packet.Packet.dst ~ps:program.proto
              ~ss:slot.chan_state ~pkt:pkt_value
          with
          | `Hit hit ->
              program.prog_credit ~steps:hit.Flowcache.h_steps
                ~prims:hit.Flowcache.h_prims;
              if hit.Flowcache.h_error then begin
                t.rt_stats.errors <- t.rt_stats.errors + 1;
                Obs.Registry.incr t.m_errors
              end
              else begin
                (if hit.Flowcache.h_delta <> 0 then
                   match program.proto with
                   | Value.Vint n ->
                       program.proto <- Value.Vint (n + hit.Flowcache.h_delta)
                   | _ -> ());
                slot.hits <- slot.hits + 1;
                t.rt_stats.handled <- t.rt_stats.handled + 1;
                Obs.Registry.incr t.m_handled
              end
          | `Miss -> (
              let recorder, rworld =
                Flowcache.start_recording fc ~world ~ps:program.proto
                  ~ss:slot.chan_state ~pkt:pkt_value
              in
              let steps0, prims0 = program.prog_profile () in
              let ps0 = program.proto and ss0 = slot.chan_state in
              match
                slot.exec rworld ~ps:ps0 ~ss:ss0 ~pkt:pkt_value
              with
              | ps', ss' ->
                  let steps1, prims1 = program.prog_profile () in
                  Flowcache.commit fc recorder ~epoch:t.rt_epoch ~error:false
                    ~ps:ps0 ~ps' ~ss:ss0 ~ss' ~steps:(steps1 - steps0)
                    ~prims:(prims1 - prims0);
                  program.proto <- ps';
                  slot.chan_state <- ss';
                  slot.hits <- slot.hits + 1;
                  t.rt_stats.handled <- t.rt_stats.handled + 1;
                  Obs.Registry.incr t.m_handled
              | exception Value.Planp_raise _ ->
                  let steps1, prims1 = program.prog_profile () in
                  Flowcache.commit fc recorder ~epoch:t.rt_epoch ~error:true
                    ~ps:ps0 ~ps':ps0 ~ss:ss0 ~ss':ss0
                    ~steps:(steps1 - steps0) ~prims:(prims1 - prims0);
                  t.rt_stats.errors <- t.rt_stats.errors + 1;
                  Obs.Registry.incr t.m_errors)
          | `Bypass -> run_real world)
      | Some _ | None -> run_real world)

let attach ?resource_bound rt_node =
  Prims.install ();
  (match resource_bound with
  | Some bound when bound <= 0 ->
      invalid_arg "Runtime.attach: resource_bound must be positive"
  | Some _ | None -> ());
  let labels = [ ("node", Node.name rt_node) ] in
  let t =
    {
      rt_node;
      programs = [];
      rt_epoch = 0;
      rt_stats = { handled = 0; fallthrough = 0; errors = 0 };
      m_handled =
        Obs.Registry.counter ~labels ~help:"packets treated by an ASP"
          "planp.runtime.handled";
      m_fallthrough =
        Obs.Registry.counter ~labels ~help:"packets left to standard IP"
          "planp.runtime.fallthrough";
      m_errors =
        Obs.Registry.counter ~labels ~help:"uncaught PLAN-P exceptions"
          "planp.runtime.errors";
      out = Buffer.create 256;
      resource_bound;
    }
  in
  Node.set_hook rt_node (fun _node ~ifindex ~l2_dst packet ->
      process t ~ifindex ~l2_dst packet);
  (* Route rebuilds and fault reconvergence change what an emission does,
     so they flush the flow caches. *)
  Node.set_invalidation_hook rt_node (fun () -> bump_epoch t);
  t

let default_pre _checked = Ok ()

let install ?(backend = Interp.backend) ?(pre = default_pre) ?(name = "asp") t
    ~source () =
  Prims.install ();
  match
    try Ok (Planp.Parser.parse source) with
    | Planp.Lexer.Error (message, loc) ->
        Error
          (Parse_error (Printf.sprintf "%s at %s" message (Planp.Loc.to_string loc)))
    | Planp.Parser.Error (message, loc) ->
        Error
          (Parse_error (Printf.sprintf "%s at %s" message (Planp.Loc.to_string loc)))
  with
  | Error error -> Error error
  | Ok ast -> (
      match Planp.Typecheck.check ~prims:Prim.type_lookup ast with
      | Error type_error ->
          Error
            (Type_error (Format.asprintf "%a" Planp.Typecheck.pp_error type_error))
      | Ok checked -> (
          match pre checked with
          | Error message -> Error (Rejected message)
          | Ok () ->
              let world = bootstrap_world t in
              (* Globals evaluate once, in declaration order. *)
              let globals =
                List.fold_left
                  (fun globals decl ->
                    match decl with
                    | Ast.Dval ({ Ast.bind_name; bind_expr; _ }, _) ->
                        let value =
                          Interp.eval_const ~world ~globals:(List.rev globals)
                            bind_expr
                        in
                        (bind_name, value) :: globals
                    | Ast.Dfun _ | Ast.Dexception _ | Ast.Dprotostate _
                    | Ast.Dchannel _ ->
                        globals)
                  [] checked.Planp.Typecheck.program
                |> List.rev
              in
              let proto =
                match checked.Planp.Typecheck.proto_init with
                | Some init -> Interp.eval_const ~world ~globals init
                | None -> Value.default_of checked.Planp.Typecheck.proto_type
              in
              let compiled = backend.Backend.compile checked ~globals in
              (* Static cacheability runs against the same checked AST the
                 backend compiled; verdicts align with [compiled]
                 positionally (both follow channel declaration order). *)
              let verdicts =
                if Flowcache.enabled () then
                  Planp_analysis.Cacheability.analyze
                    ~classify:Flowcache.classify checked.Planp.Typecheck.program
                else
                  List.map
                    (fun chan ->
                      ( chan,
                        Planp_analysis.Cacheability.Uncacheable
                          "flow cache disabled" ))
                    (Ast.channels checked.Planp.Typecheck.program)
              in
              let funs =
                List.filter_map
                  (function Ast.Dfun f -> Some f | _ -> None)
                  checked.Planp.Typecheck.program
              in
              let node_name = Node.name t.rt_node in
              let slots =
                List.map2
                  (fun (chan, exec) (_, verdict) ->
                    let chan_state =
                      match chan.Ast.initstate with
                      | Some init -> Interp.eval_const ~world ~globals init
                      | None -> Value.default_of chan.Ast.ss_type
                    in
                    let cache =
                      Flowcache.build ~node_name ~chan ~verdict ~globals ~funs
                    in
                    { chan; exec; cache; chan_state; hits = 0 })
                  compiled verdicts
              in
              let program =
                {
                  prog_name = name;
                  proto;
                  slots;
                  prog_profile = backend.Backend.profile;
                  prog_credit = backend.Backend.replay_credit ();
                }
              in
              t.programs <- t.programs @ [ program ];
              (* A new program can shadow an existing channel, changing
                 which slot treats a flow: flush every cache on the node. *)
              bump_epoch t;
              Ok program))

let install_exn ?backend ?pre ?name t ~source () =
  match install ?backend ?pre ?name t ~source () with
  | Ok program -> program
  | Error error -> failwith (error_to_string error)

let uninstall t program =
  t.programs <- List.filter (fun p -> p != program) t.programs;
  bump_epoch t

let inject ?(ifindex = -1) t packet =
  process t ~ifindex ~l2_dst:None packet
