module Ast = Planp.Ast
module Node = Netsim.Node
module Packet = Netsim.Packet

type stats = {
  mutable handled : int;
  mutable fallthrough : int;
  mutable errors : int;
}

type chan_slot = {
  chan : Ast.channel;
  exec : Backend.chan_exec;
  mutable chan_state : Value.t;
  mutable hits : int;
}

type program = {
  prog_name : string;
  mutable proto : Value.t;
  slots : chan_slot list;
}

type t = {
  rt_node : Node.t;
  mutable programs : program list;  (* installation order *)
  rt_stats : stats;
  m_handled : Obs.Registry.counter;
  m_fallthrough : Obs.Registry.counter;
  m_errors : Obs.Registry.counter;
  out : Buffer.t;
  resource_bound : int option;
}

type error =
  | Parse_error of string
  | Type_error of string
  | Rejected of string

let error_to_string = function
  | Parse_error message -> "parse error: " ^ message
  | Type_error message -> "type error: " ^ message
  | Rejected message -> "rejected: " ^ message

let node t = t.rt_node
let stats t = t.rt_stats
let installed_programs t = t.programs
let program_name program = program.prog_name
let proto_state program = program.proto

let channel_hits program =
  List.map
    (fun slot ->
      ( slot.chan.Ast.chan_name,
        Planp.Ptype.to_string slot.chan.Ast.pkt_type,
        slot.hits ))
    program.slots

let channel_state program chan_name index =
  let overloads =
    List.filter
      (fun slot -> String.equal slot.chan.Ast.chan_name chan_name)
      program.slots
  in
  List.nth_opt overloads index
  |> Option.map (fun slot -> slot.chan_state)

let output t = Buffer.contents t.out

(* The world visible to a program executing on this node for a packet that
   arrived on [ifindex]. *)
let make_world t ~ifindex =
  let node = t.rt_node in
  let engine = Node.engine node in
  {
    World.now = (fun () -> Netsim.Engine.now engine);
    node_addr = (fun () -> Node.addr node);
    iface_load_bps =
      (fun i ->
        if i >= 0 && i < Node.iface_count node then Node.iface_load_bps node i
        else 0.0);
    iface_capacity_bps =
      (fun i ->
        if i >= 0 && i < Node.iface_count node then
          Node.iface_capacity_bps node i
        else 0.0);
    incoming_iface = ifindex;
    emit =
      (fun target ~chan value ->
        let packet = Pkt_codec.encode ~chan value in
        let packet =
          match t.resource_bound with
          | Some bound when packet.Packet.ttl > bound ->
              { packet with Packet.ttl = bound }
          | Some _ | None -> packet
        in
        match target with
        | World.Remote -> Node.forward node ~ifindex packet
        | World.Neighbor -> (
            match Packet.decrement_ttl packet with
            | None -> ()
            | Some packet ->
                for out = 0 to Node.iface_count node - 1 do
                  if out <> ifindex then
                    Node.transmit node ~ifindex:out ~l2_dst:None
                      (Packet.clone packet)
                done));
    deliver =
      (fun value ->
        let packet = Pkt_codec.encode ~chan:Ast.network_channel value in
        Node.deliver_local node packet);
    print = (fun s -> Buffer.add_string t.out s);
  }

(* Install-time world: initializers may print but not touch the network. *)
let bootstrap_world t =
  let world = make_world t ~ifindex:(-1) in
  {
    world with
    World.emit =
      (fun _ ~chan:_ _ ->
        raise (Value.Runtime_error "initializer may not send packets"));
    deliver =
      (fun _ ->
        raise (Value.Runtime_error "initializer may not deliver packets"));
  }

let tag_matches slot (packet : Packet.t) =
  match packet.Packet.chan_tag with
  | None -> String.equal slot.chan.Ast.chan_name Ast.network_channel
  | Some tag -> String.equal slot.chan.Ast.chan_name tag

(* Find the first (program, slot, decoded packet) treating this packet. *)
let dispatch t packet =
  let rec find_program = function
    | [] -> None
    | program :: rest -> (
        let rec find_slot = function
          | [] -> None
          | slot :: slots ->
              if tag_matches slot packet then
                match Pkt_codec.decode slot.chan.Ast.pkt_type packet with
                | Some value -> Some (program, slot, value)
                | None -> find_slot slots
              else find_slot slots
        in
        match find_slot program.slots with
        | Some result -> Some result
        | None -> find_program rest)
  in
  find_program t.programs

let process t ~ifindex ~l2_dst packet =
  match dispatch t packet with
  | None ->
      t.rt_stats.fallthrough <- t.rt_stats.fallthrough + 1;
      Obs.Registry.incr t.m_fallthrough;
      Node.default_process t.rt_node ~ifindex ~l2_dst packet
  | Some (program, slot, pkt_value) -> (
      let world = make_world t ~ifindex in
      try
        let ps', ss' =
          slot.exec world ~ps:program.proto ~ss:slot.chan_state ~pkt:pkt_value
        in
        program.proto <- ps';
        slot.chan_state <- ss';
        slot.hits <- slot.hits + 1;
        t.rt_stats.handled <- t.rt_stats.handled + 1;
        Obs.Registry.incr t.m_handled
      with Value.Planp_raise _ ->
        t.rt_stats.errors <- t.rt_stats.errors + 1;
        Obs.Registry.incr t.m_errors)

let attach ?resource_bound rt_node =
  Prims.install ();
  (match resource_bound with
  | Some bound when bound <= 0 ->
      invalid_arg "Runtime.attach: resource_bound must be positive"
  | Some _ | None -> ());
  let labels = [ ("node", Node.name rt_node) ] in
  let t =
    {
      rt_node;
      programs = [];
      rt_stats = { handled = 0; fallthrough = 0; errors = 0 };
      m_handled =
        Obs.Registry.counter ~labels ~help:"packets treated by an ASP"
          "planp.runtime.handled";
      m_fallthrough =
        Obs.Registry.counter ~labels ~help:"packets left to standard IP"
          "planp.runtime.fallthrough";
      m_errors =
        Obs.Registry.counter ~labels ~help:"uncaught PLAN-P exceptions"
          "planp.runtime.errors";
      out = Buffer.create 256;
      resource_bound;
    }
  in
  Node.set_hook rt_node (fun _node ~ifindex ~l2_dst packet ->
      process t ~ifindex ~l2_dst packet);
  t

let default_pre _checked = Ok ()

let install ?(backend = Interp.backend) ?(pre = default_pre) ?(name = "asp") t
    ~source () =
  Prims.install ();
  match
    try Ok (Planp.Parser.parse source) with
    | Planp.Lexer.Error (message, loc) ->
        Error
          (Parse_error (Printf.sprintf "%s at %s" message (Planp.Loc.to_string loc)))
    | Planp.Parser.Error (message, loc) ->
        Error
          (Parse_error (Printf.sprintf "%s at %s" message (Planp.Loc.to_string loc)))
  with
  | Error error -> Error error
  | Ok ast -> (
      match Planp.Typecheck.check ~prims:Prim.type_lookup ast with
      | Error type_error ->
          Error
            (Type_error (Format.asprintf "%a" Planp.Typecheck.pp_error type_error))
      | Ok checked -> (
          match pre checked with
          | Error message -> Error (Rejected message)
          | Ok () ->
              let world = bootstrap_world t in
              (* Globals evaluate once, in declaration order. *)
              let globals =
                List.fold_left
                  (fun globals decl ->
                    match decl with
                    | Ast.Dval ({ Ast.bind_name; bind_expr; _ }, _) ->
                        let value =
                          Interp.eval_const ~world ~globals:(List.rev globals)
                            bind_expr
                        in
                        (bind_name, value) :: globals
                    | Ast.Dfun _ | Ast.Dexception _ | Ast.Dprotostate _
                    | Ast.Dchannel _ ->
                        globals)
                  [] checked.Planp.Typecheck.program
                |> List.rev
              in
              let proto =
                match checked.Planp.Typecheck.proto_init with
                | Some init -> Interp.eval_const ~world ~globals init
                | None -> Value.default_of checked.Planp.Typecheck.proto_type
              in
              let compiled = backend.Backend.compile checked ~globals in
              let slots =
                List.map
                  (fun (chan, exec) ->
                    let chan_state =
                      match chan.Ast.initstate with
                      | Some init -> Interp.eval_const ~world ~globals init
                      | None -> Value.default_of chan.Ast.ss_type
                    in
                    { chan; exec; chan_state; hits = 0 })
                  compiled
              in
              let program = { prog_name = name; proto; slots } in
              t.programs <- t.programs @ [ program ];
              Ok program))

let install_exn ?backend ?pre ?name t ~source () =
  match install ?backend ?pre ?name t ~source () with
  | Ok program -> program
  | Error error -> failwith (error_to_string error)

let uninstall t program =
  t.programs <- List.filter (fun p -> p != program) t.programs

let inject ?(ifindex = -1) t packet =
  process t ~ifindex ~l2_dst:None packet
