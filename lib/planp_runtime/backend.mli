(** Execution backends.

    A backend turns a type-checked program into per-channel executable
    functions. Three implementations exist:

    - {!Interp.backend} — the portable tree-walking interpreter;
    - [Planp_jit.Specialize.backend] — the "JIT": the interpreter
      specialized against the program, producing closures;
    - [Planp_jit.Bytecomp.backend] — a stack bytecode + VM, the mobile-code
      baseline the paper compares against (Java/Harissa).

    All three execute primitives through the same {!Prim} registry, so
    language extensions (paper §2.3) automatically reach every backend. *)

(** Executes one channel invocation: returns the new (protocol, channel)
    states. May raise {!Value.Planp_raise} (program-level exception escaping)
    or {!Value.Runtime_error} (bug). *)
type chan_exec =
  World.t -> ps:Value.t -> ss:Value.t -> pkt:Value.t -> Value.t * Value.t

type t = {
  backend_name : string;
  compile :
    Planp.Typecheck.checked ->
    globals:(string * Value.t) list ->
    (Planp.Ast.channel * chan_exec) list;
      (** one entry per channel declaration, in source order *)
  profile : unit -> int * int;
      (** the calling domain's raw work totals — (AST steps or VM
          instructions, primitive calls) — since the domain started;
          {!Runtime} snapshots them around an execution to learn what a
          cache entry must later be credited with *)
  replay_credit : unit -> steps:int -> prims:int -> unit;
      (** [replay_credit ()] resolves this backend's execution counters
          in the current registry generation and returns a function that
          accounts one cache-served packet exactly as a real execution
          of [steps]/[prims] work would have, keeping metrics exports
          byte-identical cache-on vs cache-off *)
}
