module Ptype = Planp.Ptype
module Packet = Netsim.Packet
module Payload = Netsim.Payload

let split_type = function
  | Ptype.Ttuple (Ptype.Tip :: rest) ->
      let transport, payload =
        match rest with
        | Ptype.Ttcp :: payload -> (`Tcp, payload)
        | Ptype.Tudp :: payload -> (`Udp, payload)
        | payload -> (`Any, payload)
      in
      Some (transport, payload)
  | _ -> None

let scalar_width = function
  | Ptype.Tchar | Ptype.Tbool -> Some 1
  | Ptype.Tint | Ptype.Thost -> Some 4
  | _ -> None

let rec payload_layout_ok = function
  | [] -> true
  | [ Ptype.Tblob ] -> true
  | [ Ptype.Tstring ] -> true
  | component :: rest ->
      (match scalar_width component with
      | Some _ -> true
      | None -> Ptype.equal component Ptype.Tstring)
      && payload_layout_ok rest

let layout_ok pkt_type =
  match split_type pkt_type with
  | Some (_, payload) -> payload_layout_ok payload
  | None -> false

(* Decode the packet body against the payload component types. Returns the
   component values, or None if the body does not match exactly. *)
let decode_payload components body =
  let len = Payload.length body in
  let rec go components pos acc =
    match components with
    | [] -> if pos = len then Some (List.rev acc) else None
    | Ptype.Tblob :: [] ->
        Some (List.rev (Value.Vblob (Payload.sub body ~pos ~len:(len - pos)) :: acc))
    | Ptype.Tblob :: _ -> None
    | Ptype.Tchar :: rest ->
        if pos + 1 > len then None
        else
          go rest (pos + 1)
            (Value.Vchar (Char.chr (Payload.get_u8 body pos)) :: acc)
    | Ptype.Tbool :: rest ->
        if pos + 1 > len then None
        else
          let byte = Payload.get_u8 body pos in
          if byte > 1 then None
          else go rest (pos + 1) (Value.Vbool (byte = 1) :: acc)
    | Ptype.Tint :: rest ->
        if pos + 4 > len then None
        else
          (* sign-extend from 32 bits *)
          let raw = Payload.get_u32 body pos in
          let n = if raw land 0x80000000 <> 0 then raw - (1 lsl 32) else raw in
          go rest (pos + 4) (Value.Vint n :: acc)
    | Ptype.Thost :: rest ->
        if pos + 4 > len then None
        else go rest (pos + 4) (Value.Vhost (Payload.get_u32 body pos) :: acc)
    | Ptype.Tstring :: rest ->
        if pos + 2 > len then None
        else
          let slen = Payload.get_u16 body pos in
          if pos + 2 + slen > len then None
          else
            let s = Payload.to_string (Payload.sub body ~pos:(pos + 2) ~len:slen) in
            go rest (pos + 2 + slen) (Value.Vstring s :: acc)
    | ( Ptype.Tunit | Ptype.Tip | Ptype.Ttcp | Ptype.Tudp | Ptype.Ttuple _
      | Ptype.Thash _ | Ptype.Thash_any )
      :: _ ->
        None
  in
  go components 0 []

let ip_view_of (packet : Packet.t) =
  {
    Value.vsrc = packet.Packet.src;
    vdst = packet.Packet.dst;
    vttl = packet.Packet.ttl;
  }

let decode pkt_type (packet : Packet.t) =
  match split_type pkt_type with
  | None -> None
  | Some (transport, payload_components) -> (
      let transport_value =
        match (transport, packet.Packet.l4) with
        | `Tcp, Packet.Tcp header -> Some [ Value.Vtcp header ]
        | `Udp, Packet.Udp header -> Some [ Value.Vudp header ]
        | `Any, _ -> Some []
        | (`Tcp | `Udp), _ -> None
      in
      match transport_value with
      | None -> None
      | Some transport_values -> (
          match decode_payload payload_components packet.Packet.body with
          | None -> None
          | Some payload_values ->
              Some
                (Value.Vtuple
                   (Array.of_list
                      ((Value.Vip (ip_view_of packet) :: transport_values)
                      @ payload_values)))))

let matches pkt_type packet = Option.is_some (decode pkt_type packet)

let write_component writer component =
  match component with
  | Value.Vchar c -> Payload.Writer.u8 writer (Char.code c)
  | Value.Vbool b -> Payload.Writer.u8 writer (if b then 1 else 0)
  | Value.Vint n -> Payload.Writer.u32 writer (n land 0xffffffff)
  | Value.Vhost h -> Payload.Writer.u32 writer h
  | Value.Vstring s ->
      if String.length s > 0xffff then
        raise (Value.Runtime_error "string too long for packet payload");
      Payload.Writer.u16 writer (String.length s);
      Payload.Writer.string writer s
  | Value.Vblob payload -> Payload.Writer.raw writer payload
  | Value.Vunit | Value.Vip _ | Value.Vtcp _ | Value.Vudp _ | Value.Vtuple _
  | Value.Vtable _ ->
      Value.type_error ~expected:"payload component" component

(* Encode components [start..] of the packet tuple.  A trailing blob (the
   only place the layout admits one) is chained on as a rope part instead
   of being copied byte-by-byte: re-emitting a packet whose payload is a
   decoded blob costs O(1). *)
let encode_payload components start =
  let n = Array.length components in
  if start >= n then Payload.empty
  else
    let trailing_blob =
      match components.(n - 1) with Value.Vblob p -> Some p | _ -> None
    in
    match trailing_blob with
    | Some payload when start = n - 1 -> payload
    | _ -> (
        let writer = Payload.Writer.create () in
        let stop = match trailing_blob with Some _ -> n - 1 | None -> n in
        for i = start to stop - 1 do
          write_component writer components.(i)
        done;
        let prefix = Payload.Writer.finish writer in
        match trailing_blob with
        | Some payload -> Payload.concat [ prefix; payload ]
        | None -> prefix)

let encode ~chan value =
  let components = Value.as_tuple value in
  if Array.length components = 0 then
    raise (Value.Runtime_error "packet value must start with an ip header");
  match components.(0) with
  | Value.Vip ip ->
      let l4, payload_start =
        if Array.length components >= 2 then
          match components.(1) with
          | Value.Vtcp header -> (Packet.Tcp header, 2)
          | Value.Vudp header -> (Packet.Udp header, 2)
          | _ -> (Packet.Raw, 1)
        else (Packet.Raw, 1)
      in
      let chan_tag =
        if String.equal chan Planp.Ast.network_channel then None else Some chan
      in
      Packet.make ~ttl:ip.Value.vttl ?chan_tag ~src:ip.Value.vsrc
        ~dst:ip.Value.vdst l4
        (encode_payload components payload_start)
  | _ -> raise (Value.Runtime_error "packet value must start with an ip header")
