(** The flow-keyed decision cache: a per-node, per-channel match-action
    fast path that lets hot flows bypass ASP evaluation entirely.

    For channels that {!Planp_analysis.Cacheability} proved pure modulo
    a flow key, the runtime consults this cache before running the
    backend. The key is (packet src, packet dst, the channel's decision
    atoms evaluated against the decoded header); an entry stores the
    channel's *decision* — which emission sites fired (in order),
    whether an exception escaped, and the protocol-state delta — plus
    the work counters a real execution would have charged, so a hit
    replays the decision and credits the metrics without touching the
    interpreter, VM or JIT. Emission-site argument expressions are
    re-evaluated per packet by small compiled closures: the cache never
    replays stale packet bytes.

    Invalidation is epoch-based: {!Runtime} bumps its epoch on every
    install/uninstall (hence on deploy hot-swaps, rollbacks and adapt
    retunes, which redeploy) and when the node's forwarding state is
    recomputed (routing/fault events); a probe under a new epoch flushes
    the cache. Entries whose channel reads resident tables are also
    stamped with {!Prims_table.generation} and dropped when stale.

    Determinism: a hit performs exactly the emissions, state moves and
    counter credits of the execution it replaces, so metrics and
    timeline exports are byte-identical cache-on vs cache-off. The
    cache's own [runtime.cache.*] counters are registered volatile and
    excluded from deterministic exports. *)

type t

type hit = {
  h_delta : int;  (** protocol-state delta to apply (0 = unchanged) *)
  h_error : bool;  (** the captured execution raised *)
  h_steps : int;  (** backend work to credit (steps / instructions) *)
  h_prims : int;  (** primitive calls to credit *)
}

(** Process-wide switch (defaults to on); flipping it only affects
    subsequent {!Runtime.install}s and probes. *)
val enabled : unit -> bool

val set_enabled : bool -> unit

(** The primitive classification fed to {!Planp_analysis.Cacheability}:
    audited whitelists over the built-in library, falling back to
    may-raise-pure for unknown registry-pure primitives and impure
    otherwise. *)
val classify : string -> Planp_analysis.Cacheability.prim_class

(** [build ~node_name ~chan ~verdict ~globals ~funs] compiles the
    verdict's atoms, guards and sites into closures; [None] if the
    verdict is uncacheable or some expression resists compilation. *)
val build :
  node_name:string ->
  chan:Planp.Ast.channel ->
  verdict:Planp_analysis.Cacheability.verdict ->
  globals:(string * Value.t) list ->
  funs:Planp.Ast.fundef list ->
  t option

(** [probe] builds the packet's key and either replays a stored
    decision ([`Hit], emissions already performed against [world]),
    reports a cacheable miss ([`Miss] — run the backend under
    {!start_recording} and {!commit}), or declines this packet
    ([`Bypass]). A probe under a changed [epoch] flushes the cache
    first. *)
val probe :
  t ->
  epoch:int ->
  world:World.t ->
  src:int ->
  dst:int ->
  ps:Value.t ->
  ss:Value.t ->
  pkt:Value.t ->
  [ `Hit of hit | `Miss | `Bypass ]

type recorder

(** [start_recording t ~world ~ps ~ss ~pkt] snapshots the missed key
    and wraps [world] so emissions are recorded as they happen; run the
    backend against the returned world, then {!commit}. *)
val start_recording :
  t ->
  world:World.t ->
  ps:Value.t ->
  ss:Value.t ->
  pkt:Value.t ->
  recorder * World.t

(** [commit] matches the recorded emissions against the channel's
    sites and inserts an entry — or skips quietly when the execution
    turned out not to be replayable (ambiguous site match, unexpected
    state move, table or epoch churn mid-execution). [steps]/[prims]
    are the backend-profile deltas of the recorded execution. *)
val commit :
  t ->
  recorder ->
  epoch:int ->
  error:bool ->
  ps:Value.t ->
  ps':Value.t ->
  ss:Value.t ->
  ss':Value.t ->
  steps:int ->
  prims:int ->
  unit

(** Number of resident entries (for tests and stats). *)
val size : t -> int
