type impl = World.t -> Value.t array -> Value.t

type prim = {
  prim_name : string;
  type_fn : Planp.Prim_sig.type_fn;
  impl : impl;
  pure : bool;
}

let registry : (string, prim) Hashtbl.t = Hashtbl.create 64
let register prim = Hashtbl.replace registry prim.prim_name prim
let find name = Hashtbl.find_opt registry name

let find_exn name =
  match find name with
  | Some prim -> prim
  | None ->
      raise
        (Value.Runtime_error (Printf.sprintf "unregistered primitive %s" name))

let type_lookup name =
  Option.map (fun prim -> prim.type_fn) (Hashtbl.find_opt registry name)

let names () =
  Hashtbl.fold (fun name _ acc -> name :: acc) registry []
  |> List.sort String.compare

let count () = Hashtbl.length registry
