module Ptype = Planp.Ptype
module Sig = Planp.Prim_sig
module Packet = Netsim.Packet

let pure prim_name expected result impl =
  {
    Prim.prim_name;
    type_fn = Sig.fixed expected result;
    impl = (fun _world args -> impl args);
    pure = true;
  }

let arg1 = function
  | [| a |] -> a
  | _ -> raise (Value.Runtime_error "expected 1 argument")

let arg2 = function
  | [| a; b |] -> (a, b)
  | _ -> raise (Value.Runtime_error "expected 2 arguments")

(* deliver takes any packet-shaped tuple; its type function validates that. *)
let deliver_type_fn = function
  | [ ty ] when Ptype.is_packet ty -> Ok Ptype.Tunit
  | [ ty ] -> Error (Printf.sprintf "expected a packet tuple, got %s" (Ptype.to_string ty))
  | args -> Error (Printf.sprintf "expected 1 argument, got %d" (List.length args))

let install () =
  List.iter Prim.register
    [
      pure "ipSrc" [ Ptype.Tip ] Ptype.Thost (fun args ->
          Value.Vhost (Value.as_ip (arg1 args)).Value.vsrc);
      pure "ipDst" [ Ptype.Tip ] Ptype.Thost (fun args ->
          Value.Vhost (Value.as_ip (arg1 args)).Value.vdst);
      pure "ipTtl" [ Ptype.Tip ] Ptype.Tint (fun args ->
          Value.Vint (Value.as_ip (arg1 args)).Value.vttl);
      pure "ipSrcSet" [ Ptype.Tip; Ptype.Thost ] Ptype.Tip (fun args ->
          let ip, host = arg2 args in
          Value.Vip { (Value.as_ip ip) with Value.vsrc = Value.as_host host });
      pure "ipDestSet" [ Ptype.Tip; Ptype.Thost ] Ptype.Tip (fun args ->
          let ip, host = arg2 args in
          Value.Vip { (Value.as_ip ip) with Value.vdst = Value.as_host host });
      pure "tcpSrc" [ Ptype.Ttcp ] Ptype.Tint (fun args ->
          Value.Vint (Value.as_tcp (arg1 args)).Packet.tcp_src);
      pure "tcpDst" [ Ptype.Ttcp ] Ptype.Tint (fun args ->
          Value.Vint (Value.as_tcp (arg1 args)).Packet.tcp_dst);
      pure "tcpSeq" [ Ptype.Ttcp ] Ptype.Tint (fun args ->
          Value.Vint (Value.as_tcp (arg1 args)).Packet.tcp_seq);
      pure "tcpAck" [ Ptype.Ttcp ] Ptype.Tint (fun args ->
          Value.Vint (Value.as_tcp (arg1 args)).Packet.tcp_ack);
      pure "tcpSyn" [ Ptype.Ttcp ] Ptype.Tbool (fun args ->
          Value.vbool (Value.as_tcp (arg1 args)).Packet.tcp_syn);
      pure "tcpFin" [ Ptype.Ttcp ] Ptype.Tbool (fun args ->
          Value.vbool (Value.as_tcp (arg1 args)).Packet.tcp_fin);
      pure "tcpIsAck" [ Ptype.Ttcp ] Ptype.Tbool (fun args ->
          Value.vbool (Value.as_tcp (arg1 args)).Packet.tcp_is_ack);
      pure "tcpSrcSet" [ Ptype.Ttcp; Ptype.Tint ] Ptype.Ttcp (fun args ->
          let tcp, port = arg2 args in
          Value.Vtcp
            { (Value.as_tcp tcp) with Packet.tcp_src = Value.as_int port });
      pure "tcpDstSet" [ Ptype.Ttcp; Ptype.Tint ] Ptype.Ttcp (fun args ->
          let tcp, port = arg2 args in
          Value.Vtcp
            { (Value.as_tcp tcp) with Packet.tcp_dst = Value.as_int port });
      pure "udpSrc" [ Ptype.Tudp ] Ptype.Tint (fun args ->
          Value.Vint (Value.as_udp (arg1 args)).Packet.udp_src);
      pure "udpDst" [ Ptype.Tudp ] Ptype.Tint (fun args ->
          Value.Vint (Value.as_udp (arg1 args)).Packet.udp_dst);
      pure "udpSrcSet" [ Ptype.Tudp; Ptype.Tint ] Ptype.Tudp (fun args ->
          let udp, port = arg2 args in
          Value.Vudp
            { (Value.as_udp udp) with Packet.udp_src = Value.as_int port });
      pure "udpDstSet" [ Ptype.Tudp; Ptype.Tint ] Ptype.Tudp (fun args ->
          let udp, port = arg2 args in
          Value.Vudp
            { (Value.as_udp udp) with Packet.udp_dst = Value.as_int port });
      pure "mkUdp" [ Ptype.Tint; Ptype.Tint ] Ptype.Tudp (fun args ->
          let src, dst = arg2 args in
          Value.Vudp
            { Packet.udp_src = Value.as_int src; udp_dst = Value.as_int dst });
      pure "isMulticast" [ Ptype.Thost ] Ptype.Tbool (fun args ->
          Value.vbool (Netsim.Addr.is_multicast (Value.as_host (arg1 args))));
      (* The packed 32-bit value of an address, for hashing-style load
         balancing decisions. *)
      pure "hostBits" [ Ptype.Thost ] Ptype.Tint (fun args ->
          Value.Vint (Value.as_host (arg1 args)));
      {
        Prim.prim_name = "thisHost";
        type_fn = Sig.fixed [] Ptype.Thost;
        impl = (fun world _args -> Value.Vhost (world.World.node_addr ()));
        pure = false;
      };
      {
        Prim.prim_name = "deliver";
        type_fn = deliver_type_fn;
        impl =
          (fun world args ->
            world.World.deliver (arg1 args);
            Value.Vunit);
        pure = false;
      };
    ]
