module Ptype = Planp.Ptype
module Sig = Planp.Prim_sig

let v n = Value.Vint n
let vb = Value.vbool

let pure prim_name expected result impl =
  {
    Prim.prim_name;
    type_fn = Sig.fixed expected result;
    impl = (fun _world args -> impl args);
    pure = true;
  }

let impure prim_name expected result impl =
  {
    Prim.prim_name;
    type_fn = Sig.fixed expected result;
    impl;
    pure = false;
  }

let arg1 = function
  | [| a |] -> a
  | args ->
      raise
        (Value.Runtime_error
           (Printf.sprintf "expected 1 argument, got %d" (Array.length args)))

let arg2 = function
  | [| a; b |] -> (a, b)
  | args ->
      raise
        (Value.Runtime_error
           (Printf.sprintf "expected 2 arguments, got %d" (Array.length args)))

let arg3 = function
  | [| a; b; c |] -> (a, b, c)
  | args ->
      raise
        (Value.Runtime_error
           (Printf.sprintf "expected 3 arguments, got %d" (Array.length args)))

let install () =
  List.iter Prim.register
    [
      impure "print" [ Ptype.Tstring ] Ptype.Tunit (fun world args ->
          world.World.print (Value.as_string (arg1 args));
          Value.Vunit);
      impure "println" [ Ptype.Tstring ] Ptype.Tunit (fun world args ->
          world.World.print (Value.as_string (arg1 args) ^ "\n");
          Value.Vunit);
      pure "itos" [ Ptype.Tint ] Ptype.Tstring (fun args ->
          Value.Vstring (string_of_int (Value.as_int (arg1 args))));
      pure "htos" [ Ptype.Thost ] Ptype.Tstring (fun args ->
          Value.Vstring (Netsim.Addr.to_string (Value.as_host (arg1 args))));
      pure "charPos" [ Ptype.Tchar ] Ptype.Tint (fun args ->
          v (Char.code (Value.as_char (arg1 args))));
      pure "chr" [ Ptype.Tint ] Ptype.Tchar (fun args ->
          let code = Value.as_int (arg1 args) in
          if code < 0 || code > 255 then
            raise (Value.Planp_raise "BadChar")
          else Value.Vchar (Char.chr code));
      pure "min" [ Ptype.Tint; Ptype.Tint ] Ptype.Tint (fun args ->
          let a, b = arg2 args in
          v (Int.min (Value.as_int a) (Value.as_int b)));
      pure "max" [ Ptype.Tint; Ptype.Tint ] Ptype.Tint (fun args ->
          let a, b = arg2 args in
          v (Int.max (Value.as_int a) (Value.as_int b)));
      pure "abs" [ Ptype.Tint ] Ptype.Tint (fun args ->
          v (Int.abs (Value.as_int (arg1 args))));
      pure "strlen" [ Ptype.Tstring ] Ptype.Tint (fun args ->
          v (String.length (Value.as_string (arg1 args))));
      pure "strget" [ Ptype.Tstring; Ptype.Tint ] Ptype.Tchar (fun args ->
          let s, i = arg2 args in
          let s = Value.as_string s and i = Value.as_int i in
          if i < 0 || i >= String.length s then
            raise (Value.Planp_raise "OutOfBounds")
          else Value.Vchar s.[i]);
      pure "substr" [ Ptype.Tstring; Ptype.Tint; Ptype.Tint ] Ptype.Tstring
        (fun args ->
          let s, pos, len = arg3 args in
          let s = Value.as_string s
          and pos = Value.as_int pos
          and len = Value.as_int len in
          if pos < 0 || len < 0 || pos + len > String.length s then
            raise (Value.Planp_raise "OutOfBounds")
          else Value.Vstring (String.sub s pos len));
      pure "strFind" [ Ptype.Tstring; Ptype.Tstring ] Ptype.Tint (fun args ->
          let haystack, needle = arg2 args in
          let haystack = Value.as_string haystack
          and needle = Value.as_string needle in
          let hlen = String.length haystack and nlen = String.length needle in
          let rec search i =
            if i + nlen > hlen then -1
            else if String.sub haystack i nlen = needle then i
            else search (i + 1)
          in
          v (search 0));
      pure "stob" [ Ptype.Tstring ] Ptype.Tblob (fun args ->
          Value.Vblob (Netsim.Payload.of_string (Value.as_string (arg1 args))));
      pure "btos" [ Ptype.Tblob ] Ptype.Tstring (fun args ->
          Value.Vstring (Netsim.Payload.to_string (Value.as_blob (arg1 args))));
      pure "blobLength" [ Ptype.Tblob ] Ptype.Tint (fun args ->
          v (Netsim.Payload.length (Value.as_blob (arg1 args))));
      pure "blobByte" [ Ptype.Tblob; Ptype.Tint ] Ptype.Tint (fun args ->
          let blob, off = arg2 args in
          let blob = Value.as_blob blob and off = Value.as_int off in
          if off < 0 || off >= Netsim.Payload.length blob then
            raise (Value.Planp_raise "OutOfBounds")
          else v (Netsim.Payload.get_u8 blob off));
      pure "blobU32" [ Ptype.Tblob; Ptype.Tint ] Ptype.Tint (fun args ->
          let blob, off = arg2 args in
          let blob = Value.as_blob blob and off = Value.as_int off in
          if off < 0 || off + 4 > Netsim.Payload.length blob then
            raise (Value.Planp_raise "OutOfBounds")
          else v (Netsim.Payload.get_u32 blob off));
      pure "blobSub" [ Ptype.Tblob; Ptype.Tint; Ptype.Tint ] Ptype.Tblob
        (fun args ->
          let blob, pos, len = arg3 args in
          let blob = Value.as_blob blob
          and pos = Value.as_int pos
          and len = Value.as_int len in
          if pos < 0 || len < 0 || pos + len > Netsim.Payload.length blob then
            raise (Value.Planp_raise "OutOfBounds")
          else Value.Vblob (Netsim.Payload.sub blob ~pos ~len));
      pure "blobConcat" [ Ptype.Tblob; Ptype.Tblob ] Ptype.Tblob (fun args ->
          let a, b = arg2 args in
          Value.Vblob
            (Netsim.Payload.concat [ Value.as_blob a; Value.as_blob b ]));
      pure "even" [ Ptype.Tint ] Ptype.Tbool (fun args ->
          vb (Value.as_int (arg1 args) mod 2 = 0));
    ]
