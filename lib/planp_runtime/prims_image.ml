module Ptype = Planp.Ptype
module Sig = Planp.Prim_sig

let image_of_blob value =
  match Image.decode (Value.as_blob value) with
  | Some image -> image
  | None -> raise (Value.Planp_raise "BadImage")

let pure prim_name expected result impl =
  {
    Prim.prim_name;
    type_fn = Sig.fixed expected result;
    impl = (fun _world args -> impl args);
    pure = true;
  }

let arg1 = function
  | [| a |] -> a
  | _ -> raise (Value.Runtime_error "expected 1 argument")

let arg2 = function
  | [| a; b |] -> (a, b)
  | _ -> raise (Value.Runtime_error "expected 2 arguments")

let install () =
  List.iter Prim.register
    [
      pure "isImage" [ Ptype.Tblob ] Ptype.Tbool (fun args ->
          Value.vbool (Option.is_some (Image.decode (Value.as_blob (arg1 args)))));
      pure "imgWidth" [ Ptype.Tblob ] Ptype.Tint (fun args ->
          Value.Vint (image_of_blob (arg1 args)).Image.width);
      pure "imgHeight" [ Ptype.Tblob ] Ptype.Tint (fun args ->
          Value.Vint (image_of_blob (arg1 args)).Image.height);
      pure "imgDepth" [ Ptype.Tblob ] Ptype.Tint (fun args ->
          Value.Vint (image_of_blob (arg1 args)).Image.depth);
      pure "imgBytes" [ Ptype.Tblob ] Ptype.Tint (fun args ->
          Value.Vint (Image.encoded_size (image_of_blob (arg1 args))));
      pure "imgDistill" [ Ptype.Tblob; Ptype.Tint ] Ptype.Tblob (fun args ->
          let blob, levels = arg2 args in
          let levels = Value.as_int levels in
          if levels < 0 then raise (Value.Planp_raise "BadImage")
          else
            Value.Vblob (Image.encode (Image.distill_n (image_of_blob blob) levels)));
    ]
