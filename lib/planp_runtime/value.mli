(** Runtime values of PLAN-P programs. *)

(** A decoded IP header. [vttl] travels with the value so an ASP forwarding
    a packet preserves its remaining lifetime. *)
type ip_view = { vsrc : int; vdst : int; vttl : int }

type t =
  | Vint of int
  | Vbool of bool
  | Vstring of string
  | Vchar of char
  | Vunit
  | Vhost of int
  | Vblob of Netsim.Payload.t
  | Vip of ip_view
  | Vtcp of Netsim.Packet.tcp_header
  | Vudp of Netsim.Packet.udp_header
  | Vtuple of t array
      (** fields are never mutated after construction: treat as immutable.
          The array representation gives O(1) field projection on the
          packet fast path. *)
  | Vtable of (t, t) Hashtbl.t
      (** mutable, shared by reference through state threading *)

(** Raised by the PLAN-P [raise] construct; carries the exception name. *)
exception Planp_raise of string

(** Raised on internal inconsistencies (a bug if it escapes after a program
    type checked). *)
exception Runtime_error of string

(** Interned booleans: [vbool b] returns one of two shared values, so
    hot-path comparisons allocate nothing. *)
val vtrue : t

val vfalse : t
val vbool : bool -> t

(** [equal a b] is structural equality; hash tables compare by identity.
    The type checker restricts [=] to equality types, where this agrees
    with mathematical equality. *)
val equal : t -> t -> bool

(** [compare_values a b] orders ints, chars and strings; other types raise
    {!Runtime_error} (excluded by the type checker). *)
val compare_values : t -> t -> int

(** [default_of ty] is the zero value used when no initializer is given.
    @raise Runtime_error for non-defaultable types. *)
val default_of : Planp.Ptype.t -> t

(** [type_error ~expected value] raises a descriptive {!Runtime_error}. *)
val type_error : expected:string -> t -> 'a

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** {1 Checked projections} — raise {!Runtime_error} on the wrong shape. *)

val as_int : t -> int
val as_bool : t -> bool
val as_string : t -> string
val as_char : t -> char
val as_host : t -> int
val as_blob : t -> Netsim.Payload.t
val as_ip : t -> ip_view
val as_tcp : t -> Netsim.Packet.tcp_header
val as_udp : t -> Netsim.Packet.udp_header
val as_tuple : t -> t array
val as_table : t -> (t, t) Hashtbl.t
