(** The primitive registry.

    As in the paper (§2.3), "extending the interpreter with a new primitive
    involves defining two C functions. One function performs the calculation
    of the primitive, while the second computes the return type of the
    primitive given the types of its arguments." Here the two functions are
    [impl] and [type_fn]; every backend (interpreter, JIT, bytecode VM)
    executes primitives through this one registry, so a registration extends
    all three at once. *)

(** The argument array is a scratch buffer owned by the calling backend and
    reused across calls: an implementation must not retain it (copy if it
    needs the values past its own return), and should read its arguments
    before performing world effects. *)
type impl = World.t -> Value.t array -> Value.t

type prim = {
  prim_name : string;
  type_fn : Planp.Prim_sig.type_fn;
  impl : impl;
  pure : bool;
      (** pure primitives may run outside a packet context (global values) *)
}

(** [register prim] adds or replaces a primitive. *)
val register : prim -> unit

val find : string -> prim option
val find_exn : string -> prim

(** [type_lookup] feeds {!Planp.Typecheck.check}. *)
val type_lookup : Planp.Prim_sig.lookup

(** [names ()] lists registered primitives, sorted. *)
val names : unit -> string list

val count : unit -> int
