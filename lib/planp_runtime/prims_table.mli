(** Hash-table primitives ([mkTable], [tblGet], [tblSet], ...).

    Tables are mutable and keyed by equality-type values; the type functions
    reject non-equality key types. Installed by {!Prims.install}. *)

val install : unit -> unit

(** Process-wide resident-table version: bumped by every [tblSet],
    [tblRemove] and [tblClear]. {!Flowcache} stamps table-reading cache
    entries with it and drops them when it moves. *)
val generation : unit -> int
