module Ast = Planp.Ast
module Env = Map.Make (String)

(* Profiling cells: mutable fields of a domain-local record, so the
   per-step cost stays one increment even with observability on while
   staying race-free under [Par_engine --domains k] (each domain owns
   its cells; the backend's exec wrapper reads the deltas into the
   registry once per packet, on the executing domain). *)
type prof = { mutable p_steps : int; mutable p_prims : int }

let profile_key = Domain.DLS.new_key (fun () -> { p_steps = 0; p_prims = 0 })
let profile () =
  let p = Domain.DLS.get profile_key in
  (p.p_steps, p.p_prims)

let eval_steps () = fst (profile ())
let prim_calls () = snd (profile ())

type ctx = {
  world : World.t;
  funs : (string, Ast.fundef) Hashtbl.t;
  base : Value.t Env.t;
  prof : prof;  (** the creating domain's cells; re-fetch when crossing *)
}

let make_ctx ~world ~funs ~globals =
  let fun_table = Hashtbl.create 16 in
  List.iter (fun f -> Hashtbl.replace fun_table f.Ast.fun_name f) funs;
  let base =
    List.fold_left (fun env (name, value) -> Env.add name value env) Env.empty
      globals
  in
  { world; funs = fun_table; base; prof = Domain.DLS.get profile_key }

let lookup env name =
  match Env.find_opt name env with
  | Some value -> value
  | None ->
      raise (Value.Runtime_error (Printf.sprintf "unbound variable %s" name))

let arith op a b =
  let a = Value.as_int a and b = Value.as_int b in
  match op with
  | Ast.Add -> Value.Vint (a + b)
  | Ast.Sub -> Value.Vint (a - b)
  | Ast.Mul -> Value.Vint (a * b)
  | Ast.Div ->
      if b = 0 then raise (Value.Planp_raise "DivByZero") else Value.Vint (a / b)
  | Ast.Mod ->
      if b = 0 then raise (Value.Planp_raise "DivByZero")
      else Value.Vint (a mod b)
  | _ -> assert false

let rec eval ctx env (expr : Ast.expr) =
  ctx.prof.p_steps <- ctx.prof.p_steps + 1;
  match expr.Ast.desc with
  | Ast.Int n -> Value.Vint n
  | Ast.Bool b -> Value.vbool b
  | Ast.String s -> Value.Vstring s
  | Ast.Char c -> Value.Vchar c
  | Ast.Unit -> Value.Vunit
  | Ast.Host h -> Value.Vhost h
  | Ast.Var name -> lookup env name
  | Ast.Call (name, args) ->
      let arg_values = List.map (eval ctx env) args in
      apply ctx name arg_values
  | Ast.Tuple components ->
      Value.Vtuple (Array.of_list (List.map (eval ctx env) components))
  | Ast.Proj (index, operand) -> (
      match eval ctx env operand with
      | Value.Vtuple components
        when index >= 1 && index <= Array.length components ->
          Array.unsafe_get components (index - 1)
      | value -> Value.type_error ~expected:"tuple" value)
  | Ast.Let (bindings, body) ->
      let env =
        List.fold_left
          (fun env { Ast.bind_name; bind_expr; _ } ->
            Env.add bind_name (eval ctx env bind_expr) env)
          env bindings
      in
      eval ctx env body
  | Ast.If (cond, then_branch, else_branch) ->
      if Value.as_bool (eval ctx env cond) then eval ctx env then_branch
      else eval ctx env else_branch
  | Ast.Binop (Ast.And, left, right) ->
      if Value.as_bool (eval ctx env left) then eval ctx env right
      else Value.vfalse
  | Ast.Binop (Ast.Or, left, right) ->
      if Value.as_bool (eval ctx env left) then Value.vtrue
      else eval ctx env right
  | Ast.Binop (((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod) as op), l, r)
    ->
      arith op (eval ctx env l) (eval ctx env r)
  | Ast.Binop (Ast.Eq, l, r) ->
      Value.vbool (Value.equal (eval ctx env l) (eval ctx env r))
  | Ast.Binop (Ast.Ne, l, r) ->
      Value.vbool (not (Value.equal (eval ctx env l) (eval ctx env r)))
  | Ast.Binop (Ast.Lt, l, r) ->
      Value.vbool (Value.compare_values (eval ctx env l) (eval ctx env r) < 0)
  | Ast.Binop (Ast.Gt, l, r) ->
      Value.vbool (Value.compare_values (eval ctx env l) (eval ctx env r) > 0)
  | Ast.Binop (Ast.Le, l, r) ->
      Value.vbool (Value.compare_values (eval ctx env l) (eval ctx env r) <= 0)
  | Ast.Binop (Ast.Ge, l, r) ->
      Value.vbool (Value.compare_values (eval ctx env l) (eval ctx env r) >= 0)
  | Ast.Binop (Ast.Concat, l, r) ->
      Value.Vstring
        (Value.as_string (eval ctx env l) ^ Value.as_string (eval ctx env r))
  | Ast.Unop (Ast.Not, operand) ->
      Value.vbool (not (Value.as_bool (eval ctx env operand)))
  | Ast.Unop (Ast.Neg, operand) ->
      Value.Vint (-Value.as_int (eval ctx env operand))
  | Ast.Seq (left, right) ->
      let _unit = eval ctx env left in
      eval ctx env right
  | Ast.On_remote (chan, packet) ->
      ctx.world.World.emit World.Remote ~chan (eval ctx env packet);
      Value.Vunit
  | Ast.On_neighbor (chan, packet) ->
      ctx.world.World.emit World.Neighbor ~chan (eval ctx env packet);
      Value.Vunit
  | Ast.Raise exn_name -> raise (Value.Planp_raise exn_name)
  | Ast.Try (body, handlers) -> (
      try eval ctx env body
      with Value.Planp_raise exn_name as original -> (
        match List.assoc_opt exn_name handlers with
        | Some handler -> eval ctx env handler
        | None -> raise original))

and apply ctx name arg_values =
  match Hashtbl.find_opt ctx.funs name with
  | Some { Ast.params; fun_body; _ } ->
      let env =
        List.fold_left2
          (fun env (param, _ty) value -> Env.add param value env)
          ctx.base params arg_values
      in
      eval ctx env fun_body
  | None ->
      let prim = Prim.find_exn name in
      ctx.prof.p_prims <- ctx.prof.p_prims + 1;
      prim.Prim.impl ctx.world (Array.of_list arg_values)

let eval_const ~world ~globals expr =
  let ctx = make_ctx ~world ~funs:[] ~globals in
  eval ctx ctx.base expr

let interp_labels = [ ("backend", "interp") ]

let replay_credit () =
  let m_packets =
    Obs.Registry.counter ~labels:interp_labels ~help:"packets executed"
      "planp.exec.packets"
  in
  let m_steps =
    Obs.Registry.counter ~labels:interp_labels ~help:"AST nodes evaluated"
      "planp.interp.eval_steps"
  in
  let m_prims =
    Obs.Registry.counter ~labels:interp_labels ~help:"primitive invocations"
      "planp.interp.prim_calls"
  in
  fun ~steps ~prims ->
    Obs.Registry.incr m_packets;
    Obs.Registry.add m_steps steps;
    Obs.Registry.add m_prims prims

let backend =
  {
    Backend.backend_name = "interp";
    profile;
    replay_credit;
    compile =
      (fun checked ~globals ->
        let funs =
          List.filter_map
            (function Ast.Dfun f -> Some f | _ -> None)
            checked.Planp.Typecheck.program
        in
        (* The function table and global environment are per-program, not
           per-packet; only the world changes between invocations. *)
        let template =
          let world, _, _ = World.dummy () in
          make_ctx ~world ~funs ~globals
        in
        let labels = interp_labels in
        let m_packets =
          Obs.Registry.counter ~labels ~help:"packets executed"
            "planp.exec.packets"
        in
        let m_steps =
          Obs.Registry.counter ~labels ~help:"AST nodes evaluated"
            "planp.interp.eval_steps"
        in
        let m_prims =
          Obs.Registry.counter ~labels ~help:"primitive invocations"
            "planp.interp.prim_calls"
        in
        List.map
          (fun chan ->
            let exec world ~ps ~ss ~pkt =
              (* Fetch the executing domain's cells per packet: the
                 template was built on whichever domain installed the
                 program. *)
              let prof = Domain.DLS.get profile_key in
              let ctx = { template with world; prof } in
              let env =
                ctx.base
                |> Env.add chan.Ast.ps_name ps
                |> Env.add chan.Ast.ss_name ss
                |> Env.add chan.Ast.pkt_name pkt
              in
              let steps0 = prof.p_steps and prims0 = prof.p_prims in
              Fun.protect
                ~finally:(fun () ->
                  Obs.Registry.incr m_packets;
                  Obs.Registry.add m_steps (prof.p_steps - steps0);
                  Obs.Registry.add m_prims (prof.p_prims - prims0))
                (fun () ->
                  match eval ctx env chan.Ast.body with
                  | Value.Vtuple [| ps'; ss' |] -> (ps', ss')
                  | value ->
                      Value.type_error
                        ~expected:"(protocol, channel) state pair" value)
            in
            (chan, exec))
          (Ast.channels checked.Planp.Typecheck.program));
  }
