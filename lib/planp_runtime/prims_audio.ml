module Ptype = Planp.Ptype
module Sig = Planp.Prim_sig

let frame_of_blob value =
  match Audio_frame.decode (Value.as_blob value) with
  | Some frame -> frame
  | None -> raise (Value.Planp_raise "BadAudio")

let pure prim_name expected result impl =
  {
    Prim.prim_name;
    type_fn = Sig.fixed expected result;
    impl = (fun _world args -> impl args);
    pure = true;
  }

let arg1 = function
  | [| a |] -> a
  | _ -> raise (Value.Runtime_error "expected 1 argument")

let arg2 = function
  | [| a; b |] -> (a, b)
  | _ -> raise (Value.Runtime_error "expected 2 arguments")

let install () =
  List.iter Prim.register
    [
      pure "audioSeq" [ Ptype.Tblob ] Ptype.Tint (fun args ->
          Value.Vint (frame_of_blob (arg1 args)).Audio_frame.seq);
      pure "audioQuality" [ Ptype.Tblob ] Ptype.Tint (fun args ->
          Value.Vint
            (Audio_frame.quality_code
               (frame_of_blob (arg1 args)).Audio_frame.quality));
      pure "audioFrames" [ Ptype.Tblob ] Ptype.Tint (fun args ->
          Value.Vint (Audio_frame.frame_count (frame_of_blob (arg1 args))));
      pure "audioBytes" [ Ptype.Tblob ] Ptype.Tint (fun args ->
          Value.Vint (Netsim.Payload.length (Value.as_blob (arg1 args))));
      pure "audioDegrade" [ Ptype.Tblob; Ptype.Tint ] Ptype.Tblob (fun args ->
          let blob, level = arg2 args in
          match Audio_frame.quality_of_code (Value.as_int level) with
          | None -> raise (Value.Planp_raise "BadAudio")
          | Some quality ->
              Value.Vblob
                (Audio_frame.encode
                   (Audio_frame.degrade (frame_of_blob blob) quality)));
      pure "audioRestore" [ Ptype.Tblob ] Ptype.Tblob (fun args ->
          Value.Vblob
            (Audio_frame.encode (Audio_frame.restore (frame_of_blob (arg1 args)))));
    ]
