module Ptype = Planp.Ptype
module Sig = Planp.Prim_sig

(* One coarse version stamp over every resident table in the process:
   any write bumps it, and the flow cache drops version-stamped entries
   whose stamp is stale. Coarse is sound — a spurious bump only costs a
   cache miss — and atomic so partitioned engines on several domains
   can share it. *)
let generation_cell = Atomic.make 0
let generation () = Atomic.get generation_cell
let bump_generation () = Atomic.incr generation_cell

let table_key_value = function
  | Ptype.Thash (key, value) -> Some (key, value)
  | _ -> None

(* tblGet(table, key, default) : value *)
let get_type_fn = function
  | [ table_ty; key_ty; default_ty ] -> (
      match table_key_value table_ty with
      | Some (key, value) ->
          if not (Ptype.equal key key_ty) then
            Error
              (Printf.sprintf "key type %s does not match table key %s"
                 (Ptype.to_string key_ty) (Ptype.to_string key))
          else if not (Ptype.equal value default_ty) then
            Error
              (Printf.sprintf "default type %s does not match table value %s"
                 (Ptype.to_string default_ty)
                 (Ptype.to_string value))
          else Ok value
      | None ->
          Error (Printf.sprintf "not a hash table: %s" (Ptype.to_string table_ty)))
  | args -> Error (Printf.sprintf "expected 3 arguments, got %d" (List.length args))

(* tblSet(table, key, value) : unit *)
let set_type_fn = function
  | [ table_ty; key_ty; value_ty ] -> (
      match table_key_value table_ty with
      | Some (key, value) ->
          if not (Ptype.equal key key_ty) then
            Error
              (Printf.sprintf "key type %s does not match table key %s"
                 (Ptype.to_string key_ty) (Ptype.to_string key))
          else if not (Ptype.equal value value_ty) then
            Error
              (Printf.sprintf "value type %s does not match table value %s"
                 (Ptype.to_string value_ty)
                 (Ptype.to_string value))
          else Ok Ptype.Tunit
      | None ->
          Error (Printf.sprintf "not a hash table: %s" (Ptype.to_string table_ty)))
  | args -> Error (Printf.sprintf "expected 3 arguments, got %d" (List.length args))

(* tblMem(table, key) : bool / tblRemove(table, key) : unit *)
let key_only_type_fn result = function
  | [ table_ty; key_ty ] -> (
      match table_key_value table_ty with
      | Some (key, _) ->
          if Ptype.equal key key_ty then Ok result
          else
            Error
              (Printf.sprintf "key type %s does not match table key %s"
                 (Ptype.to_string key_ty) (Ptype.to_string key))
      | None ->
          Error (Printf.sprintf "not a hash table: %s" (Ptype.to_string table_ty)))
  | args -> Error (Printf.sprintf "expected 2 arguments, got %d" (List.length args))

let table_only_type_fn result = function
  | [ table_ty ] -> (
      match table_key_value table_ty with
      | Some _ -> Ok result
      | None ->
          Error (Printf.sprintf "not a hash table: %s" (Ptype.to_string table_ty)))
  | args -> Error (Printf.sprintf "expected 1 argument, got %d" (List.length args))

let mk_type_fn = function
  | [ Ptype.Tint ] -> Ok Ptype.Thash_any
  | [ other ] -> Error (Printf.sprintf "expected int size, got %s" (Ptype.to_string other))
  | args -> Error (Printf.sprintf "expected 1 argument, got %d" (List.length args))

let arg2 = function
  | [| a; b |] -> (a, b)
  | _ -> raise (Value.Runtime_error "expected 2 arguments")

let arg3 = function
  | [| a; b; c |] -> (a, b, c)
  | _ -> raise (Value.Runtime_error "expected 3 arguments")

let install () =
  List.iter Prim.register
    [
      {
        Prim.prim_name = "mkTable";
        type_fn = mk_type_fn;
        impl =
          (fun _world args ->
            match args with
            | [| size |] -> Value.Vtable (Hashtbl.create (Int.max 1 (Value.as_int size)))
            | _ -> raise (Value.Runtime_error "mkTable: expected 1 argument"));
        pure = true;
      };
      {
        Prim.prim_name = "tblGet";
        type_fn = get_type_fn;
        impl =
          (fun _world args ->
            let table, key, default = arg3 args in
            match Hashtbl.find_opt (Value.as_table table) key with
            | Some value -> value
            | None -> default);
        pure = true;
      };
      {
        Prim.prim_name = "tblSet";
        type_fn = set_type_fn;
        impl =
          (fun _world args ->
            let table, key, value = arg3 args in
            Hashtbl.replace (Value.as_table table) key value;
            bump_generation ();
            Value.Vunit);
        pure = true;
      };
      {
        Prim.prim_name = "tblMem";
        type_fn = key_only_type_fn Ptype.Tbool;
        impl =
          (fun _world args ->
            let table, key = arg2 args in
            Value.vbool (Hashtbl.mem (Value.as_table table) key));
        pure = true;
      };
      {
        Prim.prim_name = "tblRemove";
        type_fn = key_only_type_fn Ptype.Tunit;
        impl =
          (fun _world args ->
            let table, key = arg2 args in
            Hashtbl.remove (Value.as_table table) key;
            bump_generation ();
            Value.Vunit);
        pure = true;
      };
      {
        Prim.prim_name = "tblSize";
        type_fn = table_only_type_fn Ptype.Tint;
        impl =
          (fun _world args ->
            match args with
            | [| table |] -> Value.Vint (Hashtbl.length (Value.as_table table))
            | _ -> raise (Value.Runtime_error "tblSize: expected 1 argument"));
        pure = true;
      };
      {
        Prim.prim_name = "tblClear";
        type_fn = table_only_type_fn Ptype.Tunit;
        impl =
          (fun _world args ->
            match args with
            | [| table |] ->
                Hashtbl.reset (Value.as_table table);
                bump_generation ();
                Value.Vunit
            | _ -> raise (Value.Runtime_error "tblClear: expected 1 argument"));
        pure = true;
      };
    ]
