(** The per-node PLAN-P runtime.

    Attaching a runtime to a {!Netsim.Node.t} replaces the node's packet
    processing (paper Fig. 1: "these programs replace the standard packet
    processing behavior of the IP layer"). Installed programs are consulted
    in installation order; within a program, channels in declaration order.
    The first channel whose name matches the packet's tag ([network] for
    untagged traffic) *and* whose packet type decodes the packet processes
    it. Untreated packets fall through to standard IP behaviour.

    Program-level exceptions escaping a channel body drop the packet and
    are counted in {!stats} — the situation the delivery analysis
    (paper §2.1) exists to rule out. *)

type t

type stats = {
  mutable handled : int;  (** packets processed by some channel *)
  mutable fallthrough : int;  (** packets left to standard IP processing *)
  mutable errors : int;  (** uncaught program exceptions *)
}

(** [attach node] creates a runtime and installs its hook on [node].
    Also installs the primitive library on first use.

    @param resource_bound the paper's rejected-but-discussed alternative to
      verification (§2.1): cap the TTL of every packet a program emits, so
      even an unverified cycling protocol dies after that many hops. The
      paper's objection — "it introduces a safety problem of unintended
      program termination" — is demonstrated in the test suite: a verified
      program whose legitimate path is longer than the bound loses packets. *)
val attach : ?resource_bound:int -> Netsim.Node.t -> t

val node : t -> Netsim.Node.t
val stats : t -> stats

(** {1 Flow-cache epoch}

    The runtime keeps one invalidation epoch per node for its flow-keyed
    decision caches ({!Flowcache}). [install], [uninstall], and the
    node's forwarding-invalidation hook (route rebuilds, fault
    reconvergence) all bump it; a probe under a new epoch flushes that
    channel's cache. *)

val epoch : t -> int

(** [bump_epoch t] forces a flush of every flow cache on this node on
    next probe (exposed for external invalidation sources). *)
val bump_epoch : t -> unit

(** An installed program. *)
type program

type error =
  | Parse_error of string
  | Type_error of string
  | Rejected of string  (** refused by the [pre] validation hook *)

val error_to_string : error -> string

(** [install t ~source ()] parses, type checks, validates, compiles and
    activates a program.

    @param backend execution backend (default: the interpreter)
    @param pre validation hook run between type checking and compilation —
      the place where {!Planp_analysis.Verifier} plugs in
    @param name label used in diagnostics *)
val install :
  ?backend:Backend.t ->
  ?pre:(Planp.Typecheck.checked -> (unit, string) result) ->
  ?name:string ->
  t ->
  source:string ->
  unit ->
  (program, error) result

(** [install_exn] is [install], raising [Failure] on error. *)
val install_exn :
  ?backend:Backend.t ->
  ?pre:(Planp.Typecheck.checked -> (unit, string) result) ->
  ?name:string ->
  t ->
  source:string ->
  unit ->
  program

(** [uninstall t program] deactivates; the node hook is removed when no
    program remains. *)
val uninstall : t -> program -> unit

val installed_programs : t -> program list
val program_name : program -> string

(** [proto_state program] is the current protocol state (shared across the
    program's channels). *)
val proto_state : program -> Value.t

(** [channel_state program chan_name index] is the state of the [index]-th
    overload of [chan_name] (0-based). *)
val channel_state : program -> string -> int -> Value.t option

(** [channel_hits program] — per channel declaration (in source order):
    (name, packet type, packets handled). *)
val channel_hits : program -> (string * string * int) list

(** [output t] is everything the node's programs printed. *)
val output : t -> string

(** [inject t packet] runs a packet through the runtime as locally
    originated (incoming interface -1, so [OnNeighbor] floods every
    interface); pass [ifindex] to simulate arrival on a wire instead. *)
val inject : ?ifindex:int -> t -> Netsim.Packet.t -> unit
