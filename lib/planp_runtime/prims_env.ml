module Ptype = Planp.Ptype
module Sig = Planp.Prim_sig

(* Node-environment primitives: what a program can observe about the router
   it runs on. [linkLoad]/[linkCapacity] report in kilobytes per second,
   matching the paper's Fig. 6 units. *)

let kbytes_per_s bps = int_of_float (bps /. 8.0 /. 1000.0)

let install () =
  List.iter Prim.register
    [
      {
        Prim.prim_name = "linkLoad";
        type_fn = Sig.fixed [ Ptype.Tint ] Ptype.Tint;
        impl =
          (fun world args ->
            match args with
            | [| ifindex |] ->
                Value.Vint
                  (kbytes_per_s
                     (world.World.iface_load_bps (Value.as_int ifindex)))
            | _ -> raise (Value.Runtime_error "linkLoad: expected 1 argument"));
        pure = false;
      };
      {
        Prim.prim_name = "linkCapacity";
        type_fn = Sig.fixed [ Ptype.Tint ] Ptype.Tint;
        impl =
          (fun world args ->
            match args with
            | [| ifindex |] ->
                Value.Vint
                  (kbytes_per_s
                     (world.World.iface_capacity_bps (Value.as_int ifindex)))
            | _ ->
                raise (Value.Runtime_error "linkCapacity: expected 1 argument"));
        pure = false;
      };
      {
        Prim.prim_name = "thisIface";
        type_fn = Sig.fixed [] Ptype.Tint;
        impl = (fun world _args -> Value.Vint world.World.incoming_iface);
        pure = false;
      };
      {
        Prim.prim_name = "timeMs";
        type_fn = Sig.fixed [] Ptype.Tint;
        impl =
          (fun world _args ->
            Value.Vint (int_of_float (world.World.now () *. 1000.0)));
        pure = false;
      };
    ]
