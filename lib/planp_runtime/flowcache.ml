module Ast = Planp.Ast
module Cacheability = Planp_analysis.Cacheability

(* ------------------------------------------------------------------ *)
(* Configuration                                                      *)
(* ------------------------------------------------------------------ *)

let enabled_flag = ref true
let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b

(* Entries per channel cache; inserts stop (probes keep hitting) once a
   cache is full, bounding memory against adversarial key churn. *)
let max_entries = 4096

(* ------------------------------------------------------------------ *)
(* Primitive classification                                           *)
(* ------------------------------------------------------------------ *)

(* Audited whitelists over the built-in library. Anything not listed
   falls back to Pure{may_raise=true} if registered pure (sound: a
   spurious may-raise only widens the key) and Impure otherwise. The
   table primitives are registered [pure] (meaning "may run outside a
   packet context"), which is weaker than cache-purity, so they are
   classified explicitly: reads are Table_read, writes Impure. *)

let pure_no_raise =
  [
    "itos"; "htos"; "charPos"; "min"; "max"; "abs"; "strlen"; "strFind";
    "stob"; "btos"; "blobLength"; "blobConcat"; "even"; "ipSrc"; "ipDst";
    "ipTtl"; "ipSrcSet"; "ipDestSet"; "tcpSrc"; "tcpDst"; "tcpSeq"; "tcpAck";
    "tcpSyn"; "tcpFin"; "tcpIsAck"; "tcpSrcSet"; "tcpDstSet"; "udpSrc";
    "udpDst"; "udpSrcSet"; "udpDstSet"; "mkUdp"; "isMulticast"; "hostBits";
  ]

let pure_may_raise =
  [
    "chr"; "strget"; "substr"; "blobByte"; "blobU32"; "blobSub"; "audioSeq";
    "audioQuality"; "audioFrames"; "audioBytes"; "audioDegrade";
    "audioRestore"; "isImage"; "imgWidth"; "imgHeight"; "imgDepth";
    "imgBytes"; "imgDistill";
  ]

let classify name =
  match name with
  | "print" | "println" | "linkLoad" | "linkCapacity" | "thisIface"
  | "timeMs" | "mkTable" | "tblSet" | "tblRemove" | "tblClear" ->
      Cacheability.Impure
  | "thisHost" -> Cacheability.Node_const
  | "deliver" -> Cacheability.Emit
  | "tblGet" | "tblMem" | "tblSize" -> Cacheability.Table_read
  | _ ->
      if List.mem name pure_no_raise then
        Cacheability.Pure { may_raise = false }
      else if List.mem name pure_may_raise then
        Cacheability.Pure { may_raise = true }
      else (
        match Prim.find name with
        | Some p when p.Prim.pure -> Cacheability.Pure { may_raise = true }
        | Some _ | None -> Cacheability.Impure)

(* ------------------------------------------------------------------ *)
(* A tiny closure compiler for the extracted pure expressions          *)
(* ------------------------------------------------------------------ *)

(* Atoms, guards and site arguments are closed over (ps, ss, pkt) and
   the program globals, so they compile into closures over one shared
   slot frame (ps=0, ss=1, pkt=2; inner lets above). The frame is
   shared across all of a cache's expressions — they evaluate strictly
   sequentially. Mirrors Planp_jit.Specialize's design, minus the
   arena: a fixed per-cache frame plus per-call function frames. *)

type crt = { mutable cw : World.t; slots : Value.t array }
type code = crt -> Value.t

exception Unsupported of string

type cbind = Cconst of Value.t | Cslot of int
type cfun = { cf_frame : int; cf_code : code }

type cctx = {
  cnames : (string * cbind) list;
  cnext : int;
  cmax : int ref;
  cfuns : (string, cfun) Hashtbl.t;
}

let cbind ctx name =
  let slot = ctx.cnext in
  if slot + 1 > !(ctx.cmax) then ctx.cmax := slot + 1;
  { ctx with cnames = (name, Cslot slot) :: ctx.cnames; cnext = slot + 1 }

let arith op a b =
  let a = Value.as_int a and b = Value.as_int b in
  match op with
  | Ast.Add -> Value.Vint (a + b)
  | Ast.Sub -> Value.Vint (a - b)
  | Ast.Mul -> Value.Vint (a * b)
  | Ast.Div ->
      if b = 0 then raise (Value.Planp_raise "DivByZero") else Value.Vint (a / b)
  | Ast.Mod ->
      if b = 0 then raise (Value.Planp_raise "DivByZero")
      else Value.Vint (a mod b)
  | _ -> assert false

let rec compile ctx (e : Ast.expr) : code =
  match e.Ast.desc with
  | Ast.Int n ->
      let v = Value.Vint n in
      fun _ -> v
  | Ast.Bool b ->
      let v = Value.vbool b in
      fun _ -> v
  | Ast.String s ->
      let v = Value.Vstring s in
      fun _ -> v
  | Ast.Char c ->
      let v = Value.Vchar c in
      fun _ -> v
  | Ast.Unit -> fun _ -> Value.Vunit
  | Ast.Host h ->
      let v = Value.Vhost h in
      fun _ -> v
  | Ast.Var n -> (
      match List.assoc_opt n ctx.cnames with
      | Some (Cconst v) -> fun _ -> v
      | Some (Cslot i) -> fun crt -> Array.unsafe_get crt.slots i
      | None -> raise (Unsupported ("unbound variable " ^ n)))
  | Ast.Call (f, args) -> compile_call ctx f args
  | Ast.Tuple xs ->
      let codes = Array.of_list (List.map (compile ctx) xs) in
      fun crt -> Value.Vtuple (Array.map (fun c -> c crt) codes)
  | Ast.Proj (i, x) ->
      let cx = compile ctx x in
      let idx = i - 1 in
      fun crt -> (
        match cx crt with
        | Value.Vtuple comps when idx >= 0 && idx < Array.length comps ->
            Array.unsafe_get comps idx
        | v -> Value.type_error ~expected:"tuple" v)
  | Ast.Let (bs, body) ->
      let rec go ctx acc = function
        | [] ->
            let cb = compile ctx body in
            let inits = Array.of_list (List.rev acc) in
            fun crt ->
              Array.iter (fun (slot, c) -> crt.slots.(slot) <- c crt) inits;
              cb crt
        | b :: rest ->
            let ce = compile ctx b.Ast.bind_expr in
            let ctx = cbind ctx b.Ast.bind_name in
            let slot =
              match List.assoc b.Ast.bind_name ctx.cnames with
              | Cslot slot -> slot
              | Cconst _ -> assert false
            in
            go ctx ((slot, ce) :: acc) rest
      in
      go ctx [] bs
  | Ast.If (c, t, f) ->
      let cc = compile ctx c in
      let ct = compile ctx t in
      let cf = compile ctx f in
      fun crt -> if Value.as_bool (cc crt) then ct crt else cf crt
  | Ast.Binop (Ast.And, l, r) ->
      let cl = compile ctx l in
      let cr = compile ctx r in
      fun crt -> if Value.as_bool (cl crt) then cr crt else Value.vfalse
  | Ast.Binop (Ast.Or, l, r) ->
      let cl = compile ctx l in
      let cr = compile ctx r in
      fun crt -> if Value.as_bool (cl crt) then Value.vtrue else cr crt
  | Ast.Binop (((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod) as op), l, r)
    ->
      let cl = compile ctx l in
      let cr = compile ctx r in
      fun crt -> arith op (cl crt) (cr crt)
  | Ast.Binop (Ast.Eq, l, r) ->
      let cl = compile ctx l in
      let cr = compile ctx r in
      fun crt -> Value.vbool (Value.equal (cl crt) (cr crt))
  | Ast.Binop (Ast.Ne, l, r) ->
      let cl = compile ctx l in
      let cr = compile ctx r in
      fun crt -> Value.vbool (not (Value.equal (cl crt) (cr crt)))
  | Ast.Binop (Ast.Lt, l, r) ->
      let cl = compile ctx l in
      let cr = compile ctx r in
      fun crt -> Value.vbool (Value.compare_values (cl crt) (cr crt) < 0)
  | Ast.Binop (Ast.Gt, l, r) ->
      let cl = compile ctx l in
      let cr = compile ctx r in
      fun crt -> Value.vbool (Value.compare_values (cl crt) (cr crt) > 0)
  | Ast.Binop (Ast.Le, l, r) ->
      let cl = compile ctx l in
      let cr = compile ctx r in
      fun crt -> Value.vbool (Value.compare_values (cl crt) (cr crt) <= 0)
  | Ast.Binop (Ast.Ge, l, r) ->
      let cl = compile ctx l in
      let cr = compile ctx r in
      fun crt -> Value.vbool (Value.compare_values (cl crt) (cr crt) >= 0)
  | Ast.Binop (Ast.Concat, l, r) ->
      let cl = compile ctx l in
      let cr = compile ctx r in
      fun crt -> Value.Vstring (Value.as_string (cl crt) ^ Value.as_string (cr crt))
  | Ast.Unop (Ast.Not, x) ->
      let cx = compile ctx x in
      fun crt -> Value.vbool (not (Value.as_bool (cx crt)))
  | Ast.Unop (Ast.Neg, x) ->
      let cx = compile ctx x in
      fun crt -> Value.Vint (-Value.as_int (cx crt))
  | Ast.Seq (l, r) ->
      let cl = compile ctx l in
      let cr = compile ctx r in
      fun crt ->
        ignore (cl crt);
        cr crt
  | Ast.Raise exn_name -> fun _ -> raise (Value.Planp_raise exn_name)
  | Ast.Try (b, hs) ->
      let cb = compile ctx b in
      let chs = List.map (fun (name, h) -> (name, compile ctx h)) hs in
      fun crt -> (
        try cb crt
        with Value.Planp_raise exn_name as original -> (
          match List.assoc_opt exn_name chs with
          | Some ch -> ch crt
          | None -> raise original))
  | Ast.On_remote _ | Ast.On_neighbor _ ->
      raise (Unsupported "emission inside a pure expression")

and compile_call ctx f args =
  match Hashtbl.find_opt ctx.cfuns f with
  | Some { cf_frame; cf_code } ->
      let codes = Array.of_list (List.map (compile ctx) args) in
      let frame = Int.max cf_frame 1 in
      fun crt ->
        let slots = Array.make frame Value.Vunit in
        Array.iteri (fun i c -> slots.(i) <- c crt) codes;
        cf_code { cw = crt.cw; slots }
  | None -> (
      let prim =
        match Prim.find f with
        | Some p -> p
        | None -> raise (Unsupported ("unknown primitive " ^ f))
      in
      let impl = prim.Prim.impl in
      (* Per-call-site scratch arrays, as in the JIT: legal because
         PLAN-P functions are non-recursive and Prim.impl never retains
         its argument array. *)
      match List.map (compile ctx) args with
      | [] -> fun crt -> impl crt.cw [||]
      | [ c1 ] ->
          let scratch = Array.make 1 Value.Vunit in
          fun crt ->
            scratch.(0) <- c1 crt;
            impl crt.cw scratch
      | [ c1; c2 ] ->
          let scratch = Array.make 2 Value.Vunit in
          fun crt ->
            scratch.(0) <- c1 crt;
            scratch.(1) <- c2 crt;
            impl crt.cw scratch
      | [ c1; c2; c3 ] ->
          let scratch = Array.make 3 Value.Vunit in
          fun crt ->
            scratch.(0) <- c1 crt;
            scratch.(1) <- c2 crt;
            scratch.(2) <- c3 crt;
            impl crt.cw scratch
      | codes ->
          let codes = Array.of_list codes in
          let scratch = Array.make (Array.length codes) Value.Vunit in
          fun crt ->
            Array.iteri (fun i c -> scratch.(i) <- c crt) codes;
            impl crt.cw scratch)

(* ------------------------------------------------------------------ *)
(* Keys and entries                                                   *)
(* ------------------------------------------------------------------ *)

module Key = struct
  type part = Kval of Value.t | Kok | Kraise of string

  (* Mutable so one scratch key per cache can be refilled per probe;
     inserted keys are fresh copies and never mutated afterwards. *)
  type t = { mutable ksrc : int; mutable kdst : int; kparts : part array }

  let part_equal p q =
    match (p, q) with
    | Kval a, Kval b -> Value.equal a b
    | Kok, Kok -> true
    | Kraise a, Kraise b -> String.equal a b
    | _ -> false

  let equal a b =
    a.ksrc = b.ksrc && a.kdst = b.kdst
    && Array.length a.kparts = Array.length b.kparts
    &&
    let n = Array.length a.kparts in
    let rec loop i =
      i >= n || (part_equal a.kparts.(i) b.kparts.(i) && loop (i + 1))
    in
    loop 0

  (* Degenerate buckets for non-scalar atom values are acceptable: the
     analysis keys decisions on conditions (bools) and integer deltas;
     equality still does the exact work. *)
  let part_hash = function
    | Kval (Value.Vint n) -> n
    | Kval (Value.Vbool b) -> if b then 3 else 5
    | Kval (Value.Vchar c) -> Char.code c
    | Kval (Value.Vhost h) -> h
    | Kval (Value.Vstring s) -> Hashtbl.hash s
    | Kval _ -> 7
    | Kok -> 11
    | Kraise e -> Hashtbl.hash e

  let hash k =
    let h = ref ((k.ksrc * 31) + k.kdst) in
    Array.iter (fun p -> h := (!h * 131) + part_hash p) k.kparts;
    !h land max_int
end

module H = Hashtbl.Make (Key)

type entry = {
  e_plan : int array;  (* emission events as site indices, in order *)
  e_error : bool;
  e_delta : int;
  e_steps : int;
  e_prims : int;
  e_tgen : int;  (* Prims_table.generation at capture *)
}

type csite = {
  s_target : World.target option;  (* None = local deliver *)
  s_chan : string;
  s_code : code;
  s_may_raise : bool;
}

type t = {
  fc_atoms : code array;
  fc_guards : code array;
  fc_sites : csite array;
  fc_site_part : int array;  (* key-part index of may-raise sites, -1 else *)
  fc_reads_tables : bool;
  fc_delta_ok : bool;
  fc_entries : entry H.t;
  mutable fc_epoch : int;
  fc_crt : crt;
  fc_scratch : Key.t;
  fc_memo : Value.t option array;
  m_hits : Obs.Registry.counter;
  m_misses : Obs.Registry.counter;
  m_invalidations : Obs.Registry.counter;
  m_skipped : Obs.Registry.counter;
}

type hit = { h_delta : int; h_error : bool; h_steps : int; h_prims : int }

let size fc = H.length fc.fc_entries

(* ------------------------------------------------------------------ *)
(* Building a channel cache                                           *)
(* ------------------------------------------------------------------ *)

let build ~node_name ~chan ~verdict ~globals ~funs =
  match verdict with
  | Cacheability.Uncacheable _ -> None
  | Cacheability.Cacheable d -> (
      try
        let gbinds =
          List.map (fun (name, value) -> (name, Cconst value)) globals
        in
        let cfuns = Hashtbl.create 8 in
        List.iter
          (fun (fd : Ast.fundef) ->
            (* Functions compile in declaration order (they are
               non-recursive); one that resists compilation is simply
               absent — if the channel needs it, the channel's own
               compilation fails and the cache is not built. *)
            try
              let cmax = ref (List.length fd.Ast.params) in
              let cnames =
                List.mapi
                  (fun i (param, _ty) -> (param, Cslot i))
                  fd.Ast.params
                @ gbinds
              in
              let ctx = { cnames; cnext = List.length fd.Ast.params; cmax; cfuns } in
              let code = compile ctx fd.Ast.fun_body in
              Hashtbl.replace cfuns fd.Ast.fun_name
                { cf_frame = !cmax; cf_code = code }
            with Unsupported _ -> ())
          funs;
        let cmax = ref 3 in
        let base_ctx =
          {
            cnames =
              (chan.Ast.ps_name, Cslot 0)
              :: (chan.Ast.ss_name, Cslot 1)
              :: (chan.Ast.pkt_name, Cslot 2)
              :: gbinds;
            cnext = 3;
            cmax;
            cfuns;
          }
        in
        let compile_top e = compile base_ctx e in
        let atoms = Array.of_list (List.map compile_top d.Cacheability.atoms) in
        let guards = Array.of_list (List.map compile_top d.Cacheability.guards) in
        let sites =
          Array.of_list
            (List.map
               (fun (s : Cacheability.site) ->
                 let target, chan_tag =
                   match s.Cacheability.site_target with
                   | Cacheability.Remote c -> (Some World.Remote, c)
                   | Cacheability.Neighbor c -> (Some World.Neighbor, c)
                   | Cacheability.Deliver -> (None, Ast.network_channel)
                 in
                 {
                   s_target = target;
                   s_chan = chan_tag;
                   s_code = compile_top s.Cacheability.site_expr;
                   s_may_raise = s.Cacheability.site_may_raise;
                 })
               d.Cacheability.sites)
        in
        let site_part = Array.make (Array.length sites) (-1) in
        let n_parts = ref (Array.length atoms + Array.length guards) in
        Array.iteri
          (fun i s ->
            if s.s_may_raise then begin
              site_part.(i) <- !n_parts;
              incr n_parts
            end)
          sites;
        let labels =
          [ ("node", node_name); ("chan", chan.Ast.chan_name) ]
        in
        let counter name help =
          Obs.Registry.counter ~labels ~volatile:true ~help name
        in
        let world, _, _ = World.dummy () in
        Some
          {
            fc_atoms = atoms;
            fc_guards = guards;
            fc_sites = sites;
            fc_site_part = site_part;
            fc_reads_tables = d.Cacheability.reads_tables;
            fc_delta_ok = d.Cacheability.ps_int_delta;
            fc_entries = H.create 64;
            fc_epoch = min_int;
            fc_crt = { cw = world; slots = Array.make (Int.max !cmax 3) Value.Vunit };
            fc_scratch =
              { Key.ksrc = 0; kdst = 0; kparts = Array.make !n_parts Key.Kok };
            fc_memo = Array.make (Int.max (Array.length sites) 1) None;
            m_hits = counter "runtime.cache.hits" "flow-cache decision replays";
            m_misses = counter "runtime.cache.misses" "flow-cache misses";
            m_invalidations =
              counter "runtime.cache.invalidations"
                "flow-cache flushes (epoch or table-version churn)";
            m_skipped =
              counter "runtime.cache.skipped"
                "executions the cache declined to capture or key";
          }
      with Unsupported _ -> None)

(* ------------------------------------------------------------------ *)
(* Probing                                                            *)
(* ------------------------------------------------------------------ *)

let probe fc ~epoch ~world ~src ~dst ~ps ~ss ~pkt =
  if fc.fc_epoch <> epoch then begin
    if fc.fc_epoch <> min_int then Obs.Registry.incr fc.m_invalidations;
    H.reset fc.fc_entries;
    fc.fc_epoch <- epoch
  end;
  let crt = fc.fc_crt in
  crt.cw <- world;
  let slots = crt.slots in
  slots.(0) <- ps;
  slots.(1) <- ss;
  slots.(2) <- pkt;
  Array.fill fc.fc_memo 0 (Array.length fc.fc_memo) None;
  let key = fc.fc_scratch in
  key.Key.ksrc <- src;
  key.Key.kdst <- dst;
  let parts = key.Key.kparts in
  match
    let i = ref 0 in
    Array.iter
      (fun code ->
        parts.(!i) <-
          (try Key.Kval (code crt) with Value.Planp_raise e -> Key.Kraise e);
        incr i)
      fc.fc_atoms;
    Array.iter
      (fun code ->
        parts.(!i) <-
          (try
             ignore (code crt);
             Key.Kok
           with Value.Planp_raise e -> Key.Kraise e);
        incr i)
      fc.fc_guards;
    Array.iteri
      (fun si site ->
        if site.s_may_raise then begin
          parts.(!i) <-
            (try
               let v = site.s_code crt in
               fc.fc_memo.(si) <- Some v;
               Key.Kok
             with Value.Planp_raise e -> Key.Kraise e);
          incr i
        end)
      fc.fc_sites;
    H.find_opt fc.fc_entries key
  with
  | exception Value.Runtime_error _ ->
      (* Key construction went somewhere the type checker says it
         cannot: decline this packet rather than guess. *)
      Obs.Registry.incr fc.m_skipped;
      `Bypass
  | Some e when fc.fc_reads_tables && e.e_tgen <> Prims_table.generation () ->
      H.remove fc.fc_entries key;
      Obs.Registry.incr fc.m_invalidations;
      Obs.Registry.incr fc.m_misses;
      `Miss
  | Some e ->
      (* Replay: re-emit from each captured site in capture order. The
         analysis proved unmemoized sites cannot raise. *)
      Array.iter
        (fun si ->
          let site = fc.fc_sites.(si) in
          let v =
            match fc.fc_memo.(si) with Some v -> v | None -> site.s_code crt
          in
          match site.s_target with
          | Some target -> world.World.emit target ~chan:site.s_chan v
          | None -> world.World.deliver v)
        e.e_plan;
      Obs.Registry.incr fc.m_hits;
      `Hit
        {
          h_delta = e.e_delta;
          h_error = e.e_error;
          h_steps = e.e_steps;
          h_prims = e.e_prims;
        }
  | None ->
      Obs.Registry.incr fc.m_misses;
      `Miss

(* ------------------------------------------------------------------ *)
(* Capture                                                            *)
(* ------------------------------------------------------------------ *)

type recorder = {
  mutable rec_events : (World.target option * string * Value.t) list;
      (* newest first *)
  mutable rec_poisoned : bool;
  rec_gen0 : int;
  rec_key : Key.t;  (* owned copy: reentrant probes may reuse scratch *)
  rec_world : World.t;
  rec_ps : Value.t;
  rec_ss : Value.t;
  rec_pkt : Value.t;
}

let start_recording fc ~world ~ps ~ss ~pkt =
  let r =
    {
      rec_events = [];
      rec_poisoned = false;
      rec_gen0 = Prims_table.generation ();
      rec_key =
        {
          Key.ksrc = fc.fc_scratch.Key.ksrc;
          kdst = fc.fc_scratch.Key.kdst;
          kparts = Array.copy fc.fc_scratch.Key.kparts;
        };
      rec_world = world;
      rec_ps = ps;
      rec_ss = ss;
      rec_pkt = pkt;
    }
  in
  let world' =
    {
      world with
      World.emit =
        (fun target ~chan value ->
          r.rec_events <- (Some target, chan, value) :: r.rec_events;
          world.World.emit target ~chan value);
      deliver =
        (fun value ->
          r.rec_events <- (None, Ast.network_channel, value) :: r.rec_events;
          world.World.deliver value);
      print =
        (fun s ->
          (* The analysis rejects printing channels; belt and braces. *)
          r.rec_poisoned <- true;
          world.World.print s);
    }
  in
  (r, world')

let commit fc r ~epoch ~error ~ps ~ps' ~ss ~ss' ~steps ~prims =
  if fc.fc_epoch <> epoch then ()
  else if
    r.rec_poisoned
    || Prims_table.generation () <> r.rec_gen0
    || H.length fc.fc_entries >= max_entries
  then Obs.Registry.incr fc.m_skipped
  else begin
    let ok = ref true in
    if (not error) && not (ss' == ss || Value.equal ss ss') then ok := false;
    let delta =
      if error || ps' == ps then 0
      else
        match (ps, ps') with
        | Value.Vint a, Value.Vint b when fc.fc_delta_ok || a = b -> b - a
        | _ ->
            ok := false;
            0
    in
    if !ok then begin
      (* Re-seed the frame from the recorder: the backend execution (or
         a reentrant delivery) may have run other probes meanwhile. *)
      let crt = fc.fc_crt in
      crt.cw <- r.rec_world;
      crt.slots.(0) <- r.rec_ps;
      crt.slots.(1) <- r.rec_ss;
      crt.slots.(2) <- r.rec_pkt;
      Array.fill fc.fc_memo 0 (Array.length fc.fc_memo) None;
      let events = List.rev r.rec_events in
      let plan = Array.make (List.length events) 0 in
      (try
         List.iteri
           (fun ei ((target, chan, value) : World.target option * string * Value.t) ->
             let matched = ref (-1) in
             Array.iteri
               (fun si site ->
                 let target_ok =
                   match (target, site.s_target) with
                   | Some World.Remote, Some World.Remote
                   | Some World.Neighbor, Some World.Neighbor ->
                       String.equal chan site.s_chan
                   | None, None -> true
                   | _ -> false
                 in
                 if target_ok then begin
                   (* A site that raises here raised during the captured
                      execution too (same frame, pure code): it cannot
                      have produced this event, so it simply doesn't
                      match — the key's [Kraise] part pins that fate for
                      every packet sharing the key. *)
                   let sv_opt =
                     match fc.fc_memo.(si) with
                     | Some sv -> Some sv
                     | None -> (
                         match site.s_code crt with
                         | sv ->
                             fc.fc_memo.(si) <- Some sv;
                             Some sv
                         | exception Value.Planp_raise _ -> None)
                   in
                   match sv_opt with
                   | Some sv when Value.equal sv value ->
                       if !matched >= 0 && !matched <> si then
                         (* Two distinct sites produce this value today;
                            they might diverge for a later packet with
                            the same key. Refuse. *)
                         raise Exit
                       else matched := si
                   | Some _ | None -> ()
                 end)
               fc.fc_sites;
             if !matched < 0 then raise Exit;
             plan.(ei) <- !matched)
           events
       with Exit | Value.Planp_raise _ -> ok := false);
      if !ok then
        H.replace fc.fc_entries r.rec_key
          {
            e_plan = plan;
            e_error = error;
            e_delta = delta;
            e_steps = steps;
            e_prims = prims;
            e_tgen = r.rec_gen0;
          }
      else Obs.Registry.incr fc.m_skipped
    end
    else Obs.Registry.incr fc.m_skipped
  end
