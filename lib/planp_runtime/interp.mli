(** The PLAN-P tree-walking interpreter — the reference semantics.

    The JIT of the paper is *derived from* this interpreter by
    specialization; [Planp_jit.Specialize] mirrors this module case by case,
    moving the AST traversal to compile time. When changing evaluation
    rules here, change them there. *)

module Env : Map.S with type key = string

(** Evaluation context: the world, the program's functions, and the global
    value environment. *)
type ctx

val make_ctx :
  world:World.t ->
  funs:Planp.Ast.fundef list ->
  globals:(string * Value.t) list ->
  ctx

(** [eval ctx env expr] evaluates under local bindings [env] (on top of the
    context's globals).
    @raise Value.Planp_raise on uncaught PLAN-P exceptions.
    @raise Value.Runtime_error on internal errors. *)
val eval : ctx -> Value.t Env.t -> Planp.Ast.expr -> Value.t

(** [eval_const ~world ~globals expr] evaluates an initializer (no local
    bindings, no functions). *)
val eval_const :
  world:World.t -> globals:(string * Value.t) list -> Planp.Ast.expr -> Value.t

(** The interpreter as a backend (re-walks the AST on every packet). *)
val backend : Backend.t

(** Domain-local profiling cells: AST nodes evaluated and primitives
    invoked by the *calling domain* since it started, by any caller of
    [eval]. Kept domain-local (not process-wide refs) so per-packet
    accounting stays race-free under [Netsim.Par_engine --domains k];
    the backend's per-packet wrapper reads deltas of these into the
    [planp.interp.eval_steps] / [planp.interp.prim_calls] counters.
    [profile () = (eval_steps (), prim_calls ())]. *)
val profile : unit -> int * int

val eval_steps : unit -> int
val prim_calls : unit -> int
