module Node = Netsim.Node
module Addr = Netsim.Addr
module Engine = Netsim.Engine
module Reliable = Netsim.Reliable
module Runtime = Planp_runtime.Runtime

(* Everything needed to (re)install one epoch of a program. *)
type version = {
  v_epoch : int;
  v_source : string;
  v_backend : string;
  v_auth : bool;
}

type slot = {
  mutable active : (version * Runtime.program) option;
  mutable previous : version option;  (* rollback target *)
  mutable high_water : int;  (* highest epoch ever accepted *)
}

type transfer = {
  reassembly : Capsule.Reassembly.t;
  backend : string;
  authenticated : bool;
  reply_addr : Addr.t;
  reply_port : int;
  started_at : float;  (* simulated time the manifest arrived *)
}

type t = {
  dm_node : Node.t;
  dm_runtime : Runtime.t;
  secret : string;
  reply_src_base : int;
  rto : float;
  max_rto : float;
  retry_budget : int option;
  mutable next_reply_index : int;  (* monotonic: no port reuse after aborts *)
  slots : (string, slot) Hashtbl.t;
  transfers : (string * int, transfer) Hashtbl.t;
  reply_senders : (Addr.t * int, Reliable.Sender.t) Hashtbl.t;
  m_capsules : Obs.Registry.counter;
  m_installs : Obs.Registry.counter;
  m_naks : Obs.Registry.counter;
  m_rollbacks : Obs.Registry.counter;
  m_undeploys : Obs.Registry.counter;
  m_epochs : Obs.Registry.gauge;
  m_verify_wall : Obs.Registry.gauge;
  m_install_latency : Obs.Registry.histogram;
}

let node t = t.dm_node
let runtime t = t.dm_runtime

let slot_of t name =
  match Hashtbl.find_opt t.slots name with
  | Some slot -> slot
  | None ->
      let slot = { active = None; previous = None; high_water = 0 } in
      Hashtbl.replace t.slots name slot;
      slot

let active_program t ~name =
  match Hashtbl.find_opt t.slots name with
  | Some { active = Some (_, program); _ } -> Some program
  | Some _ | None -> None

let active_epoch t ~name =
  match Hashtbl.find_opt t.slots name with
  | Some { active = Some (version, _); _ } -> Some version.v_epoch
  | Some _ | None -> None

let previous_epoch t ~name =
  match Hashtbl.find_opt t.slots name with
  | Some { previous = Some version; _ } -> Some version.v_epoch
  | Some _ | None -> None

let high_water t ~name =
  match Hashtbl.find_opt t.slots name with
  | Some slot -> slot.high_water
  | None -> 0

let slots t =
  Hashtbl.fold
    (fun name slot acc ->
      match slot.active with
      | Some (version, _) -> (name, version.v_epoch) :: acc
      | None -> acc)
    t.slots []
  |> List.sort compare

let active_count t = List.length (slots t)

let reply_sender t ~addr ~port =
  match Hashtbl.find_opt t.reply_senders (addr, port) with
  | Some sender -> sender
  | None ->
      let src_port = t.reply_src_base + t.next_reply_index in
      t.next_reply_index <- t.next_reply_index + 1;
      let sender =
        Reliable.Sender.connect ~chan_tag:Capsule.chan_tag ~rto:t.rto
          ~max_rto:t.max_rto ?retry_budget:t.retry_budget
          (* A dead reply stream is forgotten so the next ACK/NAK toward
             this controller dials a fresh one. *)
          ~on_abort:(fun _reason -> Hashtbl.remove t.reply_senders (addr, port))
          t.dm_node ~dst:addr ~dst_port:port ~src_port ()
      in
      Hashtbl.replace t.reply_senders (addr, port) sender;
      sender

let send_reply t ~addr ~port msg =
  Reliable.Sender.send (reply_sender t ~addr ~port) (Capsule.encode msg)

let ack t ~addr ~port ~program ~epoch ~latency ~note =
  let signature =
    Capsule.sign ~secret:t.secret ~program ~epoch ~node:(Node.addr t.dm_node)
  in
  Obs.Registry.set t.m_epochs (float_of_int (active_count t));
  send_reply t ~addr ~port
    (Capsule.Ack
       {
         program;
         epoch;
         signature;
         install_latency_us = int_of_float (latency *. 1e6);
         note;
       })

let nak t ~addr ~port ~program ~epoch reason =
  Obs.Registry.incr t.m_naks;
  send_reply t ~addr ~port (Capsule.Nak { program; epoch; reason })

(* Parse, verify (on this node), compile and activate one version; on
   success hot-swap the slot: the new epoch is installed before the old one
   is uninstalled, so the slot never stops serving. On any failure the old
   epoch is untouched. *)
let install_version t ~program (version : version) =
  match Planp_jit.Backends.by_name version.v_backend with
  | None -> Error (Printf.sprintf "unknown backend %s" version.v_backend)
  | Some backend -> (
      let gate = Planp_analysis.Verifier.gate ~authenticated:version.v_auth () in
      let pre checked =
        let started = Sys.time () in
        let verdict = gate checked in
        Obs.Registry.set t.m_verify_wall (Sys.time () -. started);
        verdict
      in
      match
        Runtime.install ~backend ~pre ~name:program t.dm_runtime
          ~source:version.v_source ()
      with
      | Error error -> Error (Runtime.error_to_string error)
      | Ok handle ->
          let slot = slot_of t program in
          (match slot.active with
          | Some (old_version, old_handle) ->
              Runtime.uninstall t.dm_runtime old_handle;
              slot.previous <- Some old_version
          | None -> ());
          slot.active <- Some (version, handle);
          slot.high_water <- max slot.high_water version.v_epoch;
          Obs.Registry.incr t.m_installs;
          Ok ())

let complete_transfer t ~program ~epoch transfer =
  let { reply_addr = addr; reply_port = port; _ } = transfer in
  match Capsule.Reassembly.source transfer.reassembly with
  | Error reason -> nak t ~addr ~port ~program ~epoch reason
  | Ok source -> (
      let version =
        {
          v_epoch = epoch;
          v_source = source;
          v_backend = transfer.backend;
          v_auth = transfer.authenticated;
        }
      in
      match install_version t ~program version with
      | Error reason -> nak t ~addr ~port ~program ~epoch reason
      | Ok () ->
          let latency =
            Engine.now (Node.engine t.dm_node) -. transfer.started_at
          in
          Obs.Registry.observe t.m_install_latency latency;
          ack t ~addr ~port ~program ~epoch ~latency ~note:"activated")

let on_manifest t (m : Capsule.msg) =
  match m with
  | Capsule.Manifest m ->
      let slot = slot_of t m.program in
      if m.epoch <= slot.high_water then
        nak t ~addr:m.reply_addr ~port:m.reply_port ~program:m.program
          ~epoch:m.epoch
          (Printf.sprintf "stale epoch %d (high water %d)" m.epoch
             slot.high_water)
      else begin
        let transfer =
          {
            reassembly =
              Capsule.Reassembly.create ~total_chunks:m.total_chunks
                ~total_bytes:m.total_bytes ~checksum:m.checksum;
            backend = m.backend;
            authenticated = m.authenticated;
            reply_addr = m.reply_addr;
            reply_port = m.reply_port;
            started_at = Engine.now (Node.engine t.dm_node);
          }
        in
        Hashtbl.replace t.transfers (m.program, m.epoch) transfer;
        if Capsule.Reassembly.complete transfer.reassembly then begin
          Hashtbl.remove t.transfers (m.program, m.epoch);
          complete_transfer t ~program:m.program ~epoch:m.epoch transfer
        end
      end
  | _ -> assert false

let on_chunk t ~program ~epoch ~index data =
  match Hashtbl.find_opt t.transfers (program, epoch) with
  | None -> ()  (* no transfer open (stale epoch was NAKed): drop *)
  | Some transfer -> (
      match Capsule.Reassembly.add transfer.reassembly ~index data with
      | Error reason ->
          Hashtbl.remove t.transfers (program, epoch);
          nak t ~addr:transfer.reply_addr ~port:transfer.reply_port ~program
            ~epoch reason
      | Ok () ->
          if Capsule.Reassembly.complete transfer.reassembly then begin
            Hashtbl.remove t.transfers (program, epoch);
            complete_transfer t ~program ~epoch transfer
          end)

let on_undeploy t ~program ~epoch ~addr ~port =
  let slot = slot_of t program in
  match slot.active with
  | None -> nak t ~addr ~port ~program ~epoch "no active program"
  | Some (old_version, handle) ->
      Runtime.uninstall t.dm_runtime handle;
      slot.previous <- Some old_version;
      slot.active <- None;
      slot.high_water <- max slot.high_water epoch;
      Obs.Registry.incr t.m_undeploys;
      ack t ~addr ~port ~program ~epoch:old_version.v_epoch ~latency:0.0
        ~note:"undeployed"

(* Reactivate the retained previous version under its original epoch. The
   high-water mark is untouched, so later deployments must still exceed
   every epoch ever accepted. *)
let on_rollback t ~program ~epoch ~addr ~port =
  let slot = slot_of t program in
  match slot.previous with
  | None -> nak t ~addr ~port ~program ~epoch "nothing to roll back to"
  | Some version -> (
      let started = Engine.now (Node.engine t.dm_node) in
      match install_version t ~program version with
      | Error reason -> nak t ~addr ~port ~program ~epoch reason
      | Ok () ->
          Obs.Registry.incr t.m_rollbacks;
          let latency = Engine.now (Node.engine t.dm_node) -. started in
          ack t ~addr ~port ~program ~epoch:version.v_epoch ~latency
            ~note:"rolled-back")

let on_capsule t payload =
  Obs.Registry.incr t.m_capsules;
  match Capsule.decode payload with
  | None -> ()
  | Some (Capsule.Manifest _ as m) -> on_manifest t m
  | Some (Capsule.Chunk { program; epoch; index; data }) ->
      on_chunk t ~program ~epoch ~index data
  | Some (Capsule.Undeploy { program; epoch; reply_addr; reply_port }) ->
      on_undeploy t ~program ~epoch ~addr:reply_addr ~port:reply_port
  | Some (Capsule.Rollback { program; epoch; reply_addr; reply_port }) ->
      on_rollback t ~program ~epoch ~addr:reply_addr ~port:reply_port
  | Some (Capsule.Ack _ | Capsule.Nak _) -> ()  (* not ours to handle *)

let inject t payload = on_capsule t payload

let start ?(port = Capsule.well_known_port) ?(reply_src_base = 52100)
    ?(secret = "extnet") ?(rto = 0.2) ?(max_rto = 5.0) ?retry_budget ?runtime
    dm_node () =
  let dm_runtime =
    match runtime with Some rt -> rt | None -> Runtime.attach dm_node
  in
  let labels = [ ("node", Node.name dm_node) ] in
  let t =
    {
      dm_node;
      dm_runtime;
      secret;
      reply_src_base;
      rto;
      max_rto;
      retry_budget;
      next_reply_index = 0;
      slots = Hashtbl.create 8;
      transfers = Hashtbl.create 8;
      reply_senders = Hashtbl.create 8;
      m_capsules =
        Obs.Registry.counter ~labels ~help:"deployment capsules received"
          "deploy.daemon.capsules_received";
      m_installs =
        Obs.Registry.counter ~labels ~help:"programs activated"
          "deploy.daemon.installs";
      m_naks =
        Obs.Registry.counter ~labels ~help:"capsules rejected with a NAK"
          "deploy.daemon.naks";
      m_rollbacks =
        Obs.Registry.counter ~labels ~help:"explicit rollbacks served"
          "deploy.daemon.rollbacks";
      m_undeploys =
        Obs.Registry.counter ~labels ~help:"programs retired"
          "deploy.daemon.undeploys";
      m_epochs =
        Obs.Registry.gauge ~labels ~help:"slots with a serving epoch"
          "deploy.daemon.epochs_active";
      m_verify_wall =
        Obs.Registry.gauge ~labels ~volatile:true
          ~help:"wall-clock seconds of the last on-node verification"
          "deploy.daemon.verify_wall_s";
      m_install_latency =
        Obs.Registry.histogram ~labels
          ~help:"simulated seconds from manifest arrival to activation"
          "deploy.daemon.install_latency_s";
    }
  in
  let _rx =
    Reliable.Receiver.listen ~chan_tag:Capsule.chan_tag dm_node ~port
      ~on_message:(fun payload -> on_capsule t payload)
      ()
  in
  t
