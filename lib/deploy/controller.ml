module Node = Netsim.Node
module Addr = Netsim.Addr
module Engine = Netsim.Engine
module Reliable = Netsim.Reliable

type outcome =
  | Acked of { epoch : int; install_latency : float; note : string }
  | Nakked of { epoch : int; reason : string }
  | Timed_out
  | Skipped
  | Aborted of { reason : string }

let outcome_to_string = function
  | Acked { epoch; note; _ } -> Printf.sprintf "ACK epoch %d (%s)" epoch note
  | Nakked { epoch; reason } -> Printf.sprintf "NAK epoch %d: %s" epoch reason
  | Timed_out -> "timed out"
  | Skipped -> "skipped"
  | Aborted { reason } -> Printf.sprintf "aborted: %s" reason

(* One capsule stream + one reply stream per target, reused across ops. *)
type conn = {
  stream : Reliable.Sender.t;
  reply_port : int;
  mutable retx_seen : int;  (* retransmissions already billed to metrics *)
}

type pending = {
  p_epoch : int;
  (* deploys match replies by epoch (a late ACK for a superseded epoch must
     not settle a newer operation); undeploy/rollback ACKs report the
     retired/restored epoch instead of the op's, so they match loosely *)
  p_strict : bool;
  p_on_done : outcome -> unit;
  mutable p_done : bool;
}

type t = {
  ctl_node : Node.t;
  secret : string;
  chunk_size : int;
  daemon_port : int;
  port_base : int;
  rto : float;
  max_rto : float;
  retry_budget : int option;
  conns : (Addr.t, conn) Hashtbl.t;
  (* Ports are allocated by a monotonic counter, not [Hashtbl.length
     t.conns]: a conn torn down after a stream abort must not cause its
     ports to be reissued to a different target. *)
  mutable next_conn_index : int;
  epochs : (Addr.t * string, int) Hashtbl.t;  (* highest shipped epoch *)
  acked_epochs : (Addr.t * string, int) Hashtbl.t;  (* highest ACKed *)
  pending : (Addr.t * string, pending) Hashtbl.t;
  m_capsules : Obs.Registry.counter;
  m_retx : Obs.Registry.counter;
  m_acks : Obs.Registry.counter;
  m_naks : Obs.Registry.counter;
  m_timeouts : Obs.Registry.counter;
  m_aborts : Obs.Registry.counter;
}

let node t = t.ctl_node

let bill_retransmissions t conn =
  let total = Reliable.Sender.retransmissions conn.stream in
  if total > conn.retx_seen then begin
    Obs.Registry.add t.m_retx (total - conn.retx_seen);
    conn.retx_seen <- total
  end

let settle ?reply_epoch t ~target ~name outcome =
  match Hashtbl.find_opt t.pending (target, name) with
  | Some pending
    when (not pending.p_done)
         && not
              (pending.p_strict
              && match reply_epoch with
                 | Some epoch -> epoch <> pending.p_epoch
                 | None -> false) ->
      pending.p_done <- true;
      Hashtbl.remove t.pending (target, name);
      (match Hashtbl.find_opt t.conns target with
      | Some conn -> bill_retransmissions t conn
      | None -> ());
      (match outcome with
      | Acked { epoch; _ } ->
          Obs.Registry.incr t.m_acks;
          Hashtbl.replace t.acked_epochs (target, name) epoch
      | Nakked _ -> Obs.Registry.incr t.m_naks
      | Timed_out -> Obs.Registry.incr t.m_timeouts
      | Skipped -> ()
      | Aborted _ -> Obs.Registry.incr t.m_aborts);
      pending.p_on_done outcome
  | Some _ | None -> ()

let on_reply t ~target payload =
  match Capsule.decode payload with
  | Some (Capsule.Ack { program; epoch; signature; install_latency_us; note })
    ->
      let expected =
        Capsule.sign ~secret:t.secret ~program ~epoch ~node:target
      in
      if signature <> expected then
        settle ~reply_epoch:epoch t ~target ~name:program
          (Nakked { epoch; reason = "bad ACK signature" })
      else
        settle ~reply_epoch:epoch t ~target ~name:program
          (Acked
             {
               epoch;
               install_latency = float_of_int install_latency_us /. 1e6;
               note;
             })
  | Some (Capsule.Nak { program; epoch; reason }) ->
      settle ~reply_epoch:epoch t ~target ~name:program
        (Nakked { epoch; reason })
  | Some _ | None -> ()

(* The capsule stream to [target] exhausted its retry budget: the daemon
   is unreachable. Every operation pending against the target settles
   [Aborted] now (graceful, instead of idling to its timeout), and the
   conn is torn down so a later operation dials a fresh stream — on new
   ports, so stray traffic for the dead stream cannot be misdelivered. *)
let on_stream_abort t ~target reason =
  (match Hashtbl.find_opt t.conns target with
  | Some conn -> bill_retransmissions t conn
  | None -> ());
  let names =
    Hashtbl.fold
      (fun (tgt, name) _ acc ->
        if Addr.equal tgt target then name :: acc else acc)
      t.pending []
  in
  List.iter
    (fun name -> settle t ~target ~name (Aborted { reason }))
    (List.sort String.compare names);
  Hashtbl.remove t.conns target

let conn_of t target =
  match Hashtbl.find_opt t.conns target with
  | Some conn -> conn
  | None ->
      let index = t.next_conn_index in
      t.next_conn_index <- index + 1;
      let src_port = t.port_base + (2 * index) in
      let reply_port = t.port_base + (2 * index) + 1 in
      let stream =
        Reliable.Sender.connect ~chan_tag:Capsule.chan_tag ~rto:t.rto
          ~max_rto:t.max_rto ?retry_budget:t.retry_budget
          ~on_abort:(fun reason -> on_stream_abort t ~target reason)
          t.ctl_node ~dst:target ~dst_port:t.daemon_port ~src_port ()
      in
      let _rx =
        Reliable.Receiver.listen ~chan_tag:Capsule.chan_tag t.ctl_node
          ~port:reply_port
          ~on_message:(fun payload -> on_reply t ~target payload)
          ()
      in
      let conn = { stream; reply_port; retx_seen = 0 } in
      Hashtbl.replace t.conns target conn;
      conn

let send_capsule t conn msg =
  Obs.Registry.incr t.m_capsules;
  Reliable.Sender.send conn.stream (Capsule.encode msg)

let next_epoch t ~target ~name =
  (match Hashtbl.find_opt t.epochs (target, name) with
   | Some epoch -> epoch
   | None -> 0)
  + 1

let arm t ~target ~name ~epoch ~strict ~timeout on_done =
  (* One in-flight operation per (target, program): a newer op supersedes
     an unsettled older one. *)
  (match Hashtbl.find_opt t.pending (target, name) with
  | Some old when not old.p_done ->
      settle t ~target ~name
        (Nakked
           { epoch = old.p_epoch; reason = "superseded by a newer operation" })
  | Some _ | None -> ());
  let pending =
    { p_epoch = epoch; p_strict = strict; p_on_done = on_done; p_done = false }
  in
  Hashtbl.replace t.pending (target, name) pending;
  Engine.schedule_after (Node.engine t.ctl_node) ~delay:timeout (fun () ->
      match Hashtbl.find_opt t.pending (target, name) with
      | Some current when current == pending && not pending.p_done ->
          settle t ~target ~name Timed_out
      | Some _ | None -> ())

let deploy ?(backend = "jit") ?(authenticated = false) ?epoch ?(timeout = 60.0)
    t ~target ~name ~source ~on_done () =
  let epoch =
    match epoch with Some e -> e | None -> next_epoch t ~target ~name
  in
  Hashtbl.replace t.epochs (target, name)
    (max epoch
       (Option.value ~default:0 (Hashtbl.find_opt t.epochs (target, name))));
  let conn = conn_of t target in
  let chunks = Capsule.chunk ~chunk_size:t.chunk_size source in
  arm t ~target ~name ~epoch ~strict:true ~timeout on_done;
  send_capsule t conn
    (Capsule.Manifest
       {
         program = name;
         epoch;
         backend;
         total_chunks = List.length chunks;
         total_bytes = String.length source;
         checksum = Capsule.checksum source;
         authenticated;
         reply_addr = Node.addr t.ctl_node;
         reply_port = conn.reply_port;
       });
  List.iteri
    (fun index data ->
      send_capsule t conn
        (Capsule.Chunk { program = name; epoch; index; data }))
    chunks

let control_op t ~target ~name ~timeout ~make ~on_done =
  let epoch = next_epoch t ~target ~name in
  Hashtbl.replace t.epochs (target, name) epoch;
  let conn = conn_of t target in
  arm t ~target ~name ~epoch ~strict:false ~timeout on_done;
  send_capsule t conn
    (make ~epoch ~reply_addr:(Node.addr t.ctl_node)
       ~reply_port:conn.reply_port)

let undeploy ?(timeout = 60.0) t ~target ~name ~on_done () =
  control_op t ~target ~name ~timeout ~on_done
    ~make:(fun ~epoch ~reply_addr ~reply_port ->
      Capsule.Undeploy { program = name; epoch; reply_addr; reply_port })

let rollback ?(timeout = 60.0) t ~target ~name ~on_done () =
  control_op t ~target ~name ~timeout ~on_done
    ~make:(fun ~epoch ~reply_addr ~reply_port ->
      Capsule.Rollback { program = name; epoch; reply_addr; reply_port })

let epoch_of t ~target ~name = Hashtbl.find_opt t.acked_epochs (target, name)

type nak_policy = Abort | Continue

let rollout ?backend ?authenticated ?epoch ?(concurrency = 2)
    ?(on_nak = Continue) ?timeout ?on_target t ~targets ~name ~source ~on_done
    () =
  if concurrency <= 0 then invalid_arg "Controller.rollout: concurrency";
  let targets = Array.of_list targets in
  let n = Array.length targets in
  (* Snapshot of each target's acked epoch before the rollout starts: an
     aborted rollout restores acked targets to this state. *)
  let prior = Array.map (fun target -> epoch_of t ~target ~name) targets in
  let results = Array.make n None in
  let next = ref 0 in
  let unsettled = ref n in
  let aborted = ref false in
  let finished = ref false in
  if n = 0 then on_done []
  else begin
    let notify i outcome =
      match on_target with Some f -> f targets.(i) outcome | None -> ()
    in
    let outcome_list () =
      Array.to_list
        (Array.mapi
           (fun i outcome -> (targets.(i), Option.value ~default:Skipped outcome))
           results)
    in
    let finish () =
      if not !finished then begin
        finished := true;
        on_done (outcome_list ())
      end
    in
    (* An aborted rollout must not strand early targets on the new epoch
       while the rest of the fleet never left the old one: once every
       launched transfer settles, targets that already ACKed the aborted
       epoch are restored — rolled back when they had a pre-rollout acked
       epoch, undeployed when this rollout was their first install —
       and [on_done] is deferred until the restores settle. The reported
       outcome list keeps each target's original fate. *)
    let restore_then_finish () =
      let acked = ref [] in
      Array.iteri
        (fun i outcome ->
          match outcome with
          | Some (Acked _) -> acked := i :: !acked
          | _ -> ())
        results;
      match List.rev !acked with
      | [] -> finish ()
      | acked ->
          let waiting = ref (List.length acked) in
          let settle_restore _outcome =
            decr waiting;
            if !waiting = 0 then finish ()
          in
          List.iter
            (fun i ->
              match prior.(i) with
              | Some _ ->
                  rollback ?timeout t ~target:targets.(i) ~name
                    ~on_done:settle_restore ()
              | None ->
                  undeploy ?timeout t ~target:targets.(i) ~name
                    ~on_done:settle_restore ())
            acked
    in
    (* [finish_if_done] can run more than once when the settle cascade
       unwinds (each frame re-checks); the restore must start exactly
       once — a second pass would roll the restored nodes forward again
       (the daemon's [previous] slot now holds the aborted epoch). *)
    let restoring = ref false in
    let finish_if_done () =
      if !unsettled = 0 && not !finished && not !restoring then
        if !aborted then begin
          restoring := true;
          restore_then_finish ()
        end
        else finish ()
    in
    let rec launch_next () =
      if !next < n then begin
        let i = !next in
        incr next;
        if !aborted then begin
          results.(i) <- Some Skipped;
          decr unsettled;
          notify i Skipped;
          launch_next ();
          finish_if_done ()
        end
        else
          deploy ?backend ?authenticated ?epoch ?timeout t ~target:targets.(i)
            ~name ~source
            ~on_done:(fun outcome ->
              results.(i) <- Some outcome;
              decr unsettled;
              (match (outcome, on_nak) with
              | Nakked _, Abort -> aborted := true
              | _ -> ());
              notify i outcome;
              launch_next ();
              finish_if_done ())
            ()
      end
    in
    for _ = 1 to min concurrency n do
      launch_next ()
    done;
    finish_if_done ()
  end

let rollback_fleet ?(concurrency = 2) ?timeout ?on_target t ~targets ~name
    ~on_done () =
  if concurrency <= 0 then invalid_arg "Controller.rollback_fleet: concurrency";
  let targets = Array.of_list targets in
  let n = Array.length targets in
  let results = Array.make n None in
  let next = ref 0 in
  let unsettled = ref n in
  if n = 0 then on_done []
  else begin
    let finish_if_done () =
      if !unsettled = 0 then
        on_done
          (Array.to_list
             (Array.mapi
                (fun i outcome ->
                  (targets.(i), Option.value ~default:Skipped outcome))
                results))
    in
    let rec launch_next () =
      if !next < n then begin
        let i = !next in
        incr next;
        rollback ?timeout t ~target:targets.(i) ~name
          ~on_done:(fun outcome ->
            results.(i) <- Some outcome;
            decr unsettled;
            (match on_target with
            | Some f -> f targets.(i) outcome
            | None -> ());
            launch_next ();
            finish_if_done ())
          ()
      end
    in
    for _ = 1 to min concurrency n do
      launch_next ()
    done
  end

let create ?(secret = "extnet") ?(chunk_size = 512)
    ?(daemon_port = Capsule.well_known_port) ?(port_base = 52000) ?(rto = 0.2)
    ?(max_rto = 5.0) ?retry_budget ctl_node () =
  if chunk_size <= 0 then invalid_arg "Controller.create: chunk_size";
  let labels = [ ("controller", Node.name ctl_node) ] in
  {
    ctl_node;
    secret;
    chunk_size;
    daemon_port;
    port_base;
    rto;
    max_rto;
    retry_budget;
    conns = Hashtbl.create 8;
    next_conn_index = 0;
    epochs = Hashtbl.create 16;
    acked_epochs = Hashtbl.create 16;
    pending = Hashtbl.create 8;
    m_capsules =
      Obs.Registry.counter ~labels ~help:"code capsules shipped"
        "deploy.controller.capsules_sent";
    m_retx =
      Obs.Registry.counter ~labels
        ~help:"capsule-stream retransmissions (sampled at op completion)"
        "deploy.controller.retransmissions";
    m_acks =
      Obs.Registry.counter ~labels ~help:"operations acknowledged"
        "deploy.controller.acks";
    m_naks =
      Obs.Registry.counter ~labels ~help:"operations rejected by a daemon"
        "deploy.controller.naks";
    m_timeouts =
      Obs.Registry.counter ~labels ~help:"operations that hit their deadline"
        "deploy.controller.timeouts";
    m_aborts =
      Obs.Registry.counter ~labels
        ~help:"operations abandoned after the capsule stream's retry budget"
        "deploy.controller.aborts";
  }
