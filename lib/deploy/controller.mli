(** The deployment controller: chunks PLAN-P source into code capsules,
    ships them over {!Netsim.Reliable} streams to per-node deploy daemons,
    and tracks per-(node, program) epochs.

    All operations are asynchronous in simulated time: they enqueue
    traffic and return immediately; [on_done] fires from an engine event
    when the daemon's signed ACK (or NAK) arrives, or when the timeout
    expires. Drive the topology ({!Netsim.Topology.run}) to make progress.

    The controller owns one capsule stream and one reply stream per
    target, reused across operations, so epochs to one node are delivered
    in order even under retransmission. *)

type t

(** [create node ()] makes [node] the controller.

    @param secret shared ACK-signature secret (default ["extnet"], must
      match the daemons')
    @param chunk_size capsule payload bytes (default 512)
    @param daemon_port daemons' stream port (default
      {!Capsule.well_known_port})
    @param port_base first local port for per-target capsule and reply
      streams (default 52000; two ports per target)
    @param rto capsule-stream initial retransmission timeout in seconds
      (default 0.2); doubles per barren timeout up to [max_rto]
      (default 5.0) and resets on progress — see
      {!Netsim.Reliable.Sender.connect}
    @param retry_budget consecutive barren timeouts a capsule stream
      tolerates before the controller declares the target unreachable:
      every operation pending against it settles [Aborted] and the
      stream is torn down (a later operation dials afresh). Default:
      unlimited, preserving retry-forever behaviour. *)
val create :
  ?secret:string ->
  ?chunk_size:int ->
  ?daemon_port:int ->
  ?port_base:int ->
  ?rto:float ->
  ?max_rto:float ->
  ?retry_budget:int ->
  Netsim.Node.t ->
  unit ->
  t

val node : t -> Netsim.Node.t

(** The fate of one operation on one target. *)
type outcome =
  | Acked of { epoch : int; install_latency : float; note : string }
      (** signed ACK verified; [install_latency] is simulated seconds *)
  | Nakked of { epoch : int; reason : string }
  | Timed_out  (** no (valid) answer within the deadline *)
  | Skipped  (** rollout aborted before this target was attempted *)
  | Aborted of { reason : string }
      (** the capsule stream exhausted its retry budget — the target is
          unreachable and the operation was abandoned before its
          deadline *)

val outcome_to_string : outcome -> string

(** [deploy t ~target ~name ~source ~on_done ()] ships one program.

    @param backend backend name the daemon should compile with
      (default ["jit"])
    @param authenticated privileged path: daemon skips verification
    @param epoch override the epoch (default: one past the highest this
      controller has shipped to [(target, name)])
    @param timeout simulated seconds before giving up (default 60) *)
val deploy :
  ?backend:string ->
  ?authenticated:bool ->
  ?epoch:int ->
  ?timeout:float ->
  t ->
  target:Netsim.Addr.t ->
  name:string ->
  source:string ->
  on_done:(outcome -> unit) ->
  unit ->
  unit

(** [undeploy t ~target ~name ~on_done ()] retires the active program. *)
val undeploy :
  ?timeout:float ->
  t ->
  target:Netsim.Addr.t ->
  name:string ->
  on_done:(outcome -> unit) ->
  unit ->
  unit

(** [rollback t ~target ~name ~on_done ()] reactivates the target's
    retained previous epoch. *)
val rollback :
  ?timeout:float ->
  t ->
  target:Netsim.Addr.t ->
  name:string ->
  on_done:(outcome -> unit) ->
  unit ->
  unit

(** [epoch_of t ~target ~name] — highest epoch this controller believes is
    deployed (updated on ACK). *)
val epoch_of : t -> target:Netsim.Addr.t -> name:string -> int option

(** What a staged rollout does after a NAK. *)
type nak_policy =
  | Abort  (** stop launching; untried targets come back [Skipped] *)
  | Continue  (** keep going and report per-target outcomes *)

(** [rollout t ~targets ~name ~source ~on_done ()] deploys one program to
    a node set with bounded concurrency ([concurrency] transfers in
    flight, default 2). Targets are attempted in list order; [on_done]
    receives one outcome per target, in the input order. [epoch] pins one
    epoch for every target (a node already past it NAKs as stale —
    useful for "converge the fleet on exactly this version").

    [on_target] fires once per target as its outcome settles (including
    the [Skipped] targets of an aborted rollout) — the per-stage view a
    coordinator uses to narrate or quarantine while the fleet is still
    converging.

    Under [~on_nak:Abort] an abort does not strand the fleet mixed-epoch:
    targets that already ACKed the aborted epoch are restored before
    [on_done] fires — rolled back when they had a pre-rollout acked
    epoch, undeployed when this rollout was their first install. The
    outcome list still reports each target's original fate ([Acked] for
    the restored ones), so callers can tell which nodes briefly ran the
    new epoch. *)
val rollout :
  ?backend:string ->
  ?authenticated:bool ->
  ?epoch:int ->
  ?concurrency:int ->
  ?on_nak:nak_policy ->
  ?timeout:float ->
  ?on_target:(Netsim.Addr.t -> outcome -> unit) ->
  t ->
  targets:Netsim.Addr.t list ->
  name:string ->
  source:string ->
  on_done:((Netsim.Addr.t * outcome) list -> unit) ->
  unit ->
  unit

(** [rollback_fleet t ~targets ~name ~on_done ()] reactivates the
    retained previous epoch of [name] on every target, with the same
    bounded-concurrency staging and outcome reporting as {!rollout}.
    This is the fleet-guard primitive: a coordinated swap that regresses
    a fleet-level KPI is unwound on every stage at once rather than one
    controller call at a time. *)
val rollback_fleet :
  ?concurrency:int ->
  ?timeout:float ->
  ?on_target:(Netsim.Addr.t -> outcome -> unit) ->
  t ->
  targets:Netsim.Addr.t list ->
  name:string ->
  on_done:((Netsim.Addr.t * outcome) list -> unit) ->
  unit ->
  unit
