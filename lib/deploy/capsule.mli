(** The deployment wire format: code capsules and control messages.

    A PLAN-P program travels the network as a {e manifest} followed by
    {e chunk} capsules, each one message on a {!Netsim.Reliable} stream
    from the controller to a node's deploy daemon. The daemon reassembles
    the source, verifies it, installs it, and answers with an {e ack} (or
    a {e nak} carrying the rejection reason) on its own reliable stream
    back to the address named in the manifest.

    Every deployment packet is tagged with {!chan_tag}, so installed
    programs whose [network] channel claims all untagged UDP never see
    the control plane that ships them — the deployment plane runs beneath
    the ASP layer, like the paper's in-kernel loader.

    All integers are big-endian; strings are u16-length-prefixed. Epochs
    are u32. See doc/DEPLOYMENT.md for the byte-level layout. *)

(** The PLAN-P channel tag carried by every deployment packet. *)
val chan_tag : string

(** The daemon's well-known UDP port (one reliable stream per controller;
    this reproduction runs a single controller per topology). *)
val well_known_port : int

type msg =
  | Manifest of {
      program : string;  (** program name — the (node, name) slot key *)
      epoch : int;  (** must exceed the slot's high-water mark *)
      backend : string;  (** execution backend name, e.g. ["jit"] *)
      total_chunks : int;
      total_bytes : int;  (** length of the reassembled source *)
      checksum : int;  (** {!checksum} of the full source *)
      authenticated : bool;  (** skip verification (privileged path) *)
      reply_addr : Netsim.Addr.t;  (** where ACK/NAK go *)
      reply_port : int;
    }
  | Chunk of { program : string; epoch : int; index : int; data : string }
  | Undeploy of {
      program : string;
      epoch : int;
      reply_addr : Netsim.Addr.t;
      reply_port : int;
    }
  | Rollback of {
      program : string;
      epoch : int;  (** fresh epoch for the control op itself *)
      reply_addr : Netsim.Addr.t;
      reply_port : int;
    }
  | Ack of {
      program : string;
      epoch : int;  (** the epoch now active (or retired, for undeploy) *)
      signature : int;  (** {!sign} under the shared secret *)
      install_latency_us : int;  (** simulated µs, manifest to activation *)
      note : string;  (** ["activated"], ["rolled-back"], ["undeployed"] *)
    }
  | Nak of { program : string; epoch : int; reason : string }

val encode : msg -> Netsim.Payload.t

(** [decode payload] is [None] on malformed or foreign payloads. *)
val decode : Netsim.Payload.t -> msg option

(** [chunk ~chunk_size source] splits the source into [chunk_size]-byte
    pieces (the last may be shorter). The empty source is one empty chunk,
    so every deployment carries at least one capsule.
    @raise Invalid_argument when [chunk_size <= 0]. *)
val chunk : chunk_size:int -> string -> string list

(** [checksum s] — FNV-1a, folded to 32 bits; also used by {!sign}. *)
val checksum : string -> int

(** [sign ~secret ~program ~epoch ~node] is the daemon's ACK signature:
    the controller recomputes it to authenticate the answering node. *)
val sign : secret:string -> program:string -> epoch:int -> node:Netsim.Addr.t -> int

(** Pure chunk reassembly, shared by the daemon and the property tests. *)
module Reassembly : sig
  type t

  val create : total_chunks:int -> total_bytes:int -> checksum:int -> t

  (** [add t ~index data] stores one chunk.
      @return [Error] on an out-of-range index or duplicate. *)
  val add : t -> index:int -> string -> (unit, string) result

  val received : t -> int
  val complete : t -> bool

  (** [source t] is the reassembled program once {!complete}; verifies the
      byte count and checksum declared by the manifest. *)
  val source : t -> (string, string) result
end
