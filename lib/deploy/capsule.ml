module Payload = Netsim.Payload
module Addr = Netsim.Addr

let chan_tag = "planp/deploy"
let well_known_port = 1999

type msg =
  | Manifest of {
      program : string;
      epoch : int;
      backend : string;
      total_chunks : int;
      total_bytes : int;
      checksum : int;
      authenticated : bool;
      reply_addr : Addr.t;
      reply_port : int;
    }
  | Chunk of { program : string; epoch : int; index : int; data : string }
  | Undeploy of {
      program : string;
      epoch : int;
      reply_addr : Addr.t;
      reply_port : int;
    }
  | Rollback of {
      program : string;
      epoch : int;
      reply_addr : Addr.t;
      reply_port : int;
    }
  | Ack of {
      program : string;
      epoch : int;
      signature : int;
      install_latency_us : int;
      note : string;
    }
  | Nak of { program : string; epoch : int; reason : string }

let op_manifest = 1
let op_chunk = 2
let op_undeploy = 3
let op_rollback = 4
let op_ack = 10
let op_nak = 11

(* FNV-1a over the bytes, folded to 32 bits. *)
let checksum s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x01000193 land 0xffffffff)
    s;
  !h

let sign ~secret ~program ~epoch ~node =
  checksum (Printf.sprintf "%s|%s|%d|%s" secret program epoch (Addr.to_string node))

let write_string w s =
  if String.length s > 0xffff then invalid_arg "Capsule: string too long";
  Payload.Writer.u16 w (String.length s);
  Payload.Writer.string w s

let encode msg =
  let w = Payload.Writer.create () in
  (match msg with
  | Manifest m ->
      Payload.Writer.u8 w op_manifest;
      write_string w m.program;
      Payload.Writer.u32 w m.epoch;
      write_string w m.backend;
      Payload.Writer.u32 w m.total_chunks;
      Payload.Writer.u32 w m.total_bytes;
      Payload.Writer.u32 w m.checksum;
      Payload.Writer.u8 w (if m.authenticated then 1 else 0);
      Payload.Writer.u32 w m.reply_addr;
      Payload.Writer.u16 w m.reply_port
  | Chunk c ->
      Payload.Writer.u8 w op_chunk;
      write_string w c.program;
      Payload.Writer.u32 w c.epoch;
      Payload.Writer.u32 w c.index;
      write_string w c.data
  | Undeploy u ->
      Payload.Writer.u8 w op_undeploy;
      write_string w u.program;
      Payload.Writer.u32 w u.epoch;
      Payload.Writer.u32 w u.reply_addr;
      Payload.Writer.u16 w u.reply_port
  | Rollback r ->
      Payload.Writer.u8 w op_rollback;
      write_string w r.program;
      Payload.Writer.u32 w r.epoch;
      Payload.Writer.u32 w r.reply_addr;
      Payload.Writer.u16 w r.reply_port
  | Ack a ->
      Payload.Writer.u8 w op_ack;
      write_string w a.program;
      Payload.Writer.u32 w a.epoch;
      Payload.Writer.u32 w a.signature;
      Payload.Writer.u32 w a.install_latency_us;
      write_string w a.note
  | Nak n ->
      Payload.Writer.u8 w op_nak;
      write_string w n.program;
      Payload.Writer.u32 w n.epoch;
      write_string w n.reason);
  (* Wire capsules are checksummed and chunked byte-for-byte downstream:
     pin the storage to exactly the capsule's own bytes. *)
  Payload.compact (Payload.Writer.finish w)

let read_string r =
  let n = Payload.Reader.u16 r in
  Payload.Reader.string r n

let decode payload =
  if Payload.length payload < 1 then None
  else
    let r = Payload.Reader.create payload in
    match
      let op = Payload.Reader.u8 r in
      if op = op_manifest then
        let program = read_string r in
        let epoch = Payload.Reader.u32 r in
        let backend = read_string r in
        let total_chunks = Payload.Reader.u32 r in
        let total_bytes = Payload.Reader.u32 r in
        let checksum = Payload.Reader.u32 r in
        let authenticated = Payload.Reader.u8 r = 1 in
        let reply_addr = Payload.Reader.u32 r in
        let reply_port = Payload.Reader.u16 r in
        Some
          (Manifest
             { program; epoch; backend; total_chunks; total_bytes; checksum;
               authenticated; reply_addr; reply_port })
      else if op = op_chunk then
        let program = read_string r in
        let epoch = Payload.Reader.u32 r in
        let index = Payload.Reader.u32 r in
        let data = read_string r in
        Some (Chunk { program; epoch; index; data })
      else if op = op_undeploy then
        let program = read_string r in
        let epoch = Payload.Reader.u32 r in
        let reply_addr = Payload.Reader.u32 r in
        let reply_port = Payload.Reader.u16 r in
        Some (Undeploy { program; epoch; reply_addr; reply_port })
      else if op = op_rollback then
        let program = read_string r in
        let epoch = Payload.Reader.u32 r in
        let reply_addr = Payload.Reader.u32 r in
        let reply_port = Payload.Reader.u16 r in
        Some (Rollback { program; epoch; reply_addr; reply_port })
      else if op = op_ack then
        let program = read_string r in
        let epoch = Payload.Reader.u32 r in
        let signature = Payload.Reader.u32 r in
        let install_latency_us = Payload.Reader.u32 r in
        let note = read_string r in
        Some (Ack { program; epoch; signature; install_latency_us; note })
      else if op = op_nak then
        let program = read_string r in
        let epoch = Payload.Reader.u32 r in
        let reason = read_string r in
        Some (Nak { program; epoch; reason })
      else None
    with
    | result -> result
    | exception Invalid_argument _ -> None

let chunk ~chunk_size source =
  if chunk_size <= 0 then invalid_arg "Capsule.chunk: chunk_size";
  let n = String.length source in
  if n = 0 then [ "" ]
  else
    let rec go pos acc =
      if pos >= n then List.rev acc
      else
        let len = min chunk_size (n - pos) in
        go (pos + len) (String.sub source pos len :: acc)
    in
    go 0 []

module Reassembly = struct
  type t = {
    chunks : string option array;
    total_bytes : int;
    declared_checksum : int;
    mutable got : int;
  }

  let create ~total_chunks ~total_bytes ~checksum =
    {
      chunks = Array.make (max total_chunks 0) None;
      total_bytes;
      declared_checksum = checksum;
      got = 0;
    }

  let add t ~index data =
    if index < 0 || index >= Array.length t.chunks then
      Error (Printf.sprintf "chunk index %d out of range 0..%d" index
               (Array.length t.chunks - 1))
    else
      match t.chunks.(index) with
      | Some _ -> Error (Printf.sprintf "duplicate chunk %d" index)
      | None ->
          t.chunks.(index) <- Some data;
          t.got <- t.got + 1;
          Ok ()

  let received t = t.got
  let complete t = t.got = Array.length t.chunks

  let source t =
    if not (complete t) then
      Error
        (Printf.sprintf "incomplete: %d of %d chunks" t.got
           (Array.length t.chunks))
    else
      let source =
        String.concat ""
          (Array.to_list (Array.map (Option.value ~default:"") t.chunks))
      in
      if String.length source <> t.total_bytes then
        Error
          (Printf.sprintf "size mismatch: got %d bytes, manifest says %d"
             (String.length source) t.total_bytes)
      else if checksum source <> t.declared_checksum then
        Error "checksum mismatch"
      else Ok source
end
