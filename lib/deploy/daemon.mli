(** The per-node deploy daemon: receives code capsules, reassembles,
    verifies {e on the receiving node}, installs, and answers with a
    signed-epoch ACK or a reasoned NAK.

    Each (node, program-name) slot is versioned by an epoch. A deployment
    whose epoch does not exceed the slot's high-water mark is NAKed as
    stale; a successful one hot-swaps atomically — the new program is
    installed before the old one is uninstalled, so at every instant some
    epoch is serving packets. A failed verification, a mid-transfer link
    flap, or a checksum mismatch leaves the previous epoch serving. The
    daemon retains the previous epoch's source so a {!Capsule.Rollback}
    can restore it without re-shipping. *)

type t

(** [start node ()] attaches the daemon.

    @param port capsule stream port (default {!Capsule.well_known_port})
    @param reply_src_base first local port used for reply streams back to
      controllers (default 52100)
    @param secret shared secret for ACK signatures (default ["extnet"])
    @param rto reply-stream initial retransmission timeout in seconds
      (default 0.2), backing off exponentially to [max_rto] (default 5.0)
    @param retry_budget consecutive barren timeouts a reply stream
      tolerates before being dropped; the next reply toward that
      controller dials a fresh stream (default: retry forever)
    @param runtime install into an existing runtime instead of attaching a
      fresh one (programs installed out-of-band keep serving) *)
val start :
  ?port:int ->
  ?reply_src_base:int ->
  ?secret:string ->
  ?rto:float ->
  ?max_rto:float ->
  ?retry_budget:int ->
  ?runtime:Planp_runtime.Runtime.t ->
  Netsim.Node.t ->
  unit ->
  t

val node : t -> Netsim.Node.t
val runtime : t -> Planp_runtime.Runtime.t

(** [active_program t ~name] is the serving program of a slot, if any. *)
val active_program : t -> name:string -> Planp_runtime.Runtime.program option

(** [active_epoch t ~name] — epoch of the serving program. *)
val active_epoch : t -> name:string -> int option

(** [previous_epoch t ~name] — retained rollback target, if any. *)
val previous_epoch : t -> name:string -> int option

(** [high_water t ~name] — highest epoch ever accepted for the slot
    (deploys must exceed it even after a rollback lowered the active
    epoch); 0 when the slot has never deployed. *)
val high_water : t -> name:string -> int

(** [slots t] — (program name, active epoch) for every serving slot,
    sorted by name. *)
val slots : t -> (string * int) list

(** [inject t payload] feeds one capsule directly to the daemon, bypassing
    the reliable stream — test hook for protocol-level properties. *)
val inject : t -> Netsim.Payload.t -> unit
