(** Simulated network packets: an IP header, an optional transport header and
    a payload.

    Packets are immutable; rewriting (as PLAN-P's [ipDestSet] does) builds a
    new packet sharing the payload. Each packet carries a unique [uid] for
    tracing and an optional [chan_tag] naming the user-defined PLAN-P channel
    it was sent on (the paper: "the packet is tagged for identification"). *)

type proto = Proto_tcp | Proto_udp | Proto_raw

type tcp_header = {
  tcp_src : int;  (** source port *)
  tcp_dst : int;  (** destination port *)
  tcp_seq : int;
  tcp_ack : int;
  tcp_syn : bool;
  tcp_fin : bool;
  tcp_is_ack : bool;
}

type udp_header = { udp_src : int; udp_dst : int }
type l4 = Tcp of tcp_header | Udp of udp_header | Raw

type t = {
  uid : int;  (** unique per construction, for tracing *)
  src : Addr.t;
  dst : Addr.t;
  ttl : int;
  l4 : l4;
  body : Payload.t;
  chan_tag : string option;
}

(** [make ~src ~dst l4 body] builds a packet with a fresh [uid] and default
    TTL 64. *)
val make :
  ?ttl:int -> ?chan_tag:string -> src:Addr.t -> dst:Addr.t -> l4 -> Payload.t -> t

(** [udp ~src ~dst ~src_port ~dst_port body] is a convenience constructor. *)
val udp :
  ?ttl:int ->
  ?chan_tag:string ->
  src:Addr.t ->
  dst:Addr.t ->
  src_port:int ->
  dst_port:int ->
  Payload.t ->
  t

(** [tcp ~src ~dst ~src_port ~dst_port body] builds a plain data segment;
    use the optional flags for connection management. *)
val tcp :
  ?ttl:int ->
  ?chan_tag:string ->
  ?seq:int ->
  ?ack:int ->
  ?syn:bool ->
  ?fin:bool ->
  ?is_ack:bool ->
  src:Addr.t ->
  dst:Addr.t ->
  src_port:int ->
  dst_port:int ->
  Payload.t ->
  t

val proto : t -> proto

(** [wire_size packet] is the simulated on-the-wire size in bytes:
    20 (IP) + 20 (TCP) or 8 (UDP) + payload length. *)
val wire_size : t -> int

(** [with_dst packet addr] / [with_src packet addr] rewrite an address,
    keeping the uid (it is the same packet, redirected). *)
val with_dst : t -> Addr.t -> t

val with_src : t -> Addr.t -> t
val with_body : t -> Payload.t -> t
val with_l4 : t -> l4 -> t

val with_ttl : t -> int -> t

(** [decrement_ttl packet] is [None] when the TTL expires. *)
val decrement_ttl : t -> t option

(** [clone packet] duplicates with a fresh uid (for multicast replication). *)
val clone : t -> t

val pp : Format.formatter -> t -> unit
