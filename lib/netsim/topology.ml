(* A directed edge of the adjacency graph as built.  Edges created by
   [connect] carry their link so route computation can honour link
   liveness; the pairwise edges a shared segment induces carry [None]
   (segments have no up/down of their own — a station disappears when its
   node goes down). *)
type edge = {
  e_from : int;
  e_to : int;
  e_ifindex : int; (* out-interface on [e_from] *)
  e_link : Link.t option;
}

type t = {
  eng : Engine.t;
  registry : Multicast.t;
  mutable node_list : Node.t list;  (* newest first *)
  by_name : (string, Node.t * int) Hashtbl.t;
  by_addr : (Addr.t, Node.t) Hashtbl.t;
  mutable next_index : int;
  mutable edges : edge list;
  (* Media in creation order (newest first), for the partitioner. *)
  mutable link_list : (Link.t * Node.t * Node.t) list; (* (link, A, B) *)
  mutable seg_list : Segment.t list;
  (* Stations attached to each segment (by segment uid), for pairwise edges. *)
  stations : (int, (int * int) list ref) Hashtbl.t;
  (* Media by name, for the fault plane's scenario files. *)
  links_by_name : (string, Link.t) Hashtbl.t;
  segments_by_name : (string, Segment.t) Hashtbl.t;
}

let create () =
  {
    eng = Engine.create ();
    registry = Multicast.create ();
    node_list = [];
    by_name = Hashtbl.create 16;
    by_addr = Hashtbl.create 16;
    next_index = 0;
    edges = [];
    link_list = [];
    seg_list = [];
    stations = Hashtbl.create 8;
    links_by_name = Hashtbl.create 8;
    segments_by_name = Hashtbl.create 8;
  }

let engine topo = topo.eng
let mcast topo = topo.registry

let add_node topo ~name ~addr =
  if Hashtbl.mem topo.by_name name then
    invalid_arg (Printf.sprintf "Topology.add_node: duplicate name %s" name);
  if Hashtbl.mem topo.by_addr addr then
    invalid_arg
      (Printf.sprintf "Topology.add_node: duplicate address %s"
         (Addr.to_string addr));
  let node = Node.create topo.eng ~name ~addr in
  Node.set_multicast node topo.registry;
  Hashtbl.add topo.by_name name (node, topo.next_index);
  Hashtbl.add topo.by_addr addr node;
  topo.next_index <- topo.next_index + 1;
  topo.node_list <- node :: topo.node_list;
  node

let add_host topo name addr_string =
  add_node topo ~name ~addr:(Addr.of_string addr_string)

let index_of topo node =
  match Hashtbl.find_opt topo.by_name (Node.name node) with
  | Some (_, index) -> index
  | None -> invalid_arg "Topology: node does not belong to this topology"

let connect ?(name = "link") ?(bandwidth_bps = 10e6) ?(latency = 0.001)
    ?queue_capacity topo a b =
  let link =
    Link.create ~name ?queue_capacity topo.eng ~bandwidth_bps ~latency ()
  in
  let if_a =
    Node.add_iface a ~name:(name ^ ":a") (fun ~l2_dst:_ packet ->
        Link.send link ~from:Link.A packet)
  in
  let if_b =
    Node.add_iface b ~name:(name ^ ":b") (fun ~l2_dst:_ packet ->
        Link.send link ~from:Link.B packet)
  in
  Link.set_receiver link Link.A (fun packet ->
      Node.receive a ~ifindex:if_a ~l2_dst:None packet);
  Link.set_receiver link Link.B (fun packet ->
      Node.receive b ~ifindex:if_b ~l2_dst:None packet);
  (* Monitors read the owning node's clock so they stay correct when the
     node is re-homed onto a partition engine (Par_engine). *)
  Node.set_iface_monitor a if_a (fun () ->
      Flowstat.rate_bps (Link.stat link Link.A) ~now:(Engine.now (Node.engine a)));
  Node.set_iface_monitor b if_b (fun () ->
      Flowstat.rate_bps (Link.stat link Link.B) ~now:(Engine.now (Node.engine b)));
  Node.set_iface_capacity a if_a bandwidth_bps;
  Node.set_iface_capacity b if_b bandwidth_bps;
  let ia = index_of topo a and ib = index_of topo b in
  topo.edges <-
    { e_from = ia; e_to = ib; e_ifindex = if_a; e_link = Some link }
    :: { e_from = ib; e_to = ia; e_ifindex = if_b; e_link = Some link }
    :: topo.edges;
  Hashtbl.replace topo.links_by_name name link;
  topo.link_list <- (link, a, b) :: topo.link_list;
  link

let segment ?(name = "segment") ?(bandwidth_bps = 10e6) ?(latency = 0.001)
    ?queue_capacity topo () =
  let seg =
    Segment.create ~name ?queue_capacity topo.eng ~bandwidth_bps ~latency ()
  in
  Hashtbl.replace topo.segments_by_name name seg;
  topo.seg_list <- seg :: topo.seg_list;
  seg

let attach topo seg node =
  let station_ref = ref (-1) in
  let ifindex =
    Node.add_iface node
      ~name:(Segment.name seg)
      (fun ~l2_dst packet -> Segment.send seg ~from:!station_ref ~l2_dst packet)
  in
  station_ref :=
    Segment.attach seg (fun ~l2_dst packet ->
        Node.receive node ~ifindex ~l2_dst packet);
  Node.set_iface_monitor node ifindex (fun () -> Segment.load_bps seg);
  Node.set_iface_capacity node ifindex (Segment.bandwidth_bps seg);
  let index = index_of topo node in
  let stations =
    match Hashtbl.find_opt topo.stations (Segment.uid seg) with
    | Some stations -> stations
    | None ->
        let stations = ref [] in
        Hashtbl.add topo.stations (Segment.uid seg) stations;
        stations
  in
  List.iter
    (fun (other_index, other_if) ->
      topo.edges <-
        { e_from = index; e_to = other_index; e_ifindex = ifindex; e_link = None }
        :: topo.edges;
      topo.edges <-
        { e_from = other_index; e_to = index; e_ifindex = other_if; e_link = None }
        :: topo.edges)
    !stations;
  stations := (index, ifindex) :: !stations;
  ifindex

let nodes topo = List.rev topo.node_list

let find topo name =
  match Hashtbl.find_opt topo.by_name name with
  | Some (node, _) -> node
  | None -> raise Not_found

let find_by_addr topo addr = Hashtbl.find_opt topo.by_addr addr
let find_link topo name = Hashtbl.find_opt topo.links_by_name name
let find_segment topo name = Hashtbl.find_opt topo.segments_by_name name

(* Breadth-first shortest paths from [source]; returns the first-hop
   (neighbor-index, out-ifindex) for every reachable destination. Edge order
   follows insertion order so runs are deterministic. *)
let first_hops ~node_count ~adjacency source =
  let first : (int * int) option array = Array.make node_count None in
  let visited = Array.make node_count false in
  visited.(source) <- true;
  let queue = Queue.create () in
  List.iter
    (fun (next, out_if) ->
      if not visited.(next) then begin
        visited.(next) <- true;
        first.(next) <- Some (next, out_if);
        Queue.push next queue
      end)
    adjacency.(source);
  while not (Queue.is_empty queue) do
    let current = Queue.pop queue in
    List.iter
      (fun (next, _) ->
        if not visited.(next) then begin
          visited.(next) <- true;
          first.(next) <- first.(current);
          Queue.push next queue
        end)
      adjacency.(current)
  done;
  first

(* Routes reflect liveness at the time of the call: edges over a downed
   link and edges into a crashed node are skipped, so crashed nodes are
   neither destinations nor transit; a crashed node's own table is
   cleared. With everything up this is exactly the old behaviour. *)
let compute_routes topo =
  let node_count = topo.next_index in
  let node_array = Array.make node_count None in
  List.iter
    (fun node ->
      node_array.(index_of topo node) <- Some node)
    topo.node_list;
  let node_at index =
    match node_array.(index) with
    | Some node -> node
    | None -> assert false
  in
  let adjacency = Array.make node_count [] in
  (* Reverse to keep insertion order deterministic. *)
  List.iter
    (fun e ->
      let alive =
        (match e.e_link with Some link -> Link.is_up link | None -> true)
        && Node.is_up (node_at e.e_to)
      in
      if alive then
        adjacency.(e.e_from) <- (e.e_to, e.e_ifindex) :: adjacency.(e.e_from))
    topo.edges;
  for source = 0 to node_count - 1 do
    let node = node_at source in
    (* Host routes are ours to recompute; application-configured default
       routes (virtual addresses, gateway setups) survive reconvergence. *)
    Routing.clear_hosts (Node.routing node);
    if Node.is_up node then begin
      let first = first_hops ~node_count ~adjacency source in
      for dest = 0 to node_count - 1 do
        if dest <> source then
          match first.(dest) with
          | Some (hop_index, out_if) ->
              let hop = node_at hop_index in
              Routing.add_host (Node.routing node)
                (Node.addr (node_at dest))
                { Routing.ifindex = out_if; next_hop = Some (Node.addr hop) }
          | None -> ()
      done
    end
  done;
  (* Forwarding state changed: let hook owners (the PLAN-P runtime)
     flush their per-node decision caches. Deterministic order; the
     hooks only bump epoch counters, so parity is unaffected. *)
  for source = 0 to node_count - 1 do
    Node.invalidate_forwarding (node_at source)
  done

let run ?limit topo = Engine.run ?limit topo.eng
let run_until ?limit topo ~stop = Engine.run_until ?limit topo.eng ~stop

(* Introspection for the partitioner ({!Partition}). *)

let node_count topo = topo.next_index
let node_index topo node = index_of topo node
let link_endpoints topo = List.rev topo.link_list

let segment_stations topo =
  let node_array = Array.make topo.next_index None in
  List.iter
    (fun node -> node_array.(index_of topo node) <- Some node)
    topo.node_list;
  List.rev_map
    (fun seg ->
      let stations =
        match Hashtbl.find_opt topo.stations (Segment.uid seg) with
        | Some stations ->
            List.rev_map
              (fun (index, _ifindex) ->
                match node_array.(index) with
                | Some node -> node
                | None -> assert false)
              !stations
        | None -> []
      in
      (seg, stations))
    topo.seg_list
