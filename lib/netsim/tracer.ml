type record = {
  at : float;
  src : Addr.t;
  dst : Addr.t;
  l2_dst : Addr.t option;
  proto : Packet.proto;
  src_port : int;
  dst_port : int;
  size : int;
  chan_tag : string option;
  uid : int;
}

type t = {
  limit : int;
  queue : record Queue.t;
  mutable evicted : int;
}

let create ?(limit = 100_000) () =
  if limit <= 0 then invalid_arg "Tracer.create: limit must be positive";
  { limit; queue = Queue.create (); evicted = 0 }

let record_packet t ~at ~l2_dst (packet : Packet.t) =
  let src_port, dst_port =
    match packet.Packet.l4 with
    | Packet.Tcp h -> (h.Packet.tcp_src, h.Packet.tcp_dst)
    | Packet.Udp h -> (h.Packet.udp_src, h.Packet.udp_dst)
    | Packet.Raw -> (0, 0)
  in
  Queue.push
    {
      at;
      src = packet.Packet.src;
      dst = packet.Packet.dst;
      l2_dst;
      proto = Packet.proto packet;
      src_port;
      dst_port;
      size = Packet.wire_size packet;
      chan_tag = packet.Packet.chan_tag;
      uid = packet.Packet.uid;
    }
    t.queue;
  if Queue.length t.queue > t.limit then begin
    ignore (Queue.pop t.queue);
    t.evicted <- t.evicted + 1
  end

let on_segment ?limit segment () =
  let t = create ?limit () in
  Segment.set_tap segment (fun ~at ~l2_dst packet ->
      record_packet t ~at ~l2_dst packet);
  t

let records t = List.of_seq (Queue.to_seq t.queue)
let count t = Queue.length t.queue
let dropped t = t.evicted

let clear t =
  Queue.clear t.queue;
  t.evicted <- 0

let filter t ~f = List.filter f (records t)

let udp_to_port port record =
  record.proto = Packet.Proto_udp && record.dst_port = port

let tcp_to_port port record =
  record.proto = Packet.Proto_tcp && record.dst_port = port

let between a b record =
  (Addr.equal record.src a && Addr.equal record.dst b)
  || (Addr.equal record.src b && Addr.equal record.dst a)

let bytes t ~f =
  List.fold_left (fun acc record -> acc + record.size) 0 (filter t ~f)

let proto_name = function
  | Packet.Proto_tcp -> "tcp"
  | Packet.Proto_udp -> "udp"
  | Packet.Proto_raw -> "raw"

let pp_record fmt record =
  Format.fprintf fmt "%10.6f %s %a:%d > %a:%d len %d" record.at
    (proto_name record.proto) Addr.pp record.src record.src_port Addr.pp
    record.dst record.dst_port record.size;
  (match record.chan_tag with
  | Some tag -> Format.fprintf fmt " chan %s" tag
  | None -> ());
  match record.l2_dst with
  | Some l2 when not (Addr.equal l2 record.dst) ->
      Format.fprintf fmt " via %a" Addr.pp l2
  | Some _ | None -> ()

let record_event record =
  let fields =
    [
      ("src", Obs.Json.String (Addr.to_string record.src));
      ("dst", Obs.Json.String (Addr.to_string record.dst));
      ("proto", Obs.Json.String (proto_name record.proto));
      ("src_port", Obs.Json.Int record.src_port);
      ("dst_port", Obs.Json.Int record.dst_port);
      ("size", Obs.Json.Int record.size);
      ("uid", Obs.Json.Int record.uid);
    ]
  in
  let fields =
    match record.chan_tag with
    | Some tag -> fields @ [ ("chan", Obs.Json.String tag) ]
    | None -> fields
  in
  let fields =
    match record.l2_dst with
    | Some l2 when not (Addr.equal l2 record.dst) ->
        fields @ [ ("l2_dst", Obs.Json.String (Addr.to_string l2)) ]
    | Some _ | None -> fields
  in
  Obs.Timeline.event ~at:record.at ~source:"tracer" ~kind:"packet" fields

let to_events t = List.map record_event (records t)

let dump t =
  let buffer = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buffer in
  List.iter (fun record -> Format.fprintf fmt "%a@." pp_record record) (records t);
  Format.pp_print_flush fmt ();
  Buffer.contents buffer
