module Addr_set = Set.Make (Int)

type t = { groups : (Addr.t, Addr_set.t ref) Hashtbl.t }

let create () = { groups = Hashtbl.create 8 }

let check_group group =
  if not (Addr.is_multicast group) then
    invalid_arg
      (Printf.sprintf "Multicast: %s is not a class-D address"
         (Addr.to_string group))

let join registry ~group member =
  check_group group;
  match Hashtbl.find_opt registry.groups group with
  | Some set -> set := Addr_set.add member !set
  | None -> Hashtbl.add registry.groups group (ref (Addr_set.singleton member))

let leave registry ~group member =
  check_group group;
  match Hashtbl.find_opt registry.groups group with
  | Some set ->
      set := Addr_set.remove member !set;
      if Addr_set.is_empty !set then Hashtbl.remove registry.groups group
  | None -> ()

let members registry ~group =
  match Hashtbl.find_opt registry.groups group with
  | Some set -> Addr_set.elements !set
  | None -> []

let iter_members registry ~group f =
  match Hashtbl.find_opt registry.groups group with
  | Some set -> Addr_set.iter f !set
  | None -> ()

let is_member registry ~group member =
  match Hashtbl.find_opt registry.groups group with
  | Some set -> Addr_set.mem member !set
  | None -> false

let groups registry =
  Hashtbl.fold (fun group _ acc -> group :: acc) registry.groups []
  |> List.sort Addr.compare
