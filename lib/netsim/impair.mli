(** Per-medium probabilistic impairment: packet loss and byte corruption.

    A link or segment carries [Impair.t option] — [None] (the default)
    costs one branch per send and nothing else. {!Faults} creates and
    attaches impairments when a scenario arms loss or corruption on a
    medium, sharing one random stream per scenario so runs are
    deterministic for a given seed and event order.

    Lost and corrupted packets are tallied in raw mutable counters here;
    {!Faults} batches them into the metrics registry on engine flush, so
    the per-packet path never touches a registry handle. *)

type t = {
  mutable loss_rate : float;  (** probability a packet vanishes, [0,1] *)
  mutable corrupt_rate : float;
      (** probability one payload byte is flipped, [0,1] *)
  rand : unit -> float;  (** scenario-owned uniform [0,1) stream *)
  mutable lost : int;  (** raw tally, flushed by the fault plane *)
  mutable corrupted : int;  (** raw tally, flushed by the fault plane *)
}

val create : rand:(unit -> float) -> t
(** Fresh impairment with both rates 0 (transparent until configured). *)

val apply : t -> Packet.t -> Packet.t option
(** [apply t packet] rolls the dice: [None] when the packet is lost,
    [Some packet'] otherwise — [packet'] has one payload byte XOR-flipped
    when corruption fires (a fresh packet; the original is untouched), or
    is physically the input packet when nothing fires. Allocates only
    when corruption actually fires. *)
