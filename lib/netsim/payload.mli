(** Packet payloads: immutable byte sequences with bounds-checked big-endian
    accessors and cursor-style readers/writers.

    Application data (audio frames, HTTP requests, MPEG frames) is serialized
    into payloads so that PLAN-P blob primitives operate on real bytes, as in
    the paper's kernel implementation.

    Representation: a payload is a [(base, off, len)] view over a shared
    string, or a lazily-flattened concatenation of such views.  [sub] and
    [concat] are O(1) and never copy bytes; the first byte access of a
    concatenation materializes it once (memoized in place).  Use {!compact}
    at the few sites that need the storage trimmed to exactly the payload's
    own bytes. *)

type t

val empty : t
val of_string : string -> t
val to_string : t -> string
val of_bytes : bytes -> t
val length : t -> int

(** [get_u8 payload off] reads one byte.
    @raise Invalid_argument when out of bounds (all accessors). *)
val get_u8 : t -> int -> int

val get_u16 : t -> int -> int
val get_u32 : t -> int -> int

(** [sub payload ~pos ~len] extracts a slice — an O(1) view sharing the
    parent's bytes, not a copy. *)
val sub : t -> pos:int -> len:int -> t

(** [concat parts] chains payloads without copying; the bytes are
    materialized (once) on first byte access. *)
val concat : t list -> t

val equal : t -> t -> bool

(** [compact payload] trims the backing storage to exactly the payload's
    own bytes (copying them if the payload was a view into something
    larger), so long-lived payloads do not retain large parent buffers.
    Returns the same payload, updated in place. *)
val compact : t -> t

(** [fill len byte] is a payload of [len] copies of [byte]; used to model
    opaque data of a given size. *)
val fill : int -> int -> t

val pp : Format.formatter -> t -> unit

(** Sequential writer. *)
module Writer : sig
  type w

  val create : unit -> w
  val u8 : w -> int -> unit
  val u16 : w -> int -> unit
  val u32 : w -> int -> unit
  val string : w -> string -> unit

  (** [raw w payload] appends an existing payload. *)
  val raw : w -> t -> unit

  val finish : w -> t
end

(** Sequential reader. *)
module Reader : sig
  type r

  val create : t -> r
  val u8 : r -> int
  val u16 : r -> int
  val u32 : r -> int

  (** [string r len] reads [len] raw bytes. *)
  val string : r -> int -> string

  (** [remaining r] is the number of unread bytes. *)
  val remaining : r -> int

  (** [rest r] reads all remaining bytes as a payload. *)
  val rest : r -> t
end
