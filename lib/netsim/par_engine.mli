(** Deterministic parallel simulation across OCaml 5 domains.

    A built topology is cut into per-domain partitions ({!Partition});
    each partition runs its own {!Engine} calendar queue, and the domains
    synchronize with conservative windows: per round, every domain
    publishes the earliest time left in its queue, the global minimum [M]
    is combined with the {e lookahead} (the minimum propagation latency
    over cut links) into the grant [W = M + lookahead], and every domain
    processes its events below [W] — a packet transmitted at [t >= M]
    arrives at [t + latency >= W], so causality cannot be violated.
    Domains with empty queues publish [infinity] (the null message) so
    the others still make progress.

    Cut-link transmissions travel through mutex-protected conduits and
    are drained into the destination partition's delivery ring at the
    next round, preserving per-direction send order. Within a partition,
    event order is exactly the sequential order restricted to that
    partition, so metrics and receiver-visible behavior match a
    [~domains:1] run — the one caveat is an exact-time tie between a
    cross-partition arrival and an unrelated local event, which may
    resolve in either order (see SIMULATOR.md).

    Restrictions with [domains >= 2]: the topology must be sharded
    {e before} any event is scheduled or packet injected; fault scenarios
    must be pinned into a single partition (see
    {!Faults.pin_targets}); multicast joins and route computation are
    pre-run operations; and adaptation-plane monitors must be re-homed
    onto window barriers with {!add_pacer} (engine-event ticks would run
    inside one partition's window, reading the other partitions'
    unflushed metrics).
    Packet uids are allocated from one atomic counter, so they are always
    unique, but their {e values} (visible in timeline exports) only match
    the sequential run when at most one partition constructs fresh
    packets while the run is in flight — pre-run injection plus one
    re-emitting ASP partition satisfies this.
    The volatile [netsim.par.*] counters (rounds, null messages, horizon
    stalls, cross-partition packets) describe how the run was executed
    and stay out of deterministic exports. *)

type t

(** [of_topology ?pin topo ~domains] shards [topo] across [domains]
    partitions: nodes, segments and link endpoints are re-homed onto
    per-partition engines (partition 0 keeps the topology's original
    engine and its flush hooks) and each direction of a cut link is
    rerouted through a conduit. [pin] forces the listed nodes into one
    partition (fault-scenario targets). With [domains = 1] nothing is
    touched and runs stay byte-identical to the plain engine.

    [Error] when [domains < 1], the engine already has pending events,
    the topology does not split into [domains] parts, or a cut link has
    zero latency (no lookahead). *)
val of_topology :
  ?pin:Node.t list -> Topology.t -> domains:int -> (t, string) result

(** [create ~domains] is [domains] fresh, unconnected engines driven by
    the same window loop — for embarrassingly-parallel workloads (the
    benchmark's independent flow meshes) that schedule work directly on
    {!engines}. No topology, no conduits, infinite lookahead.
    @raise Invalid_argument when [domains < 1]. *)
val create : domains:int -> t

val parts : t -> int

(** [engines t] — the per-partition engines, index = partition id. Only
    mutate them (schedule, push) single-threaded, between runs. *)
val engines : t -> Engine.t array

(** [lookahead t] is the window grant beyond the global minimum next
    event time; [infinity] when no link is cut. *)
val lookahead : t -> float

(** [now t] is the maximum simulated time over all partitions — equal to
    the sequential engine's clock at the same point (the globally last
    processed event, or the [run_until] stop). *)
val now : t -> float

(** [engine_of t node] is the engine of the partition owning [node].
    @raise Invalid_argument on a {!create}-built instance. *)
val engine_of : t -> Node.t -> Engine.t

(** [add_pacer t ~period ~until fire] registers a barrier-paced callback:
    [fire ~now] runs at [now t + period, + 2*period, ...] while the fire
    time stays [<= until], from the window-grant step with every
    partition quiescent. Before a fire, every engine clock is forced to
    the fire time in partition-index order — flushing each partition's
    batched metrics exactly like the sequential [run_until] epilogue —
    so the callback observes a globally consistent registry; windows are
    clamped (inclusively) at due times so no partition runs past a fire
    before it happens. Cross traffic the callback causes is drained into
    the delivery rings before the next grant. Multiple pacers fire in
    registration order. Runs with any domain count (including 1) are
    byte-identical.

    During {!run} (drain mode) due pacers keep firing — advancing the
    clocks — even after the event queues empty, until [until] passes.

    @raise Invalid_argument when [period] is not finite and positive, or
      [until] is not finite. *)
val add_pacer : t -> period:float -> until:float -> (now:float -> unit) -> unit

(** [run t] processes events until every queue and conduit drains, like
    {!Engine.run} — spawning [parts - 1] domains for the duration of the
    call ([parts = 1] delegates directly). [limit] bounds each engine's
    events per window. If a domain raises, the others drain safely and
    the first error (by partition index) is re-raised here after metrics
    are flushed. *)
val run : ?limit:int -> t -> unit

(** [run_until t ~stop] — like {!Engine.run_until}: events with time
    [<= stop] are processed and every partition clock is forced to
    [stop]. *)
val run_until : ?limit:int -> t -> stop:float -> unit

(** [rounds t] — synchronization rounds so far (execution-plane; also the
    volatile [netsim.par.rounds] counter). *)
val rounds : t -> int

(** [cross_packets t] — packets pushed through cut-link conduits so far
    (also the volatile [netsim.par.cross_packets] counter). *)
val cross_packets : t -> int
