(** Shared (Ethernet-like) segments.

    A segment is a broadcast medium: every frame transmitted by one station
    is delivered to all other stations after the serialization and
    propagation delay. Frames carry an optional link-level destination
    address; filtering (or promiscuous capture, as the MPEG client ASP
    needs) is the receiver's business. The medium is half-duplex with one
    shared transmitter modelled like a {!Link} direction. *)

type t
type station = int

(** [create engine ~bandwidth_bps ~latency ()] builds a segment.
    [queue_capacity] bounds the shared backlog in bytes (default 128 KiB). *)
val create :
  ?name:string ->
  ?queue_capacity:int ->
  Engine.t ->
  bandwidth_bps:float ->
  latency:float ->
  unit ->
  t

val name : t -> string
val bandwidth_bps : t -> float

(** [set_bandwidth_bps segment bw] rescales the medium's service rate
    (fault injection: congestion bursts).
    @raise Invalid_argument when [bw <= 0]. *)
val set_bandwidth_bps : t -> float -> unit

val queue_capacity : t -> int

(** [set_queue_capacity segment cap] resizes the shared backlog bound
    (bytes). @raise Invalid_argument when negative. *)
val set_queue_capacity : t -> int -> unit

(** [set_impairment segment imp] attaches (or with [None] detaches) a
    loss/corruption model consulted on every send while attached. The
    default is [None]: an unimpaired segment pays one branch per send. *)
val set_impairment : t -> Impair.t option -> unit

val impairment : t -> Impair.t option

(** [uid segment] is unique across all segments ever created. *)
val uid : t -> int

(** [attach segment f] adds a station whose frames are delivered to [f] as
    [f ~l2_dst packet]; [l2_dst = None] means link-level broadcast. *)
val attach : t -> (l2_dst:Addr.t option -> Packet.t -> unit) -> station

(** [send segment ~from ~l2_dst packet] transmits a frame from station
    [from]; delivered to every *other* station. Returns [false] on drop. *)
val send : t -> from:station -> l2_dst:Addr.t option -> Packet.t -> bool

(** [stat segment] carries all traffic on the medium — what a router attached
    to the segment observes when it "monitors the bandwidth of outgoing
    links" (paper §3.1). *)
val stat : t -> Flowstat.t

(** [set_tap segment f] registers a passive sniffer called for every frame
    the medium *carries* (after the drop decision), with the transmission
    finish time — how the experiments measure per-flow wire bandwidth. *)
val set_tap : t -> (at:float -> l2_dst:Addr.t option -> Packet.t -> unit) -> unit

(** [load_bps segment] is the carried rate over the stat window, right now. *)
val load_bps : t -> float

val backlog_bytes : t -> int
val drops : t -> int
val station_count : t -> int

(** [set_engine segment e] re-homes the segment's clock and broadcast ring
    onto engine [e] — the partitioning seam. A segment is an uncuttable
    medium: the partitioner keeps every station in one partition and
    re-homes the segment there. Single-threaded, pre-spawn only. *)
val set_engine : t -> Engine.t -> unit
