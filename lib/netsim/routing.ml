type route = { ifindex : int; next_hop : Addr.t option }

type table = {
  hosts : (Addr.t, route) Hashtbl.t;
  mutable default : route option;
}

let create () = { hosts = Hashtbl.create 32; default = None }
let add_host table dst route = Hashtbl.replace table.hosts dst route
let remove_host table dst = Hashtbl.remove table.hosts dst
let set_default table route = table.default <- route

let lookup table dst =
  match Hashtbl.find_opt table.hosts dst with
  | Some route -> Some route
  | None -> table.default

exception No_route

(* Allocation-free variant of [lookup] for the forwarding fast path:
   no [Some] wrapper per packet (raising a constant exception does not
   allocate). *)
let find table dst =
  match Hashtbl.find table.hosts dst with
  | route -> route
  | exception Not_found -> (
      match table.default with Some route -> route | None -> raise No_route)

let clear table =
  Hashtbl.reset table.hosts;
  table.default <- None

let clear_hosts table = Hashtbl.reset table.hosts

(* Hashtbl.fold order is unspecified; sort so [entries] (and therefore
   [pp]) is deterministic across runs and OCaml versions. *)
let entries table =
  Hashtbl.fold (fun dst route acc -> (dst, route) :: acc) table.hosts []
  |> List.sort (fun (a, _) (b, _) -> Addr.compare a b)

let pp fmt table =
  let pp_route fmt { ifindex; next_hop } =
    match next_hop with
    | None -> Format.fprintf fmt "if%d (direct)" ifindex
    | Some hop -> Format.fprintf fmt "if%d via %a" ifindex Addr.pp hop
  in
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun (dst, route) ->
      Format.fprintf fmt "%a -> %a@," Addr.pp dst pp_route route)
    (entries table);
  (match table.default with
  | Some route -> Format.fprintf fmt "default -> %a" pp_route route
  | None -> ());
  Format.fprintf fmt "@]"
