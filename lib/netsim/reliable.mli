(** A small reliable, ordered message stream over the simulator's UDP —
    groundwork for the paper's §5 "better language support for TCP
    connections".

    Unidirectional, message-oriented: the sender numbers messages, keeps a
    fixed window in flight, retransmits on timeout; the receiver delivers
    in order exactly once and returns cumulative ACKs. Survives arbitrary
    packet loss (e.g. {!Link.set_up} fault injection) as long as the link
    eventually carries traffic again.

    Wire format (UDP payloads): data = [u8 'D'; u32 seq; bytes],
    ack = [u8 'A'; u32 cumulative]. *)

module Sender : sig
  type t

  (** [connect node ~dst ~dst_port ~src_port ()] prepares a stream.

      The retransmission timeout starts at [rto] and doubles on every
      timeout that makes no progress, capped at [max_rto]; any ACK that
      advances the window resets it to [rto]. With a [retry_budget], a
      stream that suffers that many {e consecutive} barren timeouts
      aborts instead of retrying forever: the queue and window are
      discarded ([unacked] drops to 0), [aborted] turns true, further
      [send]s are ignored, and [on_abort] is called once with a reason.
      Without a budget (the default) the stream retries indefinitely.

      @param window messages in flight (default 8)
      @param rto initial retransmission timeout, seconds (default 0.2)
      @param max_rto backoff cap, seconds (default 5.0);
        must be [>= rto]
      @param retry_budget consecutive no-progress timeouts tolerated
        before aborting (default: unlimited); must be positive
      @param on_abort called once when the budget is exhausted
      @param chan_tag tag every data packet for a named PLAN-P channel;
        tagged traffic is invisible to [network] channels, which is how
        control planes (e.g. ASP deployment) coexist with installed
        programs that claim all untagged UDP *)
  val connect :
    ?window:int ->
    ?rto:float ->
    ?max_rto:float ->
    ?retry_budget:int ->
    ?on_abort:(string -> unit) ->
    ?chan_tag:string ->
    Node.t ->
    dst:Addr.t ->
    dst_port:int ->
    src_port:int ->
    unit ->
    t

  (** [send t payload] enqueues one message. *)
  val send : t -> Payload.t -> unit

  (** [unacked t] — messages sent or queued but not yet acknowledged. *)
  val unacked : t -> int

  (** [retransmissions t] — timeout-triggered resends so far. *)
  val retransmissions : t -> int

  (** [acked t] — highest cumulative acknowledgement received. *)
  val acked : t -> int

  (** [aborted t] — true once the retry budget was exhausted; the stream
      is dead and [send] is a no-op. *)
  val aborted : t -> bool
end

module Receiver : sig
  type t

  (** [listen node ~port ~on_message ()] delivers messages to
      [on_message], in order, exactly once {e per sender stream}:
      concurrent senders to the same port are demultiplexed by (source
      address, source port), each with its own sequence space — so two
      controllers can address one daemon without colliding. [chan_tag]
      tags the ACKs the receiver sends back (pair it with the sender's
      tag). *)
  val listen :
    ?window:int ->
    ?chan_tag:string ->
    Node.t ->
    port:int ->
    on_message:(Payload.t -> unit) ->
    unit ->
    t

  (** [delivered t] — messages handed to [on_message]. *)
  val delivered : t -> int

  (** [duplicates t] — retransmitted copies discarded. *)
  val duplicates : t -> int
end
