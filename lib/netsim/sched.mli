(** Closure-free event scheduler: calendar-queue front end, overflow heap.

    A drop-in ordering-compatible replacement for {!Heap}: events pop in
    strictly increasing [(time, seq)] order, where [seq] is a global
    insertion counter (FIFO at equal times).  Unlike [Heap], the structure
    stores events in pooled parallel arrays (unboxed float times, int
    seqs/links, a payload pointer array) recycled through a free list —
    steady-state [add]/[pop] allocates no minor words, and the dominant
    near-future inserts are O(1) via the calendar wheel.  Events at or past
    the wheel's horizon overflow into a binary heap and are swept back into
    the wheel when it rotates; the bucket width adapts to the observed
    inter-event gap at each rotation.

    Only the live prefix of the pool is ever meaningful: free slots keep
    stale times and a [dummy] payload, so neither [pop] nor [clear] touches
    capacity beyond what was used (the invariant {!Heap.clear} relies on). *)

type fcell = { mutable v : float }
(** A single unboxed float cell.  All-float records are flat in OCaml, so
    writing [c.v <- t] never boxes — callers pass one of these to receive
    pop/peek times without allocating. *)

type 'a t

(** [create ~dummy ()] is an empty scheduler. [dummy] fills unused payload
    slots (it is never returned). [nbuckets] is the initial wheel size
    (default 256; grows at rotations, capped at 65536). *)
val create : ?nbuckets:int -> dummy:'a -> unit -> 'a t

val size : 'a t -> int
val is_empty : 'a t -> bool

(** [fresh_seq t] reserves the next global sequence number.  Use it to
    stamp an event whose scheduling is deferred (a link's FIFO ring) so it
    keeps the pop position it would have had if scheduled immediately. *)
val fresh_seq : 'a t -> int

(** [add t ~time v] schedules [v] with a fresh sequence number. *)
val add : 'a t -> time:float -> 'a -> unit

(** [add_stamped t ~time ~seq v] schedules with a caller-reserved stamp.
    [seq] must come from {!fresh_seq} of the same scheduler. *)
val add_stamped : 'a t -> time:float -> seq:int -> 'a -> unit

(** [peek_time t ~into] writes the earliest due time into [into] and
    returns [true]; returns [false] (leaving [into] alone) when empty. *)
val peek_time : 'a t -> into:fcell -> bool

(** [pop t ~into] removes the earliest event, writes its time into [into]
    and returns its payload.
    @raise Invalid_argument when empty (check {!is_empty} first). *)
val pop : 'a t -> into:fcell -> 'a

(** Drops every event and recycles the slots (live prefix only). *)
val clear : 'a t -> unit

(** {2 Introspection} — for tests and gauges. *)

val wheel_length : 'a t -> int
(** Events currently in the calendar wheel. *)

val overflow_length : 'a t -> int
(** Events currently in the overflow heap. *)

val bucket_count : 'a t -> int
val bucket_width : 'a t -> float
