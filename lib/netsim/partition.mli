(** Topology partitioning for the parallel driver ({!Par_engine}).

    Cuts a built topology's node set into [parts] non-empty groups while
    trying to keep the {e lookahead} — the minimum propagation latency
    over links crossing the cut — as large as possible, since it bounds
    how far the conservative window synchronization lets partitions run
    ahead of each other per round.

    Segments are uncuttable (a broadcast medium has a single shared
    transmitter), and callers may [pin] extra nodes into one group (the
    fault plane pins all its targets together so the shared scenario RNG
    draws in a deterministic order). Low-latency links are preferentially
    kept internal, Kruskal-style, under a balance cap of [ceil n / parts]
    nodes per merged component; leftover components are bin-packed
    largest-first into the lightest partition. The plan is a pure
    function of topology construction order — fully deterministic. *)

type t = {
  parts : int;  (** number of partitions; every one owns >= 1 node *)
  owner : int array;
      (** [owner.(i)] is the partition of the node with
          {!Topology.node_index} [i] *)
  cut : (Link.t * int * int) list;
      (** links crossing the cut as [(link, owner of A, owner of B)], in
          creation order *)
  lookahead : float;
      (** minimum {!Link.latency} over [cut]; [infinity] when no link is
          cut *)
}

(** [max_parts ?pin topo] is the finest split this topology admits: the
    number of connected components after gluing each segment's stations
    (and the [pin] group) together. Links do not constrain it — any link
    may be cut. *)
val max_parts : ?pin:Node.t list -> Topology.t -> int

(** [plan ?pin topo ~parts] computes a partition plan.
    [Error] when [parts < 1], the topology is empty, or
    [parts > max_parts ?pin topo]. *)
val plan : ?pin:Node.t list -> Topology.t -> parts:int -> (t, string) result
