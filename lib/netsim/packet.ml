type proto = Proto_tcp | Proto_udp | Proto_raw

type tcp_header = {
  tcp_src : int;
  tcp_dst : int;
  tcp_seq : int;
  tcp_ack : int;
  tcp_syn : bool;
  tcp_fin : bool;
  tcp_is_ack : bool;
}

type udp_header = { udp_src : int; udp_dst : int }
type l4 = Tcp of tcp_header | Udp of udp_header | Raw

type t = {
  uid : int;
  src : Addr.t;
  dst : Addr.t;
  ttl : int;
  l4 : l4;
  body : Payload.t;
  chan_tag : string option;
}

(* Atomic so packet construction is safe from any domain of a partitioned
   run (Par_engine). Uid VALUES stay identical to a sequential run as long
   as at most one domain constructs packets while the simulation runs —
   true of every bundled experiment (injection happens before the spawn,
   and in-run construction is an ASP re-emitting on its own partition). *)
let uid_counter = Atomic.make 0
let fresh_uid () = 1 + Atomic.fetch_and_add uid_counter 1

let make ?(ttl = 64) ?chan_tag ~src ~dst l4 body =
  { uid = fresh_uid (); src; dst; ttl; l4; body; chan_tag }

let udp ?ttl ?chan_tag ~src ~dst ~src_port ~dst_port body =
  make ?ttl ?chan_tag ~src ~dst
    (Udp { udp_src = src_port; udp_dst = dst_port })
    body

let tcp ?ttl ?chan_tag ?(seq = 0) ?(ack = 0) ?(syn = false) ?(fin = false)
    ?(is_ack = false) ~src ~dst ~src_port ~dst_port body =
  make ?ttl ?chan_tag ~src ~dst
    (Tcp
       {
         tcp_src = src_port;
         tcp_dst = dst_port;
         tcp_seq = seq;
         tcp_ack = ack;
         tcp_syn = syn;
         tcp_fin = fin;
         tcp_is_ack = is_ack;
       })
    body

let proto packet =
  match packet.l4 with
  | Tcp _ -> Proto_tcp
  | Udp _ -> Proto_udp
  | Raw -> Proto_raw

let ip_header_size = 20
let tcp_header_size = 20
let udp_header_size = 8

let wire_size packet =
  let l4_size =
    match packet.l4 with
    | Tcp _ -> tcp_header_size
    | Udp _ -> udp_header_size
    | Raw -> 0
  in
  ip_header_size + l4_size + Payload.length packet.body

let with_dst packet dst = { packet with dst }
let with_src packet src = { packet with src }
let with_body packet body = { packet with body }
let with_l4 packet l4 = { packet with l4 }

let with_ttl packet ttl = { packet with ttl }

let decrement_ttl packet =
  if packet.ttl <= 1 then None else Some { packet with ttl = packet.ttl - 1 }

let clone packet = { packet with uid = fresh_uid () }

let pp fmt packet =
  let proto_name, sport, dport =
    match packet.l4 with
    | Tcp h -> ("tcp", h.tcp_src, h.tcp_dst)
    | Udp h -> ("udp", h.udp_src, h.udp_dst)
    | Raw -> ("raw", 0, 0)
  in
  Format.fprintf fmt "#%d %a:%d -> %a:%d %s len=%d ttl=%d" packet.uid Addr.pp
    packet.src sport Addr.pp packet.dst dport proto_name
    (Payload.length packet.body)
    packet.ttl
