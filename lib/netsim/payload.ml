(* Payloads are views, not copies.  A payload is either contiguous — a
   [base] string with an [off]/[len] window — or a pending concatenation
   ([parts] non-empty) whose bytes have not been materialized yet.  Byte
   accessors [force] the node first: one allocation, memoized in place, so
   repeated access and every slice taken afterwards share the same base.
   [sub] and [concat] on the per-packet path therefore never copy bytes;
   only [force] (first byte access of a rope) and [compact]/[to_string] do. *)

type t = {
  mutable base : string;
  mutable off : int;
  len : int;
  mutable parts : t array; (* [||] once contiguous *)
}

let empty = { base = ""; off = 0; len = 0; parts = [||] }

let of_string s =
  let len = String.length s in
  if len = 0 then empty else { base = s; off = 0; len; parts = [||] }

let length t = t.len

let rec blit_to t buf pos =
  if Array.length t.parts = 0 then (
    Bytes.blit_string t.base t.off buf pos t.len;
    pos + t.len)
  else Array.fold_left (fun pos part -> blit_to part buf pos) pos t.parts

(* Materialize a pending concatenation.  Idempotent and memoizing: the
   flattened bytes replace the parts in place, so every holder of this
   node (and every later slice of it) reuses the same base string. *)
let force t =
  if Array.length t.parts <> 0 then (
    let buf = Bytes.create t.len in
    ignore (blit_to t buf 0);
    t.base <- Bytes.unsafe_to_string buf;
    t.off <- 0;
    t.parts <- [||])

let to_string t =
  force t;
  if t.off = 0 && String.length t.base = t.len then t.base
  else String.sub t.base t.off t.len

let of_bytes b = of_string (Bytes.to_string b)

let check t off width op =
  if off < 0 || off + width > t.len then
    invalid_arg
      (Printf.sprintf "Payload.%s: offset %d (width %d) out of bounds (len %d)"
         op off width t.len)

let get_u8 t off =
  check t off 1 "get_u8";
  force t;
  Char.code (String.unsafe_get t.base (t.off + off))

let get_u16 t off =
  check t off 2 "get_u16";
  force t;
  let base = t.base and o = t.off + off in
  (Char.code (String.unsafe_get base o) lsl 8)
  lor Char.code (String.unsafe_get base (o + 1))

let get_u32 t off =
  check t off 4 "get_u32";
  force t;
  let base = t.base and o = t.off + off in
  (Char.code (String.unsafe_get base o) lsl 24)
  lor (Char.code (String.unsafe_get base (o + 1)) lsl 16)
  lor (Char.code (String.unsafe_get base (o + 2)) lsl 8)
  lor Char.code (String.unsafe_get base (o + 3))

let sub t ~pos ~len =
  check t pos len "sub";
  if len = 0 then empty
  else if pos = 0 && len = t.len then t
  else (
    force t;
    { base = t.base; off = t.off + pos; len; parts = [||] })

let concat parts =
  match List.filter (fun p -> p.len <> 0) parts with
  | [] -> empty
  | [ p ] -> p
  | parts ->
      let parts = Array.of_list parts in
      let len = Array.fold_left (fun acc p -> acc + p.len) 0 parts in
      { base = ""; off = 0; len; parts }

let equal a b =
  a == b
  || a.len = b.len
     && (force a;
         force b;
         let rec go i =
           i >= a.len
           || String.unsafe_get a.base (a.off + i)
              = String.unsafe_get b.base (b.off + i)
              && go (i + 1)
         in
         go 0)

(* Drop any surrounding base: after [compact] the payload's storage is
   exactly its own bytes.  Mutates in place so all holders of the view
   stop retaining the larger backing string. *)
let compact t =
  force t;
  if t.off <> 0 || String.length t.base <> t.len then (
    t.base <- String.sub t.base t.off t.len;
    t.off <- 0);
  t

let fill len byte = of_string (String.make len (Char.chr (byte land 0xff)))

let pp fmt t =
  force t;
  let n = t.len in
  let shown = min n 16 in
  Format.fprintf fmt "payload[%d:" n;
  for i = 0 to shown - 1 do
    Format.fprintf fmt " %02x" (Char.code t.base.[t.off + i])
  done;
  if shown < n then Format.fprintf fmt " ...";
  Format.fprintf fmt "]"

module Writer = struct
  type w = Buffer.t

  let create () = Buffer.create 64
  let u8 w v = Buffer.add_char w (Char.chr (v land 0xff))

  let u16 w v =
    u8 w (v lsr 8);
    u8 w v

  let u32 w v =
    u8 w (v lsr 24);
    u8 w (v lsr 16);
    u8 w (v lsr 8);
    u8 w v

  let string = Buffer.add_string

  (* Walk the rope directly: appending a pending concatenation never
     forces it. *)
  let rec raw w p =
    if Array.length p.parts = 0 then Buffer.add_substring w p.base p.off p.len
    else Array.iter (raw w) p.parts

  let finish w = of_string (Buffer.contents w)
end

module Reader = struct
  type r = { data : t; mutable pos : int }

  let create data = { data; pos = 0 }

  let u8 r =
    let v = get_u8 r.data r.pos in
    r.pos <- r.pos + 1;
    v

  let u16 r =
    let v = get_u16 r.data r.pos in
    r.pos <- r.pos + 2;
    v

  let u32 r =
    let v = get_u32 r.data r.pos in
    r.pos <- r.pos + 4;
    v

  let string r len =
    let s = to_string (sub r.data ~pos:r.pos ~len) in
    r.pos <- r.pos + len;
    s

  let remaining r = r.data.len - r.pos

  let rest r =
    let p = sub r.data ~pos:r.pos ~len:(remaining r) in
    r.pos <- r.data.len;
    p
end
