(* Deterministic parallel simulation: one calendar queue per OCaml 5
   domain, conservative window synchronization.

   The topology is cut into partitions ({!Partition}); partition 0 keeps
   the topology's original engine (and with it every component's
   registered flush hook), partitions 1..k-1 get fresh engines created
   with [~register_gauges:false].  Nodes, segments and link endpoints are
   re-homed onto their partition's engine; each direction of a cut link
   sends into a mutex-protected {e conduit} instead of its delivery ring.

   Rounds follow the classic conservative (Chandy–Misra–Bryant) recipe,
   windowed: every domain drains its inbound conduits into the delivery
   rings, publishes the earliest time left in its queue, and enters a
   sense-reversing barrier.  The last domain to arrive computes the
   global horizon [M = min next_time] and grants the window
   [W = min (M + lookahead, stop)], where the lookahead is the minimum
   propagation latency over cut links: a packet transmitted at time
   [t >= M] arrives at [t + latency >= W], so processing events below [W]
   can never violate causality.  A domain whose queue is empty still
   participates — its [infinity] publication is the null message that
   lets the others compute a safe horizon.  A second barrier closes every
   window: no domain starts the next round's drain until every producer
   has finished the window, so each drain observes the complete set of
   cross-partition transmissions from all previous windows.

   Determinism: conduits preserve per-direction send order (each link
   direction serializes its transmissions, so buffered times are already
   monotone), drains happen in a fixed per-partition order, and every
   engine stamps (time, seq) with its own scheduler's counter — the
   event order inside a partition is exactly the sequential order
   restricted to that partition.  The one divergence is an exact-time tie
   between a cross-partition arrival and an unrelated local event, which
   may pop in either order (documented in SIMULATOR.md).

   Error safety: a domain that raises keeps participating in barriers,
   publishing [infinity], so the others drain and terminate instead of
   deadlocking; the first error (by partition index) is re-raised on the
   main domain after the join. *)

type conduit = {
  c_link : Link.t;
  c_from : Link.endpoint; (* transmitting endpoint of the direction *)
  c_dst : int; (* partition that drains this conduit *)
  c_mutex : Mutex.t;
  mutable c_buf : (float * Packet.t) list; (* newest first *)
  mutable c_total : int; (* packets ever pushed *)
}

type mode = Drain | Until of float

(* A barrier-paced callback: fires at [pc_next, pc_next + period, ...]
   while [pc_next <= pc_until], from the window-grant critical section,
   with every partition quiescent and every engine clock forced to the
   fire time. The adaptation plane re-homes its monitors here so
   sampling and decisions happen at window barriers, identically for
   every domain count. *)
type pacer = {
  pc_period : float;
  pc_until : float;
  pc_fire : now:float -> unit;
  mutable pc_next : float;
}

type t = {
  p_parts : int;
  p_engines : Engine.t array; (* index = partition id; 0 = topology's *)
  p_topo : Topology.t option;
  p_owner : int array; (* node index -> partition; [||] for raw *)
  p_lookahead : float;
  p_conduits : conduit array; (* creation order *)
  p_inbound : conduit array array; (* per destination partition *)
  (* Round synchronization: a sense-reversing barrier whose last arriver
     computes the next window under the mutex. *)
  p_mutex : Mutex.t;
  p_cond : Condition.t;
  mutable p_arrived : int;
  mutable p_phase : bool;
  p_next : float array; (* per-partition published next event time *)
  mutable p_window : float;
  mutable p_inclusive : bool;
  mutable p_running : bool;
  mutable p_limit : int;
  mutable p_pacers : pacer list; (* registration order *)
  p_errors : exn option array;
  p_stalls : int array; (* rounds where a partition fired no event *)
  mutable s_rounds : int;
  mutable s_nulls : int;
  (* Volatile execution-plane counters, published at finish. *)
  m_rounds : Obs.Registry.counter;
  m_nulls : Obs.Registry.counter;
  m_stalls : Obs.Registry.counter;
  m_cross : Obs.Registry.counter;
  mutable f_rounds : int; (* high-water marks already published *)
  mutable f_nulls : int;
  mutable f_stalls : int;
  mutable f_cross : int;
}

let default_limit = 100_000_000

(* The sync counters describe how the run was executed — they exist only
   when domains > 1 and vary with the domain count — so, like wall-clock
   timings, they are volatile and never appear in deterministic exports. *)
let par_counters () =
  let c help name = Obs.Registry.counter ~volatile:true ~help name in
  ( c "synchronization rounds (window barriers)" "netsim.par.rounds",
    c "null messages (empty-queue time grants)" "netsim.par.null_messages",
    c "windows in which a partition fired no event" "netsim.par.horizon_stalls",
    c "packets that crossed a partition boundary" "netsim.par.cross_packets" )

let make ~parts ~engines ~topo ~owner ~lookahead ~conduits =
  let inbound =
    Array.init parts (fun p ->
        Array.of_list
          (List.filter (fun c -> c.c_dst = p) (Array.to_list conduits)))
  in
  let m_rounds, m_nulls, m_stalls, m_cross = par_counters () in
  {
    p_parts = parts;
    p_engines = engines;
    p_topo = topo;
    p_owner = owner;
    p_lookahead = lookahead;
    p_conduits = conduits;
    p_inbound = inbound;
    p_mutex = Mutex.create ();
    p_cond = Condition.create ();
    p_arrived = 0;
    p_phase = false;
    p_next = Array.make parts Float.infinity;
    p_window = 0.0;
    p_inclusive = false;
    p_running = false;
    p_limit = default_limit;
    p_pacers = [];
    p_errors = Array.make parts None;
    p_stalls = Array.make parts 0;
    s_rounds = 0;
    s_nulls = 0;
    m_rounds;
    m_nulls;
    m_stalls;
    m_cross;
    f_rounds = 0;
    f_nulls = 0;
    f_stalls = 0;
    f_cross = 0;
  }

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

let conduit_push c ~at packet =
  Mutex.lock c.c_mutex;
  c.c_buf <- (at, packet) :: c.c_buf;
  c.c_total <- c.c_total + 1;
  Mutex.unlock c.c_mutex

(* Re-register the [netsim.engine.*] callback gauges as reductions over
   every partition.  [get-or-create] returns the cells partition 0's
   engine registered; [set_fn] replaces its single-engine callbacks. *)
let register_reductions engines conduits =
  let gauge ?volatile ~help name = Obs.Registry.gauge ?volatile ~help name in
  Obs.Registry.set_fn
    (gauge ~help:"current simulated time (s)" "netsim.engine.sim_time_s")
    (fun () ->
      Array.fold_left (fun m e -> Float.max m (Engine.now e)) 0.0 engines);
  Obs.Registry.set_fn
    (gauge ~help:"events still queued" "netsim.engine.pending")
    (fun () ->
      let queued =
        Array.fold_left (fun acc e -> acc + Engine.pending e) 0 engines
      in
      let buffered =
        Array.fold_left (fun acc c -> acc + List.length c.c_buf) 0 conduits
      in
      float_of_int (queued + buffered));
  Obs.Registry.set_fn
    (gauge ~volatile:true ~help:"peak event-queue depth"
       "netsim.engine.heap_depth_max")
    (fun () ->
      float_of_int
        (Array.fold_left (fun acc e -> acc + Engine.max_heap_depth e) 0 engines));
  Obs.Registry.set_fn
    (gauge ~volatile:true ~help:"cpu seconds spent inside run/run_until"
       "netsim.engine.wall_cpu_s")
    (fun () ->
      Array.fold_left (fun acc e -> acc +. Engine.wall_cpu_seconds e) 0.0
        engines)

let create ~domains =
  if domains < 1 then invalid_arg "Par_engine.create: domains must be >= 1";
  let engines =
    Array.init domains (fun _ -> Engine.create ~register_gauges:false ())
  in
  make ~parts:domains ~engines ~topo:None ~owner:[||]
    ~lookahead:Float.infinity ~conduits:[||]

let of_topology ?(pin = []) topo ~domains =
  if domains < 1 then Error "par: domains must be >= 1"
  else if domains = 1 then
    (* Single-domain wrapper: nothing is re-homed, no reductions are
       registered — runs are byte-identical to the plain engine. *)
    Ok
      (make ~parts:1
         ~engines:[| Topology.engine topo |]
         ~topo:(Some topo)
         ~owner:(Array.make (Topology.node_count topo) 0)
         ~lookahead:Float.infinity ~conduits:[||])
  else if Engine.pending (Topology.engine topo) > 0 then
    Error
      "par: the topology engine already has pending events; shard before \
       scheduling or injecting work"
  else
    match Partition.plan ~pin topo ~parts:domains with
    | Error _ as e -> e
    | Ok plan ->
        if plan.Partition.cut <> [] && plan.Partition.lookahead <= 0.0 then
          Error "par: a cut link has zero latency, leaving no lookahead"
        else begin
          let owner = plan.Partition.owner in
          let part_of node = owner.(Topology.node_index topo node) in
          let engines =
            Array.init domains (fun i ->
                if i = 0 then Topology.engine topo
                else Engine.create ~register_gauges:false ())
          in
          List.iter
            (fun node -> Node.set_engine node engines.(part_of node))
            (Topology.nodes topo);
          List.iter
            (fun (seg, stations) ->
              match stations with
              | [] -> () (* stationless segment: nothing references it *)
              | first :: _ -> Segment.set_engine seg engines.(part_of first))
            (Topology.segment_stations topo);
          List.iter
            (fun (link, a, b) ->
              Link.set_engines link ~a:engines.(part_of a)
                ~b:engines.(part_of b))
            (Topology.link_endpoints topo);
          let conduits =
            List.concat_map
              (fun (link, oa, ob) ->
                let mk from dst =
                  {
                    c_link = link;
                    c_from = from;
                    c_dst = dst;
                    c_mutex = Mutex.create ();
                    c_buf = [];
                    c_total = 0;
                  }
                in
                (* Direction transmitting from A delivers at B. *)
                [ mk Link.A ob; mk Link.B oa ])
              plan.Partition.cut
            |> Array.of_list
          in
          Array.iter
            (fun c ->
              Link.set_conduit c.c_link ~from:c.c_from
                (Some (conduit_push c)))
            conduits;
          register_reductions engines conduits;
          Ok
            (make ~parts:domains ~engines ~topo:(Some topo) ~owner
               ~lookahead:plan.Partition.lookahead ~conduits)
        end

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)

let parts t = t.p_parts
let engines t = t.p_engines
let lookahead t = t.p_lookahead

let now t =
  Array.fold_left (fun m e -> Float.max m (Engine.now e)) 0.0 t.p_engines

let engine_of t node =
  match t.p_topo with
  | None -> invalid_arg "Par_engine.engine_of: no topology (raw engines)"
  | Some topo -> t.p_engines.(t.p_owner.(Topology.node_index topo node))

let add_pacer t ~period ~until fire =
  if not (Float.is_finite period) || period <= 0.0 then
    invalid_arg "Par_engine.add_pacer: period must be finite and positive";
  if not (Float.is_finite until) then
    invalid_arg "Par_engine.add_pacer: until must be finite";
  let first = now t +. period in
  t.p_pacers <-
    t.p_pacers
    @ [ { pc_period = period; pc_until = until; pc_fire = fire; pc_next = first } ]

(* ------------------------------------------------------------------ *)
(* The round loop                                                      *)

let drain_conduit c =
  Mutex.lock c.c_mutex;
  let buf = c.c_buf in
  c.c_buf <- [];
  Mutex.unlock c.c_mutex;
  match buf with
  | [] -> ()
  | buf ->
      List.iter
        (fun (at, packet) ->
          Link.conduit_deliver c.c_link ~from:c.c_from ~at packet)
        (List.rev buf)

let next_due t =
  List.fold_left
    (fun acc pc ->
      if pc.pc_next <= pc.pc_until then Float.min acc pc.pc_next else acc)
    Float.infinity t.p_pacers

(* Runs with every partition quiescent — single-domain, or under
   [p_mutex] by the last barrier arriver while the other workers are
   parked on the condvar. While the global minimum next event time has
   passed a pacer's due time [bt <= horizon], every engine clock is
   forced to [bt] in partition-index order (publishing each partition's
   batched metrics, exactly like the sequential [run_until] epilogue),
   the due pacers fire in registration order, and any cross traffic they
   caused is drained into the delivery rings so the next grant accounts
   for it. Returns the post-fire global minimum next event time. *)
let fire_due t ~horizon =
  let live_min () =
    Array.fold_left
      (fun m e -> Float.min m (Engine.next_time e))
      Float.infinity t.p_engines
  in
  let rec go m =
    let bt = next_due t in
    if bt < m && bt <= horizon then begin
      Array.iter
        (fun e -> Engine.run_until ~limit:t.p_limit e ~stop:bt)
        t.p_engines;
      List.iter
        (fun pc ->
          if pc.pc_next = bt && pc.pc_next <= pc.pc_until then begin
            pc.pc_next <- pc.pc_next +. pc.pc_period;
            (* Under the barrier a raising pacer would strand the other
               domains on the condvar: record it like a worker error and
               re-raise after the join. Single-domain, propagate. *)
            if t.p_parts = 1 then pc.pc_fire ~now:bt
            else
              try pc.pc_fire ~now:bt
              with e ->
                if t.p_errors.(0) = None then t.p_errors.(0) <- Some e
          end)
        t.p_pacers;
      Array.iter drain_conduit t.p_conduits;
      go (live_min ())
    end
    else m
  in
  go (live_min ())

(* Runs under [p_mutex], by the last domain to arrive at the barrier. *)
let compute_window t mode =
  t.s_rounds <- t.s_rounds + 1;
  let m = ref Float.infinity in
  Array.iter (fun v -> if v < !m then m := v) t.p_next;
  let horizon =
    match mode with Drain -> Float.infinity | Until stop -> stop
  in
  if t.p_pacers <> [] then m := fire_due t ~horizon;
  (* After [fire_due], any pacer still due at [<= horizon] implies an
     event at [<= its due time] is pending, so the plain horizon test
     also covers pacer exhaustion. *)
  let finished =
    match mode with Drain -> !m = Float.infinity | Until stop -> !m > stop
  in
  if finished then t.p_running <- false
  else begin
    Array.iter
      (fun v -> if v = Float.infinity then t.s_nulls <- t.s_nulls + 1)
      t.p_next;
    let w = !m +. t.p_lookahead in
    let due = next_due t in
    match mode with
    | Drain ->
        if due < w then begin
          (* A pacer is due before the grant: clamp the window to the due
             time, inclusively, so the next round's [fire_due] sees every
             event at [<= due] processed before the pacer fires. Cross
             arrivals caused at [due] land at [>= due + lookahead] and are
             drained before any window covers them, so the inclusive
             boundary is safe (same argument as the final Until window). *)
          t.p_window <- due;
          t.p_inclusive <- true
        end
        else begin
          t.p_window <- w;
          t.p_inclusive <- false
        end
    | Until stop ->
        let bound = Float.min stop due in
        if w >= bound then begin
          (* Final or pacer-clamped window: events exactly at [bound] are
             in scope, and any cross arrival they cause lands at
             [>= bound + lookahead], so the inclusive boundary is safe. *)
          t.p_window <- bound;
          t.p_inclusive <- true
        end
        else begin
          t.p_window <- w;
          t.p_inclusive <- false
        end
  end

let barrier t compute =
  Mutex.lock t.p_mutex;
  let phase = t.p_phase in
  t.p_arrived <- t.p_arrived + 1;
  if t.p_arrived = t.p_parts then begin
    compute ();
    t.p_arrived <- 0;
    t.p_phase <- not phase;
    Condition.broadcast t.p_cond
  end
  else
    while t.p_phase = phase do
      Condition.wait t.p_cond t.p_mutex
    done;
  Mutex.unlock t.p_mutex

let worker t mode p =
  let engine = t.p_engines.(p) in
  let inbound = t.p_inbound.(p) in
  let continue = ref true in
  while !continue do
    (match t.p_errors.(p) with
    | Some _ ->
        (* Keep granting time so the others can drain and terminate. *)
        t.p_next.(p) <- Float.infinity
    | None -> (
        try
          Array.iter drain_conduit inbound;
          t.p_next.(p) <- Engine.next_time engine
        with e ->
          t.p_errors.(p) <- Some e;
          t.p_next.(p) <- Float.infinity));
    barrier t (fun () -> compute_window t mode);
    if not t.p_running then continue := false
    else begin
      (match t.p_errors.(p) with
      | Some _ -> ()
      | None -> (
          try
            let fired =
              Engine.run_window ~limit:t.p_limit ~inclusive:t.p_inclusive
                engine ~stop:t.p_window
            in
            if fired = 0 then t.p_stalls.(p) <- t.p_stalls.(p) + 1
          with e -> t.p_errors.(p) <- Some e));
      (* End-of-window barrier: the next round's drain must only run once
         EVERY partition has finished this window — otherwise a fast
         partition drains early, misses a cross packet a slower producer
         pushes moments later, and only sees it a round later, when its
         own clock may have passed the arrival time. The barrier also
         publishes the producers' pushes (mutex release/acquire) before
         any consumer drains. *)
      barrier t (fun () -> ())
    end
  done

(* Publish batched execution-plane counters (monotone across runs). *)
let publish_par_counters t =
  let stalls = Array.fold_left ( + ) 0 t.p_stalls in
  let cross =
    Array.fold_left (fun acc c -> acc + c.c_total) 0 t.p_conduits
  in
  Obs.Registry.add t.m_rounds (t.s_rounds - t.f_rounds);
  t.f_rounds <- t.s_rounds;
  Obs.Registry.add t.m_nulls (t.s_nulls - t.f_nulls);
  t.f_nulls <- t.s_nulls;
  Obs.Registry.add t.m_stalls (stalls - t.f_stalls);
  t.f_stalls <- stalls;
  Obs.Registry.add t.m_cross (cross - t.f_cross);
  t.f_cross <- cross

let finish t mode =
  let errored = Array.exists Option.is_some t.p_errors in
  (match mode with
  | Until stop when not errored ->
      (* Queues hold only events past [stop]; this forces every clock to
         [stop] and runs each engine's flush (partition 0 carries every
         component's flush hook) — exactly what the sequential
         [run_until] epilogue does. *)
      Array.iter (fun e -> Engine.run_until ~limit:t.p_limit e ~stop)
        t.p_engines
  | Drain | Until _ -> Array.iter Engine.flush t.p_engines);
  publish_par_counters t

let drive ?(limit = default_limit) t mode =
  if t.p_parts = 1 then begin
    t.p_limit <- limit;
    let e = t.p_engines.(0) in
    if t.p_pacers = [] then
      match mode with
      | Drain -> Engine.run ~limit e
      | Until stop -> Engine.run_until ~limit e ~stop
    else begin
      (* Single-domain paced loop, equivalent to the barrier path: run
         events up to each pacer's due time (inclusive, flushing batched
         metrics), fire it, repeat — so paced runs are byte-identical
         across domain counts. *)
      let horizon =
        match mode with Drain -> Float.infinity | Until stop -> stop
      in
      let rec loop () =
        ignore (fire_due t ~horizon);
        let due = next_due t in
        if Float.is_finite due && due <= horizon then begin
          Engine.run_until ~limit e ~stop:due;
          loop ()
        end
        else
          match mode with
          | Drain -> Engine.run ~limit e
          | Until stop -> Engine.run_until ~limit e ~stop
      in
      loop ()
    end
  end
  else begin
    t.p_limit <- limit;
    t.p_running <- true;
    t.p_arrived <- 0;
    t.p_phase <- false;
    Array.fill t.p_errors 0 t.p_parts None;
    let spawned =
      Array.init (t.p_parts - 1) (fun i ->
          Domain.spawn (fun () -> worker t mode (i + 1)))
    in
    worker t mode 0;
    Array.iter Domain.join spawned;
    (* An errored partition stopped draining its inbound conduits; empty
       them into the rings so pending counts stay meaningful. *)
    Array.iter drain_conduit t.p_conduits;
    finish t mode;
    Array.iter (function Some e -> raise e | None -> ()) t.p_errors
  end

let run ?limit t = drive ?limit t Drain
let run_until ?limit t ~stop = drive ?limit t (Until stop)

(* Execution-plane introspection (volatile; for tests and bench). *)
let rounds t = t.s_rounds
let cross_packets t =
  Array.fold_left (fun acc c -> acc + c.c_total) 0 t.p_conduits
