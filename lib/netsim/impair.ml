type t = {
  mutable loss_rate : float;
  mutable corrupt_rate : float;
  rand : unit -> float;
  mutable lost : int;
  mutable corrupted : int;
}

let create ~rand = { loss_rate = 0.; corrupt_rate = 0.; rand; lost = 0; corrupted = 0 }

let corrupt_packet t packet =
  let body = Packet.(packet.body) in
  let len = Payload.length body in
  if len = 0 then packet
  else begin
    let bytes = Bytes.of_string (Payload.to_string body) in
    let i = int_of_float (t.rand () *. float_of_int len) in
    let i = if i >= len then len - 1 else i in
    (* Flip a deterministic non-zero mask so the byte always changes. *)
    Bytes.set bytes i (Char.chr (Char.code (Bytes.get bytes i) lxor 0x55));
    Packet.with_body packet (Payload.of_bytes bytes)
  end

let apply t packet =
  if t.loss_rate > 0. && t.rand () < t.loss_rate then begin
    t.lost <- t.lost + 1;
    None
  end
  else if t.corrupt_rate > 0. && t.rand () < t.corrupt_rate then begin
    t.corrupted <- t.corrupted + 1;
    Some (corrupt_packet t packet)
  end
  else Some packet
