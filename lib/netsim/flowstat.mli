(** Windowed traffic statistics.

    A [Flowstat.t] records byte counts stamped with simulated time and
    answers "how many bits/s flowed during the last [window] seconds?" —
    the measurement the audio router ASP bases its adaptation on, and the
    instrument benches use to plot bandwidth-vs-time series (Fig. 6). *)

type t

(** [create ~window ()] tracks a sliding window of [window] seconds
    (default 1.0). *)
val create : ?window:float -> unit -> t

(** [record stat ~now bytes] accounts [bytes] at time [now]. Samples are
    kept in a preallocated ring; in steady state (the ring at its
    window-bounded size) recording allocates nothing. *)
val record : t -> now:float -> int -> unit

(** [rate_bps stat ~now] is the carried rate over the window ending at
    [now], in bits per second. *)
val rate_bps : t -> now:float -> float

(** [total_bytes stat] is the all-time byte count. *)
val total_bytes : t -> int

(** [total_packets stat] is the all-time record count. *)
val total_packets : t -> int

(** [window stat] is the configured window length. *)
val window : t -> float

(** Time series sampler: calls [rate_bps] on a fixed period and accumulates
    [(time, bits-per-second)] points; used to regenerate figure series. *)
module Series : sig
  type s

  (** [attach engine stat ~period ~until] samples [stat] every [period]
      seconds until time [until]. *)
  val attach : Engine.t -> t -> period:float -> until:float -> s

  (** [points s] are the samples collected so far, oldest first. *)
  val points : s -> (float * float) list
end
