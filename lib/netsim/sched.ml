(* Closure-free event scheduler: a calendar-queue (timing-wheel) front end
   backed by an overflow binary heap.

   Every queued event owns a slot in a pool of parallel arrays (float due
   times, int sequence numbers, payloads, int links).  Slots are recycled
   through a free list, so once the pool has grown to the working-set size,
   steady-state add/pop allocates nothing: times live in an unboxed float
   array, links and seqs in int arrays, and the payload array only ever
   stores pointers the caller already holds.

   Ordering is exactly the (time, seq) order of the original binary heap:
   seq is a global counter stamped per insertion (or reserved up front with
   [fresh_seq] and passed to [add_stamped]), ties break FIFO.

   The wheel covers [wheel_t0, wheel_t0 + nbuckets * width).  An insert
   below that horizon lands in bucket floor((t - wheel_t0) / width),
   clamped into [cur, nbuckets-1]; inserts at or past the horizon go to
   the overflow heap.  Buckets are singly-linked lists threaded through
   the pool's [enext] array, kept sorted by (time, seq) — with the bucket
   width adapted to the mean inter-event gap each bucket holds O(1) events,
   so the sorted insert is O(1) amortized.

   Invariants (the clamp makes the first two safe even under float
   rounding):
     - bucket index is a monotone function of time, so an event in bucket
       j > cur cannot be due before any event clamped into bucket [cur];
     - equal times map to equal buckets, so FIFO ties always meet in one
       sorted list;
     - the heap only holds events at or past the horizon, and the horizon
       only moves at a rotation (when the wheel is empty), so the wheel
       always holds a prefix of the schedule;
     - like [Heap], only the live prefix of any pool array is meaningful:
       slots on the free list keep stale times/seqs and [clear] never has
       to touch capacity beyond what was used. *)

type fcell = { mutable v : float }

type 'a t = {
  dummy : 'a;
  (* Slot pool: parallel arrays indexed by slot id. *)
  mutable etime : float array;
  mutable eseq : int array;
  mutable evalue : 'a array;
  mutable enext : int array; (* bucket chain / free-list link; -1 = end *)
  mutable free : int; (* free-list head, -1 = none *)
  mutable size : int; (* live events, wheel + heap *)
  mutable seq_counter : int;
  (* Calendar wheel. *)
  mutable bucket : int array; (* head slot per bucket, -1 = empty *)
  mutable btail : int array; (* tail slot; only read while head <> -1 *)
  mutable cur : int; (* first possibly-nonempty bucket *)
  mutable wheel_len : int;
  mutable wheel_t0 : float; (* cold: mutated only at rotation *)
  mutable width : float;
  mutable inv_width : float;
  mutable horizon : float; (* wheel_t0 + nbuckets * width *)
  (* Overflow heap of slot ids, ordered by (etime, eseq). *)
  mutable hslot : int array;
  mutable hlen : int;
  (* Hot floats mutated per pop, kept in an unboxed array:
     0 = last pop time, 1 = EMA of inter-pop gaps. *)
  fs : float array;
}

let default_width = 1e-3

let create ?(nbuckets = 256) ~dummy () =
  if nbuckets <= 0 then invalid_arg "Sched.create: nbuckets must be positive";
  let cap = 16 in
  let enext = Array.init cap (fun i -> if i = cap - 1 then -1 else i + 1) in
  {
    dummy;
    etime = Array.make cap 0.0;
    eseq = Array.make cap 0;
    evalue = Array.make cap dummy;
    enext;
    free = 0;
    size = 0;
    seq_counter = 0;
    bucket = Array.make nbuckets (-1);
    btail = Array.make nbuckets (-1);
    cur = 0;
    wheel_len = 0;
    wheel_t0 = 0.0;
    width = default_width;
    inv_width = 1.0 /. default_width;
    horizon = float_of_int nbuckets *. default_width;
    hslot = Array.make 16 0;
    hlen = 0;
    fs = [| 0.0; 0.0 |];
  }

let size t = t.size
let is_empty t = t.size = 0

let[@inline] fresh_seq t =
  let seq = t.seq_counter in
  t.seq_counter <- seq + 1;
  seq

(* ------------------------------------------------------------------ *)
(* Slot pool                                                           *)
(* ------------------------------------------------------------------ *)

let[@inline never] grow_pool t =
  let cap = Array.length t.etime in
  let ncap = 2 * cap in
  let etime = Array.make ncap 0.0 in
  Array.blit t.etime 0 etime 0 cap;
  let eseq = Array.make ncap 0 in
  Array.blit t.eseq 0 eseq 0 cap;
  let evalue = Array.make ncap t.dummy in
  Array.blit t.evalue 0 evalue 0 cap;
  let enext = Array.make ncap (-1) in
  Array.blit t.enext 0 enext 0 cap;
  (* Thread the new slots onto the free list. *)
  for i = cap to ncap - 1 do
    enext.(i) <- (if i = ncap - 1 then t.free else i + 1)
  done;
  t.etime <- etime;
  t.eseq <- eseq;
  t.evalue <- evalue;
  t.enext <- enext;
  t.free <- cap

(* Slot [a] sorts strictly before slot [b]. Seqs are unique, so this is a
   total order. *)
let[@inline] slot_before t a b =
  let ta = Array.unsafe_get t.etime a and tb = Array.unsafe_get t.etime b in
  ta < tb
  || (ta = tb && Array.unsafe_get t.eseq a < Array.unsafe_get t.eseq b)

(* ------------------------------------------------------------------ *)
(* Overflow heap (slot ids keyed by pool time/seq)                     *)
(* ------------------------------------------------------------------ *)

let[@inline never] heap_grow t =
  let cap = Array.length t.hslot in
  let hslot = Array.make (2 * cap) 0 in
  Array.blit t.hslot 0 hslot 0 cap;
  t.hslot <- hslot

let heap_add t s =
  if t.hlen = Array.length t.hslot then heap_grow t;
  let h = t.hslot in
  let i = ref t.hlen in
  t.hlen <- t.hlen + 1;
  h.(!i) <- s;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if slot_before t h.(!i) h.(parent) then begin
      let tmp = h.(!i) in
      h.(!i) <- h.(parent);
      h.(parent) <- tmp;
      i := parent
    end
    else continue := false
  done

let heap_pop t =
  let h = t.hslot in
  let root = h.(0) in
  t.hlen <- t.hlen - 1;
  h.(0) <- h.(t.hlen);
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let left = (2 * !i) + 1 and right = (2 * !i) + 2 in
    let smallest = ref !i in
    if left < t.hlen && slot_before t h.(left) h.(!smallest) then
      smallest := left;
    if right < t.hlen && slot_before t h.(right) h.(!smallest) then
      smallest := right;
    if !smallest <> !i then begin
      let tmp = h.(!i) in
      h.(!i) <- h.(!smallest);
      h.(!smallest) <- tmp;
      i := !smallest
    end
    else continue := false
  done;
  root

(* ------------------------------------------------------------------ *)
(* Wheel                                                               *)
(* ------------------------------------------------------------------ *)

(* Sorted insert of slot [s] into bucket [b]: skip everything due before
   [s] (equal-time earlier seqs included, preserving FIFO).  The tail
   pointer makes the dominant pattern — appending at or after the bucket's
   newest entry, as FIFO waves and rising times do — O(1) regardless of
   how many events share the bucket. *)
let bucket_insert t b s =
  let head = t.bucket.(b) in
  if head = -1 then begin
    t.enext.(s) <- -1;
    t.bucket.(b) <- s;
    t.btail.(b) <- s
  end
  else if slot_before t t.btail.(b) s then begin
    t.enext.(s) <- -1;
    t.enext.(t.btail.(b)) <- s;
    t.btail.(b) <- s
  end
  else if slot_before t s head then begin
    t.enext.(s) <- head;
    t.bucket.(b) <- s
  end
  else begin
    let p = ref head in
    let continue = ref true in
    while !continue do
      let n = t.enext.(!p) in
      if n <> -1 && slot_before t n s then p := n else continue := false
    done;
    t.enext.(s) <- t.enext.(!p);
    t.enext.(!p) <- s
  end;
  t.wheel_len <- t.wheel_len + 1

(* Place slot [s] (time already below the horizon) into its wheel bucket,
   clamped into [cur, nbuckets-1]. *)
let[@inline] wheel_place t s =
  let nbuckets = Array.length t.bucket in
  let idx =
    int_of_float ((Array.unsafe_get t.etime s -. t.wheel_t0) *. t.inv_width)
  in
  let idx = if idx < t.cur then t.cur else idx in
  let idx = if idx >= nbuckets then nbuckets - 1 else idx in
  bucket_insert t idx s

(* Reposition the wheel over the earliest pending work and refill it from
   the overflow heap.  Called only when the wheel is empty, so this is
   where the horizon — and the bucket width — may move.  The width chases
   the EMA of inter-pop gaps so each bucket holds O(1) events; the bucket
   count doubles (up to a cap) when the population outgrows it. *)
let rotate t =
  let nbuckets = Array.length t.bucket in
  let nbuckets =
    if t.size > 2 * nbuckets && nbuckets < 65536 then begin
      let target = ref nbuckets in
      while !target < t.size && !target < 65536 do
        target := 2 * !target
      done;
      t.bucket <- Array.make !target (-1);
      t.btail <- Array.make !target (-1);
      !target
    end
    else nbuckets
  in
  let gap = t.fs.(1) in
  let width =
    (* Aim for a few events per bucket; fall back to the current width
       when there is no signal yet (no pops, or all-equal times). *)
    let target = gap *. 4.0 in
    if target > 1e-12 && target < 1e9 then target else t.width
  in
  t.width <- width;
  t.inv_width <- 1.0 /. width;
  t.cur <- 0;
  let t0 = t.etime.(t.hslot.(0)) in
  t.wheel_t0 <- t0;
  t.horizon <- t0 +. (float_of_int nbuckets *. width);
  (* Drain everything now below the horizon into the wheel. *)
  let continue = ref true in
  while !continue && t.hlen > 0 do
    let s = t.hslot.(0) in
    if t.etime.(s) < t.horizon then begin
      ignore (heap_pop t);
      wheel_place t s
    end
    else continue := false
  done

(* ------------------------------------------------------------------ *)
(* Public operations                                                   *)
(* ------------------------------------------------------------------ *)

let[@inline] add_stamped t ~time ~seq value =
  if t.free = -1 then grow_pool t;
  let s = t.free in
  t.free <- Array.unsafe_get t.enext s;
  Array.unsafe_set t.etime s time;
  Array.unsafe_set t.eseq s seq;
  Array.unsafe_set t.evalue s value;
  t.size <- t.size + 1;
  if time >= t.horizon then
    if t.wheel_len = 0 && t.hlen = 0 then begin
      (* Queue idle and the event is past the wheel's span: re-anchor the
         wheel at this event instead of bouncing it through the heap.
         Safe only when the heap is empty too — it may hold events due
         before [time] that a moved horizon would incorrectly outrank. *)
      t.cur <- 0;
      t.wheel_t0 <- time;
      t.horizon <-
        time +. (float_of_int (Array.length t.bucket) *. t.width);
      bucket_insert t 0 s
    end
    else heap_add t s
  else wheel_place t s

let[@inline] add t ~time value = add_stamped t ~time ~seq:(fresh_seq t) value

(* First nonempty bucket at or after [cur]; the caller guarantees
   wheel_len > 0. Advancing [cur] here is what retires empty buckets. *)
let[@inline] advance_cur t =
  let bucket = t.bucket in
  let cur = ref t.cur in
  while Array.unsafe_get bucket !cur = -1 do
    incr cur
  done;
  t.cur <- !cur;
  !cur

let peek_time t ~into =
  if t.size = 0 then false
  else begin
    (if t.wheel_len > 0 then begin
       let b = advance_cur t in
       into.v <- t.etime.(t.bucket.(b))
     end
     else into.v <- t.etime.(t.hslot.(0)));
    true
  end

let pop t ~into =
  if t.size = 0 then invalid_arg "Sched.pop: empty";
  if t.wheel_len = 0 then rotate t;
  let b = advance_cur t in
  let s = t.bucket.(b) in
  t.bucket.(b) <- Array.unsafe_get t.enext s;
  t.wheel_len <- t.wheel_len - 1;
  t.size <- t.size - 1;
  let time = Array.unsafe_get t.etime s in
  into.v <- time;
  (* Inter-pop gap EMA feeding the width adaptation (unboxed stores). *)
  let fs = t.fs in
  let gap = time -. Array.unsafe_get fs 0 in
  Array.unsafe_set fs 0 time;
  if gap > 0.0 then
    Array.unsafe_set fs 1 ((0.875 *. Array.unsafe_get fs 1) +. (0.125 *. gap));
  let value = Array.unsafe_get t.evalue s in
  (* Recycle the slot; drop the payload pointer so it is not retained. *)
  Array.unsafe_set t.evalue s t.dummy;
  Array.unsafe_set t.enext s t.free;
  t.free <- s;
  value

let clear t =
  (* Release payload pointers in the live prefix only: free slots already
     hold [dummy] (see the module-top invariant — the mirror of the
     Heap.clear fix). *)
  if t.wheel_len > 0 then
    for b = t.cur to Array.length t.bucket - 1 do
      let s = ref t.bucket.(b) in
      while !s <> -1 do
        let n = t.enext.(!s) in
        t.evalue.(!s) <- t.dummy;
        t.enext.(!s) <- t.free;
        t.free <- !s;
        s := n
      done;
      t.bucket.(b) <- -1
    done;
  for i = 0 to t.hlen - 1 do
    let s = t.hslot.(i) in
    t.evalue.(s) <- t.dummy;
    t.enext.(s) <- t.free;
    t.free <- s
  done;
  t.hlen <- 0;
  t.wheel_len <- 0;
  t.size <- 0;
  t.cur <- 0

(* Introspection for tests and gauges. *)
let wheel_length t = t.wheel_len
let overflow_length t = t.hlen
let bucket_count t = Array.length t.bucket
let bucket_width t = t.width
