(** The fault-injection plane: deterministic, seedable network-dynamics
    scenarios scheduled through the simulation engine.

    A {e scenario} is a seed plus a list of timed fault events targeting
    links, segments and nodes by the names they were created with:

    - {b link flaps} — [Link_down] takes a link down at [ft_at] and (when
      bounded) back up at [ft_until]; packets in flight at the cut are
      lost and counted (see {!Link.set_up}).
    - {b loss / corruption} — [Loss] and [Corrupt] set probabilistic
      per-packet models on a link or segment over a window, driven by the
      scenario's own random stream (see {!Impair}).
    - {b congestion bursts} — [Congest] scales a medium's bandwidth and/or
      queue capacity down for a window and restores the pre-burst values
      afterwards.
    - {b node crash / restart} — [Crash] takes a node down ([~wipe:true]
      also drops its runtime state via {!Node.reset_state}); a bounded
      crash restarts the node at [ft_until] and runs the {!on_restart}
      callbacks so the application layer can re-register hooks.
    - {b reconvergence} — [Reroute] recomputes every routing table with
      {!Topology.compute_routes}, honouring liveness at that instant.
      Crashes and bounded link flaps trigger an implicit reconvergence at
      both edges of their window, as do link up/down transitions.

    {b Determinism.} All randomness comes from one xorshift64* stream
    seeded by the scenario; engine event order is deterministic, so a
    given (scenario, topology, workload) triple replays bit-identically.
    An empty scenario arms nothing and leaves every medium untouched —
    runs with it are bit-identical to runs without a fault plane.

    {b Cost.} Arming a scenario schedules plain engine timers; media with
    no active loss/corruption window keep their [impair] field [None],
    so idle cost is one branch per send. Loss/corruption tallies are
    batched in raw counters and flushed to [netsim.faults.*] metrics via
    {!Engine.on_flush}. *)

type target = Tlink of string | Tsegment of string | Tnode of string

type kind =
  | Link_down  (** link target; bounded window = flap *)
  | Loss of float  (** link or segment target; probability per packet *)
  | Corrupt of float  (** link or segment target; probability per packet *)
  | Congest of { bandwidth_factor : float; queue_factor : float }
      (** link or segment target; factors in (0, 1] applied for the window *)
  | Crash of { wipe : bool }  (** node target; [wipe] drops runtime state *)
  | Reroute  (** no target; recompute all routing tables *)

type event = {
  ft_at : float;  (** injection time (seconds of simulated time) *)
  ft_until : float option;  (** end of the window; [None] = permanent *)
  ft_kind : kind;
  ft_target : target option;  (** [None] only for [Reroute] *)
}

type scenario = { seed : int; events : event list }

val empty : scenario
(** No faults; arming it is a no-op. *)

val parse_scenario : string -> (scenario, string) result
(** Parses the scenario-file format documented in [doc/FAULTS.md]:
    {[
      # comments and blank lines are ignored
      seed 42
      at 1.0 until 2.5 link down uplink
      at 0.5 link loss uplink 0.05
      at 0.5 until 9.0 segment corrupt lan 0.01
      at 3.0 until 6.0 congest backbone bandwidth 0.5 queue 0.5
      at 4.0 until 6.0 node crash router
      at 4.0 node crash-wipe router
      at 2.5 reroute
    ]}
    The error string names the offending line. *)

val scenario_of_events : ?seed:int -> event list -> scenario

type handle

val arm : ?engine:Engine.t -> Topology.t -> scenario -> handle
(** [arm topo scenario] resolves every target name against [topo] and
    schedules the events on its engine. Call before (or during) the run;
    events whose time has already passed fire on the next engine step.
    [?engine] overrides where the fault timers are scheduled: a
    partitioned run ({!Par_engine}) passes the engine of the partition
    the scenario's targets are pinned into, so faults fire on the domain
    that owns their targets.
    @raise Invalid_argument when a target name does not resolve or an
    event is malformed (e.g. [Loss] on a node). *)

val pin_targets : Topology.t -> scenario -> (Node.t list, string) result
(** [pin_targets topo scenario] is the node set a partitioned run must
    pin into a single partition for this scenario to stay deterministic:
    the endpoints of every targeted link and the stations of every
    targeted segment (the shared scenario RNG then draws on one domain,
    in sequential order). [Error] for faults that reconverge routes
    globally ([Link_down], [Crash], [Reroute]) or targets that do not
    resolve. [Ok []] for an empty scenario. *)

val on_restart : handle -> (Node.t -> unit) -> unit
(** [on_restart handle f] registers [f] to run whenever a crashed node
    restarts (the end of a bounded [Crash] window), after the node is
    back up and routes have reconverged — the place to re-install
    processing hooks lost to a wipe. Callbacks run in registration
    order. *)

val injected : handle -> int
(** Total fault events injected so far (metrics mirror:
    [netsim.faults.injected]). *)
