(* Topology partitioning for the parallel driver.

   The plan must maximize the conservative lookahead (the minimum
   propagation latency over cut links) while splitting the node set into
   [parts] non-empty groups.  We approximate the min-cut greedily:

   - segments are uncuttable (a broadcast medium has one shared
     transmitter), so all stations of a segment start in one component,
     as does the optional [pin] group (the fault plane pins its targets
     together so a shared scenario RNG draws in a deterministic order);
   - Kruskal-style, links are scanned by latency {e ascending} and their
     endpoint components merged while more than [parts] components
     remain, subject to a balance cap of [ceil n / parts] nodes per
     component — low-latency links become internal, so the links left cut
     are the high-latency ones;
   - remaining components are bin-packed into exactly [parts] partitions,
     largest first, each into the currently lightest bin.

   Everything is deterministic: components are enumerated by minimum node
   index, ties broken by index or bin id. *)

type t = {
  parts : int;
  owner : int array; (* node index -> partition id in [0, parts) *)
  cut : (Link.t * int * int) list; (* (link, owner of A, owner of B) *)
  lookahead : float; (* min latency over [cut]; infinity when uncut *)
}

(* Union-find with path halving and union by size. *)

let uf_create n = Array.init n (fun i -> i)

let rec uf_find parent i =
  let p = parent.(i) in
  if p = i then i
  else begin
    parent.(i) <- parent.(p);
    uf_find parent parent.(i)
  end

let uf_union parent size a b =
  let ra = uf_find parent a and rb = uf_find parent b in
  if ra = rb then false
  else begin
    let ra, rb = if size.(ra) >= size.(rb) then (ra, rb) else (rb, ra) in
    parent.(rb) <- ra;
    size.(ra) <- size.(ra) + size.(rb);
    true
  end

(* The mandatory merges: segment stations and the pin group. Returns
   (parent, size, component count). *)
let base_components ?(pin = []) topo =
  let n = Topology.node_count topo in
  let parent = uf_create n in
  let size = Array.make n 1 in
  let components = ref n in
  let merge a b = if uf_union parent size a b then decr components in
  List.iter
    (fun (_seg, stations) ->
      match stations with
      | [] -> ()
      | first :: rest ->
          let fi = Topology.node_index topo first in
          List.iter
            (fun node -> merge fi (Topology.node_index topo node))
            rest)
    (Topology.segment_stations topo);
  (match pin with
  | [] -> ()
  | first :: rest ->
      let fi = Topology.node_index topo first in
      List.iter (fun node -> merge fi (Topology.node_index topo node)) rest);
  (parent, size, !components)

let max_parts ?pin topo =
  let _, _, components = base_components ?pin topo in
  components

let plan ?pin topo ~parts =
  let n = Topology.node_count topo in
  if parts < 1 then Error "partition: parts must be >= 1"
  else if n = 0 then Error "partition: empty topology"
  else begin
    let parent, size, components = base_components ?pin topo in
    if components < parts then
      Error
        (Printf.sprintf
           "partition: topology only splits into %d partition(s) (segments \
            and pinned fault targets are uncuttable), %d requested"
           components parts)
    else begin
      let components = ref components in
      let cap = (n + parts - 1) / parts in
      (* Stable sort by latency keeps creation order among equal-latency
         links, so the plan is deterministic. *)
      let links =
        List.stable_sort
          (fun (la, _, _) (lb, _, _) ->
            Float.compare (Link.latency la) (Link.latency lb))
          (Topology.link_endpoints topo)
      in
      List.iter
        (fun (_, a, b) ->
          if !components > parts then begin
            let ia = Topology.node_index topo a
            and ib = Topology.node_index topo b in
            let ra = uf_find parent ia and rb = uf_find parent ib in
            if ra <> rb && size.(ra) + size.(rb) <= cap then
              if uf_union parent size ia ib then decr components
          end)
        links;
      (* Enumerate components by minimum node index. *)
      let comp_id = Array.make n (-1) in
      let comp_sizes = ref [] in
      let comp_count = ref 0 in
      for i = 0 to n - 1 do
        let root = uf_find parent i in
        if comp_id.(root) = -1 then begin
          comp_id.(root) <- !comp_count;
          comp_sizes := (!comp_count, size.(root)) :: !comp_sizes;
          incr comp_count
        end;
        comp_id.(i) <- comp_id.(root)
      done;
      (* First-fit decreasing: biggest component first (component id — i.e.
         minimum node index — breaks ties), into the lightest bin (lowest
         bin id breaks ties). *)
      let order =
        List.sort
          (fun (ida, sa) (idb, sb) ->
            if sa <> sb then compare sb sa else compare ida idb)
          !comp_sizes
      in
      let bin_of_comp = Array.make !comp_count 0 in
      let bin_load = Array.make parts 0 in
      List.iter
        (fun (id, comp_size) ->
          let best = ref 0 in
          for bin = 1 to parts - 1 do
            if bin_load.(bin) < bin_load.(!best) then best := bin
          done;
          bin_of_comp.(id) <- !best;
          bin_load.(!best) <- bin_load.(!best) + comp_size)
        order;
      let owner = Array.init n (fun i -> bin_of_comp.(comp_id.(i))) in
      let cut = ref [] in
      let lookahead = ref Float.infinity in
      List.iter
        (fun (link, a, b) ->
          let oa = owner.(Topology.node_index topo a)
          and ob = owner.(Topology.node_index topo b) in
          if oa <> ob then begin
            cut := (link, oa, ob) :: !cut;
            if Link.latency link < !lookahead then
              lookahead := Link.latency link
          end)
        (Topology.link_endpoints topo);
      Ok { parts; owner; cut = List.rev !cut; lookahead = !lookahead }
    end
  end
