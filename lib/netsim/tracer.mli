(** Packet capture — a tcpdump for the simulator.

    A tracer taps a {!Segment} (every carried frame) or wraps a node's
    delivery path, recording timestamped packet summaries that tests and
    experiment post-mortems can filter and render. Records are kept in
    memory, capped at [limit] (oldest dropped first). *)

type record = {
  at : float;  (** simulated time the frame finished transmitting *)
  src : Addr.t;
  dst : Addr.t;
  l2_dst : Addr.t option;
  proto : Packet.proto;
  src_port : int;  (** 0 for raw *)
  dst_port : int;
  size : int;  (** wire size *)
  chan_tag : string option;
  uid : int;
}

type t

(** [on_segment segment ()] starts capturing (replaces any existing tap on
    the segment). *)
val on_segment : ?limit:int -> Segment.t -> unit -> t

(** [record_packet t ~at ~l2_dst packet] feeds a packet by hand (for
    taps the caller owns). *)
val record_packet : t -> at:float -> l2_dst:Addr.t option -> Packet.t -> unit

(** [create ()] is a tracer not attached to anything (feed it with
    {!record_packet}). *)
val create : ?limit:int -> unit -> t

(** [records t] — captured records, oldest first. *)
val records : t -> record list

(** [count t] — records currently held (≤ limit). *)
val count : t -> int

(** [dropped t] — how many old records the cap evicted. *)
val dropped : t -> int

val clear : t -> unit

(** [filter t ~f] — records satisfying [f], oldest first. *)
val filter : t -> f:(record -> bool) -> record list

(** Handy predicates. *)
val udp_to_port : int -> record -> bool

val tcp_to_port : int -> record -> bool
val between : Addr.t -> Addr.t -> record -> bool

(** [bytes t ~f] — total wire bytes over matching records. *)
val bytes : t -> f:(record -> bool) -> int

(** [pp_record fmt record] — one tcpdump-style line. *)
val pp_record : Format.formatter -> record -> unit

(** [dump t] — all records, one line each. *)
val dump : t -> string

(** [to_events t] — the capture as timeline events ([source:"tracer"],
    [kind:"packet"]), ready to {!Obs.Timeline.merge} with metric
    snapshots. Only the records still held are exported: if the cap
    evicted old records ([dropped t] > 0), the timeline starts late. *)
val to_events : t -> Obs.Timeline.event list
