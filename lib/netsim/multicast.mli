(** Network-wide multicast group membership.

    A single registry is shared by every node of a topology (a simulator
    stand-in for IGMP): senders address packets to a class-D group; routers
    consult the registry to decide where to replicate. *)

type t

val create : unit -> t

(** [join registry ~group member] adds host address [member] to [group].
    @raise Invalid_argument if [group] is not a class-D address. *)
val join : t -> group:Addr.t -> Addr.t -> unit

val leave : t -> group:Addr.t -> Addr.t -> unit

(** [members registry ~group] is the member list, sorted by address. *)
val members : t -> group:Addr.t -> Addr.t list

(** [iter_members registry ~group f] applies [f] to each member in
    ascending address order, without building the list — the form the
    per-packet replication path uses. *)
val iter_members : t -> group:Addr.t -> (Addr.t -> unit) -> unit

val is_member : t -> group:Addr.t -> Addr.t -> bool
val groups : t -> Addr.t list
