(** Network nodes: hosts and routers.

    A node owns interfaces (attachments to links or segments), a routing
    table, application handlers bound to transport ports, and a *packet
    processing hook*. The default hook implements standard IP behaviour
    (deliver locally / forward / replicate multicast). Installing a custom
    hook is how the PLAN-P layer "replaces the standard packet processing
    behavior of the IP layer" (paper, Fig. 1). *)

type t

(** A processing hook sees every frame the node accepts (all frames when
    promiscuous). It may call back into {!ip_input}, {!forward},
    {!deliver_local} or {!transmit} to reuse the standard behaviour. *)
type hook = t -> ifindex:int -> l2_dst:Addr.t option -> Packet.t -> unit

type counters = {
  mutable frames_in : int;
  mutable delivered : int;
  mutable forwarded : int;
  mutable originated : int;
  mutable dropped_ttl : int;
  mutable dropped_no_route : int;
  mutable dropped_filtered : int;
  mutable dropped_unclaimed : int;
  mutable dropped_tx : int;  (** rejected by a full link/segment queue *)
  mutable dropped_down : int;  (** arrived at (or originated on) a crashed node *)
}

val create : Engine.t -> name:string -> addr:Addr.t -> t
val name : t -> string
val addr : t -> Addr.t
val engine : t -> Engine.t

(** [set_engine node e] re-homes the node's clock (used for cpu-cost
    scheduling) onto engine [e] — the partitioning seam. Single-threaded,
    pre-spawn only. *)
val set_engine : t -> Engine.t -> unit

val routing : t -> Routing.table
val counters : t -> counters

(** [set_processing_cost node seconds] models a serial packet-processing
    CPU: each received frame occupies the CPU for [seconds] before the hook
    runs; frames queue FIFO behind it. 0.0 (the default) processes
    instantly. This is how experiments model a gateway's per-packet cost. *)
val set_processing_cost : t -> float -> unit

(** [cpu_backlog node] is the number of frames waiting for CPU. *)
val cpu_backlog : t -> int

(** {1 Liveness (fault plane)} *)

(** [set_up node flag] — a down node drops every received or originated
    packet (counted as [dropped_down]); frames queued on its CPU at crash
    time die with it. Nodes start up. Bringing a node back up restores
    nothing by itself: a crash that loses state is modelled with
    {!reset_state}, and routing through/around the node is recomputed by
    {!Topology.compute_routes}, which treats down nodes as absent. *)
val set_up : t -> bool -> unit

val is_up : t -> bool

(** [reset_state node] models the state loss of a crash: clears the
    processing hook, all port handlers and defaults, promiscuous mode and
    the CPU cost model. Identity, interfaces, group memberships and
    counters survive; the routing table is owned by
    {!Topology.compute_routes}. *)
val reset_state : t -> unit

(** [set_multicast node registry] lets the node resolve group membership;
    without it multicast packets are filtered. *)
val set_multicast : t -> Multicast.t -> unit

val multicast : t -> Multicast.t option

(** {1 Interfaces} *)

(** [add_iface node ~name transmit] registers an outgoing transmitter and
    returns its index. [transmit] returns [false] when the medium dropped
    the frame. *)
val add_iface :
  t -> name:string -> (l2_dst:Addr.t option -> Packet.t -> bool) -> int

val iface_count : t -> int
val iface_name : t -> int -> string

(** [set_iface_monitor node ifindex f] registers [f] as the load monitor of
    interface [ifindex]; used by the PLAN-P [linkLoad] primitive. Returns
    current load in bits/s. *)
val set_iface_monitor : t -> int -> (unit -> float) -> unit

(** [iface_load_bps node ifindex] is 0.0 when no monitor is registered. *)
val iface_load_bps : t -> int -> float

(** [set_iface_capacity node ifindex bps] records the nominal capacity of
    an interface; read back by the PLAN-P [linkCapacity] primitive. Set
    automatically by {!Topology.connect}/{!Topology.attach}. *)
val set_iface_capacity : t -> int -> float -> unit

(** [iface_capacity_bps node ifindex] is 0.0 when unknown. *)
val iface_capacity_bps : t -> int -> float

(** {1 Frame input} *)

(** [receive node ~ifindex ~l2_dst packet] is the entry point called by the
    medium. Applies the link-level filter (unless promiscuous with a custom
    hook) and runs the hook. *)
val receive : t -> ifindex:int -> l2_dst:Addr.t option -> Packet.t -> unit

(** {1 Standard IP behaviour (callable from hooks)} *)

(** [default_process node ~ifindex ~l2_dst packet] is the standard IP-layer
    behaviour: link-level filter, then {!ip_input}. Custom hooks call this
    to fall back on packets they do not treat. *)
val default_process : t -> ifindex:int -> l2_dst:Addr.t option -> Packet.t -> unit

(** [ip_input node ~ifindex packet] delivers or forwards by destination. *)
val ip_input : t -> ifindex:int -> Packet.t -> unit

(** [deliver_local node packet] hands the packet to the application handler
    bound to its destination port. *)
val deliver_local : t -> Packet.t -> unit

(** [forward node ~ifindex packet] decrements TTL and routes; [ifindex] is
    the incoming interface (used to avoid multicast echo). *)
val forward : t -> ifindex:int -> Packet.t -> unit

(** [originate node packet] routes a locally generated packet (no TTL
    decrement). Multicast destinations replicate onto member-facing
    interfaces. *)
val originate : t -> Packet.t -> unit

(** [transmit node ~ifindex ~l2_dst packet] sends on a given interface. *)
val transmit : t -> ifindex:int -> l2_dst:Addr.t option -> Packet.t -> unit

(** {1 Hook & applications} *)

(** [set_hook node hook] replaces the processing behaviour; [clear_hook]
    restores the default. *)
val set_hook : t -> hook -> unit

val clear_hook : t -> unit
val has_hook : t -> bool

(** [set_invalidation_hook node f] registers a callback fired whenever
    the node's forwarding state is recomputed (route rebuilds, fault
    reconvergence); the hook owner uses it to flush per-node caches. *)
val set_invalidation_hook : t -> (unit -> unit) -> unit

(** [invalidate_forwarding node] fires the invalidation hook, if any. *)
val invalidate_forwarding : t -> unit
val set_promiscuous : t -> bool -> unit
val promiscuous : t -> bool

(** [on_udp node ~port f] binds an application receiver; replaces any
    previous binding on that port. *)
val on_udp : t -> port:int -> (t -> Packet.t -> unit) -> unit

val on_tcp : t -> port:int -> (t -> Packet.t -> unit) -> unit

(** [on_tcp_default node f] receives TCP packets whose destination port has
    no specific binding (e.g. responses arriving on ephemeral ports). *)
val on_tcp_default : t -> (t -> Packet.t -> unit) -> unit

(** [on_udp_default node f] — likewise for UDP. *)
val on_udp_default : t -> (t -> Packet.t -> unit) -> unit

(** [send_udp node ~dst ~src_port ~dst_port body] builds and originates.
    [chan_tag] tags the packet for a named PLAN-P channel; tagged traffic
    bypasses any installed [network] channel (see {!Packet.t}). *)
val send_udp :
  ?chan_tag:string ->
  t ->
  dst:Addr.t ->
  src_port:int ->
  dst_port:int ->
  Payload.t ->
  unit

val send_tcp :
  ?seq:int ->
  ?ack:int ->
  ?syn:bool ->
  ?fin:bool ->
  ?is_ack:bool ->
  t ->
  dst:Addr.t ->
  src_port:int ->
  dst_port:int ->
  Payload.t ->
  unit

(** [join_group node group] subscribes via the attached registry.
    @raise Invalid_argument if no registry is attached. *)
val join_group : t -> Addr.t -> unit

val leave_group : t -> Addr.t -> unit
