let data_tag = Char.code 'D'
let ack_tag = Char.code 'A'

module Sender = struct
  type t = {
    node : Node.t;
    dst : Addr.t;
    dst_port : int;
    src_port : int;
    chan_tag : string option;
    window : int;
    rto : float;  (* initial timeout; backoff resets here on progress *)
    max_rto : float;
    retry_budget : int option;  (* max consecutive no-progress timeouts *)
    on_abort : string -> unit;
    queue : Payload.t Queue.t;  (* not yet transmitted *)
    inflight : (int, Payload.t) Hashtbl.t;  (* seq -> message *)
    mutable next_seq : int;  (* next fresh sequence number *)
    mutable base : int;  (* lowest unacknowledged seq *)
    mutable retx : int;
    mutable cur_rto : float;  (* doubles per barren timeout, capped *)
    mutable strikes : int;  (* consecutive timeouts without progress *)
    mutable is_aborted : bool;
    mutable timer_armed : bool;
    mutable timeout_thunk : unit -> unit;  (* preallocated, set at connect *)
  }

  let encode_data seq payload =
    let writer = Payload.Writer.create () in
    Payload.Writer.u8 writer data_tag;
    Payload.Writer.u32 writer seq;
    Payload.Writer.raw writer payload;
    Payload.Writer.finish writer

  let transmit t seq payload =
    Node.send_udp ?chan_tag:t.chan_tag t.node ~dst:t.dst ~src_port:t.src_port
      ~dst_port:t.dst_port (encode_data seq payload)

  (* Move queued messages into the window and (re)arm the timer. *)
  let rec pump t =
    while Hashtbl.length t.inflight < t.window && not (Queue.is_empty t.queue) do
      let payload = Queue.pop t.queue in
      let seq = t.next_seq in
      t.next_seq <- seq + 1;
      Hashtbl.replace t.inflight seq payload;
      transmit t seq payload
    done;
    if (not t.timer_armed) && Hashtbl.length t.inflight > 0 then begin
      t.timer_armed <- true;
      (* One thunk per sender, allocated at connect — re-arming the RTO
         timer on every pump does not build a fresh closure. *)
      Engine.schedule_after (Node.engine t.node) ~delay:t.cur_rto t.timeout_thunk
    end

  and abort t reason =
    t.is_aborted <- true;
    Queue.clear t.queue;
    Hashtbl.reset t.inflight;
    t.on_abort reason

  (* Go-back-N-ish: retransmit everything still in flight, backing the
     timeout off exponentially (capped at [max_rto]) until an ACK makes
     progress.  A retry budget bounds consecutive barren timeouts; past
     it the stream gives up cleanly instead of retrying forever into a
     black hole. *)
  and on_timeout t =
    if (not t.is_aborted) && Hashtbl.length t.inflight > 0 then begin
      t.strikes <- t.strikes + 1;
      match t.retry_budget with
      | Some budget when t.strikes > budget ->
          abort t
            (Printf.sprintf "retry budget exhausted (%d timeouts at seq %d)"
               budget t.base)
      | Some _ | None ->
          t.cur_rto <- Float.min (t.cur_rto *. 2.0) t.max_rto;
          let pending =
            List.sort Int.compare
              (Hashtbl.fold (fun seq _ acc -> seq :: acc) t.inflight [])
          in
          List.iter
            (fun seq ->
              t.retx <- t.retx + 1;
              transmit t seq (Hashtbl.find t.inflight seq))
            pending;
          pump t
    end

  let on_ack t (packet : Packet.t) =
    let body = packet.Packet.body in
    if
      (not t.is_aborted)
      && Payload.length body = 5
      && Payload.get_u8 body 0 = ack_tag
    then begin
      let cumulative = Payload.get_u32 body 1 in
      (* [cumulative >= next_seq] acknowledges data never sent — a
         corrupted ACK; trusting it would hang the window forever. *)
      if cumulative >= t.base && cumulative < t.next_seq then begin
        for seq = t.base to cumulative do
          Hashtbl.remove t.inflight seq
        done;
        t.base <- cumulative + 1;
        t.cur_rto <- t.rto;
        t.strikes <- 0;
        pump t
      end
    end

  let connect ?(window = 8) ?(rto = 0.2) ?(max_rto = 5.0) ?retry_budget
      ?on_abort ?chan_tag node ~dst ~dst_port ~src_port () =
    if window <= 0 then invalid_arg "Reliable.Sender.connect: window";
    if rto <= 0.0 then invalid_arg "Reliable.Sender.connect: rto";
    if max_rto < rto then invalid_arg "Reliable.Sender.connect: max_rto < rto";
    (match retry_budget with
    | Some b when b <= 0 -> invalid_arg "Reliable.Sender.connect: retry_budget"
    | Some _ | None -> ());
    let t =
      {
        node;
        dst;
        dst_port;
        src_port;
        chan_tag;
        window;
        rto;
        max_rto;
        retry_budget;
        on_abort = (match on_abort with Some f -> f | None -> fun _ -> ());
        queue = Queue.create ();
        inflight = Hashtbl.create 16;
        next_seq = 0;
        base = 0;
        retx = 0;
        cur_rto = rto;
        strikes = 0;
        is_aborted = false;
        timer_armed = false;
        timeout_thunk = (fun () -> ());
      }
    in
    t.timeout_thunk <-
      (fun () ->
        t.timer_armed <- false;
        on_timeout t);
    Node.on_udp node ~port:src_port (fun _ packet -> on_ack t packet);
    t

  let send t payload =
    if not t.is_aborted then begin
      Queue.push payload t.queue;
      pump t
    end

  let unacked t = Hashtbl.length t.inflight + Queue.length t.queue
  let retransmissions t = t.retx
  let acked t = t.base - 1
  let aborted t = t.is_aborted
end

module Receiver = struct
  (* Per-sender reassembly state: every (source address, source port)
     pair is its own stream with its own sequence space. Without the
     demultiplexing, a second sender's fresh stream (starting at seq 0)
     would be classified as duplicates of an earlier sender's progress,
     cumulatively acked as received, and silently never delivered — any
     two controllers talking to one daemon port would deadlock the
     second one into a timeout. *)
  type stream = {
    buffered : (int, Payload.t) Hashtbl.t;  (* out-of-order *)
    mutable expected : int;  (* next in-order seq *)
  }

  type t = {
    node : Node.t;
    port : int;
    chan_tag : string option;
    window : int;
    on_message : Payload.t -> unit;
    streams : (Addr.t * int, stream) Hashtbl.t;
    mutable delivered_count : int;
    mutable dup_count : int;
  }

  let stream_of t (packet : Packet.t) udp_src =
    let key = (packet.Packet.src, udp_src) in
    match Hashtbl.find_opt t.streams key with
    | Some stream -> stream
    | None ->
        let stream = { buffered = Hashtbl.create 16; expected = 0 } in
        Hashtbl.replace t.streams key stream;
        stream

  let send_ack t stream (packet : Packet.t) udp_src =
    let writer = Payload.Writer.create () in
    Payload.Writer.u8 writer ack_tag;
    Payload.Writer.u32 writer (stream.expected - 1);
    Node.send_udp ?chan_tag:t.chan_tag t.node ~dst:packet.Packet.src
      ~src_port:t.port ~dst_port:udp_src
      (Payload.Writer.finish writer)

  let on_data t (packet : Packet.t) =
    let body = packet.Packet.body in
    match packet.Packet.l4 with
    | Packet.Udp { Packet.udp_src; _ }
      when Payload.length body >= 5 && Payload.get_u8 body 0 = data_tag ->
        let stream = stream_of t packet udp_src in
        let seq = Payload.get_u32 body 1 in
        (* Buffered out-of-order messages outlive the frame they arrived
           in: compact so they stop retaining the framed packet body. *)
        let payload =
          Payload.compact
            (Payload.sub body ~pos:5 ~len:(Payload.length body - 5))
        in
        if seq < stream.expected || Hashtbl.mem stream.buffered seq then
          t.dup_count <- t.dup_count + 1
        else if seq < stream.expected + t.window then begin
          Hashtbl.replace stream.buffered seq payload;
          while Hashtbl.mem stream.buffered stream.expected do
            let message = Hashtbl.find stream.buffered stream.expected in
            Hashtbl.remove stream.buffered stream.expected;
            stream.expected <- stream.expected + 1;
            t.delivered_count <- t.delivered_count + 1;
            t.on_message message
          done
        end;
        (* Ack whatever is in order so far (also re-acks duplicates, which
           is what unblocks a sender whose acks were lost). *)
        send_ack t stream packet udp_src
    | _ -> ()

  let listen ?(window = 64) ?chan_tag node ~port ~on_message () =
    let t =
      {
        node;
        port;
        chan_tag;
        window;
        on_message;
        streams = Hashtbl.create 4;
        delivered_count = 0;
        dup_count = 0;
      }
    in
    Node.on_udp node ~port (fun _ packet -> on_data t packet);
    t

  let delivered t = t.delivered_count
  let duplicates t = t.dup_count
end
