(** Network construction: nodes, links, segments, automatic routing.

    A topology owns the simulation engine and the multicast registry.
    [compute_routes] runs breadth-first shortest paths over the node graph
    (links are edges; segments connect all attached stations pairwise) and
    installs host routes on every node. *)

type t

val create : unit -> t
val engine : t -> Engine.t
val mcast : t -> Multicast.t

(** [add_node topo ~name ~addr] creates a node attached to this topology.
    @raise Invalid_argument on duplicate name or address. *)
val add_node : t -> name:string -> addr:Addr.t -> Node.t

(** [add_host topo name addr_string] is [add_node] with dotted-quad input. *)
val add_host : t -> string -> string -> Node.t

(** [connect topo a b] joins two nodes with a point-to-point link.
    Bandwidth defaults to 10 Mb/s, latency to 1 ms. *)
val connect :
  ?name:string ->
  ?bandwidth_bps:float ->
  ?latency:float ->
  ?queue_capacity:int ->
  t ->
  Node.t ->
  Node.t ->
  Link.t

(** [segment topo ()] creates a shared segment (defaults as for links). *)
val segment :
  ?name:string ->
  ?bandwidth_bps:float ->
  ?latency:float ->
  ?queue_capacity:int ->
  t ->
  unit ->
  Segment.t

(** [attach topo seg node] puts [node] on [seg]; returns the new interface
    index on [node]. *)
val attach : t -> Segment.t -> Node.t -> int

(** [compute_routes topo] (re)fills every node's routing table from the
    topology {e as it currently stands}: edges over a downed {!Link} and
    edges into a node that {!Node.is_up} denies are ignored, and a down
    node's own table is cleared. Call after the topology is fully built,
    and again after any liveness change to model routing reconvergence
    (the fault plane's [reroute] event does exactly this). *)
val compute_routes : t -> unit

val nodes : t -> Node.t list

(** [find topo name] looks a node up by name. @raise Not_found otherwise. *)
val find : t -> string -> Node.t

val find_by_addr : t -> Addr.t -> Node.t option

(** [find_link topo name] finds a link created by [connect ~name]. When
    several links share a name, the most recently created wins. *)
val find_link : t -> string -> Link.t option

(** [find_segment topo name] — likewise for segments. *)
val find_segment : t -> string -> Segment.t option

(** [run topo] / [run_until topo ~stop] drive the engine. *)
val run : ?limit:int -> t -> unit

val run_until : ?limit:int -> t -> stop:float -> unit

(** {2 Introspection}

    Read-only structure accessors for the topology partitioner
    ({!Partition}). *)

(** [node_count topo] is the number of nodes added so far. *)
val node_count : t -> int

(** [node_index topo node] is the node's dense index in [0, node_count).
    Indices follow creation order.
    @raise Invalid_argument when [node] belongs to another topology. *)
val node_index : t -> Node.t -> int

(** [link_endpoints topo] lists every link created by {!connect} with its
    endpoints, in creation order; the first node is the link's [A] side. *)
val link_endpoints : t -> (Link.t * Node.t * Node.t) list

(** [segment_stations topo] lists every segment created by {!segment} with
    its attached station nodes, both in creation order. *)
val segment_stations : t -> (Segment.t * Node.t list) list
