(** Per-node routing tables.

    Tables hold host routes (exact destination address) plus an optional
    default route. Topologies are small, so host routes computed by
    {!Topology.compute_routes} cover every destination; the default route
    supports gateway-style setups. *)

type route = {
  ifindex : int;  (** outgoing interface on the owning node *)
  next_hop : Addr.t option;
      (** link-level next hop for shared segments; [None] means "the
          destination itself is on this medium" *)
}

type table

val create : unit -> table

(** [add_host table dst route] installs/replaces the host route for [dst]. *)
val add_host : table -> Addr.t -> route -> unit

val remove_host : table -> Addr.t -> unit
val set_default : table -> route option -> unit

(** [lookup table dst] prefers a host route, then the default route. *)
val lookup : table -> Addr.t -> route option

exception No_route

(** [find table dst] is [lookup] without the option allocation, for the
    per-packet forwarding path.
    @raise No_route when neither a host nor a default route matches. *)
val find : table -> Addr.t -> route

val clear : table -> unit

(** [clear_hosts table] drops every host route but keeps the default:
    {!Topology.compute_routes} owns the host routes, while default routes
    are configured by the application (virtual addresses, gateway
    setups) and must survive reconvergence. *)
val clear_hosts : table -> unit

(** [entries table] lists host routes in unspecified order. *)
val entries : table -> (Addr.t * route) list

val pp : Format.formatter -> table -> unit
