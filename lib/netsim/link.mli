(** Point-to-point full-duplex links with finite bandwidth, propagation
    latency and a drop-tail queue per direction.

    The queue is modelled analytically: the backlog of a direction at time
    [t] is [(busy_until - t) * bandwidth / 8] bytes; a packet whose wire size
    would push the backlog past [queue_capacity] is dropped. This reproduces
    drop-tail behaviour exactly for FIFO service without materializing the
    queue. *)

type t
type endpoint = A | B

(** [create engine ~bandwidth_bps ~latency ~queue_capacity ()] builds a link.
    [queue_capacity] is in bytes (default 64 KiB). *)
val create :
  ?name:string ->
  ?queue_capacity:int ->
  Engine.t ->
  bandwidth_bps:float ->
  latency:float ->
  unit ->
  t

val name : t -> string
val bandwidth_bps : t -> float

(** [set_bandwidth_bps link bw] rescales the link's service rate (fault
    injection: congestion bursts). Takes effect for subsequent sends; the
    analytic backlog is reinterpreted at the new rate.
    @raise Invalid_argument when [bw <= 0]. *)
val set_bandwidth_bps : t -> float -> unit

val queue_capacity : t -> int

(** [set_queue_capacity link cap] resizes the drop-tail queue (bytes).
    @raise Invalid_argument when negative. *)
val set_queue_capacity : t -> int -> unit

(** [set_up link flag] — a downed link drops everything offered to it,
    {e including} packets already in flight at the instant of the cut,
    which are counted against the transmitting direction's {!drops}
    (fault injection: cable pull). Links start up. *)
val set_up : t -> bool -> unit

val is_up : t -> bool

(** [set_impairment link imp] attaches (or with [None] detaches) a
    loss/corruption model consulted on every send while attached. The
    default is [None]: an unimpaired link pays one branch per send. *)
val set_impairment : t -> Impair.t option -> unit

val impairment : t -> Impair.t option

(** [set_receiver link endpoint f] registers the delivery callback for
    packets arriving *at* [endpoint]. *)
val set_receiver : t -> endpoint -> (Packet.t -> unit) -> unit

(** [send link ~from packet] transmits [packet] from [from] toward the other
    endpoint. Returns [false] if the packet was dropped (queue full). *)
val send : t -> from:endpoint -> Packet.t -> bool

(** [backlog_bytes link endpoint] is the current queue depth of the
    direction transmitting *from* [endpoint]. *)
val backlog_bytes : t -> endpoint -> int

(** [stat link endpoint] is the carried-traffic statistic of the direction
    transmitting *from* [endpoint]. *)
val stat : t -> endpoint -> Flowstat.t

(** [drops link endpoint] counts packets dropped in the direction
    transmitting *from* [endpoint]. *)
val drops : t -> endpoint -> int

val other : endpoint -> endpoint

(** [latency link] is the propagation latency in seconds — the lookahead
    contribution of this link when it is cut between partitions. *)
val latency : t -> float

(** {2 Partitioning seams}

    Used by the parallel driver ({!Par_engine}) while re-homing a built
    topology onto per-domain engines. All three must only be called
    single-threaded, before any domain is spawned (or after all have been
    joined). *)

(** [set_engines link ~a ~b] re-homes the link: endpoint [A]'s sends are
    timed by (and its inbound delivery ring popped by) engine [a], and
    symmetrically for [B]. [create] initially homes both endpoints on the
    creation engine. *)
val set_engines : t -> a:Engine.t -> b:Engine.t -> unit

(** [set_conduit link ~from target] reroutes the direction transmitting
    from [from]: [Some push] sends each transmitted packet to
    [push ~at packet] instead of the delivery ring (the parallel driver's
    cross-domain conduit); [None] restores direct ring delivery. *)
val set_conduit :
  t -> from:endpoint -> (at:float -> Packet.t -> unit) option -> unit

(** [conduit_deliver link ~from ~at packet] pushes a packet that travelled
    the conduit of the [from]-transmitting direction into that direction's
    delivery ring on the receiving engine. Called by the conduit drain on
    the receiving domain; arrivals must stay monotone per direction, which
    holds because conduits preserve send order. *)
val conduit_deliver : t -> from:endpoint -> at:float -> Packet.t -> unit
