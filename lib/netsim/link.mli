(** Point-to-point full-duplex links with finite bandwidth, propagation
    latency and a drop-tail queue per direction.

    The queue is modelled analytically: the backlog of a direction at time
    [t] is [(busy_until - t) * bandwidth / 8] bytes; a packet whose wire size
    would push the backlog past [queue_capacity] is dropped. This reproduces
    drop-tail behaviour exactly for FIFO service without materializing the
    queue. *)

type t
type endpoint = A | B

(** [create engine ~bandwidth_bps ~latency ~queue_capacity ()] builds a link.
    [queue_capacity] is in bytes (default 64 KiB). *)
val create :
  ?name:string ->
  ?queue_capacity:int ->
  Engine.t ->
  bandwidth_bps:float ->
  latency:float ->
  unit ->
  t

val name : t -> string
val bandwidth_bps : t -> float

(** [set_bandwidth_bps link bw] rescales the link's service rate (fault
    injection: congestion bursts). Takes effect for subsequent sends; the
    analytic backlog is reinterpreted at the new rate.
    @raise Invalid_argument when [bw <= 0]. *)
val set_bandwidth_bps : t -> float -> unit

val queue_capacity : t -> int

(** [set_queue_capacity link cap] resizes the drop-tail queue (bytes).
    @raise Invalid_argument when negative. *)
val set_queue_capacity : t -> int -> unit

(** [set_up link flag] — a downed link drops everything offered to it,
    {e including} packets already in flight at the instant of the cut,
    which are counted against the transmitting direction's {!drops}
    (fault injection: cable pull). Links start up. *)
val set_up : t -> bool -> unit

val is_up : t -> bool

(** [set_impairment link imp] attaches (or with [None] detaches) a
    loss/corruption model consulted on every send while attached. The
    default is [None]: an unimpaired link pays one branch per send. *)
val set_impairment : t -> Impair.t option -> unit

val impairment : t -> Impair.t option

(** [set_receiver link endpoint f] registers the delivery callback for
    packets arriving *at* [endpoint]. *)
val set_receiver : t -> endpoint -> (Packet.t -> unit) -> unit

(** [send link ~from packet] transmits [packet] from [from] toward the other
    endpoint. Returns [false] if the packet was dropped (queue full). *)
val send : t -> from:endpoint -> Packet.t -> bool

(** [backlog_bytes link endpoint] is the current queue depth of the
    direction transmitting *from* [endpoint]. *)
val backlog_bytes : t -> endpoint -> int

(** [stat link endpoint] is the carried-traffic statistic of the direction
    transmitting *from* [endpoint]. *)
val stat : t -> endpoint -> Flowstat.t

(** [drops link endpoint] counts packets dropped in the direction
    transmitting *from* [endpoint]. *)
val drops : t -> endpoint -> int

val other : endpoint -> endpoint
