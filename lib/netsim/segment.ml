type station = int

(* Like {!Link}, per-frame metrics are batched into raw fields flushed by
   an [Engine.on_flush] hook, and in-flight frames live in a preallocated
   broadcast ring instead of per-frame closures.  [fl] keeps the two hot
   mutable floats unboxed: 0 = busy_until, 1 = backlog sum since flush. *)
type t = {
  seg_uid : int;
  seg_name : string;
  mutable engine : Engine.t;
  mutable bandwidth : float;
  latency : float;
  mutable queue_capacity : int;
  mutable impair : Impair.t option; (* None = fault plane idle, zero cost *)
  fl : float array;
  bcast : Engine.broadcast;
  mutable stations : (l2_dst:Addr.t option -> Packet.t -> unit) array;
  seg_stat : Flowstat.t;
  mutable tap : (at:float -> l2_dst:Addr.t option -> Packet.t -> unit) option;
  mutable r_frames : int;
  mutable r_bytes : int;
  mutable r_drops : int;
  mutable f_frames : int;
  mutable f_bytes : int;
  mutable f_drops : int;
  h_counts : int array;
  m_frames : Obs.Registry.counter;
  m_bytes : Obs.Registry.counter;
  m_drops : Obs.Registry.counter;
  m_backlog : Obs.Registry.histogram;
}

let uid_counter = ref 0

let flush segment =
  let df = segment.r_frames - segment.f_frames in
  if df > 0 then begin
    Obs.Registry.add segment.m_frames df;
    segment.f_frames <- segment.r_frames;
    Obs.Registry.observe_bulk segment.m_backlog ~counts:segment.h_counts
      ~sum:segment.fl.(1);
    Array.fill segment.h_counts 0 (Array.length segment.h_counts) 0;
    segment.fl.(1) <- 0.0
  end;
  let db = segment.r_bytes - segment.f_bytes in
  if db > 0 then begin
    Obs.Registry.add segment.m_bytes db;
    segment.f_bytes <- segment.r_bytes
  end;
  let dd = segment.r_drops - segment.f_drops in
  if dd > 0 then begin
    Obs.Registry.add segment.m_drops dd;
    segment.f_drops <- segment.r_drops
  end

let create ?(name = "segment") ?(queue_capacity = 131072) engine ~bandwidth_bps
    ~latency () =
  if bandwidth_bps <= 0.0 then
    invalid_arg "Segment.create: bandwidth must be positive";
  if latency < 0.0 then invalid_arg "Segment.create: negative latency";
  incr uid_counter;
  let labels = [ ("segment", name) ] in
  let segment =
    {
      seg_uid = !uid_counter;
      seg_name = name;
      engine;
      bandwidth = bandwidth_bps;
      latency;
      queue_capacity;
      impair = None;
      fl = [| 0.0; 0.0 |];
      bcast = Engine.broadcast ();
      stations = [||];
      seg_stat = Flowstat.create ();
      tap = None;
      r_frames = 0;
      r_bytes = 0;
      r_drops = 0;
      f_frames = 0;
      f_bytes = 0;
      f_drops = 0;
      h_counts = Array.make Obs.Registry.histogram_slots 0;
      m_frames =
        Obs.Registry.counter ~labels ~help:"frames carried"
          "netsim.segment.frames";
      m_bytes =
        Obs.Registry.counter ~labels ~help:"wire bytes carried"
          "netsim.segment.bytes";
      m_drops =
        Obs.Registry.counter ~labels ~help:"frames dropped (full queue)"
          "netsim.segment.drops";
      m_backlog =
        Obs.Registry.histogram ~labels
          ~help:"queue occupancy (bytes) sampled at each send"
          "netsim.segment.backlog_bytes";
    }
  in
  Engine.set_broadcast_handler segment.bcast (fun ~l2_dst ~from packet ->
      Array.iteri
        (fun station deliver -> if station <> from then deliver ~l2_dst packet)
        segment.stations);
  Engine.on_flush engine (fun () -> flush segment);
  segment

let name segment = segment.seg_name
let uid segment = segment.seg_uid
let bandwidth_bps segment = segment.bandwidth

let set_bandwidth_bps segment bw =
  if bw <= 0.0 then
    invalid_arg "Segment.set_bandwidth_bps: bandwidth must be positive";
  segment.bandwidth <- bw

let queue_capacity segment = segment.queue_capacity

let set_queue_capacity segment cap =
  if cap < 0 then invalid_arg "Segment.set_queue_capacity: negative capacity";
  segment.queue_capacity <- cap

let set_impairment segment impair = segment.impair <- impair
let impairment segment = segment.impair

let attach segment f =
  let station = Array.length segment.stations in
  segment.stations <- Array.append segment.stations [| f |];
  station

let backlog_bytes segment =
  let now = Engine.now segment.engine in
  let busy = Array.unsafe_get segment.fl 0 in
  if busy <= now then 0
  else int_of_float ((busy -. now) *. segment.bandwidth /. 8.0)

let[@inline] transmit segment ~now ~backlog ~from ~l2_dst packet =
  let size = Packet.wire_size packet in
  let busy = Array.unsafe_get segment.fl 0 in
  let start = if now > busy then now else busy in
  let finish = start +. (float_of_int (size * 8) /. segment.bandwidth) in
  Array.unsafe_set segment.fl 0 finish;
  Flowstat.record segment.seg_stat ~now:finish size;
  segment.r_frames <- segment.r_frames + 1;
  segment.r_bytes <- segment.r_bytes + size;
  let slot = Obs.Registry.bucket_of_int backlog in
  Array.unsafe_set segment.h_counts slot
    (Array.unsafe_get segment.h_counts slot + 1);
  Array.unsafe_set segment.fl 1
    (Array.unsafe_get segment.fl 1 +. float_of_int backlog);
  (match segment.tap with
  | Some tap -> tap ~at:finish ~l2_dst packet
  | None -> ());
  Engine.push_broadcast segment.engine segment.bcast
    ~at:(finish +. segment.latency) ~l2_dst ~from packet

let send segment ~from ~l2_dst packet =
  if from < 0 || from >= Array.length segment.stations then
    invalid_arg "Segment.send: unknown station";
  let now = Engine.now segment.engine in
  let size = Packet.wire_size packet in
  let backlog = backlog_bytes segment in
  if backlog + size > segment.queue_capacity then begin
    segment.r_drops <- segment.r_drops + 1;
    false
  end
  else
    match segment.impair with
    | None ->
        transmit segment ~now ~backlog ~from ~l2_dst packet;
        true
    | Some impair -> (
        match Impair.apply impair packet with
        | None ->
            (* Lost on the wire: the sender saw a successful transmit. *)
            true
        | Some packet ->
            transmit segment ~now ~backlog ~from ~l2_dst packet;
            true)

let stat segment = segment.seg_stat
let set_tap segment f = segment.tap <- Some f

let load_bps segment =
  Flowstat.rate_bps segment.seg_stat ~now:(Engine.now segment.engine)

let drops segment = segment.r_drops
let station_count segment = Array.length segment.stations

(* Partitioning seam: a segment is an uncuttable broadcast medium, so the
   partitioner keeps all its stations in one partition and re-homes the
   whole segment there.  Single-threaded, pre-spawn only.  The metrics
   flush hook stays registered on the creation engine; the parallel driver
   runs those hooks after the domains have joined. *)
let set_engine segment engine = segment.engine <- engine
