type station = int

type t = {
  seg_uid : int;
  seg_name : string;
  engine : Engine.t;
  bandwidth : float;
  latency : float;
  queue_capacity : int;
  mutable busy_until : float;
  mutable stations : (l2_dst:Addr.t option -> Packet.t -> unit) array;
  seg_stat : Flowstat.t;
  mutable dropped : int;
  mutable tap : (at:float -> l2_dst:Addr.t option -> Packet.t -> unit) option;
  m_frames : Obs.Registry.counter;
  m_bytes : Obs.Registry.counter;
  m_drops : Obs.Registry.counter;
  m_backlog : Obs.Registry.histogram;
}

let uid_counter = ref 0

let create ?(name = "segment") ?(queue_capacity = 131072) engine ~bandwidth_bps
    ~latency () =
  if bandwidth_bps <= 0.0 then
    invalid_arg "Segment.create: bandwidth must be positive";
  if latency < 0.0 then invalid_arg "Segment.create: negative latency";
  incr uid_counter;
  let labels = [ ("segment", name) ] in
  {
    seg_uid = !uid_counter;
    seg_name = name;
    engine;
    bandwidth = bandwidth_bps;
    latency;
    queue_capacity;
    busy_until = 0.0;
    stations = [||];
    seg_stat = Flowstat.create ();
    dropped = 0;
    tap = None;
    m_frames =
      Obs.Registry.counter ~labels ~help:"frames carried"
        "netsim.segment.frames";
    m_bytes =
      Obs.Registry.counter ~labels ~help:"wire bytes carried"
        "netsim.segment.bytes";
    m_drops =
      Obs.Registry.counter ~labels ~help:"frames dropped (full queue)"
        "netsim.segment.drops";
    m_backlog =
      Obs.Registry.histogram ~labels
        ~help:"queue occupancy (bytes) sampled at each send"
        "netsim.segment.backlog_bytes";
  }

let name segment = segment.seg_name
let uid segment = segment.seg_uid
let bandwidth_bps segment = segment.bandwidth

let attach segment f =
  let station = Array.length segment.stations in
  segment.stations <- Array.append segment.stations [| f |];
  station

let backlog_bytes segment =
  let now = Engine.now segment.engine in
  if segment.busy_until <= now then 0
  else int_of_float ((segment.busy_until -. now) *. segment.bandwidth /. 8.0)

let send segment ~from ~l2_dst packet =
  if from < 0 || from >= Array.length segment.stations then
    invalid_arg "Segment.send: unknown station";
  let now = Engine.now segment.engine in
  let size = Packet.wire_size packet in
  let backlog = backlog_bytes segment in
  if backlog + size > segment.queue_capacity then begin
    segment.dropped <- segment.dropped + 1;
    Obs.Registry.incr segment.m_drops;
    false
  end
  else begin
    let start = Float.max now segment.busy_until in
    let finish = start +. (float_of_int (size * 8) /. segment.bandwidth) in
    segment.busy_until <- finish;
    Flowstat.record segment.seg_stat ~now:finish size;
    Obs.Registry.incr segment.m_frames;
    Obs.Registry.add segment.m_bytes size;
    Obs.Registry.observe segment.m_backlog (float_of_int backlog);
    (match segment.tap with
    | Some tap -> tap ~at:finish ~l2_dst packet
    | None -> ());
    Engine.schedule segment.engine ~at:(finish +. segment.latency) (fun () ->
        Array.iteri
          (fun station deliver ->
            if station <> from then deliver ~l2_dst packet)
          segment.stations);
    true
  end

let stat segment = segment.seg_stat
let set_tap segment f = segment.tap <- Some f

let load_bps segment =
  Flowstat.rate_bps segment.seg_stat ~now:(Engine.now segment.engine)

let drops segment = segment.dropped
let station_count segment = Array.length segment.stations
