type 'a entry = { time : float; seq : int; value : 'a }

type 'a t = {
  mutable store : 'a entry option array;
  mutable len : int;
  mutable next_seq : int;
}

let create () = { store = Array.make 16 None; len = 0; next_seq = 0 }

let entry_lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let get heap i =
  match heap.store.(i) with
  | Some entry -> entry
  | None -> invalid_arg "Heap.get: hole in heap"

let grow heap =
  let capacity = Array.length heap.store in
  if heap.len = capacity then begin
    let store = Array.make (2 * capacity) None in
    Array.blit heap.store 0 store 0 capacity;
    heap.store <- store
  end

let rec sift_up heap i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_lt (get heap i) (get heap parent) then begin
      let tmp = heap.store.(i) in
      heap.store.(i) <- heap.store.(parent);
      heap.store.(parent) <- tmp;
      sift_up heap parent
    end
  end

let rec sift_down heap i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < heap.len && entry_lt (get heap left) (get heap !smallest) then
    smallest := left;
  if right < heap.len && entry_lt (get heap right) (get heap !smallest) then
    smallest := right;
  if !smallest <> i then begin
    let tmp = heap.store.(i) in
    heap.store.(i) <- heap.store.(!smallest);
    heap.store.(!smallest) <- tmp;
    sift_down heap !smallest
  end

let add heap ~time value =
  grow heap;
  let seq = heap.next_seq in
  heap.next_seq <- seq + 1;
  heap.store.(heap.len) <- Some { time; seq; value };
  heap.len <- heap.len + 1;
  sift_up heap (heap.len - 1)

let pop heap =
  if heap.len = 0 then None
  else begin
    let root = get heap 0 in
    heap.len <- heap.len - 1;
    heap.store.(0) <- heap.store.(heap.len);
    heap.store.(heap.len) <- None;
    if heap.len > 0 then sift_down heap 0;
    Some (root.time, root.value)
  end

let peek_time heap = if heap.len = 0 then None else Some (get heap 0).time
let size heap = heap.len
let is_empty heap = heap.len = 0

let clear heap =
  (* Slots at [len..] are always [None] ([pop] clears as it shrinks), so
     only the live prefix needs wiping. *)
  Array.fill heap.store 0 heap.len None;
  heap.len <- 0
