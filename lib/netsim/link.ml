type endpoint = A | B

(* Where a direction's transmitted packets go: straight into its delivery
   ring ([Direct], the only case on an unpartitioned topology), or into a
   cross-domain conduit installed by the parallel driver when the link is
   cut between partitions — the receiving domain drains the conduit into
   the ring at the next window barrier ({!conduit_deliver}). *)
type out_target = Direct | Conduit of (at:float -> Packet.t -> unit)

(* Per-packet metrics are batched into raw fields and flushed to the
   registry by an [Engine.on_flush] hook (so exported counters are exact
   whenever the engine is idle).  [fl] is a float array so the hot stores
   to [busy_until] and the backlog-histogram sum never box.

   A direction carries two engines: [d_tx_eng] (the transmitting
   endpoint's engine, whose clock times sends) and [d_ring_eng] (the
   receiving endpoint's engine, which pops the delivery ring).  They are
   the same engine except on a topology sharded across domains. *)
type direction = {
  fl : float array; (* 0 = busy_until, 1 = backlog sum since last flush *)
  delivery : Engine.delivery;
  mutable d_tx_eng : Engine.t;
  mutable d_ring_eng : Engine.t;
  mutable d_out : out_target;
  dir_stat : Flowstat.t;
  mutable r_packets : int; (* raw totals since creation *)
  mutable r_bytes : int;
  mutable r_drops : int;
  mutable f_packets : int; (* high-water marks already flushed *)
  mutable f_bytes : int;
  mutable f_drops : int;
  h_counts : int array; (* backlog histogram buckets since last flush *)
  m_packets : Obs.Registry.counter;
  m_bytes : Obs.Registry.counter;
  m_drops : Obs.Registry.counter;
  m_backlog : Obs.Registry.histogram;
}

type t = {
  link_name : string;
  mutable bandwidth : float;
  latency : float;
  mutable queue_capacity : int;
  a_to_b : direction;  (* transmits from A, delivers at B *)
  b_to_a : direction;
  mutable up : bool;
  mutable impair : Impair.t option; (* None = fault plane idle, zero cost *)
}

let other = function A -> B | B -> A

let make_direction ~link_name ~dir ~engine =
  let labels = [ ("link", link_name); ("dir", dir) ] in
  {
    fl = [| 0.0; 0.0 |];
    delivery = Engine.delivery ();
    d_tx_eng = engine;
    d_ring_eng = engine;
    d_out = Direct;
    dir_stat = Flowstat.create ();
    r_packets = 0;
    r_bytes = 0;
    r_drops = 0;
    f_packets = 0;
    f_bytes = 0;
    f_drops = 0;
    h_counts = Array.make Obs.Registry.histogram_slots 0;
    m_packets =
      Obs.Registry.counter ~labels ~help:"packets transmitted"
        "netsim.link.tx_packets";
    m_bytes =
      Obs.Registry.counter ~labels ~help:"wire bytes transmitted"
        "netsim.link.tx_bytes";
    m_drops =
      Obs.Registry.counter ~labels ~help:"packets dropped (down or full queue)"
        "netsim.link.drops";
    m_backlog =
      Obs.Registry.histogram ~labels
        ~help:"queue occupancy (bytes) sampled at each send"
        "netsim.link.backlog_bytes";
  }

(* Push batched counters to the registry.  The flushed marks advance even
   when the registry is disabled, mirroring the old per-packet dispatch
   (increments made while disabled were dropped, not deferred). *)
let flush_direction dir =
  let dp = dir.r_packets - dir.f_packets in
  if dp > 0 then begin
    Obs.Registry.add dir.m_packets dp;
    dir.f_packets <- dir.r_packets;
    (* One histogram observation per transmitted packet. *)
    Obs.Registry.observe_bulk dir.m_backlog ~counts:dir.h_counts
      ~sum:dir.fl.(1);
    Array.fill dir.h_counts 0 (Array.length dir.h_counts) 0;
    dir.fl.(1) <- 0.0
  end;
  let db = dir.r_bytes - dir.f_bytes in
  if db > 0 then begin
    Obs.Registry.add dir.m_bytes db;
    dir.f_bytes <- dir.r_bytes
  end;
  let dd = dir.r_drops - dir.f_drops in
  if dd > 0 then begin
    Obs.Registry.add dir.m_drops dd;
    dir.f_drops <- dir.r_drops
  end

let create ?(name = "link") ?(queue_capacity = 65536) engine ~bandwidth_bps
    ~latency () =
  if bandwidth_bps <= 0.0 then invalid_arg "Link.create: bandwidth must be positive";
  if latency < 0.0 then invalid_arg "Link.create: negative latency";
  let link =
    {
      link_name = name;
      bandwidth = bandwidth_bps;
      latency;
      queue_capacity;
      a_to_b = make_direction ~link_name:name ~dir:"a_to_b" ~engine;
      b_to_a = make_direction ~link_name:name ~dir:"b_to_a" ~engine;
      up = true;
      impair = None;
    }
  in
  Engine.on_flush engine (fun () ->
      flush_direction link.a_to_b;
      flush_direction link.b_to_a);
  link

let name link = link.link_name
let bandwidth_bps link = link.bandwidth

let set_bandwidth_bps link bw =
  if bw <= 0.0 then invalid_arg "Link.set_bandwidth_bps: bandwidth must be positive";
  link.bandwidth <- bw

let queue_capacity link = link.queue_capacity

let set_queue_capacity link cap =
  if cap < 0 then invalid_arg "Link.set_queue_capacity: negative capacity";
  link.queue_capacity <- cap

let set_up link flag =
  if link.up && not flag then begin
    (* A cable pull loses the packets already on the wire: drop both
       directions' in-flight rings and charge each loss to the direction
       that transmitted it. *)
    let drop dir =
      (* The ring lives on the receiving endpoint's engine. *)
      let n = Engine.clear_delivery dir.d_ring_eng dir.delivery in
      if n > 0 then dir.r_drops <- dir.r_drops + n
    in
    drop link.a_to_b;
    drop link.b_to_a
  end;
  link.up <- flag

let is_up link = link.up
let set_impairment link impair = link.impair <- impair
let impairment link = link.impair

(* The direction that transmits *from* the given endpoint. *)
let[@inline] tx_direction link = function
  | A -> link.a_to_b
  | B -> link.b_to_a

let set_receiver link endpoint f =
  (* Packets arriving at [endpoint] travel on the direction transmitting
     from the other end. *)
  Engine.set_delivery_receiver (tx_direction link (other endpoint)).delivery f

let[@inline] backlog_of direction ~now ~bandwidth =
  let busy = Array.unsafe_get direction.fl 0 in
  if busy <= now then 0 else int_of_float ((busy -. now) *. bandwidth /. 8.0)

let[@inline] transmit link dir ~now ~backlog packet =
  let size = Packet.wire_size packet in
  let busy = Array.unsafe_get dir.fl 0 in
  let start = if now > busy then now else busy in
  let finish = start +. (float_of_int (size * 8) /. link.bandwidth) in
  Array.unsafe_set dir.fl 0 finish;
  Flowstat.record dir.dir_stat ~now:finish size;
  dir.r_packets <- dir.r_packets + 1;
  dir.r_bytes <- dir.r_bytes + size;
  let slot = Obs.Registry.bucket_of_int backlog in
  Array.unsafe_set dir.h_counts slot (Array.unsafe_get dir.h_counts slot + 1);
  Array.unsafe_set dir.fl 1
    (Array.unsafe_get dir.fl 1 +. float_of_int backlog);
  let at = finish +. link.latency in
  match dir.d_out with
  | Direct -> Engine.push_delivery dir.d_ring_eng dir.delivery ~at packet
  | Conduit push -> push ~at packet

let send link ~from packet =
  let dir = tx_direction link from in
  let now = Engine.now dir.d_tx_eng in
  let size = Packet.wire_size packet in
  let backlog = backlog_of dir ~now ~bandwidth:link.bandwidth in
  if (not link.up) || backlog + size > link.queue_capacity then begin
    dir.r_drops <- dir.r_drops + 1;
    false
  end
  else
    match link.impair with
    | None ->
        transmit link dir ~now ~backlog packet;
        true
    | Some impair -> (
        match Impair.apply impair packet with
        | None ->
            (* Lost on the wire: the sender saw a successful transmit. *)
            true
        | Some packet ->
            transmit link dir ~now ~backlog packet;
            true)

let backlog_bytes link endpoint =
  let dir = tx_direction link endpoint in
  backlog_of dir ~now:(Engine.now dir.d_tx_eng) ~bandwidth:link.bandwidth

let stat link endpoint = (tx_direction link endpoint).dir_stat
let drops link endpoint = (tx_direction link endpoint).r_drops
let latency link = link.latency

(* Partitioning seams — called single-threaded by the parallel driver
   before any domain is spawned. *)

let set_engines link ~a ~b =
  (* Direction a_to_b transmits at A's clock and delivers into B's ring. *)
  link.a_to_b.d_tx_eng <- a;
  link.a_to_b.d_ring_eng <- b;
  link.b_to_a.d_tx_eng <- b;
  link.b_to_a.d_ring_eng <- a

let set_conduit link ~from target =
  let dir = tx_direction link from in
  dir.d_out <- (match target with None -> Direct | Some push -> Conduit push)

let conduit_deliver link ~from ~at packet =
  let dir = tx_direction link from in
  Engine.push_delivery dir.d_ring_eng dir.delivery ~at packet
