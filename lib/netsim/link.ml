type endpoint = A | B

type direction = {
  mutable busy_until : float;
  mutable receiver : Packet.t -> unit;
  dir_stat : Flowstat.t;
  mutable dropped : int;
  m_packets : Obs.Registry.counter;
  m_bytes : Obs.Registry.counter;
  m_drops : Obs.Registry.counter;
  m_backlog : Obs.Registry.histogram;
}

type t = {
  link_name : string;
  engine : Engine.t;
  bandwidth : float;
  latency : float;
  queue_capacity : int;
  a_to_b : direction;  (* transmits from A, delivers at B *)
  b_to_a : direction;
  mutable up : bool;
}

let other = function A -> B | B -> A

let make_direction ~link_name ~dir =
  let labels = [ ("link", link_name); ("dir", dir) ] in
  {
    busy_until = 0.0;
    receiver = (fun _ -> ());
    dir_stat = Flowstat.create ();
    dropped = 0;
    m_packets =
      Obs.Registry.counter ~labels ~help:"packets transmitted"
        "netsim.link.tx_packets";
    m_bytes =
      Obs.Registry.counter ~labels ~help:"wire bytes transmitted"
        "netsim.link.tx_bytes";
    m_drops =
      Obs.Registry.counter ~labels ~help:"packets dropped (down or full queue)"
        "netsim.link.drops";
    m_backlog =
      Obs.Registry.histogram ~labels
        ~help:"queue occupancy (bytes) sampled at each send"
        "netsim.link.backlog_bytes";
  }

let create ?(name = "link") ?(queue_capacity = 65536) engine ~bandwidth_bps
    ~latency () =
  if bandwidth_bps <= 0.0 then invalid_arg "Link.create: bandwidth must be positive";
  if latency < 0.0 then invalid_arg "Link.create: negative latency";
  {
    link_name = name;
    engine;
    bandwidth = bandwidth_bps;
    latency;
    queue_capacity;
    a_to_b = make_direction ~link_name:name ~dir:"a_to_b";
    b_to_a = make_direction ~link_name:name ~dir:"b_to_a";
    up = true;
  }

let name link = link.link_name
let bandwidth_bps link = link.bandwidth
let set_up link flag = link.up <- flag
let is_up link = link.up

(* The direction that transmits *from* the given endpoint. *)
let tx_direction link = function A -> link.a_to_b | B -> link.b_to_a

let set_receiver link endpoint f =
  (* Packets arriving at [endpoint] travel on the direction transmitting
     from the other end. *)
  (tx_direction link (other endpoint)).receiver <- f

let backlog_of direction ~now ~bandwidth =
  if direction.busy_until <= now then 0
  else int_of_float ((direction.busy_until -. now) *. bandwidth /. 8.0)

let send link ~from packet =
  let dir = tx_direction link from in
  let now = Engine.now link.engine in
  let size = Packet.wire_size packet in
  let backlog = backlog_of dir ~now ~bandwidth:link.bandwidth in
  if not link.up then begin
    dir.dropped <- dir.dropped + 1;
    Obs.Registry.incr dir.m_drops;
    false
  end
  else if backlog + size > link.queue_capacity then begin
    dir.dropped <- dir.dropped + 1;
    Obs.Registry.incr dir.m_drops;
    false
  end
  else begin
    let start = Float.max now dir.busy_until in
    let finish = start +. (float_of_int (size * 8) /. link.bandwidth) in
    dir.busy_until <- finish;
    Flowstat.record dir.dir_stat ~now:finish size;
    Obs.Registry.incr dir.m_packets;
    Obs.Registry.add dir.m_bytes size;
    Obs.Registry.observe dir.m_backlog (float_of_int backlog);
    Engine.schedule link.engine ~at:(finish +. link.latency) (fun () ->
        dir.receiver packet);
    true
  end

let backlog_bytes link endpoint =
  let dir = tx_direction link endpoint in
  backlog_of dir ~now:(Engine.now link.engine) ~bandwidth:link.bandwidth

let stat link endpoint = (tx_direction link endpoint).dir_stat
let drops link endpoint = (tx_direction link endpoint).dropped
