type t = {
  queue : (unit -> unit) Heap.t;
  mutable clock : float;
  mutable processed : int;
  mutable flushed : int; (* events already pushed to m_events *)
  mutable heap_max : int;
  mutable wall_spent : float; (* cpu seconds inside run/run_until *)
  m_events : Obs.Registry.counter;
}

let create () =
  let engine =
    {
      queue = Heap.create ();
      clock = 0.0;
      processed = 0;
      flushed = 0;
      heap_max = 0;
      wall_spent = 0.0;
      m_events =
        Obs.Registry.counter ~help:"events executed" "netsim.engine.events";
    }
  in
  (* Callback gauges cost nothing per event; they sample at snapshot time. *)
  Obs.Registry.set_fn
    (Obs.Registry.gauge ~help:"current simulated time (s)"
       "netsim.engine.sim_time_s")
    (fun () -> engine.clock);
  Obs.Registry.set_fn
    (Obs.Registry.gauge ~help:"events still queued" "netsim.engine.pending")
    (fun () -> float_of_int (Heap.size engine.queue));
  Obs.Registry.set_fn
    (Obs.Registry.gauge ~help:"peak event-queue depth"
       "netsim.engine.heap_depth_max")
    (fun () -> float_of_int engine.heap_max);
  Obs.Registry.set_fn
    (Obs.Registry.gauge ~volatile:true
       ~help:"cpu seconds spent inside run/run_until"
       "netsim.engine.wall_cpu_s")
    (fun () -> engine.wall_spent);
  engine

let now engine = engine.clock

let schedule engine ~at thunk =
  if at < engine.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule: time %g is before now (%g)" at
         engine.clock);
  Heap.add engine.queue ~time:at thunk;
  let depth = Heap.size engine.queue in
  if depth > engine.heap_max then engine.heap_max <- depth

let schedule_after engine ~delay thunk =
  if delay < 0.0 then invalid_arg "Engine.schedule_after: negative delay";
  schedule engine ~at:(engine.clock +. delay) thunk

let default_limit = 100_000_000

(* The event counter is updated in [flush_events], not per event: [step]
   only bumps a raw int, and run/run_until push the delta into the metrics
   registry on exit.  Keeps the hottest loop in the simulator free of
   registry dispatch while the exported counter stays exact whenever the
   engine is idle (the only time anyone can snapshot it). *)
let flush_events engine =
  if engine.processed > engine.flushed then begin
    Obs.Registry.add engine.m_events (engine.processed - engine.flushed);
    engine.flushed <- engine.processed
  end

let step engine =
  match Heap.pop engine.queue with
  | None -> false
  | Some (time, thunk) ->
      engine.clock <- time;
      engine.processed <- engine.processed + 1;
      thunk ();
      true

let run ?(limit = default_limit) engine =
  let started = Sys.time () in
  let fired = ref 0 in
  Fun.protect
    ~finally:(fun () ->
      flush_events engine;
      engine.wall_spent <- engine.wall_spent +. (Sys.time () -. started))
    (fun () ->
      while step engine do
        incr fired;
        if !fired > limit then invalid_arg "Engine.run: event limit exceeded"
      done)

let run_until ?(limit = default_limit) engine ~stop =
  let started = Sys.time () in
  let fired = ref 0 in
  let continue = ref true in
  Fun.protect
    ~finally:(fun () ->
      flush_events engine;
      engine.wall_spent <- engine.wall_spent +. (Sys.time () -. started))
    (fun () ->
      while !continue do
        match Heap.peek_time engine.queue with
        | Some time when time <= stop ->
            ignore (step engine);
            incr fired;
            if !fired > limit then
              invalid_arg "Engine.run_until: event limit exceeded"
        | Some _ | None -> continue := false
      done;
      if stop > engine.clock then engine.clock <- stop)

let pending engine = Heap.size engine.queue
let events_processed engine = engine.processed
let max_heap_depth engine = engine.heap_max
let wall_cpu_seconds engine = engine.wall_spent
