(* The event core.  Events are a typed variant, not bare closures: links
   and segments enqueue packets into preallocated per-direction FIFO rings
   (one outstanding scheduler entry per ring, re-armed from the ring head),
   so the steady-state delivery path allocates nothing — no closure per
   packet, no boxed heap entry, no boxed clock store (the clock lives in an
   all-float cell that Sched.pop writes directly).

   Ordering is bit-identical to the old per-packet binary heap: every ring
   push reserves a global sequence number at push time (Sched.fresh_seq),
   and the ring's scheduler entry always carries the head packet's stamped
   (time, seq) — the pop order is exactly what per-packet scheduling would
   have produced. *)

type event =
  | Timer of (unit -> unit)
  | Deliver of delivery
  | Broadcast of broadcast

(* A point-to-point delivery pipeline (one per link direction): a FIFO ring
   of in-flight packets with parallel unboxed arrival times and stamped
   seqs.  Ring capacity is a power of two and doubles when full. *)
and delivery = {
  mutable d_receiver : Packet.t -> unit;
  mutable d_pkts : Packet.t array;
  mutable d_times : float array;
  mutable d_seqs : int array;
  mutable d_head : int;
  mutable d_len : int;
  mutable d_stale : int; (* armed scheduler entries whose packets were cleared *)
  mutable d_event : event; (* preallocated [Deliver self] *)
}

(* A broadcast pipeline (one per shared segment): like [delivery] but each
   frame also carries its link-level destination and sending station. *)
and broadcast = {
  mutable b_handler : l2_dst:Addr.t option -> from:int -> Packet.t -> unit;
  mutable b_pkts : Packet.t array;
  mutable b_dsts : Addr.t option array;
  mutable b_froms : int array;
  mutable b_times : float array;
  mutable b_seqs : int array;
  mutable b_head : int;
  mutable b_len : int;
  mutable b_event : event;
}

type t = {
  queue : event Sched.t;
  clock : Sched.fcell; (* all-float cell: stores never box *)
  scratch : Sched.fcell; (* peek target for run_until *)
  mutable queued : int; (* logical pending: timers + every ring resident *)
  mutable processed : int;
  mutable flushed : int; (* events already pushed to m_events *)
  mutable depth_max : int;
  mutable wall_spent : float; (* cpu seconds inside run/run_until *)
  mutable flush_hooks : (unit -> unit) list; (* registration order *)
  m_events : Obs.Registry.counter;
}

let nop_event = Timer (fun () -> ())

let dummy_packet =
  Packet.make ~src:Addr.broadcast ~dst:Addr.broadcast Packet.Raw Payload.empty

let create ?(register_gauges = true) () =
  let engine =
    {
      queue = Sched.create ~dummy:nop_event ();
      clock = { Sched.v = 0.0 };
      scratch = { Sched.v = 0.0 };
      queued = 0;
      processed = 0;
      flushed = 0;
      depth_max = 0;
      wall_spent = 0.0;
      flush_hooks = [];
      m_events =
        Obs.Registry.counter ~help:"events executed" "netsim.engine.events";
    }
  in
  (* Callback gauges cost nothing per event; they sample at snapshot time.
     Partition sub-engines pass [~register_gauges:false]: the parallel
     driver owns these names and registers reductions over every
     partition instead (Par_engine). *)
  if register_gauges then begin
    Obs.Registry.set_fn
      (Obs.Registry.gauge ~help:"current simulated time (s)"
         "netsim.engine.sim_time_s")
      (fun () -> engine.clock.Sched.v);
    Obs.Registry.set_fn
      (Obs.Registry.gauge ~help:"events still queued" "netsim.engine.pending")
      (fun () -> float_of_int engine.queued);
    (* Volatile: the peak queue depth describes how the run was executed
       (one global queue vs per-partition queues), not what the simulated
       network did — a sharded run cannot reproduce the sequential
       engine's instantaneous global peak, so the gauge stays out of
       deterministic exports like the wall-clock timings do. *)
    Obs.Registry.set_fn
      (Obs.Registry.gauge ~volatile:true ~help:"peak event-queue depth"
         "netsim.engine.heap_depth_max")
      (fun () -> float_of_int engine.depth_max);
    Obs.Registry.set_fn
      (Obs.Registry.gauge ~volatile:true
         ~help:"cpu seconds spent inside run/run_until"
         "netsim.engine.wall_cpu_s")
      (fun () -> engine.wall_spent)
  end;
  engine

let[@inline] now engine = engine.clock.Sched.v

let[@inline] note_queued engine =
  engine.queued <- engine.queued + 1;
  if engine.queued > engine.depth_max then engine.depth_max <- engine.queued

let schedule engine ~at thunk =
  if at < engine.clock.Sched.v then
    invalid_arg
      (Printf.sprintf "Engine.schedule: time %g is before now (%g)" at
         engine.clock.Sched.v);
  Sched.add engine.queue ~time:at (Timer thunk);
  note_queued engine

let schedule_after engine ~delay thunk =
  if delay < 0.0 then invalid_arg "Engine.schedule_after: negative delay";
  schedule engine ~at:(engine.clock.Sched.v +. delay) thunk

(* ------------------------------------------------------------------ *)
(* Delivery rings                                                      *)
(* ------------------------------------------------------------------ *)

let delivery () =
  let cap = 8 in
  let d =
    {
      d_receiver = ignore;
      d_pkts = Array.make cap dummy_packet;
      d_times = Array.make cap 0.0;
      d_seqs = Array.make cap 0;
      d_head = 0;
      d_len = 0;
      d_stale = 0;
      d_event = nop_event;
    }
  in
  d.d_event <- Deliver d;
  d

let set_delivery_receiver d f = d.d_receiver <- f
let delivery_backlog d = d.d_len

let[@inline never] grow_delivery d =
  let cap = Array.length d.d_pkts in
  let ncap = 2 * cap in
  let pkts = Array.make ncap dummy_packet in
  let times = Array.make ncap 0.0 in
  let seqs = Array.make ncap 0 in
  for i = 0 to d.d_len - 1 do
    let j = (d.d_head + i) land (cap - 1) in
    pkts.(i) <- d.d_pkts.(j);
    times.(i) <- d.d_times.(j);
    seqs.(i) <- d.d_seqs.(j)
  done;
  d.d_pkts <- pkts;
  d.d_times <- times;
  d.d_seqs <- seqs;
  d.d_head <- 0

(* (Re-)schedule the ring's single scheduler entry from the head packet's
   stamped (time, seq), preserving per-packet pop order exactly. *)
let[@inline] arm_delivery engine d =
  let i = d.d_head in
  Sched.add_stamped engine.queue
    ~time:(Array.unsafe_get d.d_times i)
    ~seq:(Array.unsafe_get d.d_seqs i)
    d.d_event

let[@inline] push_delivery engine d ~at packet =
  if at < engine.clock.Sched.v then
    invalid_arg
      (Printf.sprintf "Engine.push_delivery: time %g is before now (%g)" at
         engine.clock.Sched.v);
  if d.d_len = Array.length d.d_pkts then grow_delivery d;
  let mask = Array.length d.d_pkts - 1 in
  let tail = (d.d_head + d.d_len) land mask in
  if
    d.d_len > 0
    && at < Array.unsafe_get d.d_times ((tail - 1) land mask)
  then invalid_arg "Engine.push_delivery: arrival times must be monotone";
  Array.unsafe_set d.d_pkts tail packet;
  Array.unsafe_set d.d_times tail at;
  Array.unsafe_set d.d_seqs tail (Sched.fresh_seq engine.queue);
  d.d_len <- d.d_len + 1;
  note_queued engine;
  if d.d_len = 1 then arm_delivery engine d

(* Drop every packet still in flight (fault injection: a cable pull takes
   the photons with it).  The ring's armed scheduler entry cannot be
   removed from the calendar queue, so it is left behind as a *stale*
   entry: [d_stale] counts them, and [step] consumes one stale entry per
   pop before delivering anything.  Consuming stale entries first can only
   delay a packet pushed between the clear and the stale pop (never
   reorder or duplicate), and in practice a downed link admits no new
   traffic until the stale entry has long fired. *)
let clear_delivery engine d =
  let dropped = d.d_len in
  if dropped > 0 then begin
    let mask = Array.length d.d_pkts - 1 in
    for i = 0 to dropped - 1 do
      Array.unsafe_set d.d_pkts ((d.d_head + i) land mask) dummy_packet
    done;
    d.d_head <- 0;
    d.d_len <- 0;
    d.d_stale <- d.d_stale + 1;
    (* The packets leave the logical queue; the stale entry stays in it
       until its pop decrements [queued] in [step]. *)
    engine.queued <- engine.queued - dropped + 1
  end;
  dropped

(* ------------------------------------------------------------------ *)
(* Broadcast rings                                                     *)
(* ------------------------------------------------------------------ *)

let broadcast () =
  let cap = 8 in
  let b =
    {
      b_handler = (fun ~l2_dst:_ ~from:_ _ -> ());
      b_pkts = Array.make cap dummy_packet;
      b_dsts = Array.make cap None;
      b_froms = Array.make cap 0;
      b_times = Array.make cap 0.0;
      b_seqs = Array.make cap 0;
      b_head = 0;
      b_len = 0;
      b_event = nop_event;
    }
  in
  b.b_event <- Broadcast b;
  b

let set_broadcast_handler b f = b.b_handler <- f
let broadcast_backlog b = b.b_len

let[@inline never] grow_broadcast b =
  let cap = Array.length b.b_pkts in
  let ncap = 2 * cap in
  let pkts = Array.make ncap dummy_packet in
  let dsts = Array.make ncap None in
  let froms = Array.make ncap 0 in
  let times = Array.make ncap 0.0 in
  let seqs = Array.make ncap 0 in
  for i = 0 to b.b_len - 1 do
    let j = (b.b_head + i) land (cap - 1) in
    pkts.(i) <- b.b_pkts.(j);
    dsts.(i) <- b.b_dsts.(j);
    froms.(i) <- b.b_froms.(j);
    times.(i) <- b.b_times.(j);
    seqs.(i) <- b.b_seqs.(j)
  done;
  b.b_pkts <- pkts;
  b.b_dsts <- dsts;
  b.b_froms <- froms;
  b.b_times <- times;
  b.b_seqs <- seqs;
  b.b_head <- 0

let[@inline] arm_broadcast engine b =
  let i = b.b_head in
  Sched.add_stamped engine.queue
    ~time:(Array.unsafe_get b.b_times i)
    ~seq:(Array.unsafe_get b.b_seqs i)
    b.b_event

let[@inline] push_broadcast engine b ~at ~l2_dst ~from packet =
  if at < engine.clock.Sched.v then
    invalid_arg
      (Printf.sprintf "Engine.push_broadcast: time %g is before now (%g)" at
         engine.clock.Sched.v);
  if b.b_len = Array.length b.b_pkts then grow_broadcast b;
  let mask = Array.length b.b_pkts - 1 in
  let tail = (b.b_head + b.b_len) land mask in
  if
    b.b_len > 0
    && at < Array.unsafe_get b.b_times ((tail - 1) land mask)
  then invalid_arg "Engine.push_broadcast: arrival times must be monotone";
  Array.unsafe_set b.b_pkts tail packet;
  Array.unsafe_set b.b_dsts tail l2_dst;
  Array.unsafe_set b.b_froms tail from;
  Array.unsafe_set b.b_times tail at;
  Array.unsafe_set b.b_seqs tail (Sched.fresh_seq engine.queue);
  b.b_len <- b.b_len + 1;
  note_queued engine;
  if b.b_len = 1 then arm_broadcast engine b

(* ------------------------------------------------------------------ *)
(* Event loop                                                          *)
(* ------------------------------------------------------------------ *)

let default_limit = 100_000_000

(* The event counter is updated in [flush_events], not per event: [step]
   only bumps a raw int, and run/run_until push the delta into the metrics
   registry on exit.  Components with their own batched counters (links,
   segments) register [on_flush] hooks and are flushed at the same points.
   Keeps the hottest loop in the simulator free of registry dispatch while
   the exported counters stay exact whenever the engine is idle (the only
   time anyone can snapshot them). *)
let flush_events engine =
  if engine.processed > engine.flushed then begin
    Obs.Registry.add engine.m_events (engine.processed - engine.flushed);
    engine.flushed <- engine.processed
  end;
  List.iter (fun hook -> hook ()) engine.flush_hooks

let on_flush engine hook = engine.flush_hooks <- engine.flush_hooks @ [ hook ]
let flush = flush_events

let step engine =
  if Sched.is_empty engine.queue then false
  else begin
    let ev = Sched.pop engine.queue ~into:engine.clock in
    engine.processed <- engine.processed + 1;
    engine.queued <- engine.queued - 1;
    (match ev with
    | Timer thunk -> thunk ()
    | Deliver d ->
        if d.d_stale > 0 then
          (* A [clear_delivery] emptied this ring while the entry was in
             the calendar queue; consume the stale token and deliver
             nothing. *)
          d.d_stale <- d.d_stale - 1
        else begin
          let mask = Array.length d.d_pkts - 1 in
          let i = d.d_head in
          let packet = Array.unsafe_get d.d_pkts i in
          Array.unsafe_set d.d_pkts i dummy_packet;
          d.d_head <- (i + 1) land mask;
          d.d_len <- d.d_len - 1;
          (* Re-arm before the receiver runs: the next head's stamped seq
             predates anything the receiver can schedule, and the receiver
             may push into this very ring. *)
          if d.d_len > 0 then arm_delivery engine d;
          d.d_receiver packet
        end
    | Broadcast b ->
        let mask = Array.length b.b_pkts - 1 in
        let i = b.b_head in
        let packet = Array.unsafe_get b.b_pkts i in
        let l2_dst = Array.unsafe_get b.b_dsts i in
        let from = Array.unsafe_get b.b_froms i in
        Array.unsafe_set b.b_pkts i dummy_packet;
        Array.unsafe_set b.b_dsts i None;
        b.b_head <- (i + 1) land mask;
        b.b_len <- b.b_len - 1;
        if b.b_len > 0 then arm_broadcast engine b;
        b.b_handler ~l2_dst ~from packet);
    true
  end

let run ?(limit = default_limit) engine =
  let started = Sys.time () in
  let fired = ref 0 in
  Fun.protect
    ~finally:(fun () ->
      flush_events engine;
      engine.wall_spent <- engine.wall_spent +. (Sys.time () -. started))
    (fun () ->
      while step engine do
        incr fired;
        if !fired > limit then invalid_arg "Engine.run: event limit exceeded"
      done)

let run_until ?(limit = default_limit) engine ~stop =
  let started = Sys.time () in
  let fired = ref 0 in
  let continue = ref true in
  Fun.protect
    ~finally:(fun () ->
      flush_events engine;
      engine.wall_spent <- engine.wall_spent +. (Sys.time () -. started))
    (fun () ->
      while !continue do
        if
          Sched.peek_time engine.queue ~into:engine.scratch
          && engine.scratch.Sched.v <= stop
        then begin
          ignore (step engine);
          incr fired;
          if !fired > limit then
            invalid_arg "Engine.run_until: event limit exceeded"
        end
        else continue := false
      done;
      if stop > engine.clock.Sched.v then engine.clock.Sched.v <- stop)

(* A bounded slice for the partitioned parallel driver: process events
   strictly below [stop] ([<= stop] when [inclusive]), do NOT flush
   batched metrics (worker domains must never touch the shared registry)
   and do NOT advance the clock to [stop] (later windows still need
   cross-partition pushes at [>= stop] to be "in the future").  Returns
   the number of events fired so the driver can enforce a global limit. *)
let run_window ?(limit = default_limit) ?(inclusive = false) engine ~stop =
  let fired = ref 0 in
  let continue = ref true in
  while !continue do
    if
      Sched.peek_time engine.queue ~into:engine.scratch
      && (engine.scratch.Sched.v < stop
         || (inclusive && engine.scratch.Sched.v = stop))
    then begin
      ignore (step engine);
      incr fired;
      if !fired > limit then
        invalid_arg "Engine.run_window: event limit exceeded"
    end
    else continue := false
  done;
  !fired

(* Earliest due time, [infinity] when idle — the horizon input of the
   conservative window computation. *)
let next_time engine =
  if Sched.peek_time engine.queue ~into:engine.scratch then
    engine.scratch.Sched.v
  else Float.infinity

let pending engine = engine.queued
let events_processed engine = engine.processed
let max_heap_depth engine = engine.depth_max
let wall_cpu_seconds engine = engine.wall_spent
