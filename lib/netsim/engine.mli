(** Discrete-event simulation engine.

    The engine owns the simulated clock and an event queue; an event is an
    arbitrary thunk scheduled at an absolute simulated time. All netsim
    components (links, nodes, applications) share one engine. *)

type t

(** [create ()] is a fresh engine with the clock at [0.0]. *)
val create : unit -> t

(** [now engine] is the current simulated time in seconds. *)
val now : t -> float

(** [schedule engine ~at thunk] runs [thunk] when the clock reaches [at].
    @raise Invalid_argument if [at] is in the past. *)
val schedule : t -> at:float -> (unit -> unit) -> unit

(** [schedule_after engine ~delay thunk] runs [thunk] after [delay] seconds. *)
val schedule_after : t -> delay:float -> (unit -> unit) -> unit

(** [run engine] processes events until the queue drains.
    @raise Invalid_argument if more than [limit] events fire (default 100M),
    which indicates a runaway simulation. *)
val run : ?limit:int -> t -> unit

(** [run_until engine ~stop] processes events with time [<= stop], then sets
    the clock to [stop]. Events scheduled later stay queued. *)
val run_until : ?limit:int -> t -> stop:float -> unit

(** [pending engine] is the number of queued events. *)
val pending : t -> int

(** [events_processed engine] counts events executed since creation. *)
val events_processed : t -> int

(** [max_heap_depth engine] is the peak event-queue depth seen so far —
    mirrored by the [netsim.engine.heap_depth_max] gauge. *)
val max_heap_depth : t -> int

(** [wall_cpu_seconds engine] is cpu time spent inside [run]/[run_until].
    Exported as the *volatile* [netsim.engine.wall_cpu_s] gauge: it never
    appears in deterministic exports and never influences simulation
    behavior. *)
val wall_cpu_seconds : t -> float
