(** Discrete-event simulation engine.

    The engine owns the simulated clock and an event queue. Events are a
    typed variant: plain timer thunks, plus preallocated FIFO {e delivery}
    and {e broadcast} rings that links and segments push packets into —
    one outstanding queue entry per ring, re-armed from the ring head, so
    steady-state packet delivery schedules without allocating. All netsim
    components (links, nodes, applications) share one engine.

    Ordering is identical to scheduling every packet individually: each
    ring push reserves a global sequence number at push time, and the
    ring's queue entry always carries the head packet's stamped
    [(time, seq)]. *)

type t

(** [create ()] is a fresh engine with the clock at [0.0].
    [~register_gauges:false] skips registering the process-wide
    [netsim.engine.*] callback gauges — partition sub-engines use it so
    the parallel driver ({!Par_engine}) can own those names and publish
    reductions over every partition instead. *)
val create : ?register_gauges:bool -> unit -> t

(** [now engine] is the current simulated time in seconds. *)
val now : t -> float

(** [schedule engine ~at thunk] runs [thunk] when the clock reaches [at].
    @raise Invalid_argument if [at] is in the past. *)
val schedule : t -> at:float -> (unit -> unit) -> unit

(** [schedule_after engine ~delay thunk] runs [thunk] after [delay] seconds. *)
val schedule_after : t -> delay:float -> (unit -> unit) -> unit

(** {2 Delivery pipelines}

    A [delivery] is a point-to-point packet pipeline, typically one per
    link direction: packets pushed with monotone arrival times pop in FIFO
    order and are handed to the receiver callback. Pushing into a ring
    with capacity left allocates nothing. *)

type delivery

(** [delivery ()] is a fresh pipeline delivering to a no-op receiver. *)
val delivery : unit -> delivery

(** [set_delivery_receiver d f] routes popped packets to [f]. *)
val set_delivery_receiver : delivery -> (Packet.t -> unit) -> unit

(** [push_delivery engine d ~at packet] enqueues [packet] to arrive at
    [at].
    @raise Invalid_argument if [at] is in the past or earlier than the
    ring's newest pending arrival (arrivals must be monotone). *)
val push_delivery : t -> delivery -> at:float -> Packet.t -> unit

(** [delivery_backlog d] is the number of packets in flight in [d]. *)
val delivery_backlog : delivery -> int

(** [clear_delivery engine d] drops every packet still in flight in [d]
    without delivering any of them, returning how many were dropped.
    Used by fault injection: cutting a link mid-flight loses the photons
    already on the wire. Packets pushed after the clear are unaffected. *)
val clear_delivery : t -> delivery -> int

(** {2 Broadcast pipelines}

    Like deliveries, but each frame carries a link-level destination and
    the index of the sending station; one per shared segment. *)

type broadcast

val broadcast : unit -> broadcast

val set_broadcast_handler :
  broadcast -> (l2_dst:Addr.t option -> from:int -> Packet.t -> unit) -> unit

val push_broadcast :
  t -> broadcast -> at:float -> l2_dst:Addr.t option -> from:int ->
  Packet.t -> unit

val broadcast_backlog : broadcast -> int

(** {2 Running} *)

(** [run engine] processes events until the queue drains.
    @raise Invalid_argument if more than [limit] events fire (default 100M),
    which indicates a runaway simulation. *)
val run : ?limit:int -> t -> unit

(** [run_until engine ~stop] processes events with time [<= stop], then sets
    the clock to [stop]. Events scheduled later stay queued. *)
val run_until : ?limit:int -> t -> stop:float -> unit

(** [run_window engine ~stop] processes events with time strictly below
    [stop] ([<= stop] with [~inclusive:true]) and returns how many fired.
    Unlike {!run_until} it neither flushes batched metrics nor advances
    the clock to [stop] — it is the per-round primitive of the
    partitioned parallel driver ({!Par_engine}), whose worker domains
    must not touch the shared registry and whose later windows still push
    cross-partition arrivals at times [>= stop]. *)
val run_window : ?limit:int -> ?inclusive:bool -> t -> stop:float -> int

(** [next_time engine] is the earliest queued event time, [infinity] when
    the queue is empty — the horizon input of the conservative window
    computation. *)
val next_time : t -> float

(** [on_flush engine hook] registers [hook] to run (in registration order)
    whenever the engine flushes batched metrics — on every [run]/[run_until]
    exit, including exceptional ones. Components that batch per-packet
    counters into raw fields use this to publish them to the metrics
    registry; exported values are therefore exact exactly when the engine
    is idle. *)
val on_flush : t -> (unit -> unit) -> unit

(** [flush engine] runs the batched-metrics flush on demand — the event
    counter push plus every [on_flush] hook — so registry values are
    exact mid-run. Condition monitors call this at the top of each probe
    tick before sampling; costs one list walk, nothing when no component
    has batched anything since the last flush. *)
val flush : t -> unit

(** [pending engine] is the number of queued events (timers plus every
    packet resident in a delivery/broadcast ring). *)
val pending : t -> int

(** [events_processed engine] counts events executed since creation. *)
val events_processed : t -> int

(** [max_heap_depth engine] is the peak event-queue depth seen so far —
    mirrored by the *volatile* [netsim.engine.heap_depth_max] gauge.
    Volatile because it describes the execution plan, not the simulated
    network: a partitioned run keeps one queue per domain and cannot
    reproduce the sequential engine's instantaneous global peak. *)
val max_heap_depth : t -> int

(** [wall_cpu_seconds engine] is cpu time spent inside [run]/[run_until].
    Exported as the *volatile* [netsim.engine.wall_cpu_s] gauge: it never
    appears in deterministic exports and never influences simulation
    behavior. *)
val wall_cpu_seconds : t -> float
