type counters = {
  mutable frames_in : int;
  mutable delivered : int;
  mutable forwarded : int;
  mutable originated : int;
  mutable dropped_ttl : int;
  mutable dropped_no_route : int;
  mutable dropped_filtered : int;
  mutable dropped_unclaimed : int;
  mutable dropped_tx : int;
  mutable dropped_down : int;
}

(* Obs mirrors of [counters], plus hook invocations (which the plain
   counters never tracked). Drops share one family, split by reason. *)
type obs_counters = {
  o_frames_in : Obs.Registry.counter;
  o_delivered : Obs.Registry.counter;
  o_forwarded : Obs.Registry.counter;
  o_originated : Obs.Registry.counter;
  o_hook : Obs.Registry.counter;
  o_drop_ttl : Obs.Registry.counter;
  o_drop_no_route : Obs.Registry.counter;
  o_drop_filtered : Obs.Registry.counter;
  o_drop_unclaimed : Obs.Registry.counter;
  o_drop_tx : Obs.Registry.counter;
  o_drop_down : Obs.Registry.counter;
}

let make_obs_counters ~node_name =
  let labels = [ ("node", node_name) ] in
  let drop reason =
    Obs.Registry.counter
      ~labels:(("reason", reason) :: labels)
      ~help:"frames dropped, by reason" "netsim.node.drops"
  in
  {
    o_frames_in =
      Obs.Registry.counter ~labels ~help:"frames received"
        "netsim.node.frames_in";
    o_delivered =
      Obs.Registry.counter ~labels ~help:"frames delivered to an application"
        "netsim.node.delivered";
    o_forwarded =
      Obs.Registry.counter ~labels ~help:"frames forwarded"
        "netsim.node.forwarded";
    o_originated =
      Obs.Registry.counter ~labels ~help:"packets originated locally"
        "netsim.node.originated";
    o_hook =
      Obs.Registry.counter ~labels ~help:"processing-hook invocations"
        "netsim.node.hook_invocations";
    o_drop_ttl = drop "ttl";
    o_drop_no_route = drop "no_route";
    o_drop_filtered = drop "filtered";
    o_drop_unclaimed = drop "unclaimed";
    o_drop_tx = drop "tx";
    o_drop_down = drop "down";
  }

type iface = {
  if_name : string;
  if_send : l2_dst:Addr.t option -> Packet.t -> bool;
  mutable if_monitor : (unit -> float) option;
  mutable if_capacity : float;
}

type t = {
  node_name : string;
  node_addr : Addr.t;
  mutable node_engine : Engine.t;
  mutable ifaces : iface array;
  node_routing : Routing.table;
  mutable hook : hook option;
  mutable invalidation_hook : (unit -> unit) option;
  mutable promisc : bool;
  udp_handlers : (int, t -> Packet.t -> unit) Hashtbl.t;
  tcp_handlers : (int, t -> Packet.t -> unit) Hashtbl.t;
  mutable udp_default : (t -> Packet.t -> unit) option;
  mutable tcp_default : (t -> Packet.t -> unit) option;
  mutable mcast : Multicast.t option;
  stats : counters;
  obs : obs_counters;
  mutable cpu_cost : float;
  mutable cpu_busy_until : float;
  mutable cpu_queue : int;
  mutable up : bool; (* a crashed node drops everything (fault plane) *)
}

and hook = t -> ifindex:int -> l2_dst:Addr.t option -> Packet.t -> unit

let create engine ~name ~addr =
  {
    node_name = name;
    node_addr = addr;
    node_engine = engine;
    ifaces = [||];
    node_routing = Routing.create ();
    hook = None;
    invalidation_hook = None;
    promisc = false;
    udp_handlers = Hashtbl.create 8;
    tcp_handlers = Hashtbl.create 8;
    udp_default = None;
    tcp_default = None;
    mcast = None;
    stats =
      {
        frames_in = 0;
        delivered = 0;
        forwarded = 0;
        originated = 0;
        dropped_ttl = 0;
        dropped_no_route = 0;
        dropped_filtered = 0;
        dropped_unclaimed = 0;
        dropped_tx = 0;
        dropped_down = 0;
      };
    obs = make_obs_counters ~node_name:name;
    cpu_cost = 0.0;
    cpu_busy_until = 0.0;
    cpu_queue = 0;
    up = true;
  }

let name node = node.node_name
let addr node = node.node_addr
let engine node = node.node_engine

(* Partitioning seam: re-home the node's clock (cpu-cost scheduling) onto
   its partition's engine.  Single-threaded, pre-spawn only. *)
let set_engine node engine = node.node_engine <- engine
let routing node = node.node_routing
let counters node = node.stats
let set_multicast node registry = node.mcast <- Some registry
let multicast node = node.mcast

let add_iface node ~name if_send =
  let ifindex = Array.length node.ifaces in
  node.ifaces <-
    Array.append node.ifaces
      [| { if_name = name; if_send; if_monitor = None; if_capacity = 0.0 } |];
  ifindex

let iface node ifindex =
  if ifindex < 0 || ifindex >= Array.length node.ifaces then
    invalid_arg
      (Printf.sprintf "Node %s: no interface %d" node.node_name ifindex);
  node.ifaces.(ifindex)

let iface_count node = Array.length node.ifaces
let iface_name node ifindex = (iface node ifindex).if_name

let set_iface_monitor node ifindex f =
  (iface node ifindex).if_monitor <- Some f

let iface_load_bps node ifindex =
  match (iface node ifindex).if_monitor with Some f -> f () | None -> 0.0

let set_iface_capacity node ifindex bps = (iface node ifindex).if_capacity <- bps
let iface_capacity_bps node ifindex = (iface node ifindex).if_capacity

let transmit node ~ifindex ~l2_dst packet =
  if not ((iface node ifindex).if_send ~l2_dst packet) then begin
    node.stats.dropped_tx <- node.stats.dropped_tx + 1;
    Obs.Registry.incr node.obs.o_drop_tx
  end

let is_group_member node group =
  match node.mcast with
  | Some registry -> Multicast.is_member registry ~group node.node_addr
  | None -> false

(* Allocation-free dispatch: [Hashtbl.find] + exception instead of
   [find_opt] so a delivery does not box the handler in an option. *)
let deliver_local node packet =
  let run f =
    node.stats.delivered <- node.stats.delivered + 1;
    Obs.Registry.incr node.obs.o_delivered;
    f node packet
  and unclaimed () =
    node.stats.dropped_unclaimed <- node.stats.dropped_unclaimed + 1;
    Obs.Registry.incr node.obs.o_drop_unclaimed
  in
  let fallback default =
    match default with Some f -> run f | None -> unclaimed ()
  in
  match packet.Packet.l4 with
  | Packet.Udp h -> (
      match Hashtbl.find node.udp_handlers h.Packet.udp_dst with
      | f -> run f
      | exception Not_found -> fallback node.udp_default)
  | Packet.Tcp h -> (
      match Hashtbl.find node.tcp_handlers h.Packet.tcp_dst with
      | f -> run f
      | exception Not_found -> fallback node.tcp_default)
  | Packet.Raw -> unclaimed ()

(* Replicate a multicast packet toward every member, one copy per distinct
   outgoing interface, skipping the interface it arrived on. *)
let multicast_out node ~in_ifindex packet =
  let group = packet.Packet.dst in
  match node.mcast with
  | None ->
      node.stats.dropped_no_route <- node.stats.dropped_no_route + 1;
      Obs.Registry.incr node.obs.o_drop_no_route
  | Some registry ->
      let out_ifaces = Hashtbl.create 4 in
      Multicast.iter_members registry ~group (fun member ->
          if not (Addr.equal member node.node_addr) then
            match Routing.find node.node_routing member with
            | { Routing.ifindex; _ }
              when ifindex <> in_ifindex
                   && not (Hashtbl.mem out_ifaces ifindex) ->
                Hashtbl.add out_ifaces ifindex ()
            | _ | (exception Routing.No_route) -> ());
      Hashtbl.iter
        (fun ifindex () ->
          transmit node ~ifindex ~l2_dst:(Some group) (Packet.clone packet))
        out_ifaces

(* The forwarding fast path allocates exactly one small record per hop
   (the TTL-decremented copy): route lookup raises instead of boxing an
   option, and the route's own [next_hop] option is passed through as the
   frame address rather than re-wrapped. *)
let forward node ~ifindex packet =
  if Addr.equal packet.Packet.dst node.node_addr then
    (* Addressed to this node (e.g. a hook re-emitted a local packet):
       up the stack, no TTL charge. *)
    deliver_local node packet
  else if packet.Packet.ttl <= 1 then begin
    node.stats.dropped_ttl <- node.stats.dropped_ttl + 1;
    Obs.Registry.incr node.obs.o_drop_ttl
  end
  else begin
    let packet = Packet.with_ttl packet (packet.Packet.ttl - 1) in
    node.stats.forwarded <- node.stats.forwarded + 1;
    Obs.Registry.incr node.obs.o_forwarded;
    if Addr.is_multicast packet.Packet.dst then begin
      multicast_out node ~in_ifindex:ifindex packet;
      if is_group_member node packet.Packet.dst then deliver_local node packet
    end
    else
      match Routing.find node.node_routing packet.Packet.dst with
      | { Routing.ifindex = out; next_hop } ->
          let l2_dst =
            match next_hop with
            | Some _ as hop -> hop
            | None -> Some packet.Packet.dst
          in
          transmit node ~ifindex:out ~l2_dst packet
      | exception Routing.No_route ->
          node.stats.dropped_no_route <- node.stats.dropped_no_route + 1;
          Obs.Registry.incr node.obs.o_drop_no_route
  end

let ip_input node ~ifindex packet =
  let dst = packet.Packet.dst in
  if Addr.equal dst node.node_addr then deliver_local node packet
  else if Addr.equal dst Addr.broadcast then deliver_local node packet
  else if Addr.is_multicast dst then begin
    (* A node can be both a member and a forwarder (router with local app). *)
    if is_group_member node dst then deliver_local node packet;
    if Array.length node.ifaces > 1 then forward node ~ifindex packet
  end
  else forward node ~ifindex packet

(* Does the default IP layer accept a frame with this link-level address? *)
let l2_accepts node l2_dst =
  match l2_dst with
  | None -> true
  | Some a ->
      Addr.equal a node.node_addr || Addr.equal a Addr.broadcast
      || (Addr.is_multicast a && is_group_member node a)

let default_process node ~ifindex ~l2_dst packet =
  if l2_accepts node l2_dst then ip_input node ~ifindex packet
  else begin
    node.stats.dropped_filtered <- node.stats.dropped_filtered + 1;
    Obs.Registry.incr node.obs.o_drop_filtered
  end

let receive_now node ~ifindex ~l2_dst packet =
  match node.hook with
  | Some hook ->
      if node.promisc || l2_accepts node l2_dst then begin
        Obs.Registry.incr node.obs.o_hook;
        hook node ~ifindex ~l2_dst packet
      end
      else begin
        node.stats.dropped_filtered <- node.stats.dropped_filtered + 1;
        Obs.Registry.incr node.obs.o_drop_filtered
      end
  | None -> default_process node ~ifindex ~l2_dst packet

let[@inline] drop_down node =
  node.stats.dropped_down <- node.stats.dropped_down + 1;
  Obs.Registry.incr node.obs.o_drop_down

let receive node ~ifindex ~l2_dst packet =
  if not node.up then drop_down node
  else begin
    node.stats.frames_in <- node.stats.frames_in + 1;
    Obs.Registry.incr node.obs.o_frames_in;
    if node.cpu_cost <= 0.0 then receive_now node ~ifindex ~l2_dst packet
    else begin
      (* Serial CPU: frames are processed [cpu_cost] apart, FIFO. *)
      let now = Engine.now node.node_engine in
      let start = Float.max now node.cpu_busy_until in
      let done_at = start +. node.cpu_cost in
      node.cpu_busy_until <- done_at;
      node.cpu_queue <- node.cpu_queue + 1;
      Engine.schedule node.node_engine ~at:done_at (fun () ->
          node.cpu_queue <- node.cpu_queue - 1;
          (* The CPU died with the frame still queued on it. *)
          if node.up then receive_now node ~ifindex ~l2_dst packet
          else drop_down node)
    end
  end

let set_processing_cost node seconds =
  if seconds < 0.0 then invalid_arg "Node.set_processing_cost: negative cost";
  node.cpu_cost <- seconds

let cpu_backlog node = node.cpu_queue

let originate_up node packet =
  node.stats.originated <- node.stats.originated + 1;
  Obs.Registry.incr node.obs.o_originated;
  let dst = packet.Packet.dst in
  if Addr.equal dst node.node_addr then deliver_local node packet
  else if Addr.is_multicast dst then begin
    multicast_out node ~in_ifindex:(-1) packet;
    if is_group_member node dst then deliver_local node packet
  end
  else begin
    match Routing.find node.node_routing dst with
    | { Routing.ifindex; next_hop } ->
        let l2_dst =
          match next_hop with Some _ as hop -> hop | None -> Some dst
        in
        transmit node ~ifindex ~l2_dst packet
    | exception Routing.No_route ->
        node.stats.dropped_no_route <- node.stats.dropped_no_route + 1;
        Obs.Registry.incr node.obs.o_drop_no_route
  end

let originate node packet =
  if not node.up then drop_down node else originate_up node packet

let set_up node flag = node.up <- flag
let is_up node = node.up

(* Crash-with-state-loss: everything a running program installed on the
   node (processing hook, port handlers, promiscuous mode, CPU model)
   is gone; identity, interfaces and counters survive.  The routing
   table is left to {!Topology.compute_routes}, which owns it. *)
let reset_state node =
  node.hook <- None;
  node.promisc <- false;
  Hashtbl.reset node.udp_handlers;
  Hashtbl.reset node.tcp_handlers;
  node.udp_default <- None;
  node.tcp_default <- None;
  node.cpu_cost <- 0.0;
  node.cpu_busy_until <- 0.0

let set_hook node hook = node.hook <- Some hook
let clear_hook node = node.hook <- None
let has_hook node = node.hook <> None

let set_invalidation_hook node f = node.invalidation_hook <- Some f

let invalidate_forwarding node =
  match node.invalidation_hook with Some f -> f () | None -> ()
let set_promiscuous node flag = node.promisc <- flag
let promiscuous node = node.promisc
let on_udp node ~port f = Hashtbl.replace node.udp_handlers port f
let on_tcp node ~port f = Hashtbl.replace node.tcp_handlers port f
let on_udp_default node f = node.udp_default <- Some f
let on_tcp_default node f = node.tcp_default <- Some f

let send_udp ?chan_tag node ~dst ~src_port ~dst_port body =
  originate node
    (Packet.udp ?chan_tag ~src:node.node_addr ~dst ~src_port ~dst_port body)

let send_tcp ?seq ?ack ?syn ?fin ?is_ack node ~dst ~src_port ~dst_port body =
  originate node
    (Packet.tcp ?seq ?ack ?syn ?fin ?is_ack ~src:node.node_addr ~dst ~src_port
       ~dst_port body)

let registry_exn node =
  match node.mcast with
  | Some registry -> registry
  | None ->
      invalid_arg
        (Printf.sprintf "Node %s: no multicast registry attached"
           node.node_name)

let join_group node group =
  Multicast.join (registry_exn node) ~group node.node_addr

let leave_group node group =
  Multicast.leave (registry_exn node) ~group node.node_addr
