(* Samples live in a ring of parallel arrays (unboxed float stamps, int
   byte counts), so [record] — called once per transmitted packet — is a
   handful of stores with no allocation; the amortized-O(1) expiry sweep
   is array reads and int stores.  Expiry stays eager in [record] (using
   the caller's stamp, which for links is the transmit-finish time and can
   run ahead of the clock): that both bounds the ring at one window's
   worth of samples and keeps windowed rates bit-identical to the
   original queue-based implementation. *)

type t = {
  win : float;
  mutable r_at : float array; (* ring, capacity is a power of two *)
  mutable r_bytes : int array;
  mutable head : int;
  mutable len : int;
  mutable window_bytes : int; (* bytes in ring (may include stale) *)
  mutable all_bytes : int;
  mutable all_packets : int;
}

let create ?(window = 1.0) () =
  if window <= 0.0 then invalid_arg "Flowstat.create: window must be positive";
  {
    win = window;
    r_at = Array.make 16 0.0;
    r_bytes = Array.make 16 0;
    head = 0;
    len = 0;
    window_bytes = 0;
    all_bytes = 0;
    all_packets = 0;
  }

let[@inline] expire stat ~now =
  let horizon = now -. stat.win in
  let mask = Array.length stat.r_at - 1 in
  while
    stat.len > 0 && Array.unsafe_get stat.r_at stat.head < horizon
  do
    stat.window_bytes <-
      stat.window_bytes - Array.unsafe_get stat.r_bytes stat.head;
    stat.head <- (stat.head + 1) land mask;
    stat.len <- stat.len - 1
  done

let[@inline never] grow stat =
  let cap = Array.length stat.r_at in
  let ncap = 2 * cap in
  let at = Array.make ncap 0.0 in
  let bytes = Array.make ncap 0 in
  for i = 0 to stat.len - 1 do
    let j = (stat.head + i) land (cap - 1) in
    at.(i) <- stat.r_at.(j);
    bytes.(i) <- stat.r_bytes.(j)
  done;
  stat.r_at <- at;
  stat.r_bytes <- bytes;
  stat.head <- 0

let[@inline always] record stat ~now bytes =
  expire stat ~now;
  if stat.len = Array.length stat.r_at then grow stat;
  let mask = Array.length stat.r_at - 1 in
  let tail = (stat.head + stat.len) land mask in
  Array.unsafe_set stat.r_at tail now;
  Array.unsafe_set stat.r_bytes tail bytes;
  stat.len <- stat.len + 1;
  stat.window_bytes <- stat.window_bytes + bytes;
  stat.all_bytes <- stat.all_bytes + bytes;
  stat.all_packets <- stat.all_packets + 1

let rate_bps stat ~now =
  expire stat ~now;
  float_of_int (stat.window_bytes * 8) /. stat.win

let total_bytes stat = stat.all_bytes
let total_packets stat = stat.all_packets
let window stat = stat.win

module Series = struct
  type s = { mutable acc : (float * float) list }

  let attach engine stat ~period ~until =
    if period <= 0.0 then invalid_arg "Flowstat.Series.attach: bad period";
    let series = { acc = [] } in
    let rec tick () =
      let now = Engine.now engine in
      series.acc <- (now, rate_bps stat ~now) :: series.acc;
      if now +. period <= until then Engine.schedule_after engine ~delay:period tick
    in
    Engine.schedule_after engine ~delay:period tick;
    series

  let points series = List.rev series.acc
end
