type target = Tlink of string | Tsegment of string | Tnode of string

type kind =
  | Link_down
  | Loss of float
  | Corrupt of float
  | Congest of { bandwidth_factor : float; queue_factor : float }
  | Crash of { wipe : bool }
  | Reroute

type event = {
  ft_at : float;
  ft_until : float option;
  ft_kind : kind;
  ft_target : target option;
}

type scenario = { seed : int; events : event list }

let empty = { seed = 0; events = [] }
let scenario_of_events ?(seed = 0) events = { seed; events }

(* ------------------------------------------------------------------ *)
(* Scenario RNG: xorshift64*, private to the fault plane so Netsim     *)
(* keeps its no-dependency-on-Asp layering.  Same construction as      *)
(* Asp.Rng: deterministic across platforms.                            *)
(* ------------------------------------------------------------------ *)

type rng = { mutable state : int64 }

let rng_create ~seed = { state = Int64.of_int (if seed = 0 then 0x9E3779B9 else seed) }

let rng_next rng =
  let open Int64 in
  let x = rng.state in
  let x = logxor x (shift_left x 13) in
  let x = logxor x (shift_right_logical x 7) in
  let x = logxor x (shift_left x 17) in
  rng.state <- x;
  mul x 0x2545F4914F6CDD1DL

let rng_float rng =
  let bits = Int64.shift_right_logical (rng_next rng) 11 in
  Int64.to_float bits /. 9007199254740992.0 (* 2^53 *)

(* ------------------------------------------------------------------ *)
(* Scenario-file parser                                                *)
(* ------------------------------------------------------------------ *)

let parse_float what s =
  match float_of_string_opt s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: not a number (%s)" what s)

let parse_rate what s =
  match parse_float what s with
  | Error _ as e -> e
  | Ok v when v < 0.0 || v > 1.0 ->
      Error (Printf.sprintf "%s: probability out of [0,1] (%s)" what s)
  | Ok v -> Ok v

let parse_factor what s =
  match parse_float what s with
  | Error _ as e -> e
  | Ok v when v <= 0.0 || v > 1.0 ->
      Error (Printf.sprintf "%s: factor out of (0,1] (%s)" what s)
  | Ok v -> Ok v

let rec parse_congest_opts ~bandwidth ~queue = function
  | [] -> Ok (Congest { bandwidth_factor = bandwidth; queue_factor = queue })
  | "bandwidth" :: v :: rest -> (
      match parse_factor "bandwidth" v with
      | Error _ as e -> e
      | Ok bandwidth -> parse_congest_opts ~bandwidth ~queue rest)
  | "queue" :: v :: rest -> (
      match parse_factor "queue" v with
      | Error _ as e -> e
      | Ok queue -> parse_congest_opts ~bandwidth ~queue rest)
  | token :: _ -> Error (Printf.sprintf "congest: unknown option %s" token)

(* The body of an event line, after [at T [until T2]] has been consumed. *)
let parse_body tokens =
  match tokens with
  | [ "link"; "down"; name ] -> Ok (Link_down, Some (Tlink name))
  | [ "link"; "loss"; name; p ] -> (
      match parse_rate "link loss" p with
      | Error _ as e -> e
      | Ok p -> Ok (Loss p, Some (Tlink name)))
  | [ "link"; "corrupt"; name; p ] -> (
      match parse_rate "link corrupt" p with
      | Error _ as e -> e
      | Ok p -> Ok (Corrupt p, Some (Tlink name)))
  | [ "segment"; "loss"; name; p ] -> (
      match parse_rate "segment loss" p with
      | Error _ as e -> e
      | Ok p -> Ok (Loss p, Some (Tsegment name)))
  | [ "segment"; "corrupt"; name; p ] -> (
      match parse_rate "segment corrupt" p with
      | Error _ as e -> e
      | Ok p -> Ok (Corrupt p, Some (Tsegment name)))
  | "congest" :: name :: opts -> (
      match parse_congest_opts ~bandwidth:1.0 ~queue:1.0 opts with
      | Error _ as e -> e
      | Ok kind -> Ok (kind, Some (Tlink name)))
  | [ "node"; "crash"; name ] -> Ok (Crash { wipe = false }, Some (Tnode name))
  | [ "node"; "crash-wipe"; name ] -> Ok (Crash { wipe = true }, Some (Tnode name))
  | [ "reroute" ] -> Ok (Reroute, None)
  | [] -> Error "missing fault after time spec"
  | token :: _ -> Error (Printf.sprintf "unknown fault %s" token)

let parse_line line =
  match String.split_on_char ' ' line |> List.filter (fun t -> t <> "") with
  | [] -> Ok `Blank
  | [ "seed"; n ] -> (
      match int_of_string_opt n with
      | Some seed -> Ok (`Seed seed)
      | None -> Error (Printf.sprintf "seed: not an integer (%s)" n))
  | "at" :: t :: rest -> (
      match parse_float "at" t with
      | Error _ as e -> (e :> (_, string) result)
      | Ok at -> (
          let until, body =
            match rest with
            | "until" :: t2 :: body -> (Some t2, body)
            | body -> (None, body)
          in
          let until =
            match until with
            | None -> Ok None
            | Some t2 -> (
                match parse_float "until" t2 with
                | Error _ as e -> e
                | Ok u when u < at ->
                    Error (Printf.sprintf "until %g is before at %g" u at)
                | Ok u -> Ok (Some u))
          in
          match until with
          | Error _ as e -> (e :> (_, string) result)
          | Ok ft_until -> (
              match parse_body body with
              | Error _ as e -> (e :> (_, string) result)
              | Ok (ft_kind, ft_target) ->
                  Ok (`Event { ft_at = at; ft_until; ft_kind; ft_target }))))
  | token :: _ -> Error (Printf.sprintf "expected 'seed' or 'at', got %s" token)

let parse_scenario text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno seed events = function
    | [] -> Ok { seed; events = List.rev events }
    | line :: rest -> (
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        let line = String.trim line in
        if line = "" then go (lineno + 1) seed events rest
        else
          match parse_line line with
          | Ok `Blank -> go (lineno + 1) seed events rest
          | Ok (`Seed s) -> go (lineno + 1) s events rest
          | Ok (`Event e) -> go (lineno + 1) seed (e :: events) rest
          | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
  in
  go 1 0 [] lines

(* ------------------------------------------------------------------ *)
(* Arming                                                              *)
(* ------------------------------------------------------------------ *)

(* Loss/corruption tallies are batched in the shared {!Impair} records
   and flushed here on every engine flush, so the per-packet path never
   touches a registry handle. *)
type tracked = {
  tr_impair : Impair.t;
  tr_m_lost : Obs.Registry.counter;
  tr_m_corrupted : Obs.Registry.counter;
  mutable tr_f_lost : int;
  mutable tr_f_corrupted : int;
}

type medium = Mlink of Link.t | Msegment of Segment.t

type handle = {
  h_topo : Topology.t;
  h_rng : rng;
  mutable h_restart_hooks : (Node.t -> unit) list;
  mutable h_injected : int;
  mutable h_tracked : (medium * tracked) list;
}

let injected handle = handle.h_injected

let on_restart handle f =
  handle.h_restart_hooks <- handle.h_restart_hooks @ [ f ]

let m_injected kind_label =
  Obs.Registry.counter
    ~labels:[ ("kind", kind_label) ]
    ~help:"fault events injected, by kind" "netsim.faults.injected"

let medium_name = function
  | Mlink link -> Link.name link
  | Msegment seg -> Segment.name seg

let flush_tracked (_, tr) =
  let dl = tr.tr_impair.Impair.lost - tr.tr_f_lost in
  if dl > 0 then begin
    Obs.Registry.add tr.tr_m_lost dl;
    tr.tr_f_lost <- tr.tr_impair.Impair.lost
  end;
  let dc = tr.tr_impair.Impair.corrupted - tr.tr_f_corrupted in
  if dc > 0 then begin
    Obs.Registry.add tr.tr_m_corrupted dc;
    tr.tr_f_corrupted <- tr.tr_impair.Impair.corrupted
  end

(* The impairment attached to a medium by this handle; created (and its
   flush registered) on first use.  The record survives rate windows
   closing — the medium's [impair] field is dropped back to [None] when
   both rates reach zero, restoring the zero-cost idle path. *)
let same_medium a b =
  match (a, b) with
  | Mlink l1, Mlink l2 -> l1 == l2
  | Msegment s1, Msegment s2 -> s1 == s2
  | (Mlink _ | Msegment _), _ -> false

let tracked_for handle medium =
  match
    List.find_opt (fun (m, _) -> same_medium m medium) handle.h_tracked
  with
  | Some (_, tr) -> tr
  | None ->
      let rng = handle.h_rng in
      let name = medium_name medium in
      let tr =
        {
          tr_impair = Impair.create ~rand:(fun () -> rng_float rng);
          tr_m_lost =
            Obs.Registry.counter
              ~labels:[ ("target", name) ]
              ~help:"packets lost to injected loss" "netsim.faults.lost_packets";
          tr_m_corrupted =
            Obs.Registry.counter
              ~labels:[ ("target", name) ]
              ~help:"packets corrupted by injected faults"
              "netsim.faults.corrupted_packets";
          tr_f_lost = 0;
          tr_f_corrupted = 0;
        }
      in
      handle.h_tracked <- (medium, tr) :: handle.h_tracked;
      tr

let attach_impair medium impair =
  match medium with
  | Mlink link -> Link.set_impairment link (Some impair)
  | Msegment seg -> Segment.set_impairment seg (Some impair)

let maybe_detach_impair medium impair =
  if impair.Impair.loss_rate = 0.0 && impair.Impair.corrupt_rate = 0.0 then
    match medium with
    | Mlink link -> Link.set_impairment link None
    | Msegment seg -> Segment.set_impairment seg None

(* Loss, corruption and congestion accept either medium kind whatever the
   constructor says: scenario files name the medium and the registry
   disambiguates. *)
let resolve_medium topo name =
  match Topology.find_link topo name with
  | Some link -> Some (Mlink link)
  | None -> (
      match Topology.find_segment topo name with
      | Some seg -> Some (Msegment seg)
      | None -> None)

let bad fmt = Printf.ksprintf invalid_arg fmt

let medium_target handle = function
  | Some (Tlink name) | Some (Tsegment name) -> (
      match resolve_medium handle.h_topo name with
      | Some medium -> medium
      | None -> bad "Faults.arm: unknown link or segment %s" name)
  | Some (Tnode name) -> bad "Faults.arm: %s: fault needs a link or segment" name
  | None -> bad "Faults.arm: fault needs a target"

let link_target handle = function
  | Some (Tlink name) | Some (Tsegment name) -> (
      match Topology.find_link handle.h_topo name with
      | Some link -> link
      | None -> bad "Faults.arm: unknown link %s" name)
  | Some (Tnode _) | None -> bad "Faults.arm: link fault needs a link target"

let node_target handle = function
  | Some (Tnode name) -> (
      match Topology.find handle.h_topo name with
      | node -> node
      | exception Not_found -> bad "Faults.arm: unknown node %s" name)
  | _ -> bad "Faults.arm: crash needs a node target"

let reconverge handle =
  Topology.compute_routes handle.h_topo

let schedule_event handle engine event =
  let clamp t = if t < Engine.now engine then Engine.now engine else t in
  let inject kind_label =
    handle.h_injected <- handle.h_injected + 1;
    Obs.Registry.incr (m_injected kind_label)
  in
  match event.ft_kind with
  | Link_down ->
      let link = link_target handle event.ft_target in
      Engine.schedule engine ~at:(clamp event.ft_at) (fun () ->
          inject "link_down";
          Link.set_up link false;
          reconverge handle);
      Option.iter
        (fun until ->
          Engine.schedule engine ~at:(clamp until) (fun () ->
              inject "link_up";
              Link.set_up link true;
              reconverge handle))
        event.ft_until
  | Loss rate ->
      let medium = medium_target handle event.ft_target in
      Engine.schedule engine ~at:(clamp event.ft_at) (fun () ->
          inject "loss";
          let tr = tracked_for handle medium in
          tr.tr_impair.Impair.loss_rate <- rate;
          attach_impair medium tr.tr_impair);
      Option.iter
        (fun until ->
          Engine.schedule engine ~at:(clamp until) (fun () ->
              let tr = tracked_for handle medium in
              tr.tr_impair.Impair.loss_rate <- 0.0;
              maybe_detach_impair medium tr.tr_impair))
        event.ft_until
  | Corrupt rate ->
      let medium = medium_target handle event.ft_target in
      Engine.schedule engine ~at:(clamp event.ft_at) (fun () ->
          inject "corrupt";
          let tr = tracked_for handle medium in
          tr.tr_impair.Impair.corrupt_rate <- rate;
          attach_impair medium tr.tr_impair);
      Option.iter
        (fun until ->
          Engine.schedule engine ~at:(clamp until) (fun () ->
              let tr = tracked_for handle medium in
              tr.tr_impair.Impair.corrupt_rate <- 0.0;
              maybe_detach_impair medium tr.tr_impair))
        event.ft_until
  | Congest { bandwidth_factor; queue_factor } ->
      let medium = medium_target handle event.ft_target in
      let saved = ref None in
      Engine.schedule engine ~at:(clamp event.ft_at) (fun () ->
          inject "congest";
          match medium with
          | Mlink link ->
              saved := Some (Link.bandwidth_bps link, Link.queue_capacity link);
              Link.set_bandwidth_bps link
                (Link.bandwidth_bps link *. bandwidth_factor);
              Link.set_queue_capacity link
                (int_of_float (float_of_int (Link.queue_capacity link) *. queue_factor))
          | Msegment seg ->
              saved := Some (Segment.bandwidth_bps seg, Segment.queue_capacity seg);
              Segment.set_bandwidth_bps seg
                (Segment.bandwidth_bps seg *. bandwidth_factor);
              Segment.set_queue_capacity seg
                (int_of_float (float_of_int (Segment.queue_capacity seg) *. queue_factor)));
      Option.iter
        (fun until ->
          Engine.schedule engine ~at:(clamp until) (fun () ->
              inject "congest_end";
              match (!saved, medium) with
              | Some (bw, cap), Mlink link ->
                  Link.set_bandwidth_bps link bw;
                  Link.set_queue_capacity link cap
              | Some (bw, cap), Msegment seg ->
                  Segment.set_bandwidth_bps seg bw;
                  Segment.set_queue_capacity seg cap
              | None, _ -> ()))
        event.ft_until
  | Crash { wipe } ->
      let node = node_target handle event.ft_target in
      Engine.schedule engine ~at:(clamp event.ft_at) (fun () ->
          inject "crash";
          Node.set_up node false;
          if wipe then Node.reset_state node;
          reconverge handle);
      Option.iter
        (fun until ->
          Engine.schedule engine ~at:(clamp until) (fun () ->
              inject "restart";
              Node.set_up node true;
              reconverge handle;
              List.iter (fun f -> f node) handle.h_restart_hooks))
        event.ft_until
  | Reroute ->
      Engine.schedule engine ~at:(clamp event.ft_at) (fun () ->
          inject "reroute";
          reconverge handle)

let arm ?engine topo scenario =
  let handle =
    {
      h_topo = topo;
      h_rng = rng_create ~seed:scenario.seed;
      h_restart_hooks = [];
      h_injected = 0;
      h_tracked = [];
    }
  in
  if scenario.events <> [] then begin
    (* Fault timers default to the topology engine; a partitioned run
       passes the engine of the partition its targets are pinned into.
       The metrics flush hook always stays on the topology engine, whose
       hooks the parallel driver runs after the domains have joined. *)
    let sched_engine =
      match engine with Some e -> e | None -> Topology.engine topo
    in
    List.iter (schedule_event handle sched_engine) scenario.events;
    Engine.on_flush (Topology.engine topo) (fun () ->
        List.iter flush_tracked handle.h_tracked)
  end;
  handle

(* Which nodes a partitioned run must pin into one partition so this
   scenario stays deterministic: every draw from the shared scenario RNG
   then happens on one domain, in the sequential order restricted to it.
   Faults that reconverge routes globally cannot be partitioned at all. *)
let pin_targets topo scenario =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | ev :: rest -> (
        match ev.ft_kind with
        | Link_down ->
            Error "fault 'link down' reconverges routes globally"
        | Crash _ -> Error "fault 'crash' reconverges routes globally"
        | Reroute -> Error "fault 'reroute' reconverges routes globally"
        | Loss _ | Corrupt _ | Congest _ -> (
            match ev.ft_target with
            | Some (Tlink name) | Some (Tsegment name) -> (
                match resolve_medium topo name with
                | Some (Mlink link) ->
                    let endpoints =
                      List.concat_map
                        (fun (l, a, b) -> if l == link then [ a; b ] else [])
                        (Topology.link_endpoints topo)
                    in
                    go (List.rev_append endpoints acc) rest
                | Some (Msegment seg) ->
                    let stations =
                      List.concat_map
                        (fun (s, nodes) -> if s == seg then nodes else [])
                        (Topology.segment_stations topo)
                    in
                    go (List.rev_append stations acc) rest
                | None ->
                    Error
                      (Printf.sprintf "unknown link or segment %s" name))
            | Some (Tnode name) ->
                Error
                  (Printf.sprintf "%s: fault needs a link or segment" name)
            | None -> Error "fault needs a target"))
  in
  go [] scenario.events
